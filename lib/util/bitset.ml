type t = {
  words : int array;
  n : int;
}

let bits_per_word = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let length t = t.n

let check t i name =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" name i t.n)

let mem t i =
  check t i "mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i "add";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i "remove";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let bits = t.words.(w) in
    if bits <> 0 then
      for b = 0 to bits_per_word - 1 do
        if bits land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let add_list t is = List.iter (add t) is

let of_list n is =
  let t = create n in
  add_list t is;
  t

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
