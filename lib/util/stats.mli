(** Small descriptive-statistics helpers used by the experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0. for fewer than two
    samples. *)

val minimum : float list -> float
(** Smallest sample; 0. on the empty list. *)

val maximum : float list -> float
(** Largest sample; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0, 100\]], nearest-rank method on the
    sorted samples; 0. on the empty list.  [p = 0.] is the minimum and
    [p = 100.] the maximum. *)

val percentile_sorted : float array -> float -> float
(** Nearest-rank percentile on an already ascending-sorted array; lets a
    caller sort once and read many percentiles.  0. on the empty array. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val empty_summary : summary
(** The typed all-zero row: [n = 0], every statistic [0.].  What
    {!summarize} returns on the empty list, so empty measurement windows
    (e.g. diurnal troughs in the workload harness) render as a
    well-formed row instead of raising or emitting NaNs. *)

val summarize : float list -> summary
(** [summarize [] = empty_summary]; never raises. *)

val pp_summary : Format.formatter -> summary -> unit
