type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t x =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 4 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit t.data 0 data' 0 t.len;
  t.data <- data'

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let clear t =
  t.data <- [||];
  t.len <- 0
