let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. (n -. 1.))

let minimum = function [] -> 0. | x :: xs -> List.fold_left min x xs

let maximum = function [] -> 0. | x :: xs -> List.fold_left max x xs

(* Nearest-rank on an ascending array: the smallest sample such that at
   least [p]% of the data is <= it, i.e. index ceil(p/100 * n) - 1,
   clamped so p = 0 reads the minimum and p = 100 the maximum. *)
let percentile_sorted arr p =
  let n = Array.length arr in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile p xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  percentile_sorted arr p

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let empty_summary = { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0. }

(* One sort serves min, max and every percentile; the old code sorted a
   fresh copy of the samples per percentile call.  The empty case returns
   the typed empty row — workload windows can legitimately hold no
   samples (diurnal troughs) and must still render a well-formed row. *)
let summarize = function
  | [] -> empty_summary
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = arr.(0);
      max = arr.(n - 1);
      p50 = percentile_sorted arr 50.;
      p95 = percentile_sorted arr 95.;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
