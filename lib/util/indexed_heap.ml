(* Slot [i] of [keys]/[elts] is one heap entry; [pos.(e)] maps an element id
   back to its slot (or -1 when absent) so decrease_key can find it in O(1).
   Ties on the key compare on the element id, which keeps every operation —
   and therefore Dijkstra settle order — fully deterministic. *)
type t = {
  keys : int array;
  elts : int array;
  pos : int array;
  mutable size : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Indexed_heap.create: negative capacity";
  {
    keys = Array.make capacity 0;
    elts = Array.make capacity 0;
    pos = Array.make capacity (-1);
    size = 0;
  }

let capacity t = Array.length t.pos

let length t = t.size

let is_empty t = t.size = 0

let mem t e = e >= 0 && e < Array.length t.pos && t.pos.(e) >= 0

let key t e =
  if mem t e then Some t.keys.(t.pos.(e)) else None

let less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.elts.(i) < t.elts.(j))

let swap t i j =
  let ki = t.keys.(i) and ei = t.elts.(i) in
  t.keys.(i) <- t.keys.(j);
  t.elts.(i) <- t.elts.(j);
  t.keys.(j) <- ki;
  t.elts.(j) <- ei;
  t.pos.(t.elts.(i)) <- i;
  t.pos.(t.elts.(j)) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && less t l i then l else i in
  let smallest = if r < t.size && less t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let check_elt t e name =
  if e < 0 || e >= Array.length t.pos then
    invalid_arg (Printf.sprintf "Indexed_heap.%s: element %d out of capacity %d" name e (Array.length t.pos))

let insert t e ~key =
  check_elt t e "insert";
  if t.pos.(e) >= 0 then invalid_arg "Indexed_heap.insert: element already present";
  let i = t.size in
  t.keys.(i) <- key;
  t.elts.(i) <- e;
  t.pos.(e) <- i;
  t.size <- i + 1;
  sift_up t i

let decrease_key t e ~key =
  check_elt t e "decrease_key";
  let i = t.pos.(e) in
  if i < 0 then invalid_arg "Indexed_heap.decrease_key: element not present";
  if key > t.keys.(i) then invalid_arg "Indexed_heap.decrease_key: key increase";
  t.keys.(i) <- key;
  sift_up t i

let push t e ~key =
  check_elt t e "push";
  let i = t.pos.(e) in
  if i < 0 then insert t e ~key
  else if key < t.keys.(i) then begin
    t.keys.(i) <- key;
    sift_up t i
  end

let peek_min t = if t.size = 0 then None else Some (t.elts.(0), t.keys.(0))

let pop_min t =
  if t.size = 0 then None
  else begin
    let e = t.elts.(0) and k = t.keys.(0) in
    t.pos.(e) <- -1;
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.size in
      t.keys.(0) <- t.keys.(last);
      t.elts.(0) <- t.elts.(last);
      t.pos.(t.elts.(0)) <- 0;
      sift_down t 0
    end;
    Some (e, k)
  end

let clear t =
  for i = 0 to t.size - 1 do
    t.pos.(t.elts.(i)) <- -1
  done;
  t.size <- 0
