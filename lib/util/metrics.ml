type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = {
  mutable samples : float list;  (* reversed *)
  mutable n : int;
}

type key = {
  name : string;
  labels : (string * string) list;  (* sorted by label name *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { instruments : (key, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let compare_label (ka, _) (kb, _) = String.compare ka kb

let key name labels = { name; labels = List.sort compare_label labels }

let lookup t ~name ~labels ~make ~cast =
  let k = key name labels in
  match Hashtbl.find_opt t.instruments k with
  | Some inst -> cast inst
  | None ->
    let inst = make () in
    Hashtbl.replace t.instruments k inst;
    cast inst

let counter t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Counter { count = 0 })
    ~cast:(function
      | Counter c -> c
      | Gauge _ | Histogram _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type"))

let gauge t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Gauge { value = 0. })
    ~cast:(function
      | Gauge g -> g
      | Counter _ | Histogram _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type"))

let histogram t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Histogram { samples = []; n = 0 })
    ~cast:(function
      | Histogram h -> h
      | Counter _ | Gauge _ ->
        invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type"))

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let set g v = g.value <- v

let gauge_value g = g.value

let observe h v =
  h.samples <- v :: h.samples;
  h.n <- h.n + 1

let histogram_count h = h.n

let histogram_summary h = Stats.summarize (List.rev h.samples)

let compare_key a b =
  match String.compare a.name b.name with
  | 0 ->
    List.compare
      (fun (ka, va) (kb, vb) ->
        match String.compare ka kb with 0 -> String.compare va vb | c -> c)
      a.labels b.labels
  | c -> c

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json t =
  (* Collect then sort: hashtable order must not leak into the export. *)
  let all =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.instruments []
    |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  in
  let entry k fields = Json.Obj (("name", Json.Str k.name) :: ("labels", labels_json k.labels) :: fields) in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) (k, inst) ->
        match inst with
        | Counter c -> (entry k [ ("value", Json.Int c.count) ] :: cs, gs, hs)
        | Gauge g -> (cs, entry k [ ("value", Json.Float g.value) ] :: gs, hs)
        | Histogram h ->
          let s = histogram_summary h in
          ( cs,
            gs,
            entry k
              [
                ("n", Json.Int s.Stats.n);
                ("mean", Json.Float s.Stats.mean);
                ("stddev", Json.Float s.Stats.stddev);
                ("min", Json.Float s.Stats.min);
                ("max", Json.Float s.Stats.max);
                ("p50", Json.Float s.Stats.p50);
                ("p95", Json.Float s.Stats.p95);
              ]
            :: hs ))
      ([], [], []) all
  in
  Json.Obj
    [
      ("schema", Json.Str "pim-metrics/1");
      ("counters", Json.Arr (List.rev counters));
      ("gauges", Json.Arr (List.rev gauges));
      ("histograms", Json.Arr (List.rev histograms));
    ]
