type counter = { mutable count : int }

type gauge = { mutable value : float }

(* Bounded memory no matter how many observations arrive: exact
   streaming count/sum/sum-of-squares/min/max, plus a fixed-size
   uniform reservoir (Vitter's algorithm R) for the percentiles.  The
   reservoir's PRNG is seeded from the instrument's key, so runs are
   reproducible and no ambient randomness is involved. *)
type histogram = {
  reservoir : float array;
  res_prng : Prng.t;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable mn : float;
  mutable mx : float;
}

let reservoir_capacity = 1024

(* {1 Windowed instruments}

   Tumbling-window variants: the live accumulator covers the window being
   measured right now; [roll] closes it into an immutable per-window row
   and resets the accumulator.  Closed rows are what the workload harness
   exports — per-window metric rows instead of end-of-run aggregates.
   Sliding views are sums over the last [k] closed rows.  Memory is
   bounded by the number of windows (counters) plus the samples of the
   one open window (histograms — summarized and discarded at roll). *)

type window = { index : int; t_start : float; t_end : float }

type wcounter = {
  mutable wc_live : int;
  mutable wc_rows : (window * int) list;  (* newest first *)
}

type whistogram = {
  mutable wh_live : float list;  (* newest first; open window only *)
  mutable wh_rows : (window * Stats.summary) list;  (* newest first *)
}

type key = {
  name : string;
  labels : (string * string) list;  (* sorted by label name *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Wcounter of wcounter
  | Whistogram of whistogram

type t = {
  instruments : (key, instrument) Hashtbl.t;
  mutable n_windows : int;  (* index of the next window [roll] will close *)
}

let create () = { instruments = Hashtbl.create 64; n_windows = 0 }

let compare_label (ka, _) (kb, _) = String.compare ka kb

let key name labels = { name; labels = List.sort compare_label labels }

let lookup t ~name ~labels ~make ~cast =
  let k = key name labels in
  match Hashtbl.find_opt t.instruments k with
  | Some inst -> cast inst
  | None ->
    let inst = make () in
    Hashtbl.replace t.instruments k inst;
    cast inst

let counter t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Counter { count = 0 })
    ~cast:(function
      | Counter c -> c
      | Gauge _ | Histogram _ | Wcounter _ | Whistogram _ ->
        invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type"))

let gauge t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Gauge { value = 0. })
    ~cast:(function
      | Gauge g -> g
      | Counter _ | Histogram _ | Wcounter _ | Whistogram _ ->
        invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type"))

let histogram t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () ->
      Histogram
        {
          reservoir = Array.make reservoir_capacity 0.;
          res_prng = Prng.create (Hashtbl.hash (key name labels));
          n = 0;
          sum = 0.;
          sum_sq = 0.;
          mn = 0.;
          mx = 0.;
        })
    ~cast:(function
      | Histogram h -> h
      | Counter _ | Gauge _ | Wcounter _ | Whistogram _ ->
        invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type"))

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let set g v = g.value <- v

let gauge_value g = g.value

let observe h v =
  let i = h.n in
  h.n <- i + 1;
  h.sum <- h.sum +. v;
  h.sum_sq <- h.sum_sq +. (v *. v);
  if i = 0 || v < h.mn then h.mn <- v;
  if i = 0 || v > h.mx then h.mx <- v;
  let cap = Array.length h.reservoir in
  if i < cap then h.reservoir.(i) <- v
  else begin
    (* Element i replaces a random slot with probability cap/(i+1),
       keeping every observation equally likely to be retained. *)
    let j = Prng.int h.res_prng (i + 1) in
    if j < cap then h.reservoir.(j) <- v
  end

let histogram_count h = h.n

let histogram_summary h =
  let k = Int.min h.n (Array.length h.reservoir) in
  let arr = Array.sub h.reservoir 0 k in
  Array.sort Float.compare arr;
  let nf = float_of_int h.n in
  {
    Stats.n = h.n;
    mean = (if h.n = 0 then 0. else h.sum /. nf);
    stddev =
      (if h.n < 2 then 0.
       else sqrt (Float.max 0. ((h.sum_sq -. (h.sum *. h.sum /. nf)) /. (nf -. 1.))));
    min = (if h.n = 0 then 0. else h.mn);
    max = (if h.n = 0 then 0. else h.mx);
    p50 = Stats.percentile_sorted arr 50.;
    p95 = Stats.percentile_sorted arr 95.;
  }

let wcounter t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Wcounter { wc_live = 0; wc_rows = [] })
    ~cast:(function
      | Wcounter w -> w
      | Counter _ | Gauge _ | Histogram _ | Whistogram _ ->
        invalid_arg ("Metrics.wcounter: " ^ name ^ " registered with another type"))

let whistogram t ?(labels = []) name =
  lookup t ~name ~labels
    ~make:(fun () -> Whistogram { wh_live = []; wh_rows = [] })
    ~cast:(function
      | Whistogram w -> w
      | Counter _ | Gauge _ | Histogram _ | Wcounter _ ->
        invalid_arg ("Metrics.whistogram: " ^ name ^ " registered with another type"))

let wincr ?(by = 1) w = w.wc_live <- w.wc_live + by

let wcounter_live w = w.wc_live

let wcounter_rows w = List.rev w.wc_rows

let wobserve w v = w.wh_live <- v :: w.wh_live

let whistogram_live_count w = List.length w.wh_live

let whistogram_rows w = List.rev w.wh_rows

let sliding_sum ?(last = 1) w =
  let rec take k acc = function
    | (_, c) :: rest when k > 0 -> take (k - 1) (acc + c) rest
    | _ -> acc
  in
  take last 0 w.wc_rows

let n_windows t = t.n_windows

let compare_key a b =
  match String.compare a.name b.name with
  | 0 ->
    List.compare
      (fun (ka, va) (kb, vb) ->
        match String.compare ka kb with 0 -> String.compare va vb | c -> c)
      a.labels b.labels
  | c -> c

(* Close the open window on every windowed instrument in the registry.
   Closing is an independent per-instrument mutation, so traversal order
   cannot influence the result; we still collect-and-sort for uniformity
   with [to_json] (hashtable order never drives anything). *)
let roll t ~t_start ~t_end =
  let w = { index = t.n_windows; t_start; t_end } in
  t.n_windows <- t.n_windows + 1;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.instruments []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  |> List.iter (fun (_, inst) ->
         match inst with
         | Counter _ | Gauge _ | Histogram _ -> ()
         | Wcounter c ->
           c.wc_rows <- (w, c.wc_live) :: c.wc_rows;
           c.wc_live <- 0
         | Whistogram h ->
           (* wh_live is newest-first; summarize sorts, so order is moot. *)
           h.wh_rows <- (w, Stats.summarize h.wh_live) :: h.wh_rows;
           h.wh_live <- []);
  w

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let window_fields w tail =
  ("window", Json.Int w.index)
  :: ("t_start", Json.Float w.t_start)
  :: ("t_end", Json.Float w.t_end)
  :: tail

let summary_fields (s : Stats.summary) =
  [
    ("n", Json.Int s.Stats.n);
    ("mean", Json.Float s.Stats.mean);
    ("stddev", Json.Float s.Stats.stddev);
    ("min", Json.Float s.Stats.min);
    ("max", Json.Float s.Stats.max);
    ("p50", Json.Float s.Stats.p50);
    ("p95", Json.Float s.Stats.p95);
  ]

let to_json t =
  (* Collect then sort: hashtable order must not leak into the export. *)
  let all =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.instruments []
    |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  in
  let entry k fields = Json.Obj (("name", Json.Str k.name) :: ("labels", labels_json k.labels) :: fields) in
  let counters, gauges, histograms, wcounters, whistograms =
    List.fold_left
      (fun (cs, gs, hs, wcs, whs) (k, inst) ->
        match inst with
        | Counter c -> (entry k [ ("value", Json.Int c.count) ] :: cs, gs, hs, wcs, whs)
        | Gauge g -> (cs, entry k [ ("value", Json.Float g.value) ] :: gs, hs, wcs, whs)
        | Histogram h ->
          (cs, gs, entry k (summary_fields (histogram_summary h)) :: hs, wcs, whs)
        | Wcounter w ->
          let rows =
            List.rev_map
              (fun (win, count) -> Json.Obj (window_fields win [ ("count", Json.Int count) ]))
              w.wc_rows
          in
          (cs, gs, hs, entry k [ ("rows", Json.Arr rows) ] :: wcs, whs)
        | Whistogram w ->
          let rows =
            List.rev_map
              (fun (win, s) -> Json.Obj (window_fields win (summary_fields s)))
              w.wh_rows
          in
          (cs, gs, hs, wcs, entry k [ ("rows", Json.Arr rows) ] :: whs))
      ([], [], [], [], []) all
  in
  Json.Obj
    [
      ("schema", Json.Str "pim-metrics/2");
      ("counters", Json.Arr (List.rev counters));
      ("gauges", Json.Arr (List.rev gauges));
      ("histograms", Json.Arr (List.rev histograms));
      ("wcounters", Json.Arr (List.rev wcounters));
      ("whistograms", Json.Arr (List.rev whistograms));
    ]
