(** Minimal JSON reader/writer (no dependencies).

    Backs the machine-readable bench baseline ([BENCH_fig2.json]), the
    [--json] modes of the bench harness and [pimsim], and the typed-event /
    packet-capture round-trips of the observability layer.  Non-finite
    floats are emitted as [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default false) pretty-prints with two-space
    indentation. *)

val to_file : string -> t -> unit
(** Write pretty-printed JSON plus a trailing newline to a file. *)

val of_string : string -> (t, string) result
(** Parse one JSON value.  Rejects trailing garbage.  Numbers with a
    fraction or exponent become [Float]; plain integers become [Int]
    (falling back to [Float] on overflow).  The error string includes the
    byte offset of the failure. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on malformed input. *)

val member : string -> t -> t option
(** [member name v] is field [name] of object [v], if present. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int] (promoted). *)

val to_str : t -> string option
val to_list : t -> t list option
