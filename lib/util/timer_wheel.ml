(* Calendar queue (Brown, CACM 1988).  See the .mli for the design notes.

   Invariants:
   - a linked node is on exactly one bucket list; [abs] is its absolute
     (un-masked) bucket number [floor(time / width)], and the list lives
     at index [abs land mask]; an unlinked node has [abs = -1] and
     self-looped [prev]/[next];
   - every bucket list is circular, doubly linked, sorted by [(time, seq)];
     the array holds the list head (its minimum); an empty bucket holds
     the wheel's [nil] sentinel;
   - all linked nodes have [time >= last_time] (the engine never schedules
     into the past), hence [abs >= cur_abs], so the dequeue scan never has
     to look behind the cursor.

   The bucket array stores plain nodes, not options: [nil] is a per-wheel
   sentinel with [abs = max_int] and [time = infinity], so the dueness
   test [head.abs <= b] and the direct min search are both correct on an
   empty bucket without boxing every head in [Some].  [nil] never escapes
   the wheel and is never linked; its [value]/[wheel] fields are dummies
   that are never read.

   The dequeue scan walks absolute bucket numbers and tests dueness with
   the integer comparison [head.abs <= b].  An earlier version compared
   [head.time] against a float bucket edge accumulated by repeated
   addition; when an event's time sat within an ulp of its bucket edge the
   test could stay false forever and every pop degenerated into a
   full-wheel scan.  Integer bucket numbers make dueness exact.

   Physical equality is the identity test of the intrusive list (a node is
   its own identity; comparing payloads would be wrong), hence the
   pimlint H2 allows below. *)

type 'a node = {
  mutable time : float;
  mutable seq : int;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable abs : int;
  wheel : 'a wheel;
}

and 'a wheel = {
  nil : 'a node;
  mutable buckets : 'a node array;
  mutable mask : int;
  mutable inv_width : float;
  mutable live : int;
  mutable cur_abs : int;
  mutable last_time : float;
}

type 'a t = 'a wheel

let min_buckets = 16

let max_buckets = 1 lsl 22

let create () =
  (* The sentinel's [value] and [wheel] are never read ([nil] is never
     returned, popped or cancelled); [Obj.magic 0] is an immediate, so the
     GC never follows it. *)
  let rec nil =
    {
      time = infinity;
      seq = max_int;
      value = Obj.magic 0;
      prev = nil;
      next = nil;
      abs = max_int;
      wheel = Obj.magic 0;
    }
  in
  {
    nil;
    buckets = Array.make min_buckets nil;
    mask = min_buckets - 1;
    inv_width = 1.0;
    live = 0;
    cur_abs = 0;
    last_time = 0.0;
  }

let length t = t.live

let is_empty t = t.live = 0

let time n = n.time

let seq n = n.seq

let value n = n.value

let linked n = n.abs >= 0

(* Ordering on [(time, seq)].  Written with primitive float comparisons
   rather than [Float.compare]: the 3-way compare is a C call on boxed
   floats, and this predicate sits on the hot path of every link.  Times
   are always finite here ([add] rejects NaN/infinities), so [<]/[=]
   agree with the total order. *)
let[@inline] node_le a b =
  a.time < b.time
  || (a.time = b.time && a.seq <= b.seq)

let[@inline] node_lt a b =
  a.time < b.time
  || (a.time = b.time && a.seq < b.seq)

(* Link [n] into its bucket, keeping the list sorted by [(time, seq)].
   Scanning starts at the tail: monotone workloads (same-timestamp bursts,
   periodic re-arms) append in O(1), and the resize policy keeps average
   occupancy near one for everything else. *)
let link t n =
  let abs = int_of_float (n.time *. t.inv_width) in
  n.abs <- abs;
  let s = abs land t.mask in
  let head = t.buckets.(s) in
  if head == t.nil then begin (* pimlint: allow H2 — intrusive list identity *)
    n.prev <- n;
    n.next <- n;
    t.buckets.(s) <- n
  end
  else begin
    let rec back p =
      if node_le p n then begin
        (* insert after [p] *)
        n.prev <- p;
        n.next <- p.next;
        p.next.prev <- n;
        p.next <- n
      end
      else if p == head then begin (* pimlint: allow H2 — intrusive list identity *)
        (* [n] precedes everything: insert before [head], become the head *)
        n.prev <- head.prev;
        n.next <- head;
        head.prev.next <- n;
        head.prev <- n;
        t.buckets.(s) <- n
      end
      else back p.prev
    in
    back head.prev
  end;
  t.live <- t.live + 1

let unlink t n =
  let s = n.abs land t.mask in
  n.abs <- -1;
  t.live <- t.live - 1;
  if n.next == n then t.buckets.(s) <- t.nil (* pimlint: allow H2 — intrusive list identity *)
  else begin
    n.prev.next <- n.next;
    n.next.prev <- n.prev;
    if t.buckets.(s) == n then t.buckets.(s) <- n.next (* pimlint: allow H2 — intrusive list identity *)
  end;
  (* Self-loop so the wheel retains nothing through a dead node. *)
  n.prev <- n;
  n.next <- n

(* Pick a new size and width from the live population and relink every
   node.  Two passes over the old bucket lists, no intermediate storage:
   O(live), triggered geometrically, so the amortized cost per operation
   is constant. *)
let resize t =
  let old = t.buckets in
  let nil = t.nil in
  let count = t.live in
  let tmin = ref infinity and tmax = ref neg_infinity in
  Array.iter
    (fun head ->
      if head != nil then begin (* pimlint: allow H2 — intrusive list identity *)
        let rec walk n =
          if n.time < !tmin then tmin := n.time;
          if n.time > !tmax then tmax := n.time;
          if n.next != head then walk n.next (* pimlint: allow H2 — intrusive list identity *)
        in
        walk head
      end)
    old;
  let pow2_at_least x =
    let rec go p = if p >= x then p else go (p * 2) in
    go min_buckets
  in
  (* Size to 4x the live population: growth then triggers on every
     8x increase rather than every doubling, which matters because a
     resize relinks every live node — with plain doubling a steadily
     growing queue spends half its link work on relinks. *)
  let n_buckets = min max_buckets (pow2_at_least (4 * count)) in
  let width =
    if count > 0 && !tmax > !tmin then
      (* ~3 buckets per average inter-event gap; the whole wheel then
         spans three times the live population's time range. *)
      Float.max 1e-9 (3.0 *. (!tmax -. !tmin) /. float_of_int count)
    else 1.0 /. t.inv_width
  in
  t.buckets <- Array.make n_buckets nil;
  t.mask <- n_buckets - 1;
  t.inv_width <- 1.0 /. width;
  t.live <- 0;
  t.cur_abs <- int_of_float (t.last_time *. t.inv_width);
  Array.iter
    (fun head ->
      if head != nil then begin (* pimlint: allow H2 — intrusive list identity *)
        (* The old array is discarded wholesale, so there is no need to
           keep the old list consistent while walking it: save each
           node's successor before [link] overwrites its pointers. *)
        let rec walk n =
          let nxt = n.next in
          link t n;
          if nxt != head then walk nxt (* pimlint: allow H2 — intrusive list identity *)
        in
        walk head
      end)
    old

(* [add] is [link] with the node construction fused in: initializing
   stores at allocation skip the write barrier, so building the node with
   its final [prev]/[next] (instead of self-loops later overwritten)
   costs 2 barriered stores per append instead of 4 — the barrier is the
   dominant cost of a link.  The out-of-order-within-bucket case (rare:
   buckets average ~1 distinct timestamp) self-loops and takes the
   general sorted walk. *)
let add t ~time ~seq v =
  (* [x -. x = 0.] iff [x] is finite; inline, unlike [Float.is_finite]. *)
  if time -. time <> 0. then invalid_arg "Timer_wheel.add: non-finite time"; (* pimlint: allow H2 — finiteness test *)
  if t.live >= 2 * Array.length t.buckets && Array.length t.buckets < max_buckets then resize t;
  let abs = int_of_float (time *. t.inv_width) in
  let s = abs land t.mask in
  let head = t.buckets.(s) in
  if head == t.nil then begin (* pimlint: allow H2 — intrusive list identity *)
    let rec n = { time; seq; value = v; prev = n; next = n; abs; wheel = t } in
    t.buckets.(s) <- n;
    t.live <- t.live + 1;
    n
  end
  else begin
    let tl = head.prev in
    if
      time > tl.time
      || (time = tl.time && seq >= tl.seq)
    then begin
      (* append after the tail: the common case for monotone workloads *)
      let n = { time; seq; value = v; prev = tl; next = head; abs; wheel = t } in
      tl.next <- n;
      head.prev <- n;
      t.live <- t.live + 1;
      n
    end
    else begin
      let rec n = { time; seq; value = v; prev = n; next = n; abs = -1; wheel = t } in
      link t n;
      n
    end
  end

let cancel n = if n.abs >= 0 then unlink n.wheel n

(* Find the minimum element WITHOUT mutating the wheel.  The cursor is
   only committed by the popping callers once the horizon check passes:
   committing eagerly would advance it past a never-popped future event,
   and an element added later (earlier in time, but behind the advanced
   cursor) would then fire out of order.  Returns [t.nil] when empty. *)
let find_min t =
  let n_buckets = Array.length t.buckets in
  let nil = t.nil in
  let rec scan b remaining =
    if remaining = 0 then begin
      (* A whole revolution holds nothing due: O(buckets) direct search
         for the global minimum head (the next event is more than one
         wheel revolution ahead).  [nil.time = infinity] loses every
         comparison, so empty buckets never win. *)
      let best = ref nil in
      Array.iter (fun h -> if node_lt h !best then best := h) t.buckets;
      !best
    end
    else begin
      let head = t.buckets.(b land t.mask) in
      (* [nil.abs = max_int] keeps empty buckets non-due. *)
      if head.abs <= b then head else scan (b + 1) (remaining - 1)
    end
  in
  scan t.cur_abs n_buckets

let maybe_shrink t =
  (* Lazy threshold (1/32 occupancy): a draining queue should not pay a
     cascade of shrink relinks on the way down; the only cost of an
     oversized wheel is the rare direct-search fallback. *)
  if t.live < Array.length t.buckets / 32 && Array.length t.buckets > min_buckets then resize t

let pop_until t ~limit =
  if t.live = 0 then None
  else begin
    maybe_shrink t;
    let h = find_min t in
    if h.time > limit then None
    else begin
      t.cur_abs <- h.abs;
      unlink t h;
      t.last_time <- h.time;
      Some h
    end
  end

let pop t = pop_until t ~limit:infinity

let set_value n v = n.value <- v

let readd n ~time ~seq =
  if n.abs >= 0 then invalid_arg "Timer_wheel.readd: node is linked";
  if time -. time <> 0. then invalid_arg "Timer_wheel.readd: non-finite time"; (* pimlint: allow H2 — finiteness test *)
  n.time <- time;
  n.seq <- seq;
  let t = n.wheel in
  if t.live >= 2 * Array.length t.buckets && Array.length t.buckets < max_buckets then resize t;
  link t n

let drain_until t ~limit f =
  (* Same loop as repeated [pop_until], minus the [Some] box per element:
     on a hot engine run that is one allocation per event. *)
  let rec go () =
    if t.live > 0 then begin
      maybe_shrink t;
      let h = find_min t in
      if h.time <= limit then begin
        t.cur_abs <- h.abs;
        unlink t h;
        t.last_time <- h.time;
        f h;
        go ()
      end
    end
  in
  go ()
