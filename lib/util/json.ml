type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  (* JSON has no NaN/infinity literals. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write_to buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write_to buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        escape_to buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        write_to buf ~indent ~level:(level + 1) item)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  write_to buf ~indent ~level:0 v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~indent:true v);
      output_char oc '\n')

(* --- Parser --------------------------------------------------------- *)

exception Parse_error of int * string

type parser_state = { src : string; mutable pos : int }

let parse_fail st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> parse_fail st (Printf.sprintf "expected %c, found %c" c d)
  | None -> parse_fail st (Printf.sprintf "expected %c, found end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then parse_fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> parse_fail st "invalid hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let add_utf8 buf cp =
  (* Encode one code point; surrogate pairs are not recombined — each
     half is encoded as-is, which round-trips our own writer (it only
     emits \u for control characters, all below 0x20). *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> parse_fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' -> add_utf8 buf (parse_hex4 st)
        | _ -> parse_fail st "invalid escape"));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_while pred =
    while
      st.pos < String.length st.src
      &&
      match st.src.[st.pos] with
      | c when pred c -> true
      | _ -> false
    do
      advance st
    done
  in
  if peek st = Some '-' then advance st;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with
    | Some ('+' | '-') -> advance st
    | _ -> ());
    consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail st "malformed number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer syntax but overflows OCaml's int: keep it as a float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail st "malformed number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      Arr (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_fail st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then parse_fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* --- Accessors ------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr items -> Some items | _ -> None
