(** Growable vector with O(1) amortized append.

    The simulator's subscriber lists ([Net.set_handler],
    [Net.on_link_change], [Net.on_deliver]) append one callback per
    router at deployment time; list append ([xs @ [x]]) made
    registration quadratic in network size.  Iteration order is
    insertion order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append at the end (amortized O(1)). *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in insertion order. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
(** Elements in insertion order. *)

val clear : 'a t -> unit
