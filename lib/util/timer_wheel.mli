(** Calendar-queue timer wheel: the priority queue under the simulation
    engine.

    A classic binary heap gives O(log n) insert/extract and — crucially —
    no cheap way to delete an arbitrary element: cancellation must either
    tombstone the event (leaking it until its fire time) or pay O(n) to
    find it.  At soft-state protocol scale (every (S,G) entry re-arms
    several timers per refresh period) tombstones dominate the queue.

    This structure is R. Brown's calendar queue (CACM 1988), the software
    ancestor of the kernel timer wheel: a power-of-two array of buckets,
    each [width] virtual seconds wide, addressed by
    [floor(time / width) mod n_buckets].  Each bucket holds an intrusive
    doubly-linked list kept sorted by [(time, seq)], so:

    - [add] is amortized O(1): the wheel resizes itself (and re-derives
      [width] from the live events' spacing) whenever occupancy drifts
      from ~1 event/bucket;
    - [pop] is amortized O(1): advance along the wheel to the next
      non-empty bucket of the current "year", with a direct min search as
      the fallback when a whole year is empty;
    - [cancel] is O(1) worst case: unlink the node from its bucket, no
      tombstones, no deferred sweep.  The wheel drops every reference to
      a cancelled or popped node, so its payload is immediately
      collectable.

    Same-timestamp events pop in ascending [seq] order — callers thread a
    monotonic sequence number through [add], which keeps runs
    deterministic (the engine's FIFO-on-ties contract). *)

type 'a t

type 'a node
(** A scheduled element; also the O(1) cancellation capability. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (scheduled, not yet popped or cancelled) elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> 'a node
(** Schedule a value.  [time] must be finite and no earlier than the last
    popped time; [seq] orders same-timestamp elements. *)

val cancel : 'a node -> unit
(** Unlink the node from its wheel in O(1).  Idempotent; a no-op on a
    node that was already popped or cancelled. *)

val pop : 'a t -> 'a node option
(** Remove and return the earliest element ([(time, seq)] order). *)

val pop_until : 'a t -> limit:float -> 'a node option
(** [pop_until t ~limit] is [pop t] if the earliest element's time is
    [<= limit]; otherwise [None], leaving the wheel untouched (the
    element is not popped, and the internal scan position does not
    advance past it). *)

val drain_until : 'a t -> limit:float -> ('a node -> unit) -> unit
(** [drain_until t ~limit f] pops elements in [(time, seq)] order and
    calls [f] on each, until the earliest remaining element is past
    [limit] (or the wheel is empty).  Each element is unlinked before
    [f] sees it, and [f] may add new elements — ones due within [limit]
    are drained in the same call.  Equivalent to looping {!pop_until}
    without boxing every element in an option. *)

val time : 'a node -> float

val seq : 'a node -> int

val value : 'a node -> 'a

val set_value : 'a node -> 'a -> unit
(** Replace the node's payload in place.  Lets a caller use the node
    itself as a handle (e.g. swapping a callback for a no-op on
    cancellation) without a wrapper allocation per element. *)

val readd : 'a node -> time:float -> seq:int -> unit
(** Re-schedule a popped or cancelled node at a new [(time, seq)],
    reusing its allocation.  Raises [Invalid_argument] if the node is
    still linked.  This is the re-arm path for recurring timers: the
    node's identity is stable across re-arms, so it can serve as a
    long-lived handle. *)

val linked : 'a node -> bool
(** [true] while the node is scheduled (not popped, not cancelled). *)
