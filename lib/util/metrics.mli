(** Labelled metrics registry: counters, gauges, histograms.

    The observability layer's quantitative half.  Instruments are created
    (or looked up — creation is idempotent per name + label set) against a
    registry; protocols label instruments with the router node and group
    they describe, which is how the per-router/per-group breakdowns in the
    exported JSON arise.  Histogram summaries reuse {!Stats.summarize}.

    {!to_json} renders the whole registry sorted by name then labels, so
    exports are byte-identical across runs regardless of registration
    order (the same reproducibility contract as the bench baseline). *)

type t
(** A registry. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Look up or create.  Labels are sorted internally; supplying the same
    set in any order yields the same instrument. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?labels:(string * string) list -> string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample.  Histograms use bounded memory regardless of how
    many samples arrive: count, sum, sum of squares, min and max are
    streamed exactly, while percentiles come from a fixed-capacity
    uniform reservoir (algorithm R, PRNG seeded from the instrument
    key, so results are reproducible). *)

val histogram_count : histogram -> int

val histogram_summary : histogram -> Stats.summary
(** Summary of the samples observed so far.  [n], [mean], [stddev],
    [min] and [max] are exact; [p50]/[p95] are estimated from the
    reservoir (exact while fewer samples than its capacity have been
    observed). *)

val to_json : t -> Json.t
(** [{"schema": "pim-metrics/1", "counters": [...], "gauges": [...],
    "histograms": [...]}], each instrument as an object with [name],
    [labels] and its value(s); deterministically ordered. *)
