(** Labelled metrics registry: counters, gauges, histograms.

    The observability layer's quantitative half.  Instruments are created
    (or looked up — creation is idempotent per name + label set) against a
    registry; protocols label instruments with the router node and group
    they describe, which is how the per-router/per-group breakdowns in the
    exported JSON arise.  Histogram summaries reuse {!Stats.summarize}.

    {!to_json} renders the whole registry sorted by name then labels, so
    exports are byte-identical across runs regardless of registration
    order (the same reproducibility contract as the bench baseline). *)

type t
(** A registry. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Look up or create.  Labels are sorted internally; supplying the same
    set in any order yields the same instrument. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?labels:(string * string) list -> string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample.  Histograms use bounded memory regardless of how
    many samples arrive: count, sum, sum of squares, min and max are
    streamed exactly, while percentiles come from a fixed-capacity
    uniform reservoir (algorithm R, PRNG seeded from the instrument
    key, so results are reproducible). *)

val histogram_count : histogram -> int

val histogram_summary : histogram -> Stats.summary
(** Summary of the samples observed so far.  [n], [mean], [stddev],
    [min] and [max] are exact; [p50]/[p95] are estimated from the
    reservoir (exact while fewer samples than its capacity have been
    observed). *)

(** {1 Windowed instruments}

    Tumbling-window variants for streaming per-window measurements: the
    live accumulator covers the window currently being measured; {!roll}
    closes it into an immutable per-window row and resets the
    accumulator.  The workload harness emits one metric row per window
    from these instead of end-of-run aggregates.  Memory is bounded by
    the number of closed windows plus the open window's samples
    (histogram samples are summarized and discarded at each roll). *)

type window = {
  index : int;  (** 0-based, registry-wide: assigned by {!roll} order *)
  t_start : float;
  t_end : float;
}

type wcounter
type whistogram

val wcounter : t -> ?labels:(string * string) list -> string -> wcounter
(** Look up or create, same idempotence contract as {!counter}. *)

val whistogram : t -> ?labels:(string * string) list -> string -> whistogram

val wincr : ?by:int -> wcounter -> unit
(** Add [by] (default 1) to the open window. *)

val wobserve : whistogram -> float -> unit
(** Record a sample into the open window. *)

val roll : t -> t_start:float -> t_end:float -> window
(** Close the open window on {e every} windowed instrument in the
    registry: each windowed counter appends a [(window, count)] row and
    resets to 0; each windowed histogram appends a
    [(window, Stats.summary)] row ({!Stats.empty_summary} when the
    window saw no samples) and drops its samples.  Returns the closed
    window; indices increment per registry, so rows from different
    instruments align by [index]. *)

val n_windows : t -> int
(** Windows closed so far ([roll] call count). *)

val wcounter_live : wcounter -> int
(** The open (not yet rolled) window's count. *)

val wcounter_rows : wcounter -> (window * int) list
(** Closed rows, oldest first. *)

val sliding_sum : ?last:int -> wcounter -> int
(** Sum of the most recent [last] (default 1) closed rows — the sliding
    view over the tumbling windows. *)

val whistogram_live_count : whistogram -> int

val whistogram_rows : whistogram -> (window * Stats.summary) list
(** Closed rows, oldest first.  Summaries are exact per window (the open
    window keeps raw samples until the roll). *)

val to_json : t -> Json.t
(** [{"schema": "pim-metrics/2", "counters": [...], "gauges": [...],
    "histograms": [...], "wcounters": [...], "whistograms": [...]}],
    each instrument as an object with [name], [labels] and its value(s);
    windowed instruments carry a ["rows"] array with one object per
    closed window ([window], [t_start], [t_end], then [count] or the
    summary fields); deterministically ordered. *)
