(** Array-based binary min-heap.

    Used by the event queue (ordered by time, with a sequence number as a
    tie-break so simultaneous events run in schedule order).  The comparison
    function is supplied at creation time.

    Popped and cleared slots are blanked, so the heap never retains
    references to removed elements — a long simulation does not keep dead
    events alive for the GC.  (Dijkstra uses {!Indexed_heap} instead, which
    additionally offers [decrease_key] without allocation.) *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] returns an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> 'a option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drain the heap, returning all elements in ascending order.  The heap is
    empty afterwards.  Intended for tests. *)
