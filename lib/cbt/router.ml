module Topology = Pim_graph.Topology
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Mdata = Pim_mcast.Mdata
module Rib = Pim_routing.Rib

type config = {
  echo_interval : float;
  child_timeout : float;
  parent_timeout : float;
  rejoin_delay : float;
}

let default_config =
  { echo_interval = 30.; child_timeout = 90.; parent_timeout = 90.; rejoin_delay = 5. }

(* Keepalive timeouts must exceed echo_interval plus a worst-case echo
   round trip (wide-area links in the scenarios have up to 5 s delay). *)
let fast_config =
  { echo_interval = 3.; child_timeout = 25.; parent_timeout = 25.; rejoin_delay = 0.5 }

type stats = {
  mutable joins_sent : int;
  mutable acks_sent : int;
  mutable echoes_sent : int;
  mutable quits_sent : int;
  mutable flushes : int;
  mutable data_forwarded : int;
  mutable data_encapsulated : int;
  mutable data_dropped_off_tree : int;
  mutable data_delivered_local : int;
}

let fresh_stats () =
  {
    joins_sent = 0;
    acks_sent = 0;
    echoes_sent = 0;
    quits_sent = 0;
    flushes = 0;
    data_forwarded = 0;
    data_encapsulated = 0;
    data_dropped_off_tree = 0;
    data_delivered_local = 0;
  }

type body = {
  group : Group.t;
  core : Addr.t;
  origin : Topology.node;
  target : Addr.t;
}

type Packet.payload +=
  | Join_request of body
  | Join_ack of body
  | Echo_request of body
  | Echo_reply of body
  | Quit of body
  | Encap of Packet.t

let () =
  Packet.register_printer (function
    | Join_request b -> Some (Printf.sprintf "cbt-join %s" (Group.to_string b.group))
    | Join_ack b -> Some (Printf.sprintf "cbt-ack %s" (Group.to_string b.group))
    | Echo_request b -> Some (Printf.sprintf "cbt-echo-req %s" (Group.to_string b.group))
    | Echo_reply b -> Some (Printf.sprintf "cbt-echo-rep %s" (Group.to_string b.group))
    | Quit b -> Some (Printf.sprintf "cbt-quit %s" (Group.to_string b.group))
    | Encap inner -> Some (Printf.sprintf "cbt-encap [%s]" (Packet.payload_to_string inner.Packet.payload))
    | _ -> None)

let is_encapsulated_data pkt =
  match pkt.Packet.payload with
  | Encap inner -> Pim_mcast.Mdata.is_data inner
  | _ -> false

type entry = {
  group : Group.t;
  core : Addr.t;
  mutable parent : (Topology.iface * Topology.node) option;
  mutable confirmed : bool;
  children : (Topology.iface, float) Hashtbl.t;
  mutable pending : Topology.iface list;
  mutable join_outstanding : bool;
  mutable local : bool;
  mutable parent_deadline : float;
}

type t = {
  node : Topology.node;
  addr : Addr.t;
  net : Net.t;
  eng : Engine.t;
  rib : Rib.t;
  core_of : Group.t -> Addr.t option;
  cfg : config;
  trace : Trace.t option;
  entries : (Group.t, entry) Hashtbl.t;
  stats : stats;
  local_cbs : (Packet.t -> unit) Pim_util.Vec.t;
  mutable local_seq : int;
  (* Groups with directly-connected members, remembered outside [entries]
     so a restart (which wipes them) can rejoin each tree. *)
  mutable local_joined : Group.t list;
}

let node t = t.node

let stats t = t.stats

let now t = Engine.now t.eng

let tr t tag fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some trc -> Format.kasprintf (fun s -> Trace.log trc ~node:t.node ~tag s) fmt

let ev t event =
  match t.trace with None -> () | Some trc -> Trace.emit trc ~node:t.node event

let is_core t (e : entry) = Addr.equal e.core t.addr

let all_routers = Group.of_addr_exn Addr.all_pim_routers

let ctrl t payload = Packet.multicast ~src:t.addr ~group:all_routers ~ttl:1 ~size:20 payload

let send_join t (e : entry) =
  match e.parent with
  | None -> ()
  | Some (iface, up) ->
    e.join_outstanding <- true;
    t.stats.joins_sent <- t.stats.joins_sent + 1;
    ev t (Event.Join { route = { Event.group = Group.to_string e.group; source = None }; iface });
    let b = { group = e.group; core = e.core; origin = t.node; target = Addr.router up } in
    Net.send t.net t.node ~iface (ctrl t (Join_request b))

let ensure t g ~core =
  match Hashtbl.find_opt t.entries g with
  | Some e -> e
  | None ->
    let parent = if Addr.equal core t.addr then None else t.rib.Rib.next_hop core in
    let e =
      {
        group = g;
        core;
        parent;
        confirmed = Addr.equal core t.addr;
        children = Hashtbl.create 4;
        pending = [];
        join_outstanding = false;
        local = false;
        parent_deadline = now t +. t.cfg.parent_timeout;
      }
    in
    Hashtbl.replace t.entries g e;
    e

let live_children t (e : entry) =
  let n = now t in
  Hashtbl.fold (fun i exp acc -> if exp > n then i :: acc else acc) e.children []
  |> List.sort_uniq Int.compare

let tree_ifaces_of t (e : entry) =
  let base = live_children t e in
  match e.parent with
  | Some (i, _) when e.confirmed && not (is_core t e) -> List.sort_uniq Int.compare (i :: base)
  | _ -> base

let on_tree t g =
  match Hashtbl.find_opt t.entries g with
  | Some e -> e.confirmed || is_core t e
  | None -> false

let tree_ifaces t g =
  match Hashtbl.find_opt t.entries g with Some e -> tree_ifaces_of t e | None -> []

let entry_count t = Hashtbl.length t.entries

let add_child t (e : entry) iface =
  Hashtbl.replace e.children iface (now t +. t.cfg.child_timeout)

let send_ack t (e : entry) iface =
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  let b = { group = e.group; core = e.core; origin = t.node; target = Addr.all_pim_routers } in
  Net.send t.net t.node ~iface (ctrl t (Join_ack b))

let confirm t (e : entry) =
  if not e.confirmed then begin
    e.confirmed <- true;
    e.join_outstanding <- false;
    e.parent_deadline <- now t +. t.cfg.parent_timeout;
    tr t "on-tree" "%s confirmed" (Group.to_string e.group);
    List.iter
      (fun i ->
        add_child t e i;
        send_ack t e i)
      e.pending;
    e.pending <- []
  end

let handle_join_request t ~iface (b : body) =
  if Addr.equal b.target t.addr then begin
    let e = ensure t b.group ~core:b.core in
    if e.confirmed || is_core t e then begin
      add_child t e iface;
      send_ack t e iface
    end
    else begin
      if not (List.mem iface e.pending) then e.pending <- iface :: e.pending;
      if not e.join_outstanding then send_join t e
    end
  end

let handle_join_ack t ~iface (b : body) =
  match Hashtbl.find_opt t.entries b.group with
  | Some e when e.join_outstanding -> (
    match e.parent with
    | Some (pi, _) when pi = iface -> confirm t e
    | _ -> ())
  | _ -> ()

let flush t (e : entry) =
  t.stats.flushes <- t.stats.flushes + 1;
  tr t "flush" "%s: parent silent, flushing" (Group.to_string e.group);
  Hashtbl.remove t.entries e.group;
  if e.local then begin
    let g = e.group and core = e.core in
    ignore
      (Engine.schedule t.eng ~after:t.cfg.rejoin_delay (fun () ->
           (* Re-validate on fire: if the group re-attached meanwhile
              (confirmed or a join already in flight), just restore the
              local-membership bit instead of re-joining. *)
           match Hashtbl.find_opt t.entries g with
           | Some e' when e'.confirmed || e'.join_outstanding -> e'.local <- true
           | _ ->
             let e' = ensure t g ~core in
             e'.local <- true;
             if (not e'.confirmed) && not e'.join_outstanding then send_join t e'))
  end

let handle_echo_request t ~iface (b : body) =
  if Addr.equal b.target t.addr then begin
    match Hashtbl.find_opt t.entries b.group with
    | Some e when e.confirmed || is_core t e ->
      (* Refresh (or re-learn) the child on this interface and answer. *)
      add_child t e iface;
      let reply = { b with origin = t.node; target = Addr.all_pim_routers } in
      Net.send t.net t.node ~iface (ctrl t (Echo_reply reply))
    | _ -> ()
  end

let handle_echo_reply t ~iface (b : body) =
  match Hashtbl.find_opt t.entries b.group with
  | Some e -> (
    match e.parent with
    | Some (pi, up) when pi = iface && b.origin = up ->
      e.parent_deadline <- now t +. t.cfg.parent_timeout
    | _ -> ())
  | None -> ()

let handle_quit t ~iface (b : body) =
  if Addr.equal b.target t.addr then begin
    match Hashtbl.find_opt t.entries b.group with
    | Some e -> Hashtbl.remove e.children iface
    | None -> ()
  end

(* {1 Data} *)

let local_deliver t pkt =
  t.stats.data_delivered_local <- t.stats.data_delivered_local + 1;
  Pim_util.Vec.iter (fun f -> f pkt) t.local_cbs

let forward_on_tree t (e : entry) ~exclude pkt =
  match Packet.decr_ttl pkt with
  | None -> ()
  | Some pkt' ->
    List.iter
      (fun i ->
        if Some i <> exclude then begin
          t.stats.data_forwarded <- t.stats.data_forwarded + 1;
          Net.send t.net t.node ~iface:i pkt'
        end)
      (tree_ifaces_of t e);
    if e.local && exclude <> None then local_deliver t pkt

let send_unicast t pkt =
  match pkt.Packet.dst with
  | Packet.Multicast _ -> ()
  | Packet.Unicast dst -> (
    match t.rib.Rib.next_hop dst with
    | None -> ()
    | Some (iface, next) -> Net.send t.net t.node ~iface ~to_node:next pkt)

let originate t pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g -> (
    match t.core_of g with
    | None -> ()
    | Some core -> (
      match Hashtbl.find_opt t.entries g with
      | Some e when e.confirmed || is_core t e ->
        forward_on_tree t e ~exclude:None pkt;
        if e.local then local_deliver t pkt
      | _ ->
        (* Off-tree sender: tunnel the packet to the core (CBT non-member
           sending). *)
        t.stats.data_encapsulated <- t.stats.data_encapsulated + 1;
        if Addr.equal core t.addr then ()
        else send_unicast t (Packet.unicast ~src:t.addr ~dst:core ~size:(pkt.Packet.size + 28) (Encap pkt))))

let handle_data t ~iface pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt t.entries g with
    | Some e when List.mem iface (tree_ifaces_of t e) ->
      forward_on_tree t e ~exclude:(Some iface) pkt
    | _ -> t.stats.data_dropped_off_tree <- t.stats.data_dropped_off_tree + 1)

let handle_encap t inner =
  match Mdata.group inner with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt t.entries g with
    | Some e when is_core t e || e.confirmed ->
      forward_on_tree t e ~exclude:None inner;
      if e.local then local_deliver t inner
    | _ -> ())

(* {1 Membership} *)

let join_local t g =
  match t.core_of g with
  | None -> tr t "ignore" "%s has no core configured" (Group.to_string g)
  | Some core ->
    if not (List.exists (Group.equal g) t.local_joined) then
      t.local_joined <- g :: t.local_joined;
    let e = ensure t g ~core in
    e.local <- true;
    if (not e.confirmed) && (not (is_core t e)) && not e.join_outstanding then send_join t e

let leave_local t g =
  t.local_joined <- List.filter (fun g' -> not (Group.equal g g')) t.local_joined;
  match Hashtbl.find_opt t.entries g with Some e -> e.local <- false | None -> ()

let on_local_data t f = Pim_util.Vec.push t.local_cbs f

let local_source_addr t = Addr.host ~router:t.node 1

let send_local_data t ~group ?size () =
  let pkt =
    Mdata.make ~src:(local_source_addr t) ~group ~seq:t.local_seq ~sent_at:(now t) ?size ()
  in
  t.local_seq <- t.local_seq + 1;
  originate t pkt

(* Crash-and-reboot: CBT is hard state, so losing [entries] severs the
   tree at this node on both sides.  Upstream: we rejoin immediately for
   groups with directly-connected members.  Downstream: our former
   children keep believing we are their parent until their echoes go
   unanswered for [parent_timeout], then flush and rejoin — the slow-heal
   behaviour that distinguishes explicit-ack hard state from PIM's
   periodic soft-state refresh (paper footnote 4). *)
let restart t =
  tr t "restart" "rebooted: tree state wiped";
  Hashtbl.reset t.entries;
  List.iter (fun g -> join_local t g) t.local_joined

(* {1 Timers} *)

(* Entries in canonical group order, so per-tick protocol actions (echo
   probes, join retransmits, quits) fire in an order independent of
   hash-bucket layout. *)
let sorted_entries t =
  Hashtbl.fold (fun g e acc -> (g, e) :: acc) t.entries []
  |> List.sort (fun (g, _) (g', _) -> Group.compare g g')

let tick t =
  List.iter
    (fun (_, (e : entry)) ->
      if e.confirmed && not (is_core t e) then begin
        match e.parent with
        | Some (iface, up) ->
          t.stats.echoes_sent <- t.stats.echoes_sent + 1;
          let b = { group = e.group; core = e.core; origin = t.node; target = Addr.router up } in
          Net.send t.net t.node ~iface (ctrl t (Echo_request b))
        | None -> ()
      end
      else if e.join_outstanding && not (is_core t e) then
        (* CBT is explicit-ack hard state (paper footnote 4): a lost
           JOIN-REQUEST or JOIN-ACK must be retransmitted, there is no
           periodic refresh to fall back on. *)
        send_join t e)
    (sorted_entries t);
  (* Age out children and flush on silent parents. *)
  let n = now t in
  let doomed = ref [] in
  List.iter
    (fun (g, (e : entry)) ->
      let dead =
        Hashtbl.fold (fun i exp acc -> if exp <= n then i :: acc else acc) e.children []
        |> List.sort Int.compare
      in
      List.iter (Hashtbl.remove e.children) dead;
      if e.confirmed && (not (is_core t e)) && e.parent_deadline < n then doomed := `Flush e :: !doomed
      else if
        e.confirmed && (not (is_core t e)) && (not e.local)
        && Hashtbl.length e.children = 0 && e.pending = []
      then doomed := `Quit (g, e) :: !doomed)
    (sorted_entries t);
  List.iter
    (function
      | `Flush e -> flush t e
      | `Quit (g, (e : entry)) -> (
        match e.parent with
        | Some (iface, up) ->
          t.stats.quits_sent <- t.stats.quits_sent + 1;
          tr t "quit" "%s: leaving tree" (Group.to_string g);
          let b = { group = g; core = e.core; origin = t.node; target = Addr.router up } in
          Net.send t.net t.node ~iface (ctrl t (Quit b));
          Hashtbl.remove t.entries g
        | None -> Hashtbl.remove t.entries g))
    !doomed

let handle_packet t ~iface pkt =
  match pkt.Packet.payload with
  | Join_request b -> handle_join_request t ~iface b
  | Join_ack b -> handle_join_ack t ~iface b
  | Echo_request b -> handle_echo_request t ~iface b
  | Echo_reply b -> handle_echo_reply t ~iface b
  | Quit b -> handle_quit t ~iface b
  | Encap inner -> (
    match pkt.Packet.dst with
    | Packet.Unicast dst when Addr.equal dst t.addr -> handle_encap t inner
    | _ -> send_unicast t pkt)
  | Mdata.Data _ -> (
    match Addr.host_router_index pkt.Packet.src with
    | Some r when r = t.node -> originate t pkt
    | _ -> handle_data t ~iface pkt)
  | _ -> (
    match pkt.Packet.dst with
    | Packet.Unicast dst when not (Addr.equal dst t.addr) -> send_unicast t pkt
    | _ -> ())

let create ?(config = default_config) ?trace ~net ~rib ~core_of node =
  let t =
    {
      node;
      addr = Addr.router node;
      net;
      eng = Net.engine net;
      rib;
      core_of;
      cfg = config;
      trace;
      entries = Hashtbl.create 16;
      stats = fresh_stats ();
      local_cbs = Pim_util.Vec.create ();
      local_seq = 0;
      local_joined = [];
    }
  in
  Net.set_handler net node (fun ~iface pkt -> handle_packet t ~iface pkt);
  let frac = float_of_int (node mod 16) /. 16. in
  ignore
    (Engine.every t.eng
       ~start:(config.echo_interval *. (0.3 +. (0.5 *. frac)))
       ~interval:config.echo_interval
       (fun () -> tick t));
  t

module Deployment = struct
  type router = t

  type nonrec t = { routers : router array }

  let create_static ?config ?trace net ~core_of =
    let static = Pim_routing.Static.create net in
    let n = Topology.n_nodes (Net.topo net) in
    let routers =
      Array.init n (fun u ->
          create ?config ?trace ~net ~rib:(Pim_routing.Static.rib static u) ~core_of u)
    in
    { routers }

  let router t u = t.routers.(u)

  let total_stats t =
    let acc = fresh_stats () in
    Array.iter
      (fun r ->
        acc.joins_sent <- acc.joins_sent + r.stats.joins_sent;
        acc.acks_sent <- acc.acks_sent + r.stats.acks_sent;
        acc.echoes_sent <- acc.echoes_sent + r.stats.echoes_sent;
        acc.quits_sent <- acc.quits_sent + r.stats.quits_sent;
        acc.flushes <- acc.flushes + r.stats.flushes;
        acc.data_forwarded <- acc.data_forwarded + r.stats.data_forwarded;
        acc.data_encapsulated <- acc.data_encapsulated + r.stats.data_encapsulated;
        acc.data_dropped_off_tree <- acc.data_dropped_off_tree + r.stats.data_dropped_off_tree;
        acc.data_delivered_local <- acc.data_delivered_local + r.stats.data_delivered_local)
      t.routers;
    acc

  let total_entries t = Array.fold_left (fun acc r -> acc + entry_count r) 0 t.routers
end
