(** Core Based Trees (paper reference [10]) — the shared-tree baseline.

    One bidirectional tree per group, rooted at a per-group core router.
    Receivers' first-hop routers send JOIN-REQUEST hop-by-hop toward the
    core; the first on-tree router (or the core) answers with a JOIN-ACK
    that travels back down, committing child state at every hop — CBT's
    explicit-acknowledgement design, which footnote 4 of the PIM paper
    contrasts with PIM's soft-state refresh.  Liveness is maintained with
    child-to-parent ECHO keepalives; a parent that goes silent causes the
    child to flush and re-join.

    Data from an on-tree router fans out over every tree interface except
    the arriving one.  An off-tree sender's first-hop router encapsulates
    data to the core (CBT non-member sending), which injects it into the
    tree.

    The delay and traffic-concentration penalties of this single shared
    tree are what Figure 2 of the paper quantifies. *)

type config = {
  echo_interval : float;  (** child-to-parent keepalive period *)
  child_timeout : float;  (** parent drops a silent child after this long *)
  parent_timeout : float;  (** child flushes after this long without echoes *)
  rejoin_delay : float;  (** pause before re-joining after a flush *)
}

val default_config : config

val fast_config : config

type stats = {
  mutable joins_sent : int;
  mutable acks_sent : int;
  mutable echoes_sent : int;
  mutable quits_sent : int;
  mutable flushes : int;
  mutable data_forwarded : int;
  mutable data_encapsulated : int;
  mutable data_dropped_off_tree : int;
  mutable data_delivered_local : int;
}

type t

val create :
  ?config:config ->
  ?trace:Pim_sim.Trace.t ->
  net:Pim_sim.Net.t ->
  rib:Pim_routing.Rib.t ->
  core_of:(Pim_net.Group.t -> Pim_net.Addr.t option) ->
  Pim_graph.Topology.node ->
  t

val node : t -> Pim_graph.Topology.node

val stats : t -> stats

val join_local : t -> Pim_net.Group.t -> unit
(** Local member: triggers the JOIN-REQUEST / JOIN-ACK exchange toward the
    core (no-op at the core itself, which is always on-tree). *)

val leave_local : t -> Pim_net.Group.t -> unit

val on_tree : t -> Pim_net.Group.t -> bool
(** Confirmed on the group's tree (the core is always on-tree once it has
    seen the group). *)

val tree_ifaces : t -> Pim_net.Group.t -> Pim_graph.Topology.iface list
(** Parent and confirmed child interfaces. *)

val entry_count : t -> int
(** Per-group tree state entries held by this router. *)

val on_local_data : t -> (Pim_net.Packet.t -> unit) -> unit

val send_local_data : t -> group:Pim_net.Group.t -> ?size:int -> unit -> unit

val local_source_addr : t -> Pim_net.Addr.t

val is_encapsulated_data : Pim_net.Packet.t -> bool
(** True for the core-bound tunnel frames of off-tree senders when they
    carry multicast data (traffic classifiers must count them as data). *)

val restart : t -> unit
(** Crash-and-reboot: wipe all tree state, then rejoin the tree of every
    group with directly-connected members.  Former children only discover
    the loss when their echoes go unanswered for [parent_timeout] and
    flush — CBT's hard state has no periodic refresh to heal them sooner
    (paper footnote 4). *)

module Deployment : sig
  type router := t

  type t

  val create_static :
    ?config:config ->
    ?trace:Pim_sim.Trace.t ->
    Pim_sim.Net.t ->
    core_of:(Pim_net.Group.t -> Pim_net.Addr.t option) ->
    t

  val router : t -> Pim_graph.Topology.node -> router

  val total_stats : t -> stats

  val total_entries : t -> int
end
