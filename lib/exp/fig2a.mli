(** Figure 2(a): ratio of the maximum intra-group delay on an optimally
    placed center-based tree to the shortest-path-tree maximum delay.

    Paper setup: for each network node degree from 3 to 8, 500 random
    50-node graphs, each with one 10-member group chosen randomly (members
    are also the senders); the core is placed optimally.  The reported
    curve lies between 1.0 and about 1.4, falling as the degree rises. *)

type row = {
  degree : float;
  mean_ratio : float;
  stddev : float;
  min_ratio : float;
  max_ratio : float;
  trials : int;
}

val run :
  ?nodes:int ->
  ?members:int ->
  ?trials:int ->
  ?degrees:float list ->
  ?domains:int ->
  seed:int ->
  unit ->
  row list
(** Defaults: 50 nodes, 10 members, 500 trials per degree, degrees 3..8,
    1 domain.  [domains > 1] fans the trials of each degree across that
    many OCaml domains; every trial draws from its own PRNG stream
    (split in trial order before the fan-out) and results are aggregated
    in trial order, so the rows are identical for any [domains] value —
    parallelism changes wall-clock time only. *)

val pp_rows : Format.formatter -> row list -> unit
(** Print the series the way the paper's figure plots it. *)
