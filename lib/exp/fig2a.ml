module Prng = Pim_util.Prng
module Spt = Pim_graph.Spt
module Center = Pim_graph.Center
module Random_graph = Pim_graph.Random_graph

type row = {
  degree : float;
  mean_ratio : float;
  stddev : float;
  min_ratio : float;
  max_ratio : float;
  trials : int;
}

(* [scratch] and [apsp] are working storage reused across all trials of a
   degree: one Dijkstra scratch and one n x n distance matrix, instead of
   fresh arrays for every one of the 500 x 6 graphs. *)
let trial prng ~scratch ~apsp ~nodes ~members ~degree =
  let topo = Random_graph.generate ~prng ~nodes ~degree () in
  let group = Random_graph.pick_members ~prng ~nodes ~count:members in
  Spt.all_pairs_into scratch topo apsp;
  (* Members are both senders and receivers, as in the paper's setup. *)
  let spt = Center.spt_max_delay apsp ~senders:group ~receivers:group in
  let _core, cbt = Center.optimal apsp ~senders:group ~receivers:group in
  if spt = 0 then None else Some (float_of_int cbt /. float_of_int spt)

(* The 500x6 trial sweep is embarrassingly parallel.  Determinism is
   preserved under any distribution of trials to domains by fixing the
   randomness BEFORE fanning out: every trial gets its own PRNG stream,
   split from the degree's stream in trial order, and every result lands
   in its trial's slot of a results array.  Aggregation then reads the
   slots in trial order, so the rows are byte-for-byte identical whether
   [domains] is 1 or 32.  Each domain allocates its own Dijkstra scratch
   and distance matrix; trial slots are disjoint, so the only sharing is
   read-only. *)
let run ?(nodes = 50) ?(members = 10) ?(trials = 500) ?(degrees = [ 3.; 4.; 5.; 6.; 7.; 8. ])
    ?(domains = 1) ~seed () =
  if domains < 1 then invalid_arg "Fig2a.run: domains must be >= 1";
  let prng = Prng.create seed in
  List.map
    (fun degree ->
      let dstream = Prng.split prng in
      (* Explicit loop: [Array.init]'s evaluation order is unspecified,
         and the split order IS the randomness assignment. *)
      let trial_prngs = Array.make trials dstream in
      for i = 0 to trials - 1 do
        trial_prngs.(i) <- Prng.split dstream
      done;
      let results = Array.make trials None in
      let run_range lo hi =
        let scratch = Spt.make_scratch ~n:nodes in
        let apsp = Array.init nodes (fun _ -> Array.make nodes max_int) in
        for i = lo to hi - 1 do
          results.(i) <- trial trial_prngs.(i) ~scratch ~apsp ~nodes ~members ~degree
        done
      in
      let nd = Int.min domains (Int.max 1 trials) in
      if nd <= 1 then run_range 0 trials
      else
        List.init nd (fun k ->
            let lo = k * trials / nd and hi = (k + 1) * trials / nd in
            Domain.spawn (fun () -> run_range lo hi))
        |> List.iter Domain.join;
      let ratios = Array.to_list results |> List.filter_map Fun.id in
      let s = Pim_util.Stats.summarize ratios in
      {
        degree;
        mean_ratio = s.Pim_util.Stats.mean;
        stddev = s.Pim_util.Stats.stddev;
        min_ratio = s.Pim_util.Stats.min;
        max_ratio = s.Pim_util.Stats.max;
        trials = List.length ratios;
      })
    degrees

let pp_rows ppf rows =
  Format.fprintf ppf "# Figure 2(a): max delay, optimal center-based tree / shortest-path trees@.";
  Format.fprintf ppf "# degree  mean_ratio  stddev  min  max  trials@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%6.1f  %10.4f  %6.4f  %5.3f  %5.3f  %d@." r.degree r.mean_ratio
        r.stddev r.min_ratio r.max_ratio r.trials)
    rows
