module Topology = Pim_graph.Topology

(* One search action: a named, self-contained step sequence (faults heal
   themselves; membership changes stand alone).  The DSL is the action
   alphabet — a counterexample is just a scenario program, printable and
   replayable like any hand-written one. *)
type action = {
  label : string;
  steps : Dsl.step list;
}

type found = {
  program : Dsl.program;  (** the full offending program *)
  shrunk : Dsl.program;  (** after delta-debugging the perturbations *)
  outcome : Dsl.outcome;  (** of the shrunk program *)
  depth : int;
}

type report = {
  protocol : string;
  runs : int;
  unique_states : int;
  pruned : int;  (** candidates not expanded: digest already seen *)
  found : found option;
}

let node n = Dsl.Node n

(* A node's access link (its lowest-numbered interface) with a concrete
   endpoint pair for fail-link/heal-link. *)
let access_link topo u =
  let ifaces = Topology.ifaces topo u in
  if Array.length ifaces = 0 then None
  else begin
    let _, lid = Array.fold_left (fun (i, l) (i', l') -> if l' < l then (i', l') else (i, l)) ifaces.(0) ifaces in
    match Topology.others_on_link topo lid u with
    | v :: _ -> Some (u, v)
    | [] -> None
  end

(* The perturbation alphabet for a base scenario: composite faults
   (outage + heal) aimed at the roles that matter — the source's
   first-hop link, each probed member's last-hop link, the primary
   RP/core — plus single membership changes and one message-level drop.
   [outage] keeps faults short so depth-3 sequences stay well under the
   settle budget. *)
let alphabet ~(ctx : Dsl.context) ?(outage = 4.) () =
  let members = List.sort_uniq Int.compare ctx.Dsl.decl_members in
  let targets = List.filteri (fun i _ -> i < 3) members in
  let faults = ref [] in
  let add_fault label steps = faults := { label; steps } :: !faults in
  let link_fault tag (a, b) =
    add_fault
      (Printf.sprintf "%s %d-%d" tag a b)
      [ Dsl.Fail_link (node a, node b); Dsl.Advance outage; Dsl.Heal_link (node a, node b) ]
  in
  Option.iter
    (fun s -> Option.iter (link_fault "fhr-link") (access_link ctx.Dsl.topo s))
    ctx.Dsl.source0;
  List.iter (fun m -> Option.iter (link_fault "lhr-link") (access_link ctx.Dsl.topo m)) targets;
  (match ctx.Dsl.rp_nodes with
  | rp :: _ when (not (List.mem rp members)) && not (Option.equal Int.equal (Some rp) ctx.Dsl.source0)
    ->
    add_fault
      (Printf.sprintf "rp-crash %d" rp)
      [ Dsl.Fail_node (node rp); Dsl.Advance outage; Dsl.Restart (node rp) ]
  | _ -> ());
  (match targets with
  | m :: _ ->
    add_fault
      (Printf.sprintf "isolate %d" m)
      [ Dsl.Partition [ node m ]; Dsl.Advance outage; Dsl.Heal ]
  | [] -> ());
  (* No message-level Drop_next here: a one-shot drop that survives the
     settle wait eats a probe datagram, and unreliable-datagram loss is
     not a protocol bug.  Hand-written scenarios aim those faults at
     control traffic explicitly. *)
  let memberships = ref [] in
  let add_membership label steps = memberships := { label; steps } :: !memberships in
  List.iter
    (fun m -> add_membership (Printf.sprintf "leave %d" m) [ Dsl.Leave [ node m ] ])
    targets;
  (* One fresh receiver: the first node holding no declared role. *)
  (let roles = ctx.Dsl.rp_nodes @ members @ Option.to_list ctx.Dsl.source0 in
   match List.find_opt (fun u -> not (List.mem u roles)) (List.init ctx.Dsl.nodes Fun.id) with
   | Some x -> add_membership (Printf.sprintf "join %d" x) [ Dsl.Join [ node x ] ]
   | None -> ());
  List.rev !faults @ List.rev !memberships

(* Candidate program: base, then the perturbation sequence, then a
   settle wait (only when something was perturbed — the unperturbed
   candidate asserts the base exactly as written, preserving any
   deliberate convergence-race timing the base encodes), an unasserted
   warm burst, a checkpoint (digest + strict oracle epoch), a probe
   window and the invariant assertions. *)
let assemble ~(base : Dsl.program) ~(ctx : Dsl.context) ~protocol ~probes ~interval
    perturbations =
  (* Node count upper-bounds the tree depth CBT's hop-by-hop teardown
     may have to walk; the other protocols ignore it. *)
  let settle =
    Stack.settle_hint ~rp_election:base.Dsl.rp_election ~hops:ctx.Dsl.nodes protocol
  in
  let probe_bound = 10. in
  (* The warm burst re-drives the data path before anything is asserted:
     after the settle — or a base that ends quiet — packets into an
     idle sparse-mode tree hit staggered soft-state decay (some routers
     still hold (S,G) state whose downstream branches expired), and the
     stream only fully heals once the stale entries age out and the
     refresh cycle rebuilds them — the protocol's own reconvergence
     bound, so the warm window spans one settle_hint of traffic (tree
     depth doesn't govern data-path re-drive, so the default hop bound
     is fine).  Losses in the warm window are soft-state decay, not a
     protocol bug; the asserted window continues the stream seamlessly,
     so a real forwarding defect still has to show up. *)
  let warm =
    int_of_float
      (Float.ceil (Stack.settle_hint ~rp_election:base.Dsl.rp_election protocol /. interval))
  in
  let tail =
    (if perturbations = [] then [] else [ Dsl.Advance settle ])
    @ [
      Dsl.Send { from = Dsl.Source; count = warm; interval };
      Dsl.Advance (float_of_int warm *. interval);
      Dsl.Checkpoint;
      Dsl.Send { from = Dsl.Source; count = probes; interval };
      Dsl.Advance ((float_of_int probes *. interval) +. probe_bound);
      Dsl.Assert_delivery;
      Dsl.Assert_no_loops;
    ]
  in
  {
    base with
    Dsl.name =
      (if perturbations = [] then base.Dsl.name ^ "-probe"
       else
         Printf.sprintf "%s+%s" base.Dsl.name
           (String.concat "+"
              (List.map
                 (fun a ->
                   String.map (function ' ' -> '_' | c -> c) a.label)
                 perturbations)));
    Dsl.steps = base.Dsl.steps @ List.concat_map (fun a -> a.steps) perturbations @ tail;
  }

(* Greedy delta-debugging over the perturbation list (the probe tail is
   fixed), then over the probe count — same discipline as
   Scenario.shrink. *)
let shrink ~base ~ctx ~protocol ~interval ~switchover_fallback perturbations probes =
  let fails ps pr =
    not
      (Dsl.run ~protocol ~switchover_fallback
         (assemble ~base ~ctx ~protocol ~probes:pr ~interval ps))
        .Dsl.ok
  in
  let current = ref perturbations in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = List.length !current in
    let i = ref 0 in
    while !i < n && not !progress do
      let candidate = List.filteri (fun j _ -> j <> !i) !current in
      if List.length candidate < n && fails candidate probes then begin
        current := candidate;
        progress := true
      end;
      incr i
    done
  done;
  let best_probes = ref probes in
  let continue = ref true in
  while !continue && !best_probes > 1 do
    if fails !current (!best_probes - 1) then decr best_probes else continue := false
  done;
  (!current, !best_probes)

let run ~(base : Dsl.program) ~protocol ?(depth = 3) ?(budget = 500) ?(probes = 6)
    ?(interval = 0.5) ?switchover_fallback ?(log = fun _ -> ()) () =
  let switchover_fallback =
    match (switchover_fallback, base.Dsl.switchover_fallback) with
    | Some f, _ | None, Some f -> f
    | None, None -> true
  in
  let ctx = Dsl.context base in
  if ctx.Dsl.source0 = None then invalid_arg "Explore.run: base scenario declares no source";
  let actions = alphabet ~ctx () in
  let candidate ps = assemble ~base ~ctx ~protocol ~probes ~interval ps in
  let seen = Hashtbl.create 64 in
  let runs = ref 0 in
  let pruned = ref 0 in
  let found = ref None in
  (* The queue stores perturbation sequences newest-first; materialize
     with one reverse per candidate instead of appending per child. *)
  let queue = Queue.create () in
  Queue.push (0, []) queue;
  while (not (Queue.is_empty queue)) && !found = None && !runs < budget do
    let d, rev_ps = Queue.pop queue in
    let ps = List.rev rev_ps in
    (* Embed the resolved fallback so an emitted [.scn] reproduces
       standalone, without the CLI flag that found it. *)
    let prog =
      {
        (candidate ps) with
        Dsl.protocol = Some protocol;
        Dsl.switchover_fallback = Some switchover_fallback;
      }
    in
    incr runs;
    let outcome = Dsl.run ~protocol ~switchover_fallback prog in
    if not outcome.Dsl.ok then begin
      log
        (Printf.sprintf "violation at depth %d after %d runs: %s" d !runs
           (match outcome.Dsl.violations with
           | v :: _ -> v.Pim_sim.Oracle.invariant
           | [] -> "?"));
      let kept, best_probes =
        shrink ~base ~ctx ~protocol ~interval ~switchover_fallback ps probes
      in
      let shrunk =
        {
          (assemble ~base ~ctx ~protocol ~probes:best_probes ~interval kept) with
          Dsl.name = base.Dsl.name ^ "-min";
          Dsl.protocol = Some protocol;
          Dsl.switchover_fallback = Some switchover_fallback;
        }
      in
      let outcome_min = Dsl.run ~protocol ~switchover_fallback shrunk in
      found := Some { program = prog; shrunk; outcome = outcome_min; depth = d }
    end
    else begin
      let digest = match List.rev outcome.Dsl.digests with dg :: _ -> Some dg | [] -> None in
      let fresh =
        match digest with
        | Some dg ->
          if Hashtbl.mem seen dg then begin
            incr pruned;
            false
          end
          else begin
            Hashtbl.replace seen dg ();
            true
          end
        | None -> true
      in
      if fresh && d < depth then
        List.iter (fun a -> Queue.push (d + 1, a :: rev_ps) queue) actions
    end
  done;
  {
    protocol = Stack.to_string protocol;
    runs = !runs;
    unique_states = Hashtbl.length seen;
    pruned = !pruned;
    found = !found;
  }

let pp_report ppf r =
  Format.fprintf ppf "%s: %d runs, %d unique states, %d pruned by digest@." r.protocol r.runs
    r.unique_states r.pruned;
  match r.found with
  | None -> Format.fprintf ppf "no violation found@."
  | Some f ->
    Format.fprintf ppf "violation at depth %d (program %s):@." f.depth f.program.Dsl.name;
    Format.fprintf ppf "shrunk to %s:@." f.shrunk.Dsl.name;
    Dsl.pp_outcome ppf f.outcome
