(** Bounded forward search over the scenario-DSL action alphabet.

    Starting from a base scenario (topology, roles, initial joins), the
    explorer enumerates perturbation sequences — composite self-healing
    faults (fail/heal the first-hop link, last-hop links, RP crash and
    restart, single-member partition) and single membership changes — up
    to a depth bound.  Each candidate program is
    the base followed by the sequence, a settle wait, an unasserted
    warm burst (the first packets into an idle sparse-mode tree ride
    the register path while expired branches rebuild — losing one is
    soft-state decay, not a bug), a state {!Stack.digest} checkpoint, a
    probe window continuing the stream, and the delivery / loop-freedom
    assertions.  States whose checkpoint digest was already
    seen are not expanded (two interleavings that converge to the same
    forwarding state explore identical futures), and the total number of
    runs is capped by a budget.

    On the first violating candidate the search stops, greedily
    delta-debugs the perturbation sequence (drop actions while the
    violation persists, then lower the probe count), and reports both
    the offending and the shrunk program — ready to be written out as
    [.scn] text via {!Dsl.to_string} and replayed under capture. *)

type action = {
  label : string;
  steps : Dsl.step list;
}

type found = {
  program : Dsl.program;  (** the full offending program *)
  shrunk : Dsl.program;  (** after delta-debugging the perturbations *)
  outcome : Dsl.outcome;  (** of the shrunk program *)
  depth : int;  (** perturbation actions in the offending sequence *)
}

type report = {
  protocol : string;
  runs : int;  (** candidate programs executed *)
  unique_states : int;  (** distinct checkpoint digests seen *)
  pruned : int;  (** candidates not expanded: digest already seen *)
  found : found option;
}

val alphabet : ctx:Dsl.context -> ?outage:float -> unit -> action list
(** The perturbation actions derived from a base scenario's roles.
    Deterministic and in a fixed order (faults, then membership). *)

val run :
  base:Dsl.program ->
  protocol:Stack.protocol ->
  ?depth:int ->
  ?budget:int ->
  ?probes:int ->
  ?interval:float ->
  ?switchover_fallback:bool ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Breadth-first search from [base] for [protocol].  [depth] bounds the
    perturbation-sequence length (default 3), [budget] the total
    candidate runs (default 500), [probes] the probe-window size
    (default 6).  [switchover_fallback] defaults to the base program's
    directive, else on.  [log] receives one-line progress notes.

    @raise Invalid_argument if [base] declares no source. *)

val pp_report : Format.formatter -> report -> unit
