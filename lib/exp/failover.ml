module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Prng = Pim_util.Prng

type row = {
  rp_timeout : float;
  gap : float;
  delivered_before : int;
  delivered_after : int;
  failovers : int;
}

let group = Group.of_index 9

(* 3x3 grid: source behind 0, receiver behind 8, primary RP in the
   center (4), alternate RP at 2.  Crashing node 4 forces the receiver to
   rendezvous through the alternate. *)
let source = 0

let receiver = 8

let rp_primary = 4

let rp_alternate = 2

let crash_at = 30.

let stop_at = 75.

let one_timeout ~prng rp_timeout =
  let topo = Pim_graph.Classic.grid 3 3 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let config =
    {
      Pim_core.Config.fast with
      Pim_core.Config.rp_reach_period = 1.5;
      rp_timeout;
      sweep_interval = 0.5;
      (* Receivers stay on the RP tree: delivery then depends on the RP,
         which is what this experiment stresses. *)
      spt_policy = Pim_core.Config.Never;
    }
  in
  let rp_set =
    Pim_core.Rp_set.single group (Addr.router rp_primary)
    |> fun s -> Pim_core.Rp_set.add s group [ Addr.router rp_primary; Addr.router rp_alternate ]
  in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  let r = Pim_core.Deployment.router dep receiver in
  Pim_core.Router.join_local r group;
  let arrivals = ref [] in
  Pim_core.Router.on_local_data r (fun _ -> arrivals := Engine.now eng :: !arrivals);
  let s = Pim_core.Deployment.router dep source in
  (* Seeded per-packet send jitter: the stream phase relative to the crash
     and the timers varies with the seed, so E2 explores different
     interleavings instead of replaying one. *)
  let rec send_loop t0 =
    if t0 < stop_at then
      ignore
        (Engine.schedule_at eng
           (t0 +. Prng.float prng 0.25)
           (fun () ->
             Pim_core.Router.send_local_data s ~group ();
             send_loop (t0 +. 0.5)))
  in
  send_loop 10.;
  ignore (Engine.schedule_at eng crash_at (fun () -> Net.set_node_up net rp_primary false));
  Engine.run ~until:(stop_at +. 10.) eng;
  let times = List.sort Float.compare !arrivals in
  (* Largest inter-arrival gap once delivery is established. *)
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (Float.max acc (b -. a)) rest
    | _ -> acc
  in
  let established = List.filter (fun t -> t > 15.) times in
  let gap = max_gap 0. established in
  {
    rp_timeout;
    gap;
    delivered_before = List.length (List.filter (fun t -> t <= crash_at) times);
    delivered_after = List.length (List.filter (fun t -> t > crash_at) times);
    failovers = (Pim_core.Deployment.total_stats dep).Pim_core.Router.rp_failovers;
  }

let run ?(timeouts = [ 5.; 10.; 20. ]) ~seed () =
  (* One independent stream per row: adding draws to one timeout's run
     cannot perturb another's. *)
  let prng = Prng.create seed in
  List.map (fun tmo -> one_timeout ~prng:(Prng.split prng) tmo) timeouts

(* {1 Per-strategy election comparison}

   Same grid, crash and stream as the timeout sweep, but the RP mapping
   now comes from a placement strategy — installed statically, or (for
   "bsr") advertised through a live bootstrap election with no static
   configuration at all.  The crash always hits the strategy's primary
   RP. *)

type strategy_row = {
  strategy : string;
  gap : float;
  budget : float;
  delivered_before : int;
  delivered_after : int;
  failovers : int;
  elections : int;
  mapping_changes : int;
  control : int;
  orphaned_entries : int;
}

let all_strategies = [ "static"; "random"; "center"; "locality"; "vns"; "bsr" ]

let strategy_rp_timeout = 5.

let one_strategy ~prng ~seed strategy =
  let topo = Pim_graph.Classic.grid 3 3 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let config =
    {
      Pim_core.Config.fast with
      Pim_core.Config.rp_reach_period = 1.5;
      rp_timeout = strategy_rp_timeout;
      sweep_interval = 0.5;
      spt_policy = Pim_core.Config.Never;
    }
  in
  let static = Pim_routing.Static.create net in
  let endpoints = [ source; receiver ] in
  let placement =
    match strategy with
    | "static" -> [ (group, [ Addr.router rp_primary; Addr.router rp_alternate ]) ]
    | "bsr" ->
      Pim_core.Placement.compute ~topo ~groups:[ (group, endpoints) ] ~forbidden:endpoints
        ~seed (Pim_core.Placement.Centered 2)
    | s -> (
      match Pim_core.Placement.named s with
      | Some spec ->
        Pim_core.Placement.compute ~topo ~groups:[ (group, endpoints) ] ~forbidden:endpoints
          ~seed spec
      | None -> invalid_arg (Printf.sprintf "Failover.run_strategies: unknown strategy %S" s))
  in
  let rp_nodes =
    List.concat_map (fun (_, rps) -> List.filter_map Addr.router_index rps) placement
  in
  let bsr, rp_set, budget =
    if String.equal strategy "bsr" then begin
      let cbsrs =
        List.init (Pim_graph.Topology.n_nodes topo) Fun.id
        |> List.filter (fun u -> not (List.mem u endpoints) && not (List.mem u rp_nodes))
        |> List.filteri (fun i _ -> i < 1)
        |> List.map (fun u -> (u, 1))
      in
      let roles =
        Pim_core.Placement.roles placement ~n_nodes:(Pim_graph.Topology.n_nodes topo) ~cbsrs
      in
      let b =
        Pim_core.Bsr.deploy ~config:Pim_core.Bsr.fast ~net
          ~ribs:(Pim_routing.Static.rib static) ~roles ()
      in
      ( Some b,
        Pim_core.Rp_set.empty,
        strategy_rp_timeout +. Pim_core.Bsr.failover_budget Pim_core.Bsr.fast )
    end
    else (None, Pim_core.Rp_set.of_list placement, strategy_rp_timeout)
  in
  let dep =
    Pim_core.Deployment.create ~config ?bsr ~net ~ribs:(Pim_routing.Static.rib static)
      ~rp_set ()
  in
  let r = Pim_core.Deployment.router dep receiver in
  Pim_core.Router.join_local r group;
  let arrivals = ref [] in
  Pim_core.Router.on_local_data r (fun _ -> arrivals := Engine.now eng :: !arrivals);
  let s = Pim_core.Deployment.router dep source in
  let rec send_loop t0 =
    if t0 < stop_at then
      ignore
        (Engine.schedule_at eng
           (t0 +. Prng.float prng 0.25)
           (fun () ->
             Pim_core.Router.send_local_data s ~group ();
             send_loop (t0 +. 0.5)))
  in
  send_loop 10.;
  let crash_target =
    match rp_nodes with rp0 :: _ -> rp0 | [] -> rp_primary
  in
  ignore (Engine.schedule_at eng crash_at (fun () -> Net.set_node_up net crash_target false));
  Engine.run ~until:(stop_at +. 10.) eng;
  let times = List.sort Float.compare !arrivals in
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (Float.max acc (b -. a)) rest
    | _ -> acc
  in
  let gap = max_gap 0. (List.filter (fun t -> t > 15.) times) in
  (* "(*,G)" entries still pointing at the dead RP are orphans the
     failover/soft-state machinery failed to re-home or expire. *)
  let crashed = Addr.router crash_target in
  let orphaned_entries = ref 0 in
  for u = 0 to Pim_graph.Topology.n_nodes topo - 1 do
    if u <> crash_target then
      List.iter
        (fun (e : Pim_mcast.Fwd.entry) ->
          if Pim_mcast.Fwd.is_star e && e.Pim_mcast.Fwd.rp = Some crashed then
            incr orphaned_entries)
        (Pim_mcast.Fwd.entries (Pim_core.Router.fib (Pim_core.Deployment.router dep u)))
  done;
  let elections, mapping_changes =
    match bsr with
    | Some b ->
      let st = Pim_core.Bsr.stats b in
      (st.Pim_core.Bsr.elections_won, st.Pim_core.Bsr.mapping_changes)
    | None -> (0, 0)
  in
  {
    strategy;
    gap;
    budget;
    delivered_before = List.length (List.filter (fun t -> t <= crash_at) times);
    delivered_after = List.length (List.filter (fun t -> t > crash_at) times);
    failovers = (Pim_core.Deployment.total_stats dep).Pim_core.Router.rp_failovers;
    elections;
    mapping_changes;
    control = Metrics.control_traversals metrics;
    orphaned_entries = !orphaned_entries;
  }

let run_strategies ?(strategies = all_strategies) ~seed () =
  let prng = Prng.create seed in
  (* One split stream per strategy, keyed by the canonical list order, so
     selecting a subset never perturbs another strategy's draw. *)
  let streams =
    List.map (fun s -> (s, Prng.split prng)) all_strategies
  in
  List.filter_map
    (fun s ->
      match List.assoc_opt s streams with
      | Some stream -> Some (one_strategy ~prng:stream ~seed s)
      | None ->
        invalid_arg (Printf.sprintf "Failover.run_strategies: unknown strategy %S" s))
    strategies

let pp_strategy_rows ppf rows =
  Format.fprintf ppf
    "# E2 (strategies): primary RP crash at t=30 under each placement strategy@.";
  Format.fprintf ppf "# %-9s %8s %8s %6s %5s %9s %9s %8s %8s %8s@." "strategy" "gap"
    "budget" "before" "after" "failovers" "elections" "mapchg" "control" "orphans";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-9s %8.2f %8.2f %6d %5d %9d %9d %8d %8d %8d@." r.strategy r.gap
        r.budget r.delivered_before r.delivered_after r.failovers r.elections
        r.mapping_changes r.control r.orphaned_entries)
    rows

let pp_rows ppf rows =
  Format.fprintf ppf "# E2: RP failover (primary RP crashes at t=30; 2 pkt/s until t=75)@.";
  Format.fprintf ppf "# rp_timeout  delivery_gap  before  after  failovers@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%11.1f  %12.2f  %6d  %5d  %9d@." r.rp_timeout r.gap
        r.delivered_before r.delivered_after r.failovers)
    rows
