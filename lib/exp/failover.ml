module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Group = Pim_net.Group
module Addr = Pim_net.Addr

type row = {
  rp_timeout : float;
  gap : float;
  delivered_before : int;
  delivered_after : int;
  failovers : int;
}

let group = Group.of_index 9

(* 3x3 grid: source behind 0, receiver behind 8, primary RP in the
   center (4), alternate RP at 2.  Crashing node 4 forces the receiver to
   rendezvous through the alternate. *)
let source = 0

let receiver = 8

let rp_primary = 4

let rp_alternate = 2

let crash_at = 30.

let stop_at = 75.

let one_timeout ~seed:_ rp_timeout =
  let topo = Pim_graph.Classic.grid 3 3 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let config =
    {
      Pim_core.Config.fast with
      Pim_core.Config.rp_reach_period = 1.5;
      rp_timeout;
      sweep_interval = 0.5;
      (* Receivers stay on the RP tree: delivery then depends on the RP,
         which is what this experiment stresses. *)
      spt_policy = Pim_core.Config.Never;
    }
  in
  let rp_set =
    Pim_core.Rp_set.single group (Addr.router rp_primary)
    |> fun s -> Pim_core.Rp_set.add s group [ Addr.router rp_primary; Addr.router rp_alternate ]
  in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  let r = Pim_core.Deployment.router dep receiver in
  Pim_core.Router.join_local r group;
  let arrivals = ref [] in
  Pim_core.Router.on_local_data r (fun _ -> arrivals := Engine.now eng :: !arrivals);
  let s = Pim_core.Deployment.router dep source in
  let rec send_loop t0 =
    if t0 < stop_at then
      ignore
        (Engine.schedule_at eng t0 (fun () ->
             Pim_core.Router.send_local_data s ~group ();
             send_loop (t0 +. 0.5)))
  in
  send_loop 10.;
  ignore (Engine.schedule_at eng crash_at (fun () -> Net.set_node_up net rp_primary false));
  Engine.run ~until:(stop_at +. 10.) eng;
  let times = List.sort Float.compare !arrivals in
  (* Largest inter-arrival gap once delivery is established. *)
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (Float.max acc (b -. a)) rest
    | _ -> acc
  in
  let established = List.filter (fun t -> t > 15.) times in
  let gap = max_gap 0. established in
  {
    rp_timeout;
    gap;
    delivered_before = List.length (List.filter (fun t -> t <= crash_at) times);
    delivered_after = List.length (List.filter (fun t -> t > crash_at) times);
    failovers = (Pim_core.Deployment.total_stats dep).Pim_core.Router.rp_failovers;
  }

let run ?(timeouts = [ 5.; 10.; 20. ]) ~seed () =
  List.map (one_timeout ~seed) timeouts

let pp_rows ppf rows =
  Format.fprintf ppf "# E2: RP failover (primary RP crashes at t=30; 2 pkt/s until t=75)@.";
  Format.fprintf ppf "# rp_timeout  delivery_gap  before  after  failovers@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%11.1f  %12.2f  %6d  %5d  %9d@." r.rp_timeout r.gap
        r.delivered_before r.delivered_after r.failovers)
    rows
