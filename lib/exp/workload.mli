(** E11: production-shaped workload models over the {!Stack} adapter.

    The paper's section-1.2 case for PIM is about control overhead and
    state concentration under {e realistic} membership dynamics — argued
    in 1994, measured here.  Four deterministic, seeded schedule
    generators reproduce the membership/traffic shapes large multicast
    deployments actually see:

    - {b zap} — IPTV channel zapping: receivers hop between Zipf-popular
      channels with exponential dwell times, plus correlated "zap storms"
      where a fraction of the audience changes channel within the same
      second (an ad break ending).
    - {b flashcrowd} — one group grows from 10 receivers to the full
      [scale] in seconds (doubling ramp), against a Zipf background.
    - {b zipf} — stationary on/off churn where each on-period picks its
      group by Zipf popularity with configurable [skew].
    - {b diurnal} — join intensity modulated by a sin² day curve over the
      run, so measurement windows at the troughs are legitimately empty.

    A schedule is generated first (parallelizable across domains,
    byte-identical for any [domains] — each receiver owns a split PRNG
    stream, results merge in canonical order), then replayed
    single-threaded against one multi-group deployment
    ({!Stack.create_many}).  Replay measures per tumbling window
    ({!Pim_util.Metrics} windowed instruments): join latency,
    SPT-switchover storm counts, per-RP load concentration, and
    control-message overhead. *)

type model = Zap | Flashcrowd | Zipfian | Diurnal

val models : model list
(** Canonical order. *)

val model_to_string : model -> string
(** ["zap"], ["flashcrowd"], ["zipf"], ["diurnal"]. *)

val model_of_string : string -> model option

(** How groups are mapped to rendezvous points (PIM-SM; the CBT core
    placement reuses the same mapping). *)
type rp_strategy =
  | Single  (** every group homed on one backbone RP *)
  | Sharded of int  (** groups round-robined across [k] backbone RPs, static config *)
  | Elected of int  (** same sharding, but installed through a live BSR election *)

val rp_strategy_to_string : rp_strategy -> string

val rp_strategy_of_string : string -> rp_strategy option
(** ["single"], ["sharded:k"] / ["sharded"], ["bsr:k"] / ["bsr"]
    (default [k] = 4). *)

type spec = {
  model : model;
  protocol : Stack.protocol;
  rp_strategy : rp_strategy;
  nodes : int;  (** routers; the transit-stub topology is sized to this *)
  groups : int;  (** multicast groups ("channels") *)
  scale : int;  (** total receivers (many per router — IGMP-style aggregation) *)
  skew : float;  (** Zipf exponent for group popularity *)
  duration : float;  (** virtual seconds of schedule *)
  window : float;  (** tumbling measurement-window width *)
  domains : int;  (** domains to fan schedule generation across *)
  seed : int;
}

val default_spec : model -> spec
(** Moderate defaults (200 routers, 16 groups, 400 receivers, 60 s,
    5 s windows, PIM-SM, [Sharded 4]); flashcrowd raises [scale]. *)

(** {1 Schedules} *)

type action = Join | Leave

type sevent = {
  t : float;
  receiver : int;
  seq : int;  (** per-receiver emission index — the merge tiebreak *)
  group : int;
  node : Pim_graph.Topology.node;  (** the receiver's home (stub) router *)
  action : action;
}

type schedule = {
  spec : spec;
  events : sevent array;  (** sorted by [(t, receiver, seq)] *)
  sources : (int * Pim_graph.Topology.node) array;  (** one steady source per group *)
  rp_placement : (int * Pim_graph.Topology.node list) list;
      (** group index to backbone RP/core nodes, per [rp_strategy] *)
}

val generate : spec -> schedule
(** Deterministic per [spec.seed]; byte-identical for any [spec.domains]
    (only wall-clock changes): every receiver draws from its own split
    stream, streams are split in receiver order before the fan-out, and
    results merge in canonical order — the fig2a contract. *)

val render_schedule : schedule -> string
(** Canonical text rendering (one line per event plus the source and RP
    tables) — the byte-comparison key for the domains-identity qcheck
    property. *)

(** {1 Replay} *)

type wrow = {
  window : Pim_util.Metrics.window;
  joins : int;  (** receiver-level joins in the window *)
  leaves : int;
  node_joins : int;  (** protocol-level joins (0->1 membership edges) *)
  join_latency : Pim_util.Stats.summary;
      (** node-level join to first delivery, seconds;
          {!Pim_util.Stats.empty_summary} for windows with no joins *)
  spt_switches : int;  (** switchover storm size in the window *)
  control_msgs : int;  (** control-message link traversals *)
  data_msgs : int;
  rp_peak_load : int;  (** busiest RP's adjacent-link deliveries *)
  rp_concentration : float;
      (** peak / mean over the configured RPs (1.0 = perfectly balanced,
          k = everything on one of k RPs; 0 when no RPs or no load) *)
}

type report = {
  schedule : schedule;
  rows : wrow list;  (** one per tumbling window, in order *)
  total_joins : int;
  total_leaves : int;
  total_node_joins : int;
  join_latency : Pim_util.Stats.summary;  (** whole run *)
  total_spt_switches : int;
  total_control : int;
  total_data : int;
  rp_loads : (Pim_graph.Topology.node * int) list;
      (** cumulative per-RP load, sorted by node *)
  rp_concentration : float;  (** whole-run peak / mean *)
  oracle : (string * int) list;
      (** structural state-check name to problem count at end of run
          (all zero = oracle-clean) *)
  entries_end : int;  (** protocol state entries at end of run *)
}

val run : ?trace:Pim_sim.Trace.t -> spec -> report
(** Generate the schedule and replay it: one shared deployment via
    {!Stack.create_many}, per-group steady sources (1 pkt/s), windowed
    instruments rolled every [spec.window] virtual seconds (a
    {!Pim_sim.Event.Window_roll} event is traced per roll when [trace]
    is given).  Deterministic per seed; [spec.domains] only parallelizes
    schedule generation. *)

val report_to_json : report -> Pim_util.Json.t
(** Schema ["pim-workload/1"]: params, per-window rows, totals, per-RP
    loads, oracle results.  Contains no wall-clock fields, so two runs
    with the same spec are byte-identical. *)

val pp_report : Format.formatter -> report -> unit
