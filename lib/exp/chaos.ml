module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Fault = Pim_sim.Fault
module Oracle = Pim_sim.Oracle
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Topology = Pim_graph.Topology
module Random_graph = Pim_graph.Random_graph
module Fwd = Pim_mcast.Fwd
module Mdata = Pim_mcast.Mdata

let group = Group.of_index 7

(* Timeline (virtual seconds; all protocols use their fast configs):
   joins at 0, steady 2 pkt/s stream from [stream_start], faults injected
   in [fault_start, fault_end) with every outage healed by [fault_end],
   then a per-protocol [recover_wait], then the oracle checkpoint: probe
   burst (loop freedom + reachability on the wire) and state checks.
   Finally all members leave and after [drain_wait] any state above the
   protocol's residual floor is orphaned. *)
let stream_start = 10.0

let stream_interval = 0.5

let fault_start = 20.0

let burst_probes = 5

let burst_spacing = 0.4

(* Probe delivery bound for the default 30-node random topologies (unit
   link delays); wide-area transit-stub runs compute their own bound
   from the topology's link delays. *)
let default_delay_bound = 10.0

type setup = {
  name : string;
  join : Topology.node -> (Pim_net.Packet.t -> unit) -> unit;
  leave : Topology.node -> unit;
  send : unit -> unit;
  entries : unit -> int;
  restart : Topology.node -> unit;
  state_checks : (string * (unit -> string list)) list;
  max_copies : int;  (* legitimate per-link copies of one packet *)
  recover_wait : float;  (* post-heal settle time before the checkpoint *)
  drain_wait : float;  (* post-leave time before the orphan check *)
  residual_floor : int;  (* state entries legitimately left after drain *)
}

type row = {
  protocol : string;
  deliveries : int;
  expected : int;
  dup_deliveries : int;
  max_gap : float;  (* worst per-receiver silence during the stream *)
  mean_convergence : float;  (* fault onset -> first fully-delivered send *)
  max_convergence : float;
  churn_control : int;  (* control traversals during the fault window *)
  total_control : int;
  restarts : int;
  residual_entries : int;
  violations : Oracle.violation list;
}

type report = {
  seed : int;
  schedule : Fault.event list;
  rows : row list;
}

let fault_onsets schedule =
  List.filter_map
    (fun (e : Fault.event) ->
      match e.Fault.action with
      | Fault.Link_down _ | Fault.Link_flap _ | Fault.Node_crash _ | Fault.Partition _ ->
        Some e.Fault.at
      | _ -> None)
    schedule

let run_protocol ~topo ~schedule ~fault_end ~members ~source ~delay_bound
    ~(build : Net.t -> setup) =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let s = build net in
  (* While faults are active, an in-flight packet crossing an RPF change
     can legitimately traverse one link an extra time; only sustained
     duplication there means a loop.  The quiet checkpoint below drops
     back to the protocol's strict bound. *)
  let oracle =
    Oracle.create ~max_copies:(s.max_copies + 2) net ~probe_id:(fun pkt ->
        Option.map (fun (i : Mdata.info) -> i.Mdata.seq) (Mdata.info pkt))
  in
  let n_recv = List.length members in
  (* seq -> receivers that got it (dedup), plus completion times. *)
  let recv_log : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 512 in
  let per_recv : (int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let full_times = ref [] in
  let deliveries = ref 0 in
  let dups = ref 0 in
  List.iter
    (fun m ->
      Hashtbl.replace per_recv m (ref []);
      s.join m (fun pkt ->
          match Mdata.info pkt with
          | None -> ()
          | Some { Mdata.seq; sent_at } ->
            Oracle.note_received oracle ~node:m ~probe:seq;
            let tbl =
              match Hashtbl.find_opt recv_log seq with
              | Some tbl -> tbl
              | None ->
                let tbl = Hashtbl.create 8 in
                Hashtbl.replace recv_log seq tbl;
                tbl
            in
            if Hashtbl.mem tbl m then incr dups
            else begin
              Hashtbl.replace tbl m ();
              incr deliveries;
              (match Hashtbl.find_opt per_recv m with
              | Some l -> l := sent_at :: !l
              | None -> ());
              if Hashtbl.length tbl = n_recv then full_times := sent_at :: !full_times
            end))
    members;
  (* Steady stream up to the checkpoint, then the probe burst. *)
  let checkpoint_start = fault_end +. s.recover_wait in
  let n_stream =
    int_of_float (Float.round ((checkpoint_start -. stream_start) /. stream_interval))
  in
  for i = 0 to n_stream - 1 do
    ignore
      (Engine.schedule_at eng (stream_start +. (stream_interval *. float_of_int i)) s.send)
  done;
  (* Control-plane cost attributable to the churn itself. *)
  let ctl_start = ref 0 and ctl_end = ref 0 in
  ignore
    (Engine.schedule_at eng fault_start (fun () -> ctl_start := Metrics.control_traversals metrics));
  ignore
    (Engine.schedule_at eng fault_end (fun () -> ctl_end := Metrics.control_traversals metrics));
  ignore (Fault.install ~restart:s.restart net schedule);
  (* Checkpoint: fresh probe epoch so reconvergence-era duplicates (which
     are legitimate, e.g. SPT-switchover overlap) are not charged as
     loops; every burst probe must reach every member within the bound. *)
  ignore
    (Engine.schedule_at eng checkpoint_start (fun () ->
         Oracle.set_max_copies oracle s.max_copies;
         Oracle.reset_probes oracle));
  let burst_seqs = List.init burst_probes (fun k -> n_stream + k) in
  List.iteri
    (fun k _ ->
      ignore
        (Engine.schedule_at eng
           (checkpoint_start +. 0.01 +. (burst_spacing *. float_of_int k))
           s.send))
    burst_seqs;
  let checkpoint_end =
    checkpoint_start +. (burst_spacing *. float_of_int burst_probes) +. delay_bound
  in
  ignore
    (Engine.schedule_at eng checkpoint_end (fun () ->
         List.iter (fun (inv, f) -> Oracle.run_check oracle ~invariant:inv f) s.state_checks;
         List.iter
           (fun probe ->
             let got = Oracle.received_by oracle ~probe in
             List.iter
               (fun m ->
                 if not (List.mem m got) then
                   Oracle.record oracle ~invariant:"reachability"
                     (Printf.sprintf "probe %d not delivered to member %d within %.0fs"
                        probe m delay_bound))
               members)
           burst_seqs;
         Oracle.check_blackhole oracle ~source ~members ~probes:burst_seqs;
         List.iter s.leave members));
  let t_end = checkpoint_end +. s.drain_wait in
  Engine.run ~until:t_end eng;
  let residual = s.entries () in
  if residual > s.residual_floor then
    Oracle.record oracle ~invariant:"orphaned-state"
      (Printf.sprintf "%d state entries remain %.0fs after all members left (floor %d)"
         residual s.drain_wait s.residual_floor);
  (* Convergence: for each fault onset, the earliest send at-or-after it
     that every member received. *)
  let full_sorted = List.sort Float.compare !full_times in
  let onsets = fault_onsets schedule in
  let convergences =
    List.map
      (fun f ->
        match List.find_opt (fun tm -> tm >= f) full_sorted with
        | Some tm -> tm -. f
        | None -> t_end -. f)
      onsets
  in
  let mean_convergence =
    match convergences with
    | [] -> 0.
    | cs -> List.fold_left ( +. ) 0. cs /. float_of_int (List.length cs)
  in
  let max_convergence = List.fold_left Float.max 0. convergences in
  (* Worst silent stretch any receiver saw, in send-timestamp terms. *)
  let max_gap =
    Hashtbl.fold
      (fun _ times acc ->
        let ts = List.sort Float.compare !times in
        let rec gaps prev = function
          | [] -> checkpoint_start -. prev
          | x :: rest -> Float.max (x -. prev) (gaps x rest)
        in
        Float.max acc (gaps stream_start ts))
      per_recv 0.
  in
  {
    protocol = s.name;
    deliveries = !deliveries;
    expected = (n_stream + burst_probes) * n_recv;
    dup_deliveries = !dups;
    max_gap;
    mean_convergence;
    max_convergence;
    churn_control = !ctl_end - !ctl_start;
    total_control = Metrics.control_traversals metrics;
    restarts =
      List.length
        (List.filter
           (fun (e : Fault.event) ->
             match e.Fault.action with Fault.Node_crash _ -> true | _ -> false)
           schedule);
    residual_entries = residual;
    violations = Oracle.violations oracle;
  }

(* {1 Protocol adapters} *)

(* The PIM structural invariants now live in {!Stack} (shared with the
   scenario DSL); this is the chaos-flavored phrasing over a static
   deployment. *)
let pim_state_checks ~net ~static ~deployment:d =
  Stack.pim_state_checks ~net
    ~rib:(Pim_routing.Static.rib static)
    ~fib:(fun u -> Pim_core.Router.fib (Pim_core.Deployment.router d u))

let pim_setup ~rp_mode ~source net =
  let config = Pim_core.Config.fast in
  let static = Pim_routing.Static.create net in
  let bsr, rp_set, election_wait =
    match rp_mode with
    | `Static rp_set -> (None, rp_set, 0.)
    | `Bsr roles ->
      let b =
        Pim_core.Bsr.deploy ~config:Pim_core.Bsr.fast ~net
          ~ribs:(Pim_routing.Static.rib static) ~roles ()
      in
      (* A crashed-and-restarted RP re-enters the mapping only after its
         advert reaches the BSR and a bootstrap flood spreads it; routers
         then notice stale shared trees via rp_timeout.  Both waits come
         on top of the usual join/prune refresh settle time. *)
      ( Some b,
        Pim_core.Rp_set.empty,
        Pim_core.Bsr.failover_budget Pim_core.Bsr.fast +. config.Pim_core.Config.rp_timeout )
  in
  let d =
    Pim_core.Deployment.create ~config ?bsr ~net ~ribs:(Pim_routing.Static.rib static) ~rp_set ()
  in
  {
    name = "PIM-SM";
    join =
      (fun m cb ->
        let r = Pim_core.Deployment.router d m in
        Pim_core.Router.join_local r group;
        Pim_core.Router.on_local_data r cb);
    leave = (fun m -> Pim_core.Router.leave_local (Pim_core.Deployment.router d m) group);
    send =
      (fun () -> Pim_core.Router.send_local_data (Pim_core.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_core.Deployment.total_entries d);
    restart =
      (fun u ->
        Pim_core.Router.restart (Pim_core.Deployment.router d u);
        Option.iter (fun b -> Pim_core.Bsr.restart b u) bsr);
    state_checks = pim_state_checks ~net ~static ~deployment:d;
    max_copies = 1;
    (* A few jp_periods: crashed transit routers are rebuilt by their
       downstream neighbors' periodic refresh, one hop per period worst
       case. *)
    recover_wait = (5. *. config.Pim_core.Config.jp_period) +. election_wait;
    (* Soft state tears down serially: the RP's entry lingers past the
       last data, then each hop toward the source keeps refreshing its
       upstream until its own oif times out — one oif holdtime per hop,
       bounded by the source's eccentricity. *)
    drain_wait =
      (let src_addr = Addr.router source in
       let n = Topology.n_nodes (Net.topo net) in
       let ecc = ref 0 in
       for u = 0 to n - 1 do
         match (Pim_routing.Static.rib static u).Pim_routing.Rib.distance src_addr with
         | Some d -> ecc := max !ecc d
         | None -> ()
       done;
       config.Pim_core.Config.entry_linger
       +. (float_of_int (!ecc + 2) *. config.Pim_core.Config.oif_holdtime)
       +. (3. *. config.Pim_core.Config.sweep_interval));
    residual_floor = 0;
  }

let dense_setup ~source net =
  let config = { Pim_dense.Router.fast_config with mode = Pim_dense.Router.Pim_dm; graft = true } in
  let d = Pim_dense.Router.Deployment.create_static ~config net in
  {
    name = "PIM-DM";
    join =
      (fun m cb ->
        let r = Pim_dense.Router.Deployment.router d m in
        Pim_dense.Router.join_local r group;
        Pim_dense.Router.on_local_data r cb);
    leave = (fun m -> Pim_dense.Router.leave_local (Pim_dense.Router.Deployment.router d m) group);
    send =
      (fun () ->
        Pim_dense.Router.send_local_data (Pim_dense.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_dense.Router.Deployment.total_entries d);
    restart = (fun u -> Pim_dense.Router.restart (Pim_dense.Router.Deployment.router d u));
    state_checks = [];
    (* Broadcast-and-prune legitimately puts one copy per link direction
       on the wire (the flood, then the prune); only a third copy of the
       same packet on one link indicates a loop. *)
    max_copies = 2;
    (* A stale-iif entry heals only after the prune/grow-back cycle lets
       it expire: prune_timeout + entry_linger. *)
    recover_wait =
      config.Pim_dense.Router.prune_timeout +. config.Pim_dense.Router.entry_linger +. 5.;
    drain_wait =
      config.Pim_dense.Router.entry_linger +. (3. *. config.Pim_dense.Router.sweep_interval);
    residual_floor = 0;
  }

let cbt_setup ~core ~source net =
  let config = Pim_cbt.Router.fast_config in
  let core_of g = if Group.equal g group then Some (Addr.router core) else None in
  let d = Pim_cbt.Router.Deployment.create_static ~config net ~core_of in
  {
    name = "CBT";
    join =
      (fun m cb ->
        let r = Pim_cbt.Router.Deployment.router d m in
        Pim_cbt.Router.join_local r group;
        Pim_cbt.Router.on_local_data r cb);
    leave = (fun m -> Pim_cbt.Router.leave_local (Pim_cbt.Router.Deployment.router d m) group);
    send =
      (fun () ->
        Pim_cbt.Router.send_local_data (Pim_cbt.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_cbt.Router.Deployment.total_entries d);
    restart = (fun u -> Pim_cbt.Router.restart (Pim_cbt.Router.Deployment.router d u));
    state_checks = [];
    max_copies = 1;
    (* Hard state heals slowest: a child only notices a dead parent after
       parent_timeout, then flushes and rejoins. *)
    recover_wait =
      config.Pim_cbt.Router.parent_timeout +. config.Pim_cbt.Router.rejoin_delay
      +. (3. *. config.Pim_cbt.Router.echo_interval);
    drain_wait =
      config.Pim_cbt.Router.child_timeout +. (4. *. config.Pim_cbt.Router.echo_interval);
    (* The core never tears down its own entry. *)
    residual_floor = 1;
  }

let mospf_setup ~source ~members net =
  let lsa_refresh = 5. in
  let d = Pim_mospf.Router.Deployment.create ~lsa_refresh net in
  let topo = Net.topo net in
  let n = Topology.n_nodes topo in
  (* Flooded membership must be in sync domain-wide: every live router
     knows every live member (the whole premise of MOSPF's design). *)
  let membership_check () =
    let problems = ref [] in
    for u = 0 to n - 1 do
      if Net.node_up net u then
        List.iter
          (fun m ->
            if
              Net.node_up net m
              && not (Pim_mospf.Router.knows_member (Pim_mospf.Router.Deployment.router d u) m group)
            then
              problems :=
                Printf.sprintf "router %d does not know member %d of %s" u m
                  (Group.to_string group)
                :: !problems)
          members
    done;
    !problems
  in
  {
    name = "MOSPF";
    join =
      (fun m cb ->
        let r = Pim_mospf.Router.Deployment.router d m in
        Pim_mospf.Router.join_local r group;
        Pim_mospf.Router.on_local_data r cb);
    leave = (fun m -> Pim_mospf.Router.leave_local (Pim_mospf.Router.Deployment.router d m) group);
    send =
      (fun () ->
        Pim_mospf.Router.send_local_data (Pim_mospf.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_mospf.Router.Deployment.total_membership_entries d);
    restart = (fun u -> Pim_mospf.Router.restart (Pim_mospf.Router.Deployment.router d u));
    state_checks = [ ("membership-sync", membership_check) ];
    max_copies = 1;
    (* A restarted router relearns the domain's LSAs within one refresh. *)
    recover_wait = (2. *. lsa_refresh) +. 5.;
    drain_wait = 10.;
    residual_floor = 0;
  }

(* {1 The experiment} *)

let transit_stub_sizes ~nodes =
  (* One transit router per ~40 total, three stubs each; e.g. 2000 nodes
     -> transit 50, stub size 13 (50 + 50*3*13 = 2000 exactly). *)
  let transit = Int.max 2 (nodes / 40) in
  let stubs_per_transit = 3 in
  let stub_size = Int.max 1 (((nodes / transit) - 1) / stubs_per_transit) in
  (transit, stubs_per_transit, stub_size)

let run ?(nodes = 30) ?(degree = 4.) ?(receivers = 5) ?(events = 8) ?(fault_window = 40.)
    ?(mean_outage = 8.) ?(topology = `Random) ?(fault = `Random) ?(rp_strategy = "static")
    ?protocols ~seed () =
  let prng = Prng.create seed in
  let topo, members, delay_bound =
    match topology with
    | `Random ->
      let topo = Random_graph.generate ~prng ~nodes ~degree () in
      (topo, Random_graph.pick_members ~prng ~nodes ~count:receivers, default_delay_bound)
    | `Transit_stub ->
      let transit, stubs_per_transit, stub_size = transit_stub_sizes ~nodes in
      let candidates = transit * stubs_per_transit * Int.max 1 (stub_size - 1) in
      if receivers > candidates then
        invalid_arg "Chaos.run: more receivers than stub routers";
      let ts = Pim_graph.Transit_stub.generate ~transit ~stubs_per_transit ~stub_size ~prng () in
      (* Members live behind stub gateways, as wide-area receivers do. *)
      let seen = Hashtbl.create 16 in
      let members = ref [] in
      while Hashtbl.length seen < receivers do
        let m = Pim_graph.Transit_stub.random_stub_member ts ~prng in
        if not (Hashtbl.mem seen m) then begin
          Hashtbl.add seen m ();
          members := m :: !members
        end
      done;
      (* Worst one-way delay with the generator's default link delays:
         half the backbone ring (5 s/hop — chords only shorten it), an
         access link (3 s) and a stub spanning tree (1 s/hop) at each
         end.  Data crosses it twice (source up the RP tree, then down
         to a member), plus slack for encapsulation hops. *)
      let one_way =
        (5. *. float_of_int ((transit / 2) + 1))
        +. (2. *. (3. +. float_of_int stub_size))
      in
      (ts.Pim_graph.Transit_stub.topo, List.rev !members, (2. *. one_way) +. 10.)
  in
  let nodes = Topology.n_nodes topo in
  let source =
    match List.find_opt (fun u -> not (List.mem u members)) (List.init nodes Fun.id) with
    | Some u -> u
    | None -> 0
  in
  let rp = List.hd members in
  let endpoints = source :: members in
  (* RP placement per [rp_strategy].  Endpoints are excluded from every
     computed pool so rp-crash fault targets never hit the protected
     source or receivers; the legacy "static" strategy keeps the first
     member as RP except in rp-crash runs, where it falls back to the
     first two non-endpoint routers. *)
  let placement =
    match rp_strategy with
    | "static" -> (
      match fault with
      | `Random -> [ (group, [ Addr.router rp ]) ]
      | `Rp_crash ->
        let pool =
          List.init nodes Fun.id
          |> List.filter (fun u -> not (List.mem u endpoints))
          |> List.filteri (fun i _ -> i < 2)
        in
        [ (group, List.map Addr.router pool) ])
    | "bsr" ->
      Pim_core.Placement.compute ~topo ~groups:[ (group, endpoints) ] ~forbidden:endpoints
        ~seed (Pim_core.Placement.Centered 2)
    | s -> (
      match Pim_core.Placement.named s with
      | Some spec ->
        Pim_core.Placement.compute ~topo ~groups:[ (group, endpoints) ] ~forbidden:endpoints
          ~seed spec
      | None -> invalid_arg (Printf.sprintf "Chaos.run: unknown RP strategy %S" s))
  in
  let rp_nodes =
    List.concat_map (fun (_, rps) -> List.filter_map Addr.router_index rps) placement
    |> List.sort_uniq Int.compare
  in
  let rp_mode =
    if String.equal rp_strategy "bsr" then
      (* Candidate BSRs sit off both the endpoints and the RP targets so
         the election substrate itself survives the targeted faults. *)
      let cbsrs =
        List.init nodes Fun.id
        |> List.filter (fun u -> not (List.mem u endpoints) && not (List.mem u rp_nodes))
        |> List.filteri (fun i _ -> i < 2)
        |> List.mapi (fun i u -> (u, 2 - i))
      in
      `Bsr (Pim_core.Placement.roles placement ~n_nodes:nodes ~cbsrs)
    else `Static (Pim_core.Placement.rp_set_of placement)
  in
  let fault_end = fault_start +. fault_window in
  (* One schedule, decided before any protocol runs, replayed verbatim
     against each of them. *)
  let schedule =
    match fault with
    | `Random ->
      Fault.random_schedule ~prng:(Prng.split prng) ~topo ~start:fault_start ~until:fault_end
        ~protected:endpoints ~events ~mean_outage ()
    | `Rp_crash ->
      Fault.targeted_schedule ~prng:(Prng.split prng) ~targets:rp_nodes ~start:fault_start
        ~until:fault_end ~events ~mean_outage ()
  in
  let go build = run_protocol ~topo ~schedule ~fault_end ~members ~source ~delay_bound ~build in
  (* Canonical report order: the fixed protocol list below — the report
     row order is part of the byte-identical reproducibility contract.
     [protocols] selects a subset (large-topology scale runs exercise
     one protocol at a time) without disturbing that order.  RP-crash
     runs default to PIM-SM alone: only it consumes the RP placement
     under test (CBT keeps its legacy member-homed core). *)
  (* A typo in the filter must fail loudly, not silently run nothing. *)
  let known = [ "PIM-SM"; "PIM-DM"; "CBT"; "MOSPF" ] in
  Option.iter
    (List.iter (fun p ->
         if not (List.exists (String.equal p) known) then
           invalid_arg
             (Printf.sprintf "Chaos.run: unknown protocol %S (expected one of %s)" p
                (String.concat ", " known))))
    protocols;
  let wanted name =
    match protocols with
    | Some ps -> List.exists (String.equal name) ps
    | None -> ( match fault with `Random -> true | `Rp_crash -> String.equal name "PIM-SM")
  in
  let rows =
    [
      ("PIM-SM", pim_setup ~rp_mode ~source);
      ("PIM-DM", dense_setup ~source);
      ("CBT", cbt_setup ~core:rp ~source);
      ("MOSPF", mospf_setup ~source ~members);
    ]
    |> List.filter_map (fun (name, build) -> if wanted name then Some (go build) else None)
  in
  { seed; schedule; rows }

let total_violations report =
  List.fold_left (fun acc r -> acc + List.length r.violations) 0 report.rows

let pp_report ppf report =
  Format.fprintf ppf
    "# chaos: identical fault schedule vs all four protocols (seed %d)@." report.seed;
  Format.fprintf ppf "# schedule:@.";
  List.iter (fun e -> Format.fprintf ppf "#   %a@." Fault.pp_event e) report.schedule;
  Format.fprintf ppf "# %-8s %9s %7s %5s %8s %9s %9s %9s %6s %6s %5s@." "protocol" "delivered"
    "expect" "dup" "max_gap" "conv_mean" "conv_max" "ctl_churn" "restrt" "resid" "viol";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8s %9d %7d %5d %8.2f %9.2f %9.2f %9d %6d %6d %5d@." r.protocol
        r.deliveries r.expected r.dup_deliveries r.max_gap r.mean_convergence
        r.max_convergence r.churn_control r.restarts r.residual_entries
        (List.length r.violations))
    report.rows;
  List.iter
    (fun r ->
      if r.violations <> [] then begin
        Format.fprintf ppf "@.%s oracle violations:@." r.protocol;
        List.iter (fun v -> Format.fprintf ppf "  %a@." Oracle.pp_violation v) r.violations
      end)
    report.rows
