(** Experiment E2 — RP failure and receiver-driven failover (section 3.9).

    Two RPs serve one group; the source registers (and delivers) to both,
    receivers join toward the primary.  Mid-run the primary RP crashes.
    Receivers detect the missing RP-reachability beacons, join toward the
    alternate RP, and delivery resumes.  We measure the delivery gap at
    the receiver as a function of the RP-reachability timeout. *)

type row = {
  rp_timeout : float;  (** configured receiver-side liveness timeout *)
  gap : float;  (** longest inter-arrival gap at the receiver *)
  delivered_before : int;
  delivered_after : int;  (** packets received after the crash *)
  failovers : int;  (** RP failovers performed network-wide *)
}

val run : ?timeouts:float list -> seed:int -> unit -> row list
(** Defaults: timeouts [5.; 10.; 20.] seconds (with 1.5 s reachability
    beacons). *)

val pp_rows : Format.formatter -> row list -> unit

type strategy_row = {
  strategy : string;
  gap : float;  (** longest post-establishment inter-arrival gap *)
  budget : float;
      (** detection budget: rp_timeout, plus the election's
          {!Pim_core.Bsr.failover_budget} for the ["bsr"] strategy *)
  delivered_before : int;
  delivered_after : int;
  failovers : int;
  elections : int;  (** BSR step-ups (0 for static strategies) *)
  mapping_changes : int;  (** watched-mapping transitions (BSR only) *)
  control : int;  (** control-plane link traversals, whole run *)
  orphaned_entries : int;
      (** ["(*,G)"] entries still pointing at the crashed RP at the end —
          state the failover/soft-state machinery failed to re-home *)
}

val all_strategies : string list
(** [["static"; "random"; "center"; "locality"; "vns"; "bsr"]] — the
    canonical order of {!run_strategies} rows. *)

val run_strategies : ?strategies:string list -> seed:int -> unit -> strategy_row list
(** The same grid, stream and crash as {!run}, but the group-to-RP
    mapping comes from each {!Pim_core.Placement} strategy in turn —
    installed statically, or (["bsr"]) advertised through a live
    bootstrap election with no static configuration.  The crash targets
    the strategy's primary RP.  Each strategy draws from its own split
    PRNG stream keyed by the canonical order, so running a subset
    reproduces the full run's rows byte for byte. *)

val pp_strategy_rows : Format.formatter -> strategy_row list -> unit
