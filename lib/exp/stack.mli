(** Uniform adapter over the five protocol deployments.

    The chaos harness, the scenario DSL, and the explorer all need the
    same small surface — join/leave a member, inject data at a node,
    restart a router, count state, render per-node mroute state — phrased
    identically for PIM-SM, PIM-DM, DVMRP, CBT and MOSPF.  [Stack]
    builds a deployment for one protocol over an existing {!Pim_sim.Net}
    and exposes exactly that surface, plus the canonical state {!digest}
    the explorer dedups on. *)

type protocol = Pim_sm | Pim_dm | Dvmrp | Cbt | Mospf

val all : protocol list
(** Canonical order — report and matrix rows follow it. *)

val to_string : protocol -> string
(** ["PIM-SM"], ["PIM-DM"], ["DVMRP"], ["CBT"], ["MOSPF"]. *)

val of_string : string -> protocol option
(** Case-insensitive; accepts the canonical names plus the obvious
    abbreviations ([sm], [pimdm], ...). *)

type t = {
  protocol : protocol;
  name : string;
  join : Pim_graph.Topology.node -> unit;  (** add a local member at the node *)
  leave : Pim_graph.Topology.node -> unit;
  on_data : Pim_graph.Topology.node -> (Pim_net.Packet.t -> unit) -> unit;
      (** register a local-delivery callback (register once per node —
          callbacks stack and are never removed) *)
  send_from : Pim_graph.Topology.node -> unit;  (** inject one data packet *)
  entries : unit -> int;  (** protocol state entries network-wide *)
  restart : Pim_graph.Topology.node -> unit;  (** wipe and reboot one router *)
  state_checks : (string * (unit -> string list)) list;
      (** named structural invariants (empty list = invariant holds) *)
  mroute : Pim_graph.Topology.node -> string list;
      (** canonical, timer-free rendering of the node's multicast routing
          state, in a stable order — the unit the {!digest} hashes and
          [assert-mroute] matches against *)
  max_copies : int;  (** legitimate per-link copies of one quiet-period packet *)
  residual_floor : int;  (** entries legitimately left after every member leaves *)
  spt_switches : unit -> int;
      (** cumulative RP-tree to shortest-path-tree transitions deployment-wide
          (0 for protocols without the transition — the workload harness
          reads per-window deltas to count switchover storms) *)
}

val create :
  ?rp:Pim_graph.Topology.node list ->
  ?rp_election:bool ->
  ?switchover_fallback:bool ->
  ?trace:Pim_sim.Trace.t ->
  group:Pim_net.Group.t ->
  net:Pim_sim.Net.t ->
  protocol ->
  t
(** Deploy [protocol] (fast config) on [net] for [group].  [rp] is the
    ordered RP list for PIM-SM (failover order) and the core for CBT
    (first element); required for both, ignored by the dense protocols
    and MOSPF.  [rp_election] (PIM-SM only) turns the RP list into C-RP
    roles elected through a live BSR instead of static configuration.
    [switchover_fallback] (PIM-SM only) gates the shared-fallback
    forwarding fix for the RP-tree/SPT switchover loss — scenarios turn
    it off to reproduce the historical bug.

    @raise Invalid_argument if a protocol that needs an RP gets none. *)

val create_many :
  ?placement:(Pim_net.Group.t * Pim_graph.Topology.node list) list ->
  ?rp_election:bool ->
  ?switchover_fallback:bool ->
  ?trace:Pim_sim.Trace.t ->
  groups:Pim_net.Group.t list ->
  net:Pim_sim.Net.t ->
  protocol ->
  (Pim_net.Group.t * t) list
(** Deploy [protocol] once and expose a per-group view for every group in
    [groups] — the multi-group form {!create} lacks (it builds one
    deployment per call, infeasible for workloads driving dozens of
    Zipf-popular groups over thousands of routers).  [placement] maps
    each group to its ordered RP list (PIM-SM) or core (CBT, first
    element); required for both, ignored by the dense protocols and
    MOSPF.  [rp_election] (PIM-SM only) turns the whole placement into
    C-RP roles elected through a live BSR — each distinct RP node
    advertises the groups it is placed for, reproducing multi-RP
    sharding via the hash mapping.

    Views share the deployment: [entries], [restart], [state_checks] and
    [spt_switches] are deployment-wide and identical across views, while
    [join]/[leave]/[send_from]/[mroute] act per group and [on_data]
    callbacks only fire for that view's group.

    @raise Invalid_argument if PIM-SM or CBT is given a group without a
    placement entry. *)

val settle_hint : ?rp_election:bool -> ?hops:int -> protocol -> float
(** Conservative virtual-seconds bound for the protocol (fast config) to
    reconverge after a healed perturbation — the wait the explorer
    inserts before each probe window.  No deployment needed.  [hops]
    (default 8) bounds the tree depth the recovery may have to walk; it
    only matters for CBT, whose hard-state teardown cascades one
    parent_timeout per level (paper footnote 4). *)

val pim_state_checks :
  net:Pim_sim.Net.t ->
  rib:(Pim_graph.Topology.node -> Pim_routing.Rib.t) ->
  fib:(Pim_graph.Topology.node -> Pim_mcast.Fwd.t) ->
  (string * (unit -> string list)) list
(** The PIM structural invariants ([iif-consistency], [stale-oif]) over
    any deployment exposing per-node RIBs and FIBs — shared between the
    chaos harness and the stacks built here. *)

val digest : t -> net:Pim_sim.Net.t -> members:Pim_graph.Topology.node list -> string
(** Hex MD5 of the canonical global state: every node's {!field-mroute}
    lines (or its down marker), the link-up bitmap, and the sorted member
    set.  Timer-free by construction, so two interleavings that converge
    to the same forwarding state collide — the explorer's dedup key. *)
