(** Declarative operational-scenario language ([.scn]).

    A scenario is a short text program — the operational vocabulary FRR
    topotests exercise against real deployments (RP change, interface
    shut/no-shut at the first/last hop, RPT-vs-SPT divergence,
    partition/heal), here runnable against any of the five protocol
    stacks under full observability (typed trace, capture, metrics) with
    the invariant oracle watching throughout.

    Grammar (one directive or step per line; [#] comments; options are
    [key=value] tokens; node positions accept numbers or the symbols
    [members] / [source] / [rp], resolved against the declared roles):

    {v
scenario NAME
topology line N
topology random nodes=N degree=F seed=N
topology derived seed=N members=N    # the qcheck property's derivation
protocol PIM-SM|PIM-DM|DVMRP|CBT|MOSPF
rp N [N ...]                         # ordered RP list / CBT core (first)
rp-election on                       # PIM-SM: elect the rp list via BSR
members N [N ...]
source N
config switchover-fallback=on|off

join NODES          leave NODES
send NODE [count=K] [interval=F]
advance T
fail-link A B       heal-link A B
fail-node U         restart U
partition NODES     heal
drop-next A B       dup-next A B     delay-next A B by=F
checkpoint          # digest global state, start a strict probe epoch
assert-delivery     # last send window: exactly-once to every member, no blackholes
assert-no-loops     # structural state checks (wire loops are checked continuously)
assert-mroute U count>=K|count<=K|count=K|contains=STR
assert-drained      # state entries at/below the protocol's residual floor
    v}

    Execution is sequential over a virtual-time cursor: [advance] runs
    the engine forward, every other step acts at the current instant
    ([send] schedules its packets from the current instant onward).
    Scenarios are single-source: all [send] steps must name the same
    node (probe identity is the per-source data sequence number).
    Assertion failures are recorded as oracle violations — a scenario
    passes iff its outcome has no violations. *)

type node_ref = Node of int | Members | Source | Rp

type topology_spec =
  | Line of int
  | Random of { nodes : int; degree : float; seed : int }
  | Derived of { seed : int; member_count : int }
      (** [Scenario.run]'s seed derivation: nodes, degree, members, RP
          and source all drawn from one PRNG stream. *)

type mroute_pred =
  | Count_at_least of int
  | Count_at_most of int
  | Count_eq of int
  | Contains of string

type step =
  | Join of node_ref list
  | Leave of node_ref list
  | Send of { from : node_ref; count : int; interval : float }
  | Advance of float
  | Fail_link of node_ref * node_ref
  | Heal_link of node_ref * node_ref
  | Fail_node of node_ref
  | Restart of node_ref
  | Partition of node_ref list
  | Heal
  | Drop_next of node_ref * node_ref
  | Dup_next of node_ref * node_ref
  | Delay_next of { a : node_ref; b : node_ref; by : float }
  | Checkpoint
  | Assert_delivery
  | Assert_no_loops
  | Assert_mroute of { node : node_ref; pred : mroute_pred }
  | Assert_drained

type program = {
  name : string;
  topology : topology_spec;
  protocol : Stack.protocol option;  (** default; [run ?protocol] overrides *)
  rp : int list;
  rp_election : bool;
  members_decl : int list;
  source_decl : int option;
  switchover_fallback : bool option;
  steps : step list;
}

val parse : string -> (program, string) result
(** Parse scenario text; the error names the offending line. *)

val parse_file : string -> (program, string) result

val to_string : program -> string
(** Canonical text rendering; [parse (to_string p)] round-trips.  The
    explorer writes counterexamples through this. *)

type context = {
  topo : Pim_graph.Topology.t;
  nodes : int;
  decl_members : int list;  (** the [members] symbol *)
  source0 : int option;  (** the [source] symbol *)
  rp_nodes : int list;  (** ordered; head is the [rp] symbol *)
}

val context : program -> context
(** Build the program's topology and resolve its declared roles without
    running it — the explorer uses this to derive its action alphabet. *)

type outcome = {
  protocol : string;
  nodes : int;
  members : int list;  (** membership when the run ended *)
  source : int option;
  digests : string list;  (** one per [checkpoint], in order *)
  violations : Pim_sim.Oracle.violation list;
  deliveries : int;
  duplicates : int;
  residual : int;
  ok : bool;  (** no violations *)
}

val run :
  ?trace_file:string ->
  ?capture_file:string ->
  ?metrics_file:string ->
  ?protocol:Stack.protocol ->
  ?switchover_fallback:bool ->
  program ->
  outcome
(** Execute the program.  Deterministic: the same program (and protocol)
    always yields byte-identical trace/capture files.  [?protocol] and
    [?switchover_fallback] override the program's directives.

    @raise Invalid_argument on semantic errors (no protocol, unknown
    node, no link between the named endpoints, a second sending node). *)

val pp_outcome : Format.formatter -> outcome -> unit
