module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Capture = Pim_sim.Capture
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Mdata = Pim_mcast.Mdata
module Config = Pim_core.Config
module Router = Pim_core.Router
module Rp_set = Pim_core.Rp_set
module Deployment = Pim_core.Deployment

let group = Group.of_index 1

type spec = {
  seed : int;
  member_count : int;
  members_override : int list option;
  packets : int;
  check_from : int;
  switchover_fallback : bool;
}

let default_spec ~seed ~member_count =
  {
    seed;
    member_count;
    members_override = None;
    packets = 30;
    check_from = 22;
    switchover_fallback = true;
  }

type outcome = {
  nodes : int;
  members : int list;
  rp : int;
  source : int;
  wrong : (int * int * int) list;
  residual_entries : int;
  dup_suppressed : int;
  ok : bool;
}

let run ?capture_file ?trace_file ?metrics_file spec =
  (* Mirror the property's derivation exactly: same PRNG draws in the same
     order, so the same seed reproduces the same scenario byte for byte. *)
  let prng = Pim_util.Prng.create spec.seed in
  let nodes = 12 + Pim_util.Prng.int prng 14 in
  let topo =
    Pim_graph.Random_graph.generate ~prng ~nodes
      ~degree:(3. +. Pim_util.Prng.float prng 2.)
      ()
  in
  let derived_members =
    Pim_graph.Random_graph.pick_members ~prng ~nodes ~count:spec.member_count
  in
  let rp = List.nth derived_members (Pim_util.Prng.int prng spec.member_count) in
  let source = Pim_util.Prng.int prng nodes in
  (* The override shrinks the receiver set but must not shift rp/source:
     both were drawn before it applies. *)
  let members = Option.value spec.members_override ~default:derived_members in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let capture = Option.map (fun _ -> Capture.attach net) capture_file in
  let rp_set = Rp_set.single group (Addr.router rp) in
  let trace = Trace.create eng in
  let config = { Config.fast with Config.switchover_fallback = spec.switchover_fallback } in
  let dep = Deployment.create_static ~config ~trace net ~rp_set in
  let delivery = Pim_mcast.Delivery.create () in
  let latency =
    Pim_util.Metrics.histogram (Net.metrics net)
      ~labels:[ ("group", Group.to_string group) ]
      "delivery_latency"
  in
  List.iter
    (fun m ->
      let r = Deployment.router dep m in
      Router.join_local r group;
      Router.on_local_data r (fun pkt ->
          match Mdata.info pkt with
          | Some i ->
            let now = Engine.now eng in
            Pim_util.Metrics.observe latency (now -. i.Mdata.sent_at);
            Pim_mcast.Delivery.record delivery ~group ~src:pkt.Pim_net.Packet.src
              ~seq:i.Mdata.seq ~receiver:m ~sent_at:i.Mdata.sent_at ~at:now
          | None -> ()))
    members;
  Engine.run ~until:10. eng;
  let sr = Deployment.router dep source in
  for i = 0 to spec.packets - 1 do
    ignore
      (Engine.schedule_at eng
         (10. +. (0.5 *. float_of_int i))
         (fun () -> Router.send_local_data sr ~group ()))
  done;
  Engine.run ~until:60. eng;
  let src = Router.local_source_addr sr in
  let wrong =
    List.concat_map
      (fun seq ->
        List.filter_map
          (fun m ->
            let copies = Pim_mcast.Delivery.copies delivery ~group ~src ~seq ~receiver:m in
            if copies = 1 then None else Some (m, seq, copies))
          members)
      (List.init (max 0 (spec.packets - spec.check_from)) (fun i -> spec.check_from + i))
  in
  List.iter (fun m -> Router.leave_local (Deployment.router dep m) group) members;
  Engine.run ~until:220. eng;
  let residual_entries = Deployment.total_entries dep in
  let dup_suppressed = (Deployment.total_stats dep).Router.data_dup_suppressed in
  Option.iter (fun path -> Capture.save path (Capture.entries (Option.get capture))) capture_file;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Trace.dump_jsonl oc trace))
    trace_file;
  Option.iter
    (fun path ->
      Deployment.export_metrics dep (Net.metrics net);
      Pim_util.Json.to_file path (Pim_util.Metrics.to_json (Net.metrics net)))
    metrics_file;
  {
    nodes;
    members;
    rp;
    source;
    wrong;
    residual_entries;
    dup_suppressed;
    ok = wrong = [] && residual_entries = 0;
  }

let fails spec = not (run spec).ok

(* Greedy one-at-a-time delta debugging: cheap (the scenario space is
   small) and deterministic.  Members are dropped while the failure
   persists, then the packet count is lowered the same way.  Dropping a
   member only shrinks the receiver set — the RP and source roles were
   drawn before the override applies and stay fixed. *)
let shrink spec =
  if not (fails spec) then spec
  else begin
    let current = ref spec in
    let members () =
      match !current.members_override with
      | Some ms -> ms
      | None -> (run !current).members
    in
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun m ->
          let ms = members () in
          if List.length ms > 1 then begin
            let candidate =
              { !current with members_override = Some (List.filter (fun x -> x <> m) ms) }
            in
            if fails candidate then begin
              current := candidate;
              progress := true
            end
          end)
        (members ())
    done;
    let continue = ref true in
    while !continue do
      let c = !current in
      if c.packets > 1 && fails { c with packets = c.packets - 1 } then
        current := { c with packets = c.packets - 1 }
      else continue := false
    done;
    !current
  end
