module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Fault = Pim_sim.Fault
module Oracle = Pim_sim.Oracle
module Event = Pim_sim.Event
module Trace = Pim_sim.Trace
module Capture = Pim_sim.Capture
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Topology = Pim_graph.Topology
module Random_graph = Pim_graph.Random_graph
module Mdata = Pim_mcast.Mdata

let group = Group.of_index 5

(* {1 Abstract syntax} *)

(* Node positions accept symbolic names resolved against the program's
   declared roles, so one scenario text works across seeds: [members]
   (the declared member set), [source], [rp] (the primary RP/core). *)
type node_ref = Node of int | Members | Source | Rp

type topology_spec =
  | Line of int
  | Random of { nodes : int; degree : float; seed : int }
  | Derived of { seed : int; member_count : int }

type mroute_pred =
  | Count_at_least of int
  | Count_at_most of int
  | Count_eq of int
  | Contains of string

type step =
  | Join of node_ref list
  | Leave of node_ref list
  | Send of { from : node_ref; count : int; interval : float }
  | Advance of float
  | Fail_link of node_ref * node_ref
  | Heal_link of node_ref * node_ref
  | Fail_node of node_ref
  | Restart of node_ref
  | Partition of node_ref list
  | Heal
  | Drop_next of node_ref * node_ref
  | Dup_next of node_ref * node_ref
  | Delay_next of { a : node_ref; b : node_ref; by : float }
  | Checkpoint
  | Assert_delivery
  | Assert_no_loops
  | Assert_mroute of { node : node_ref; pred : mroute_pred }
  | Assert_drained

type program = {
  name : string;
  topology : topology_spec;
  protocol : Stack.protocol option;
  rp : int list;
  rp_election : bool;
  members_decl : int list;
  source_decl : int option;
  switchover_fallback : bool option;
  steps : step list;
}

(* {1 Printer} *)

let string_of_ref = function
  | Node i -> string_of_int i
  | Members -> "members"
  | Source -> "source"
  | Rp -> "rp"

let refs rs = String.concat " " (List.map string_of_ref rs)

(* Times print via %g: round-trip exact for the short decimals scenarios
   use, no trailing-zero noise. *)
let string_of_step = function
  | Join rs -> Printf.sprintf "join %s" (refs rs)
  | Leave rs -> Printf.sprintf "leave %s" (refs rs)
  | Send { from; count; interval } ->
    Printf.sprintf "send %s count=%d interval=%g" (string_of_ref from) count interval
  | Advance d -> Printf.sprintf "advance %g" d
  | Fail_link (a, b) -> Printf.sprintf "fail-link %s %s" (string_of_ref a) (string_of_ref b)
  | Heal_link (a, b) -> Printf.sprintf "heal-link %s %s" (string_of_ref a) (string_of_ref b)
  | Fail_node u -> Printf.sprintf "fail-node %s" (string_of_ref u)
  | Restart u -> Printf.sprintf "restart %s" (string_of_ref u)
  | Partition rs -> Printf.sprintf "partition %s" (refs rs)
  | Heal -> "heal"
  | Drop_next (a, b) -> Printf.sprintf "drop-next %s %s" (string_of_ref a) (string_of_ref b)
  | Dup_next (a, b) -> Printf.sprintf "dup-next %s %s" (string_of_ref a) (string_of_ref b)
  | Delay_next { a; b; by } ->
    Printf.sprintf "delay-next %s %s by=%g" (string_of_ref a) (string_of_ref b) by
  | Checkpoint -> "checkpoint"
  | Assert_delivery -> "assert-delivery"
  | Assert_no_loops -> "assert-no-loops"
  | Assert_mroute { node; pred } ->
    Printf.sprintf "assert-mroute %s %s" (string_of_ref node)
      (match pred with
      | Count_at_least n -> Printf.sprintf "count>=%d" n
      | Count_at_most n -> Printf.sprintf "count<=%d" n
      | Count_eq n -> Printf.sprintf "count=%d" n
      | Contains s -> Printf.sprintf "contains=%s" s)
  | Assert_drained -> "assert-drained"

let to_string p =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "scenario %s" p.name;
  (match p.topology with
  | Line n -> line "topology line %d" n
  | Random { nodes; degree; seed } ->
    line "topology random nodes=%d degree=%g seed=%d" nodes degree seed
  | Derived { seed; member_count } -> line "topology derived seed=%d members=%d" seed member_count);
  Option.iter (fun pr -> line "protocol %s" (Stack.to_string pr)) p.protocol;
  if p.rp <> [] then line "rp %s" (String.concat " " (List.map string_of_int p.rp));
  if p.rp_election then line "rp-election on";
  if p.members_decl <> [] then
    line "members %s" (String.concat " " (List.map string_of_int p.members_decl));
  Option.iter (fun s -> line "source %d" s) p.source_decl;
  Option.iter (fun f -> line "config switchover-fallback=%s" (if f then "on" else "off"))
    p.switchover_fallback;
  line "";
  List.iter (fun s -> line "%s" (string_of_step s)) p.steps;
  Buffer.contents b

(* {1 Parser} *)

(* Line-oriented: one directive or step per line, '#' starts a comment,
   tokens split on blanks, options are key=value tokens. *)

let parse_error ln fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" ln s)) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let split_opt tok =
  match String.index_opt tok '=' with
  | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> None

let int_of ln what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> parse_error ln "%s: expected an integer, got %S" what s

let float_of ln what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> parse_error ln "%s: expected a number, got %S" what s

let bool_of ln what s =
  match String.lowercase_ascii s with
  | "on" | "true" | "yes" -> Ok true
  | "off" | "false" | "no" -> Ok false
  | _ -> parse_error ln "%s: expected on|off, got %S" what s

let ref_of ln s =
  match String.lowercase_ascii s with
  | "members" -> Ok Members
  | "source" -> Ok Source
  | "rp" -> Ok Rp
  | _ -> (
    match int_of_string_opt s with
    | Some i -> Ok (Node i)
    | None -> parse_error ln "expected a node number or members|source|rp, got %S" s)

let refs_of ln toks =
  if toks = [] then parse_error ln "expected at least one node"
  else
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        let* r = ref_of ln tok in
        Ok (r :: acc))
      (Ok []) toks
    |> Result.map List.rev

let ints_of ln what toks =
  if toks = [] then parse_error ln "%s: expected at least one node" what
  else
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        let* i = int_of ln what tok in
        Ok (i :: acc))
      (Ok []) toks
    |> Result.map List.rev

(* key=value options with defaults; unknown keys are errors. *)
let options ln ~allowed toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match split_opt tok with
      | Some (k, v) when List.exists (String.equal k) allowed -> Ok ((k, v) :: acc)
      | Some (k, _) ->
        parse_error ln "unknown option %S (expected %s)" k (String.concat ", " allowed)
      | None -> parse_error ln "expected key=value options, got %S" tok)
    (Ok []) toks

let opt_int ln opts key ~default =
  match List.assoc_opt key opts with Some v -> int_of ln key v | None -> Ok default

let opt_float ln opts key ~default =
  match List.assoc_opt key opts with Some v -> float_of ln key v | None -> Ok default

let req ln opts key =
  match List.assoc_opt key opts with
  | Some v -> Ok v
  | None -> parse_error ln "missing required option %s=" key

let parse_mroute_pred ln tok =
  let tail prefix = String.sub tok (String.length prefix) (String.length tok - String.length prefix) in
  let starts prefix =
    String.length tok > String.length prefix && String.equal (String.sub tok 0 (String.length prefix)) prefix
  in
  if starts "count>=" then Result.map (fun n -> Count_at_least n) (int_of ln "count>=" (tail "count>="))
  else if starts "count<=" then Result.map (fun n -> Count_at_most n) (int_of ln "count<=" (tail "count<="))
  else if starts "count=" then Result.map (fun n -> Count_eq n) (int_of ln "count=" (tail "count="))
  else if starts "contains=" then Ok (Contains (tail "contains="))
  else parse_error ln "expected count>=N, count<=N, count=N or contains=STR, got %S" tok

let parse_step ln kw args =
  match (kw, args) with
  | "join", toks -> Result.map (fun rs -> Join rs) (refs_of ln toks)
  | "leave", toks -> Result.map (fun rs -> Leave rs) (refs_of ln toks)
  | "send", from :: opts ->
    let* from = ref_of ln from in
    let* opts = options ln ~allowed:[ "count"; "interval" ] opts in
    let* count = opt_int ln opts "count" ~default:1 in
    let* interval = opt_float ln opts "interval" ~default:0.5 in
    if count < 1 then parse_error ln "send: count must be >= 1"
    else Ok (Send { from; count; interval })
  | "send", [] -> parse_error ln "send: expected a sending node"
  | "advance", [ d ] ->
    let* d = float_of ln "advance" d in
    if d <= 0. then parse_error ln "advance: duration must be positive" else Ok (Advance d)
  | "advance", _ -> parse_error ln "advance: expected one duration"
  | "fail-link", [ a; b ] ->
    let* a = ref_of ln a in
    let* b = ref_of ln b in
    Ok (Fail_link (a, b))
  | "heal-link", [ a; b ] ->
    let* a = ref_of ln a in
    let* b = ref_of ln b in
    Ok (Heal_link (a, b))
  | ("fail-link" | "heal-link"), _ -> parse_error ln "%s: expected two endpoint nodes" kw
  | "fail-node", [ u ] -> Result.map (fun u -> Fail_node u) (ref_of ln u)
  | "restart", [ u ] -> Result.map (fun u -> Restart u) (ref_of ln u)
  | ("fail-node" | "restart"), _ -> parse_error ln "%s: expected one node" kw
  | "partition", toks -> Result.map (fun rs -> Partition rs) (refs_of ln toks)
  | "heal", [] -> Ok Heal
  | "heal", _ -> parse_error ln "heal takes no arguments"
  | "drop-next", [ a; b ] ->
    let* a = ref_of ln a in
    let* b = ref_of ln b in
    Ok (Drop_next (a, b))
  | "dup-next", [ a; b ] ->
    let* a = ref_of ln a in
    let* b = ref_of ln b in
    Ok (Dup_next (a, b))
  | ("drop-next" | "dup-next"), _ -> parse_error ln "%s: expected two endpoint nodes" kw
  | "delay-next", [ a; b; byopt ] ->
    let* a = ref_of ln a in
    let* b = ref_of ln b in
    let* opts = options ln ~allowed:[ "by" ] [ byopt ] in
    let* v = req ln opts "by" in
    let* by = float_of ln "by" v in
    Ok (Delay_next { a; b; by })
  | "delay-next", _ -> parse_error ln "delay-next: expected two endpoints and by=SECONDS"
  | "checkpoint", [] -> Ok Checkpoint
  | "assert-delivery", [] -> Ok Assert_delivery
  | "assert-no-loops", [] -> Ok Assert_no_loops
  | "assert-drained", [] -> Ok Assert_drained
  | ("checkpoint" | "assert-delivery" | "assert-no-loops" | "assert-drained"), _ ->
    parse_error ln "%s takes no arguments" kw
  | "assert-mroute", [ u; pred ] ->
    let* node = ref_of ln u in
    let* pred = parse_mroute_pred ln pred in
    Ok (Assert_mroute { node; pred })
  | "assert-mroute", _ -> parse_error ln "assert-mroute: expected a node and a predicate"
  | _ -> parse_error ln "unknown step %S" kw

let parse_topology ln args =
  match args with
  | [ "line"; n ] ->
    let* n = int_of ln "line" n in
    if n < 2 then parse_error ln "topology line: need at least 2 nodes" else Ok (Line n)
  | "random" :: opts ->
    let* opts = options ln ~allowed:[ "nodes"; "degree"; "seed" ] opts in
    let* v = req ln opts "nodes" in
    let* nodes = int_of ln "nodes" v in
    let* degree = opt_float ln opts "degree" ~default:4. in
    let* v = req ln opts "seed" in
    let* seed = int_of ln "seed" v in
    Ok (Random { nodes; degree; seed })
  | "derived" :: opts ->
    let* opts = options ln ~allowed:[ "seed"; "members" ] opts in
    let* v = req ln opts "seed" in
    let* seed = int_of ln "seed" v in
    let* member_count = opt_int ln opts "members" ~default:6 in
    Ok (Derived { seed; member_count })
  | _ -> parse_error ln "expected: topology line N | random nodes= degree= seed= | derived seed= members="

let parse text =
  let strip_comment l = match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim (strip_comment l)))
    |> List.filter (fun (_, l) -> not (String.equal l ""))
  in
  let tokens l = String.split_on_char ' ' l |> List.filter (fun t -> not (String.equal t "")) in
  List.fold_left
    (fun acc (ln, l) ->
      let* p = acc in
      match tokens l with
      | [] -> Ok p
      | kw :: args -> (
        match (kw, args) with
        | "scenario", [ name ] -> Ok { p with name }
        | "scenario", _ -> parse_error ln "scenario: expected one name"
        | "topology", args -> Result.map (fun t -> { p with topology = t }) (parse_topology ln args)
        | "protocol", [ s ] -> (
          match Stack.of_string s with
          | Some pr -> Ok { p with protocol = Some pr }
          | None ->
            parse_error ln "unknown protocol %S (expected %s)" s
              (String.concat ", " (List.map Stack.to_string Stack.all)))
        | "protocol", _ -> parse_error ln "protocol: expected one protocol name"
        | "rp", toks -> Result.map (fun rp -> { p with rp }) (ints_of ln "rp" toks)
        | "rp-election", [ v ] ->
          Result.map (fun b -> { p with rp_election = b }) (bool_of ln "rp-election" v)
        | "rp-election", _ -> parse_error ln "rp-election: expected on|off"
        | "members", toks ->
          Result.map (fun members_decl -> { p with members_decl }) (ints_of ln "members" toks)
        | "source", [ s ] ->
          Result.map (fun s -> { p with source_decl = Some s }) (int_of ln "source" s)
        | "source", _ -> parse_error ln "source: expected one node"
        | "config", opts ->
          let* opts = options ln ~allowed:[ "switchover-fallback" ] opts in
          let* p =
            match List.assoc_opt "switchover-fallback" opts with
            | Some v ->
              Result.map
                (fun b -> { p with switchover_fallback = Some b })
                (bool_of ln "switchover-fallback" v)
            | None -> Ok p
          in
          Ok p
        | _ -> Result.map (fun s -> { p with steps = s :: p.steps }) (parse_step ln kw args)))
    (Ok
       {
         name = "unnamed";
         topology = Line 2;
         protocol = None;
         rp = [];
         rp_election = false;
         members_decl = [];
         source_decl = None;
         switchover_fallback = None;
         steps = [];
       })
    lines
  |> Result.map (fun p -> { p with steps = List.rev p.steps })

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic n) in
  parse text

(* {1 Role resolution} *)

type context = {
  topo : Topology.t;
  nodes : int;
  decl_members : int list;  (** the [members] symbol *)
  source0 : int option;  (** the [source] symbol *)
  rp_nodes : int list;  (** ordered; head is the [rp] symbol *)
}

let context p =
  match p.topology with
  | Line n ->
    {
      topo = Pim_graph.Classic.line n;
      nodes = n;
      decl_members = p.members_decl;
      source0 = p.source_decl;
      rp_nodes = p.rp;
    }
  | Random { nodes; degree; seed } ->
    let prng = Prng.create seed in
    {
      topo = Random_graph.generate ~prng ~nodes ~degree ();
      nodes;
      decl_members = p.members_decl;
      source0 = p.source_decl;
      rp_nodes = p.rp;
    }
  | Derived { seed; member_count } ->
    (* The qcheck property's derivation, draw for draw (see
       Scenario.run): the same seed names the same topology, members,
       RP and source — and declared overrides shrink the member set
       without shifting the later draws. *)
    let prng = Prng.create seed in
    let nodes = 12 + Prng.int prng 14 in
    let topo = Random_graph.generate ~prng ~nodes ~degree:(3. +. Prng.float prng 2.) () in
    let derived_members = Random_graph.pick_members ~prng ~nodes ~count:member_count in
    let rp = List.nth derived_members (Prng.int prng member_count) in
    let source = Prng.int prng nodes in
    {
      topo;
      nodes;
      decl_members = (if p.members_decl <> [] then p.members_decl else derived_members);
      source0 = Some (Option.value p.source_decl ~default:source);
      rp_nodes = (if p.rp <> [] then p.rp else [ rp ]);
    }

(* {1 Runner} *)

type outcome = {
  protocol : string;
  nodes : int;
  members : int list;  (** membership when the run ended *)
  source : int option;
  digests : string list;  (** one per [checkpoint], in order *)
  violations : Oracle.violation list;
  deliveries : int;
  duplicates : int;
  residual : int;
  ok : bool;
}

let fail fmt = Printf.ksprintf (fun s -> invalid_arg ("scenario: " ^ s)) fmt

let run ?trace_file ?capture_file ?metrics_file ?protocol ?switchover_fallback (p : program) =
  let protocol =
    match (protocol, p.protocol) with
    | Some pr, _ | None, Some pr -> pr
    | None, None -> fail "no protocol: pass one or add a protocol directive"
  in
  let switchover_fallback =
    match (switchover_fallback, p.switchover_fallback) with
    | Some f, _ | None, Some f -> f
    | None, None -> true
  in
  let ctx = context p in
  let eng = Engine.create () in
  let net = Net.create eng ctx.topo in
  let capture = Option.map (fun _ -> Capture.attach net) capture_file in
  let trace = Trace.create eng in
  let stack =
    Stack.create ~rp:ctx.rp_nodes ~rp_election:p.rp_election ~switchover_fallback ~trace ~group
      ~net protocol
  in
  let oracle =
    (* Churn-tolerant bound while the scenario perturbs; [checkpoint]
       drops to the protocol's strict bound (same discipline as the
       chaos harness). *)
    Oracle.create ~max_copies:(stack.Stack.max_copies + 2) net ~probe_id:(fun pkt ->
        Option.map (fun (i : Mdata.info) -> i.Mdata.seq) (Mdata.info pkt))
  in
  let faults = Fault.install ~restart:stack.Stack.restart net [] in
  (* Delivery tally: seq -> member -> copies. *)
  let tally : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let deliveries = ref 0 in
  let duplicates = ref 0 in
  let current = Hashtbl.create 16 in
  let wired = Hashtbl.create 16 in
  let members () = Hashtbl.fold (fun m () acc -> m :: acc) current [] |> List.sort Int.compare in
  let deref1 what r =
    match r with
    | Node i ->
      if i < 0 || i >= ctx.nodes then fail "%s: node %d outside topology (%d nodes)" what i ctx.nodes;
      i
    | Members -> (
      match ctx.decl_members with
      | [ m ] -> m
      | _ -> fail "%s: 'members' names %d nodes, need exactly one" what (List.length ctx.decl_members))
    | Source -> (
      match ctx.source0 with
      | Some s -> s
      | None -> fail "%s: no source declared (add a source directive)" what)
    | Rp -> (
      match ctx.rp_nodes with
      | r :: _ -> r
      | [] -> fail "%s: no rp declared (add an rp directive)" what)
  in
  let deref_many what rs =
    List.concat_map
      (fun r -> match r with Members -> ctx.decl_members | r -> [ deref1 what r ])
      rs
    |> List.sort_uniq Int.compare
  in
  let link_between what a b =
    let a = deref1 what a and b = deref1 what b in
    let found =
      Array.to_list (Topology.links ctx.topo)
      |> List.find_opt (fun (l : Topology.link) ->
             Array.exists (Int.equal a) l.Topology.ends && Array.exists (Int.equal b) l.Topology.ends)
    in
    match found with
    | Some l -> l.Topology.id
    | None -> fail "%s: no link between %d and %d" what a b
  in
  let wire m =
    if not (Hashtbl.mem wired m) then begin
      Hashtbl.replace wired m ();
      stack.Stack.on_data m (fun pkt ->
          match Mdata.info pkt with
          | None -> ()
          | Some { Mdata.seq; _ } ->
            Oracle.note_received oracle ~node:m ~probe:seq;
            let per_member =
              match Hashtbl.find_opt tally seq with
              | Some tbl -> tbl
              | None ->
                let tbl = Hashtbl.create 8 in
                Hashtbl.replace tally seq tbl;
                tbl
            in
            let n = 1 + Option.value (Hashtbl.find_opt per_member m) ~default:0 in
            Hashtbl.replace per_member m n;
            incr deliveries;
            if n > 1 then incr duplicates)
    end
  in
  let now = ref 0. in
  (* Latest instant any scheduled send (plus a delivery bound) can still
     matter — the final drain runs to here, not to quiescence, because
     protocol refresh timers never stop. *)
  let horizon = ref 0. in
  let next_seq = ref 0 in
  let sender = ref None in
  let last_window = ref None in
  let digests = ref [] in
  let injected action = Trace.emit trace ~node:(-1) (Event.Fault_injected { action }) in
  let copies seq m =
    match Hashtbl.find_opt tally seq with
    | None -> 0
    | Some tbl -> Option.value (Hashtbl.find_opt tbl m) ~default:0
  in
  let exec step =
    match step with
    | Join rs ->
      List.iter
        (fun m ->
          if not (Hashtbl.mem current m) then begin
            wire m;
            Hashtbl.replace current m ();
            stack.Stack.join m
          end)
        (deref_many "join" rs)
    | Leave rs ->
      List.iter
        (fun m ->
          if Hashtbl.mem current m then begin
            Hashtbl.remove current m;
            stack.Stack.leave m
          end)
        (deref_many "leave" rs)
    | Send { from; count; interval } ->
      let u = deref1 "send" from in
      (* Probes are identified by the per-source data sequence number, so
         a scenario keeps to one sending node. *)
      (match !sender with
      | Some prev when prev <> u -> fail "send: one sending node per scenario (%d then %d)" prev u
      | _ -> sender := Some u);
      last_window := Some (!next_seq, count);
      next_seq := !next_seq + count;
      horizon := Float.max !horizon (!now +. (interval *. float_of_int count) +. 10.);
      for i = 0 to count - 1 do
        ignore
          (Engine.schedule_at eng
             (!now +. (interval *. float_of_int i))
             (fun () -> stack.Stack.send_from u))
      done
    | Advance d ->
      now := !now +. d;
      Engine.run ~until:!now eng
    | Fail_link (a, b) ->
      let lid = link_between "fail-link" a b in
      injected (Printf.sprintf "fail-link %d %d (link %d)" (deref1 "fail-link" a)
                  (deref1 "fail-link" b) lid);
      Fault.apply faults (Fault.Link_down lid)
    | Heal_link (a, b) ->
      let lid = link_between "heal-link" a b in
      injected (Printf.sprintf "heal-link %d %d (link %d)" (deref1 "heal-link" a)
                  (deref1 "heal-link" b) lid);
      Fault.apply faults (Fault.Link_up lid)
    | Fail_node u ->
      let u = deref1 "fail-node" u in
      injected (Printf.sprintf "fail-node %d" u);
      Net.set_node_up net u false
    | Restart u ->
      let u = deref1 "restart" u in
      injected (Printf.sprintf "restart %d" u);
      Net.set_node_up net u true;
      stack.Stack.restart u
    | Partition rs ->
      let us = deref_many "partition" rs in
      injected
        (Printf.sprintf "partition {%s}" (String.concat "," (List.map string_of_int us)));
      Fault.apply faults (Fault.Partition us)
    | Heal ->
      injected "heal";
      Fault.apply faults Fault.Heal
    | Drop_next (a, b) ->
      let lid = link_between "drop-next" a b in
      injected (Printf.sprintf "drop-next (link %d)" lid);
      Fault.apply faults (Fault.Drop_next lid)
    | Dup_next (a, b) ->
      let lid = link_between "dup-next" a b in
      injected (Printf.sprintf "dup-next (link %d)" lid);
      Fault.apply faults (Fault.Duplicate_next lid)
    | Delay_next { a; b; by } ->
      let lid = link_between "delay-next" a b in
      injected (Printf.sprintf "delay-next by=%g (link %d)" by lid);
      Fault.apply faults (Fault.Delay_next (lid, by))
    | Checkpoint ->
      let d = Stack.digest stack ~net ~members:(members ()) in
      digests := d :: !digests;
      Trace.emit trace ~node:(-1) (Event.Checkpoint_digest { digest = d });
      Oracle.checkpoint oracle ~max_copies:stack.Stack.max_copies
    | Assert_delivery -> (
      match !last_window with
      | None -> fail "assert-delivery: no send step before it"
      | Some (first, count) ->
        let window = List.init count (fun i -> first + i) in
        let ms = members () in
        List.iter
          (fun seq ->
            List.iter
              (fun m ->
                let c = copies seq m in
                if c <> 1 then
                  Oracle.record oracle ~invariant:"delivery"
                    (Printf.sprintf "member %d received %d copies of probe %d (want exactly 1)"
                       m c seq))
              ms)
          window;
        match !sender with
        | Some source -> Oracle.check_blackhole oracle ~source ~members:ms ~probes:window
        | None -> ())
    | Assert_no_loops ->
      (* On-wire loop freedom is checked continuously by the oracle tap;
         this step additionally runs the protocol's structural state
         checks at a point the scenario declares quiet. *)
      List.iter
        (fun (inv, f) -> Oracle.run_check oracle ~invariant:inv f)
        stack.Stack.state_checks
    | Assert_mroute { node; pred } ->
      let u = deref1 "assert-mroute" node in
      let lines = stack.Stack.mroute u in
      let n = List.length lines in
      let bad detail =
        Oracle.record oracle ~invariant:"mroute"
          (Printf.sprintf "node %d: %s (state: %s)" u detail
             (if lines = [] then "<empty>" else String.concat " | " lines))
      in
      (match pred with
      | Count_at_least k -> if n < k then bad (Printf.sprintf "%d entries, want >= %d" n k)
      | Count_at_most k -> if n > k then bad (Printf.sprintf "%d entries, want <= %d" n k)
      | Count_eq k -> if n <> k then bad (Printf.sprintf "%d entries, want exactly %d" n k)
      | Contains s ->
        let contains_sub hay needle =
          let nh = String.length hay and nn = String.length needle in
          nn = 0
          || (nh >= nn
             && List.exists
                  (fun i -> String.equal (String.sub hay i nn) needle)
                  (List.init (nh - nn + 1) Fun.id))
        in
        if not (List.exists (fun l -> contains_sub l s) lines) then
          bad (Printf.sprintf "no entry contains %S" s))
    | Assert_drained ->
      let residual = stack.Stack.entries () in
      if residual > stack.Stack.residual_floor then
        Oracle.record oracle ~invariant:"orphaned-state"
          (Printf.sprintf "%d state entries remain (floor %d)" residual
             stack.Stack.residual_floor)
  in
  List.iter exec p.steps;
  (* Drain whatever the last step scheduled (sends, in-flight frames). *)
  Engine.run ~until:(Float.max !now !horizon) eng;
  let residual = stack.Stack.entries () in
  Option.iter (fun path -> Capture.save path (Capture.entries (Option.get capture))) capture_file;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Trace.dump_jsonl oc trace))
    trace_file;
  Option.iter
    (fun path -> Pim_util.Json.to_file path (Pim_util.Metrics.to_json (Net.metrics net)))
    metrics_file;
  let violations = Oracle.violations oracle in
  {
    protocol = stack.Stack.name;
    nodes = ctx.nodes;
    members = members ();
    source = ctx.source0;
    digests = List.rev !digests;
    violations;
    deliveries = !deliveries;
    duplicates = !duplicates;
    residual;
    ok = violations = [];
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s: %d nodes, members {%s}, %d deliveries (%d dup), residual %d@." o.protocol
    o.nodes
    (String.concat "," (List.map string_of_int o.members))
    o.deliveries o.duplicates o.residual;
  List.iteri (fun i d -> Format.fprintf ppf "checkpoint %d: %s@." i d) o.digests;
  if o.violations = [] then Format.fprintf ppf "ok: no violations@."
  else begin
    Format.fprintf ppf "%d violation(s):@." (List.length o.violations);
    List.iter (fun v -> Format.fprintf ppf "  %a@." Oracle.pp_violation v) o.violations
  end
