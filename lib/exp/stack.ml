module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Topology = Pim_graph.Topology
module Fwd = Pim_mcast.Fwd

type protocol = Pim_sm | Pim_dm | Dvmrp | Cbt | Mospf

let all = [ Pim_sm; Pim_dm; Dvmrp; Cbt; Mospf ]

let to_string = function
  | Pim_sm -> "PIM-SM"
  | Pim_dm -> "PIM-DM"
  | Dvmrp -> "DVMRP"
  | Cbt -> "CBT"
  | Mospf -> "MOSPF"

let of_string s =
  match String.lowercase_ascii s with
  | "pim-sm" | "pimsm" | "sm" -> Some Pim_sm
  | "pim-dm" | "pimdm" | "dm" -> Some Pim_dm
  | "dvmrp" -> Some Dvmrp
  | "cbt" -> Some Cbt
  | "mospf" -> Some Mospf
  | _ -> None

type t = {
  protocol : protocol;
  name : string;
  join : Topology.node -> unit;
  leave : Topology.node -> unit;
  on_data : Topology.node -> (Pim_net.Packet.t -> unit) -> unit;
  send_from : Topology.node -> unit;
  entries : unit -> int;
  restart : Topology.node -> unit;
  state_checks : (string * (unit -> string list)) list;
  mroute : Topology.node -> string list;
  max_copies : int;
  residual_floor : int;
  spt_switches : unit -> int;
}

(* Settle bounds in virtual seconds under each protocol's fast config:
   how long after a perturbation (or a membership change) the deployment
   needs before a probe window is a fair test.  Mirrors the chaos
   harness's recover_wait reasoning; constants so the explorer can plan
   without instantiating a deployment. *)
let settle_hint ?(rp_election = false) ?(hops = 8) protocol =
  match protocol with
  | Pim_sm ->
    let c = Pim_core.Config.fast in
    (5. *. c.Pim_core.Config.jp_period)
    +.
    if rp_election then
      Pim_core.Bsr.failover_budget Pim_core.Bsr.fast +. c.Pim_core.Config.rp_timeout
    else 0.
  | Pim_dm | Dvmrp ->
    let c = Pim_dense.Router.fast_config in
    c.Pim_dense.Router.prune_timeout +. c.Pim_dense.Router.entry_linger +. 5.
  | Cbt ->
    (* CBT is explicit-ack hard state: after a core restart the orphaned
       subtree only discovers the severed parent hop by hop, each level
       waiting out its own parent_timeout before flushing (the deliberate
       slow-heal contrast with PIM's soft state, paper footnote 4).  The
       bound therefore scales with tree depth: [hops] levels of teardown
       plus one rejoin/echo cycle. *)
    let c = Pim_cbt.Router.fast_config in
    (float_of_int hops *. c.Pim_cbt.Router.parent_timeout)
    +. c.Pim_cbt.Router.rejoin_delay
    +. (3. *. c.Pim_cbt.Router.echo_interval)
  | Mospf -> 15.

(* {1 Shared state checks} *)

let entry_target (e : Fwd.entry) =
  match e.Fwd.source with Some s when not e.Fwd.rp_bit -> Some s | _ -> e.Fwd.rp

(* PIM structural invariants phrased over any deployment exposing per-node
   FIBs: iif agrees with the RPF interface toward the entry's target, and
   every live non-local oif feeds matching downstream state.  Used by both
   the chaos harness and the scenario DSL. *)
let pim_state_checks ~net ~rib ~fib =
  let topo = Net.topo net in
  let eng = Net.engine net in
  let n = Topology.n_nodes topo in
  let iif_check () =
    let problems = ref [] in
    for u = 0 to n - 1 do
      if Net.node_up net u then
        List.iter
          (fun (e : Fwd.entry) ->
            match entry_target e with
            | None -> ()
            | Some target ->
              let expected = Pim_routing.Rib.rpf_iface (rib u) target in
              if e.Fwd.iif <> expected then
                problems :=
                  Format.asprintf "node %d %a: iif disagrees with RPF toward %s (want %s)" u
                    Fwd.pp_entry e (Addr.to_string target)
                    (match expected with None -> "-" | Some i -> string_of_int i)
                  :: !problems)
          (Fwd.entries (fib u))
    done;
    !problems
  in
  let stale_oif_check () =
    let problems = ref [] in
    let nw = Engine.now eng in
    for u = 0 to n - 1 do
      if Net.node_up net u then
        List.iter
          (fun (e : Fwd.entry) ->
            if Fwd.is_star e || not e.Fwd.rp_bit then
              List.iter
                (fun (o : Fwd.oif) ->
                  if (not o.Fwd.local) && o.Fwd.iface >= 0 && o.Fwd.expires > nw then begin
                    let link = Topology.link_of_iface topo u o.Fwd.iface in
                    if Net.link_up net link.Topology.id then begin
                      let fed =
                        Topology.others_on_link topo link.Topology.id u
                        |> List.exists (fun v ->
                               Net.node_up net v
                               &&
                               let viface = Topology.iface_of_link topo v link.Topology.id in
                               let vfib = fib v in
                               let candidates =
                                 match e.Fwd.source with
                                 | None -> [ Fwd.find_star vfib e.Fwd.group ]
                                 | Some s ->
                                   [ Fwd.find_sg vfib e.Fwd.group s; Fwd.find_star vfib e.Fwd.group ]
                               in
                               List.exists
                                 (function
                                   | Some (de : Fwd.entry) -> de.Fwd.iif = Some viface
                                   | None -> false)
                                 candidates)
                      in
                      if not fed then
                        problems :=
                          Format.asprintf "node %d %a: oif %d feeds no downstream state on link %d"
                            u Fwd.pp_entry e o.Fwd.iface link.Topology.id
                          :: !problems
                    end
                  end)
                e.Fwd.oifs)
          (Fwd.entries (fib u))
    done;
    !problems
  in
  [ ("iif-consistency", iif_check); ("stale-oif", stale_oif_check) ]

(* {1 Per-protocol constructors} *)

let fwd_mroute fib u = List.map (Format.asprintf "%a" Fwd.pp_entry) (Fwd.entries (fib u))

let pim_sm_stack ?(rp_election = false) ?(switchover_fallback = true) ?trace ~group ~rp net =
  if rp = [] then invalid_arg "Stack.create: PIM-SM needs at least one RP";
  let config =
    { Pim_core.Config.fast with Pim_core.Config.switchover_fallback }
  in
  let static = Pim_routing.Static.create net in
  let ribs = Pim_routing.Static.rib static in
  let bsr, rp_set =
    if rp_election then begin
      (* The RP list becomes C-RP roles (priority = list position) and the
         first two non-RP routers become C-BSRs, so the scenario's RP set
         emerges from a live election instead of configuration. *)
      let n_nodes = Topology.n_nodes (Net.topo net) in
      let placement = [ (group, List.map Addr.router rp) ] in
      let cbsrs =
        List.init n_nodes Fun.id
        |> List.filter (fun u -> not (List.mem u rp))
        |> List.filteri (fun i _ -> i < 2)
        |> List.mapi (fun i u -> (u, 2 - i))
      in
      let roles = Pim_core.Placement.roles placement ~n_nodes ~cbsrs in
      let b = Pim_core.Bsr.deploy ~config:Pim_core.Bsr.fast ~net ~ribs ~roles () in
      (Some b, Pim_core.Rp_set.empty)
    end
    else (None, Pim_core.Rp_set.of_list [ (group, List.map Addr.router rp) ])
  in
  let d = Pim_core.Deployment.create ~config ?bsr ?trace ~net ~ribs ~rp_set () in
  let router u = Pim_core.Deployment.router d u in
  let fib u = Pim_core.Router.fib (router u) in
  {
    protocol = Pim_sm;
    name = to_string Pim_sm;
    join = (fun m -> Pim_core.Router.join_local (router m) group);
    leave = (fun m -> Pim_core.Router.leave_local (router m) group);
    on_data = (fun m cb -> Pim_core.Router.on_local_data (router m) cb);
    send_from = (fun u -> Pim_core.Router.send_local_data (router u) ~group ());
    entries = (fun () -> Pim_core.Deployment.total_entries d);
    restart =
      (fun u ->
        Pim_core.Router.restart (router u);
        Option.iter (fun b -> Pim_core.Bsr.restart b u) bsr);
    state_checks = pim_state_checks ~net ~rib:ribs ~fib;
    mroute = fwd_mroute fib;
    max_copies = 1;
    residual_floor = 0;
    spt_switches = (fun () -> (Pim_core.Deployment.total_stats d).Pim_core.Router.spt_switches);
  }

let dense_stack ~mode ?trace ~group net =
  let config = { Pim_dense.Router.fast_config with mode; graft = true } in
  let d = Pim_dense.Router.Deployment.create_static ~config ?trace net in
  let router u = Pim_dense.Router.Deployment.router d u in
  let protocol = match mode with Pim_dense.Router.Pim_dm -> Pim_dm | Pim_dense.Router.Dvmrp -> Dvmrp in
  {
    protocol;
    name = to_string protocol;
    join = (fun m -> Pim_dense.Router.join_local (router m) group);
    leave = (fun m -> Pim_dense.Router.leave_local (router m) group);
    on_data = (fun m cb -> Pim_dense.Router.on_local_data (router m) cb);
    send_from = (fun u -> Pim_dense.Router.send_local_data (router u) ~group ());
    entries = (fun () -> Pim_dense.Router.Deployment.total_entries d);
    restart = (fun u -> Pim_dense.Router.restart (router u));
    state_checks = [];
    mroute = (fun u -> fwd_mroute (fun v -> Pim_dense.Router.fib (router v)) u);
    (* Broadcast-and-prune legitimately puts one copy per link direction
       on the wire (the flood, then the re-flood after grow-back). *)
    max_copies = 2;
    residual_floor = 0;
    spt_switches = (fun () -> 0);
  }

let cbt_stack ?trace ~group ~core net =
  let config = Pim_cbt.Router.fast_config in
  let core_of g = if Group.equal g group then Some (Addr.router core) else None in
  let d = Pim_cbt.Router.Deployment.create_static ~config ?trace net ~core_of in
  let router u = Pim_cbt.Router.Deployment.router d u in
  {
    protocol = Cbt;
    name = to_string Cbt;
    join = (fun m -> Pim_cbt.Router.join_local (router m) group);
    leave = (fun m -> Pim_cbt.Router.leave_local (router m) group);
    on_data = (fun m cb -> Pim_cbt.Router.on_local_data (router m) cb);
    send_from = (fun u -> Pim_cbt.Router.send_local_data (router u) ~group ());
    entries = (fun () -> Pim_cbt.Router.Deployment.total_entries d);
    restart = (fun u -> Pim_cbt.Router.restart (router u));
    state_checks = [];
    mroute =
      (fun u ->
        let r = router u in
        if Pim_cbt.Router.on_tree r group then
          [
            Printf.sprintf "%s ifaces={%s}" (Group.to_string group)
              (Pim_cbt.Router.tree_ifaces r group
              |> List.sort Int.compare |> List.map string_of_int |> String.concat ",");
          ]
        else []);
    max_copies = 1;
    (* The core never tears down its own entry. *)
    residual_floor = 1;
    spt_switches = (fun () -> 0);
  }

let mospf_stack ?trace ~group net =
  let d = Pim_mospf.Router.Deployment.create ?trace ~lsa_refresh:5. net in
  let router u = Pim_mospf.Router.Deployment.router d u in
  let n = Topology.n_nodes (Net.topo net) in
  {
    protocol = Mospf;
    name = to_string Mospf;
    join = (fun m -> Pim_mospf.Router.join_local (router m) group);
    leave = (fun m -> Pim_mospf.Router.leave_local (router m) group);
    on_data = (fun m cb -> Pim_mospf.Router.on_local_data (router m) cb);
    send_from = (fun u -> Pim_mospf.Router.send_local_data (router u) ~group ());
    entries = (fun () -> Pim_mospf.Router.Deployment.total_membership_entries d);
    restart = (fun u -> Pim_mospf.Router.restart (router u));
    state_checks = [];
    mroute =
      (fun u ->
        let known =
          List.init n Fun.id
          |> List.filter (fun m -> Pim_mospf.Router.knows_member (router u) m group)
        in
        match known with
        | [] -> []
        | ms ->
          [
            Printf.sprintf "%s members={%s}" (Group.to_string group)
              (String.concat "," (List.map string_of_int ms));
          ]);
    max_copies = 1;
    residual_floor = 0;
    spt_switches = (fun () -> 0);
  }

let create ?(rp = []) ?(rp_election = false) ?(switchover_fallback = true) ?trace ~group ~net
    protocol =
  match protocol with
  | Pim_sm -> pim_sm_stack ~rp_election ~switchover_fallback ?trace ~group ~rp net
  | Pim_dm -> dense_stack ~mode:Pim_dense.Router.Pim_dm ?trace ~group net
  | Dvmrp -> dense_stack ~mode:Pim_dense.Router.Dvmrp ?trace ~group net
  | Cbt -> (
    match rp with
    | core :: _ -> cbt_stack ?trace ~group ~core net
    | [] -> invalid_arg "Stack.create: CBT needs an rp/core node")
  | Mospf -> mospf_stack ?trace ~group net

(* {1 Multi-group deployments}

   One deployment per protocol, one [t] view per group — the form the
   workload harness needs (dozens of Zipf-popular groups over thousands
   of routers; a deployment per group would multiply every router's
   timer load by the group count).  Views share entries/restart/
   state_checks/spt_switches; join/leave/send_from/mroute act per group,
   and on_data callbacks fire only for the view's group. *)

let rp_nodes_for ~placement ~protocol group =
  match List.find_opt (fun (g, _) -> Group.equal g group) placement with
  | Some (_, (_ :: _ as nodes)) -> nodes
  | Some (_, []) | None ->
    invalid_arg
      (Printf.sprintf "Stack.create_many: %s needs an RP/core placement for group %s"
         (to_string protocol) (Group.to_string group))

(* Dispatch a local-delivery callback only for the view's group.  Every
   protocol hands decapsulated multicast data to its local callbacks, so
   the group is readable off the packet; anything unreadable is not data
   for this group. *)
let group_filtered group cb pkt =
  match Pim_mcast.Mdata.group pkt with
  | Some g when Group.equal g group -> cb pkt
  | Some _ | None -> ()

let pim_sm_many ?(rp_election = false) ?(switchover_fallback = true) ?trace ~placement ~groups
    net =
  let rps_of g = rp_nodes_for ~placement ~protocol:Pim_sm g in
  let addr_placement = List.map (fun g -> (g, List.map Addr.router (rps_of g))) groups in
  let config = { Pim_core.Config.fast with Pim_core.Config.switchover_fallback } in
  let static = Pim_routing.Static.create net in
  let ribs = Pim_routing.Static.rib static in
  let bsr, rp_set =
    if rp_election then begin
      (* Every distinct RP node becomes a C-RP advertising exactly the
         groups it is placed for (Placement.roles groups the placement by
         node); the first two non-RP routers become C-BSRs.  The whole
         group-to-RP mapping then emerges from the live election — the
         multi-RP sharding path the BSR hash mapping implements. *)
      let n_nodes = Topology.n_nodes (Net.topo net) in
      let all_rps = List.sort_uniq Int.compare (List.concat_map rps_of groups) in
      let cbsrs =
        List.init n_nodes Fun.id
        |> List.filter (fun u -> not (List.mem u all_rps))
        |> List.filteri (fun i _ -> i < 2)
        |> List.mapi (fun i u -> (u, 2 - i))
      in
      let roles = Pim_core.Placement.roles addr_placement ~n_nodes ~cbsrs in
      let b = Pim_core.Bsr.deploy ~config:Pim_core.Bsr.fast ~net ~ribs ~roles () in
      (Some b, Pim_core.Rp_set.empty)
    end
    else (None, Pim_core.Rp_set.of_list addr_placement)
  in
  let d = Pim_core.Deployment.create ~config ?bsr ?trace ~net ~ribs ~rp_set () in
  let router u = Pim_core.Deployment.router d u in
  let fib u = Pim_core.Router.fib (router u) in
  let checks = pim_state_checks ~net ~rib:ribs ~fib in
  let view group =
    {
      protocol = Pim_sm;
      name = to_string Pim_sm;
      join = (fun m -> Pim_core.Router.join_local (router m) group);
      leave = (fun m -> Pim_core.Router.leave_local (router m) group);
      on_data = (fun m cb -> Pim_core.Router.on_local_data (router m) (group_filtered group cb));
      send_from = (fun u -> Pim_core.Router.send_local_data (router u) ~group ());
      entries = (fun () -> Pim_core.Deployment.total_entries d);
      restart =
        (fun u ->
          Pim_core.Router.restart (router u);
          Option.iter (fun b -> Pim_core.Bsr.restart b u) bsr);
      state_checks = checks;
      mroute = fwd_mroute fib;
      max_copies = 1;
      residual_floor = 0;
      spt_switches =
        (fun () -> (Pim_core.Deployment.total_stats d).Pim_core.Router.spt_switches);
    }
  in
  List.map (fun g -> (g, view g)) groups

let dense_many ~mode ?trace ~groups net =
  let config = { Pim_dense.Router.fast_config with mode; graft = true } in
  let d = Pim_dense.Router.Deployment.create_static ~config ?trace net in
  let router u = Pim_dense.Router.Deployment.router d u in
  let protocol = match mode with Pim_dense.Router.Pim_dm -> Pim_dm | Pim_dense.Router.Dvmrp -> Dvmrp in
  let view group =
    {
      protocol;
      name = to_string protocol;
      join = (fun m -> Pim_dense.Router.join_local (router m) group);
      leave = (fun m -> Pim_dense.Router.leave_local (router m) group);
      on_data = (fun m cb -> Pim_dense.Router.on_local_data (router m) (group_filtered group cb));
      send_from = (fun u -> Pim_dense.Router.send_local_data (router u) ~group ());
      entries = (fun () -> Pim_dense.Router.Deployment.total_entries d);
      restart = (fun u -> Pim_dense.Router.restart (router u));
      state_checks = [];
      mroute = (fun u -> fwd_mroute (fun v -> Pim_dense.Router.fib (router v)) u);
      max_copies = 2;
      residual_floor = 0;
      spt_switches = (fun () -> 0);
    }
  in
  List.map (fun g -> (g, view g)) groups

let cbt_many ?trace ~placement ~groups net =
  let core_node g = List.hd (rp_nodes_for ~placement ~protocol:Cbt g) in
  (* Force the lookup for every group up front so a missing placement
     raises at construction, not mid-run. *)
  let cores = List.map (fun g -> (g, core_node g)) groups in
  let config = Pim_cbt.Router.fast_config in
  let core_of g =
    List.find_opt (fun (g', _) -> Group.equal g g') cores
    |> Option.map (fun (_, core) -> Addr.router core)
  in
  let d = Pim_cbt.Router.Deployment.create_static ~config ?trace net ~core_of in
  let router u = Pim_cbt.Router.Deployment.router d u in
  let view group =
    {
      protocol = Cbt;
      name = to_string Cbt;
      join = (fun m -> Pim_cbt.Router.join_local (router m) group);
      leave = (fun m -> Pim_cbt.Router.leave_local (router m) group);
      on_data = (fun m cb -> Pim_cbt.Router.on_local_data (router m) (group_filtered group cb));
      send_from = (fun u -> Pim_cbt.Router.send_local_data (router u) ~group ());
      entries = (fun () -> Pim_cbt.Router.Deployment.total_entries d);
      restart = (fun u -> Pim_cbt.Router.restart (router u));
      state_checks = [];
      mroute =
        (fun u ->
          let r = router u in
          if Pim_cbt.Router.on_tree r group then
            [
              Printf.sprintf "%s ifaces={%s}" (Group.to_string group)
                (Pim_cbt.Router.tree_ifaces r group
                |> List.sort Int.compare |> List.map string_of_int |> String.concat ",");
            ]
          else []);
      max_copies = 1;
      residual_floor = 1;
      spt_switches = (fun () -> 0);
    }
  in
  List.map (fun g -> (g, view g)) groups

let mospf_many ?trace ~groups net =
  let d = Pim_mospf.Router.Deployment.create ?trace ~lsa_refresh:5. net in
  let router u = Pim_mospf.Router.Deployment.router d u in
  let n = Topology.n_nodes (Net.topo net) in
  let view group =
    {
      protocol = Mospf;
      name = to_string Mospf;
      join = (fun m -> Pim_mospf.Router.join_local (router m) group);
      leave = (fun m -> Pim_mospf.Router.leave_local (router m) group);
      on_data = (fun m cb -> Pim_mospf.Router.on_local_data (router m) (group_filtered group cb));
      send_from = (fun u -> Pim_mospf.Router.send_local_data (router u) ~group ());
      entries = (fun () -> Pim_mospf.Router.Deployment.total_membership_entries d);
      restart = (fun u -> Pim_mospf.Router.restart (router u));
      state_checks = [];
      mroute =
        (fun u ->
          let known =
            List.init n Fun.id
            |> List.filter (fun m -> Pim_mospf.Router.knows_member (router u) m group)
          in
          match known with
          | [] -> []
          | ms ->
            [
              Printf.sprintf "%s members={%s}" (Group.to_string group)
                (String.concat "," (List.map string_of_int ms));
            ]);
      max_copies = 1;
      residual_floor = 0;
      spt_switches = (fun () -> 0);
    }
  in
  List.map (fun g -> (g, view g)) groups

let create_many ?(placement = []) ?(rp_election = false) ?(switchover_fallback = true) ?trace
    ~groups ~net protocol =
  match protocol with
  | Pim_sm -> pim_sm_many ~rp_election ~switchover_fallback ?trace ~placement ~groups net
  | Pim_dm -> dense_many ~mode:Pim_dense.Router.Pim_dm ?trace ~groups net
  | Dvmrp -> dense_many ~mode:Pim_dense.Router.Dvmrp ?trace ~groups net
  | Cbt -> cbt_many ?trace ~placement ~groups net
  | Mospf -> mospf_many ?trace ~groups net

(* {1 State digest} *)

(* Canonical rendering of the global protocol state: per live node its
   timer-free mroute lines, plus the live-topology bitmap and member set.
   Two runs reaching the same digest are (for exploration purposes) in
   the same state — the dedup key `pimsim explore` prunes on, and the
   comparison key the future differential-verification work diffs on.
   Digest.string is MD5 from the stdlib: stable across runs and builds,
   no new dependency. *)
let digest t ~net ~members =
  let topo = Net.topo net in
  let n = Topology.n_nodes topo in
  let buf = Buffer.create 1024 in
  for u = 0 to n - 1 do
    if Net.node_up net u then begin
      Buffer.add_string buf (Printf.sprintf "node %d\n" u);
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        (t.mroute u)
    end
    else Buffer.add_string buf (Printf.sprintf "node %d down\n" u)
  done;
  for lid = 0 to Topology.n_links topo - 1 do
    Buffer.add_char buf (if Net.link_up net lid then '1' else '0')
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "," (List.map string_of_int (List.sort_uniq Int.compare members)));
  Digest.to_hex (Digest.string (Buffer.contents buf))
