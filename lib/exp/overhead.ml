module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Random_graph = Pim_graph.Random_graph

type row = {
  protocol : string;
  fraction : float;
  members : int;
  data_traversals : int;
  control_traversals : int;
  state_entries : int;
  deliveries : int;
  expected_deliveries : int;
  spf_runs : int;
}

let group = Group.of_index 42

type setup = {
  join : int -> (unit -> unit) -> unit;  (* member node, delivery callback *)
  send : unit -> unit;  (* one packet from the source *)
  entries : unit -> int;
  spf : unit -> int;
}

(* One protocol, one membership set, one sending schedule; returns the
   overhead counters. *)
let run_protocol ~name ~topo ~members ~fraction ~packets ~interval ~(build : Net.t -> int -> setup)
    ~source =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let s = build net source in
  let deliveries = ref 0 in
  List.iter (fun m -> s.join m (fun () -> incr deliveries)) members;
  (* Control is counted from t=0 so that protocols paying their cost up
     front (MOSPF's membership flooding, CBT's tree building) are charged
     for it; no data flows during the warm-up, so data counts are
     unaffected. *)
  for i = 0 to packets - 1 do
    ignore (Engine.schedule_at eng (30. +. (interval *. float_of_int i)) s.send)
  done;
  Engine.run ~until:(50. +. (interval *. float_of_int packets)) eng;
  {
    protocol = name;
    fraction;
    members = List.length members;
    data_traversals = Metrics.data_traversals metrics;
    control_traversals = Metrics.control_traversals metrics;
    state_entries = s.entries ();
    deliveries = !deliveries;
    expected_deliveries = packets * List.length members;
    spf_runs = s.spf ();
  }

let pim_setup ~spt_policy ~rp net source =
  let config = Pim_core.Config.(with_spt_policy spt_policy fast) in
  let rp_set = Pim_core.Rp_set.single group (Addr.router rp) in
  let d = Pim_core.Deployment.create_static ~config net ~rp_set in
  {
    join =
      (fun m cb ->
        let r = Pim_core.Deployment.router d m in
        Pim_core.Router.join_local r group;
        Pim_core.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun () ->
        Pim_core.Router.send_local_data (Pim_core.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_core.Deployment.total_entries d);
    spf = (fun () -> 0);
  }

let dense_setup ~mode net source =
  let config = { Pim_dense.Router.fast_config with mode } in
  let d = Pim_dense.Router.Deployment.create_static ~config net in
  {
    join =
      (fun m cb ->
        let r = Pim_dense.Router.Deployment.router d m in
        Pim_dense.Router.join_local r group;
        Pim_dense.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun () ->
        Pim_dense.Router.send_local_data (Pim_dense.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_dense.Router.Deployment.total_entries d);
    spf = (fun () -> 0);
  }

let cbt_setup ~core net source =
  let core_of g = if Group.equal g group then Some (Addr.router core) else None in
  let d = Pim_cbt.Router.Deployment.create_static ~config:Pim_cbt.Router.fast_config net ~core_of in
  {
    join =
      (fun m cb ->
        let r = Pim_cbt.Router.Deployment.router d m in
        Pim_cbt.Router.join_local r group;
        Pim_cbt.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun () ->
        Pim_cbt.Router.send_local_data (Pim_cbt.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_cbt.Router.Deployment.total_entries d);
    spf = (fun () -> 0);
  }

let mospf_setup net source =
  let d = Pim_mospf.Router.Deployment.create net in
  {
    join =
      (fun m cb ->
        let r = Pim_mospf.Router.Deployment.router d m in
        Pim_mospf.Router.join_local r group;
        Pim_mospf.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun () ->
        Pim_mospf.Router.send_local_data (Pim_mospf.Router.Deployment.router d source) ~group ());
    entries = (fun () -> Pim_mospf.Router.Deployment.total_membership_entries d);
    spf = (fun () -> (Pim_mospf.Router.Deployment.total_stats d).Pim_mospf.Router.spf_runs);
  }

let run ?(nodes = 50) ?(degree = 4.) ?(packets = 30) ?(interval = 1.)
    ?(fractions = [ 0.04; 0.1; 0.2; 0.4; 0.8 ]) ~seed () =
  List.concat_map
    (fun fraction ->
      (* Same topology and membership for every protocol at this point of
         the sweep. *)
      let prng = Prng.create (seed + int_of_float (fraction *. 1000.)) in
      let topo = Random_graph.generate ~prng ~nodes ~degree () in
      let count = max 1 (int_of_float (Float.round (fraction *. float_of_int nodes))) in
      let members = Random_graph.pick_members ~prng ~nodes ~count in
      let source =
        (* A fixed sender outside the member set when possible. *)
        match List.find_opt (fun u -> not (List.mem u members)) (List.init nodes Fun.id) with
        | Some u -> u
        | None -> 0
      in
      let rp = List.hd members in
      let go name build = run_protocol ~name ~topo ~members ~fraction ~packets ~interval ~build ~source in
      [
        go "PIM-SM (SPT)" (pim_setup ~spt_policy:Pim_core.Config.Immediate ~rp);
        go "PIM-SM (shared)" (pim_setup ~spt_policy:Pim_core.Config.Never ~rp);
        go "DVMRP" (dense_setup ~mode:Pim_dense.Router.Dvmrp);
        go "PIM-DM" (dense_setup ~mode:Pim_dense.Router.Pim_dm);
        go "CBT" (cbt_setup ~core:rp);
        go "MOSPF" mospf_setup;
      ])
    fractions
  (* Canonical report order: ascending fraction, protocols in the fixed
     order above within each fraction (stable sort), independent of how
     the caller ordered the sweep list. *)
  |> List.stable_sort (fun a b -> Float.compare a.fraction b.fraction)

let pp_rows ppf rows =
  Format.fprintf ppf
    "# E1: overhead vs membership density (one group, one source, identical schedule)@.";
  Format.fprintf ppf "# %-16s %5s %4s %6s %8s %6s %9s %7s %5s@." "protocol" "frac" "mem" "data"
    "control" "state" "delivered" "expect" "spf";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-16s %5.2f %4d %6d %8d %6d %9d %7d %5d@." r.protocol r.fraction
        r.members r.data_traversals r.control_traversals r.state_entries r.deliveries
        r.expected_deliveries r.spf_runs)
    rows
