module Prng = Pim_util.Prng
module Bitset = Pim_util.Bitset
module Topology = Pim_graph.Topology
module Spt = Pim_graph.Spt
module Random_graph = Pim_graph.Random_graph

type row = {
  degree : float;
  spt_max_flows : float;
  cbt_max_flows : float;
  spt_stddev : float;
  cbt_stddev : float;
  trials : int;
}

let sat_add a b = if a = max_int || b = max_int then max_int else a + b

(* Optimal core for the group: minimise the worst sender-to-receiver delay
   max_s d(s,c) + max_r d(c,r) over all candidate nodes.  Distances are
   read from the per-node trees (symmetric link costs).  Cores that cannot
   reach every sender and member are considered only if no candidate
   reaches them all (partitioned topology), in which case the candidate
   missing the fewest endpoints — reachable eccentricity as tie-break —
   wins; the additions saturate at [max_int] so an unreachable endpoint can
   never wrap negative and "win" the minimisation. *)
let optimal_core trees ~senders ~members =
  let n = Array.length trees in
  let eccentricity c towards =
    List.fold_left (fun acc v -> max acc trees.(c).Spt.dist.(v)) 0 towards
  in
  let best = ref (-1) and best_d = ref max_int in
  for c = 0 to n - 1 do
    let d = sat_add (eccentricity c senders) (eccentricity c members) in
    if d < max_int && d < !best_d then begin
      best := c;
      best_d := d
    end
  done;
  if !best >= 0 then !best
  else begin
    (* No candidate reaches everyone: fall back to the fewest unreachable
       endpoints, then the smallest reachable eccentricity sum. *)
    let missing c towards =
      List.fold_left
        (fun acc v -> if trees.(c).Spt.dist.(v) = max_int then acc + 1 else acc)
        0 towards
    in
    let reach_ecc c towards =
      List.fold_left
        (fun acc v ->
          let d = trees.(c).Spt.dist.(v) in
          if d = max_int then acc else max acc d)
        0 towards
    in
    let best = ref 0 and best_miss = ref max_int and best_d = ref max_int in
    for c = 0 to n - 1 do
      let miss = missing c senders + missing c members in
      let d = reach_ecc c senders + reach_ecc c members in
      if miss < !best_miss || (miss = !best_miss && d < !best_d) then begin
        best := c;
        best_miss := miss;
        best_d := d
      end
    done;
    !best
  end

(* Scratch buffers reused across the [groups] iterations of one network
   trial, so the inner loop allocates nothing per group beyond the group
   itself. *)
type group_scratch = {
  mark : int array;  (** per-sender visited epoch for the SPT walk *)
  mutable epoch : int;
  on_tree : Bitset.t;  (** nodes of the current center-based tree *)
  subtree_members : int array;  (** members at-or-below a tree node *)
  edge_child : int array;  (** CBT edges, as the child node ... *)
  edge_link : int array;  (** ... and the link id of its parent edge *)
  mutable n_edges : int;
}

let make_group_scratch nodes =
  {
    mark = Array.make nodes 0;
    epoch = 0;
    on_tree = Bitset.create nodes;
    subtree_members = Array.make nodes 0;
    edge_child = Array.make nodes 0;
    edge_link = Array.make nodes 0;
    n_edges = 0;
  }

(* Walk the precomputed shortest-path tree of sender [s] from each member up
   to the root, adding one flow on every link of the covered sub-tree.  The
   epoch mark dedups shared path suffixes without clearing anything. *)
let add_spt_flows scratch flows (tree : Spt.tree) group =
  scratch.epoch <- scratch.epoch + 1;
  let epoch = scratch.epoch and mark = scratch.mark in
  let parent = tree.Spt.parent and via = tree.Spt.via in
  let src = tree.Spt.src in
  let rec up v =
    if v <> src && mark.(v) <> epoch then begin
      mark.(v) <- epoch;
      match (parent.(v), via.(v)) with
      | Some p, Some lid ->
        flows.(lid) <- flows.(lid) + 1;
        up p
      | _ -> ()
    end
  in
  Array.iter up group

(* Build the center-based tree for the group as flat edge arrays in
   [scratch], and count the members in each node's subtree.  Returns the
   number of members actually on the tree (reachable from the core). *)
let build_cbt scratch (core_tree : Spt.tree) group =
  let core = core_tree.Spt.src in
  Bitset.clear scratch.on_tree;
  Bitset.add scratch.on_tree core;
  scratch.n_edges <- 0;
  let cnt = scratch.subtree_members in
  let m_total = ref 0 in
  Array.iter
    (fun m ->
      if core_tree.Spt.dist.(m) <> max_int then begin
        incr m_total;
        let rec up v =
          if v <> core then begin
            if not (Bitset.mem scratch.on_tree v) then begin
              Bitset.add scratch.on_tree v;
              cnt.(v) <- 0;
              (match core_tree.Spt.via.(v) with
              | Some lid ->
                scratch.edge_child.(scratch.n_edges) <- v;
                scratch.edge_link.(scratch.n_edges) <- lid;
                scratch.n_edges <- scratch.n_edges + 1
              | None -> ())
            end;
            cnt.(v) <- cnt.(v) + 1;
            match core_tree.Spt.parent.(v) with Some p -> up p | None -> ()
          end
        in
        up m
      end)
    group;
  !m_total

(* A tree edge (parent, child) carries an on-tree sender's traffic exactly
   when the child's subtree does not hold the whole group: if the sender is
   below the edge some target is above it, and if the sender is above it the
   subtree holds a target (every tree node has at least one member below).
   So all on-tree senders cover the same edge set, and the per-sender DFS of
   the old implementation collapses to one pass over the edges. *)
let add_cbt_flows scratch flows ~m_total ~sender_count =
  for i = 0 to scratch.n_edges - 1 do
    if scratch.subtree_members.(scratch.edge_child.(i)) < m_total then begin
      let lid = scratch.edge_link.(i) in
      flows.(lid) <- flows.(lid) + sender_count
    end
  done

let add_off_tree_sender_flows scratch flows (core_tree : Spt.tree) s =
  (* Off-tree sender (possible only on a partitioned topology): traffic
     enters at the core and covers the whole tree plus the unicast path to
     the core. *)
  let core = core_tree.Spt.src in
  let rec up v =
    if v <> core then
      match (core_tree.Spt.parent.(v), core_tree.Spt.via.(v)) with
      | Some p, Some lid ->
        flows.(lid) <- flows.(lid) + 1;
        up p
      | _ -> ()
  in
  up s;
  for i = 0 to scratch.n_edges - 1 do
    let lid = scratch.edge_link.(i) in
    flows.(lid) <- flows.(lid) + 1
  done

let network_trial prng ~nodes ~groups ~members ~senders ~degree =
  let topo = Random_graph.generate ~prng ~nodes ~degree () in
  let trees = Array.init nodes (fun u -> Spt.single_source topo u) in
  let n_links = Topology.n_links topo in
  let spt_flows = Array.make n_links 0 in
  let cbt_flows = Array.make n_links 0 in
  let scratch = make_group_scratch nodes in
  for _ = 1 to groups do
    let group = Array.of_list (Random_graph.pick_members ~prng ~nodes ~count:members) in
    Prng.shuffle prng group;
    let member_list = Array.to_list group in
    let sender_list = Array.to_list (Array.sub group 0 senders) in
    (* Shortest-path trees: each sender's traffic covers its own tree. *)
    List.iter (fun s -> add_spt_flows scratch spt_flows trees.(s) group) sender_list;
    (* Center-based tree: one shared tree rooted at the optimal core. *)
    let core = optimal_core trees ~senders:sender_list ~members:member_list in
    let core_tree = trees.(core) in
    let m_total = build_cbt scratch core_tree group in
    let on_tree_senders, off_tree_senders =
      List.partition_map
        (fun s ->
          if Bitset.mem scratch.on_tree s then Either.Left s else Either.Right s)
        sender_list
    in
    add_cbt_flows scratch cbt_flows ~m_total
      ~sender_count:(List.length on_tree_senders);
    List.iter (add_off_tree_sender_flows scratch cbt_flows core_tree) off_tree_senders
  done;
  ( float_of_int (Array.fold_left max 0 spt_flows),
    float_of_int (Array.fold_left max 0 cbt_flows) )

let run ?(nodes = 50) ?(groups = 300) ?(members = 40) ?(senders = 32) ?(trials = 30)
    ?(degrees = [ 3.; 4.; 5.; 6.; 7.; 8. ]) ~seed () =
  if senders > members then invalid_arg "Fig2b.run: senders must be members";
  let prng = Prng.create seed in
  List.map
    (fun degree ->
      let stream = Prng.split prng in
      let results =
        List.init trials (fun _ -> network_trial stream ~nodes ~groups ~members ~senders ~degree)
      in
      let spt = List.map fst results and cbt = List.map snd results in
      {
        degree;
        spt_max_flows = Pim_util.Stats.mean spt;
        cbt_max_flows = Pim_util.Stats.mean cbt;
        spt_stddev = Pim_util.Stats.stddev spt;
        cbt_stddev = Pim_util.Stats.stddev cbt;
        trials;
      })
    degrees
  (* Canonical report order: ascending degree, independent of how the
     caller ordered the sweep list. *)
  |> List.stable_sort (fun a b -> Float.compare a.degree b.degree)

let pp_rows ppf rows =
  Format.fprintf ppf "# Figure 2(b): max traffic flows on any link (300 groups, 40 members, 32 senders)@.";
  Format.fprintf ppf "# degree  spt_max_flows  cbt_max_flows  spt_sd  cbt_sd  trials@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%6.1f  %13.1f  %13.1f  %6.1f  %6.1f  %d@." r.degree r.spt_max_flows
        r.cbt_max_flows r.spt_stddev r.cbt_stddev r.trials)
    rows
