module Prng = Pim_util.Prng
module Topology = Pim_graph.Topology
module Spt = Pim_graph.Spt
module Center = Pim_graph.Center
module Random_graph = Pim_graph.Random_graph
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Placement = Pim_core.Placement

type row = {
  strategy : string;
  max_link_streams : float;
  mean_max_delay : float;
  mean_delay_variation : float;
  shard_balance : float;
  trials : int;
}

(* The "static" baseline of this sweep: one hand-configured RP for the
   whole domain (router 0), the paper's administratively-chosen default. *)
let mapping_for ~topo ~apsp ~groups ~seed strategy =
  match strategy with
  | "static" -> List.map (fun (g, _) -> (g, [ Addr.router 0 ])) groups
  | s -> (
    match Placement.named s with
    | Some spec -> Placement.compute ~topo ~apsp ~groups ~seed spec
    | None -> invalid_arg (Printf.sprintf "Rp_placement.run: unknown strategy %S" s))

let all_strategies = [ "static"; "random"; "center"; "locality"; "vns" ]

type acc = {
  mutable sum_max_streams : float;
  mutable sum_max_delay : float;
  mutable sum_variation : float;
  mutable sum_balance : float;
  mutable n_groups_seen : int;
}

let run ?(nodes = 40) ?(degree = 4.) ?(n_groups = 24) ?(members = 6) ?(trials = 8)
    ?(strategies = all_strategies) ~seed () =
  let prng = Prng.create seed in
  let accs = List.map (fun s -> (s, { sum_max_streams = 0.; sum_max_delay = 0.; sum_variation = 0.; sum_balance = 0.; n_groups_seen = 0 })) all_strategies in
  for _ = 1 to trials do
    (* One stream per trial: every strategy sees the identical topology,
       group memberships and placement seed, so rows differ only by the
       placement itself. *)
    let tp = Prng.split prng in
    let topo = Random_graph.generate ~prng:tp ~nodes ~degree () in
    let apsp = Spt.all_pairs topo in
    let groups =
      List.init n_groups (fun i ->
          (Group.of_index (i + 1), Random_graph.pick_members ~prng:tp ~nodes ~count:members))
    in
    let placement_seed = Prng.int tp 0x3FFFFFFF in
    let n_links = Topology.n_links topo in
    List.iter
      (fun (sname, acc) ->
        let mapping = mapping_for ~topo ~apsp ~groups ~seed:placement_seed sname in
        let flows = Array.make n_links 0 in
        let trees : (int, Spt.tree) Hashtbl.t = Hashtbl.create 8 in
        let tree_of rp =
          match Hashtbl.find_opt trees rp with
          | Some t -> t
          | None ->
            let t = Spt.single_source topo rp in
            Hashtbl.replace trees rp t;
            t
        in
        let per_rp : (int, int) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (g, ms) ->
            match List.assoc_opt g mapping with
            | None | Some [] -> ()
            | Some (rp0 :: _) -> (
              match Addr.router_index rp0 with
              | None -> ()
              | Some rp ->
                Hashtbl.replace per_rp rp
                  (1 + Option.value ~default:0 (Hashtbl.find_opt per_rp rp));
                (* One aggregate stream per group covers its whole shared
                   tree — the concentration measure of Figure 2(b), here
                   across placements instead of tree kinds. *)
                List.iter
                  (fun (_, _, lid) -> flows.(lid) <- flows.(lid) + 1)
                  (Spt.tree_edges (tree_of rp) ~members:ms);
                let d = Center.cbt_max_delay apsp ~center:rp ~senders:ms ~receivers:ms in
                if d <> max_int then acc.sum_max_delay <- acc.sum_max_delay +. float_of_int d;
                let dists =
                  List.filter_map
                    (fun m -> if apsp.(rp).(m) = max_int then None else Some apsp.(rp).(m))
                    ms
                in
                (match dists with
                | [] -> ()
                | _ ->
                  let mx = List.fold_left max 0 dists in
                  let mn = List.fold_left min max_int dists in
                  acc.sum_variation <- acc.sum_variation +. float_of_int (mx - mn));
                acc.n_groups_seen <- acc.n_groups_seen + 1))
          groups;
        acc.sum_max_streams <-
          acc.sum_max_streams +. float_of_int (Array.fold_left max 0 flows);
        let busiest = Hashtbl.fold (fun _ c acc -> max acc c) per_rp 0 in
        acc.sum_balance <- acc.sum_balance +. (float_of_int busiest /. float_of_int n_groups))
      (List.filter (fun (s, _) -> List.mem s strategies) accs)
  done;
  accs
  |> List.filter (fun (s, _) -> List.mem s strategies)
  |> List.map (fun (strategy, acc) ->
         let per_group x =
           if acc.n_groups_seen = 0 then 0. else x /. float_of_int acc.n_groups_seen
         in
         {
           strategy;
           max_link_streams = acc.sum_max_streams /. float_of_int trials;
           mean_max_delay = per_group acc.sum_max_delay;
           mean_delay_variation = per_group acc.sum_variation;
           shard_balance = acc.sum_balance /. float_of_int trials;
           trials;
         })

let pp_rows ppf rows =
  Format.fprintf ppf
    "# RP placement: shared-tree concentration and delay per strategy@.";
  Format.fprintf ppf "# %-9s %12s %10s %10s %8s %7s@." "strategy" "max_streams"
    "max_delay" "delay_var" "balance" "trials";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-9s %12.1f %10.2f %10.2f %8.2f %7d@." r.strategy
        r.max_link_streams r.mean_max_delay r.mean_delay_variation r.shard_balance r.trials)
    rows
