(** Differential chaos experiment: one seeded fault schedule, replayed
    verbatim against PIM sparse mode, PIM dense mode, CBT and MOSPF.

    Each protocol gets an identical topology, member set, source and
    {!Pim_sim.Fault} schedule, a steady data stream, and a
    {!Pim_sim.Oracle} watching the wire.  After the last fault heals and
    a per-protocol settle time passes, a probe burst checks loop freedom
    and receiver reachability, protocol-specific state checks run (PIM:
    iif/RPF consistency and stale-oif detection; MOSPF: domain-wide
    membership sync), and after all members leave an orphaned-state
    check verifies the state decays to the protocol's residual floor
    (CBT's core legitimately keeps its tree entry).

    The per-protocol rows quantify what the paper argues qualitatively:
    soft state (PIM, section 3.8) reconverges via refresh alone, dense
    mode pays broadcast-and-prune duplication for fast healing, CBT's
    hard state waits out [parent_timeout] before repair, and MOSPF
    resyncs by reflooding LSAs. *)

type row = {
  protocol : string;
  deliveries : int;  (** distinct (packet, receiver) deliveries *)
  expected : int;  (** packets sent x receivers *)
  dup_deliveries : int;  (** duplicate copies members received *)
  max_gap : float;  (** worst per-receiver silence, in send-time terms *)
  mean_convergence : float;
      (** fault onset to first send every member received, averaged *)
  max_convergence : float;
  churn_control : int;  (** control traversals during the fault window *)
  total_control : int;
  restarts : int;  (** node crash/restart cycles in the schedule *)
  residual_entries : int;  (** state left after members leave and timers run *)
  violations : Pim_sim.Oracle.violation list;
}

type report = {
  seed : int;
  schedule : Pim_sim.Fault.event list;
  rows : row list;
}

val run :
  ?nodes:int ->
  ?degree:float ->
  ?receivers:int ->
  ?events:int ->
  ?fault_window:float ->
  ?mean_outage:float ->
  ?topology:[ `Random | `Transit_stub ] ->
  ?fault:[ `Random | `Rp_crash ] ->
  ?rp_strategy:string ->
  ?protocols:string list ->
  seed:int ->
  unit ->
  report
(** Defaults: 30 nodes, degree 4, 5 receivers, 8 fault events over a
    40 s window, a [`Random] topology, [`Random] faults, the ["static"]
    RP strategy, all four protocols.  Deterministic for a given seed.

    [`Transit_stub] builds a two-level {!Pim_graph.Transit_stub}
    topology sized to roughly [nodes] routers (2000 maps exactly onto
    50 transit routers with three 13-router stubs each), with receivers
    placed on non-gateway stub routers; [degree] is ignored.  This is
    the multi-thousand-router scale configuration.

    [fault:`Rp_crash] replaces the random schedule with
    {!Pim_sim.Fault.targeted_schedule} aimed at the placed RP nodes —
    the worst-case outage for a shared-tree protocol — and defaults
    [protocols] to [["PIM-SM"]], the only protocol consuming the RP
    placement (CBT keeps its legacy member-homed core).

    [rp_strategy] selects how PIM-SM's RPs are placed and installed:
    ["static"] (the legacy first-member RP; under rp-crash, the first
    two non-endpoint routers so targets stay distinct from protected
    endpoints), any {!Pim_core.Placement.named} strategy (["random"],
    ["center"], ["locality"], ["vns"]) installed as static
    configuration, or ["bsr"], which installs {e no} static mapping at
    all: a {!Pim_core.Bsr} election over a centered placement's
    candidate roles supplies the mapping dynamically, crashed agents
    restart alongside their routers, and the PIM settle time grows by
    {!Pim_core.Bsr.failover_budget} plus the RP-reachability timeout.

    [protocols] restricts the run to the named subset of
    [["PIM-SM"; "PIM-DM"; "CBT"; "MOSPF"]], preserving that canonical
    row order — large scale runs exercise one protocol at a time. *)

val pim_state_checks :
  net:Pim_sim.Net.t ->
  static:Pim_routing.Static.t ->
  deployment:Pim_core.Deployment.t ->
  (string * (unit -> string list)) list
(** The PIM-SM invariants the chaos run feeds to
    {!Pim_sim.Oracle.run_check}: ["iif-consistency"] (every entry's
    incoming interface matches the RPF interface toward its target) and
    ["stale-oif"] (every live non-local oif has matching downstream
    state behind it).  Exposed so tests can corrupt a deployment and
    assert the oracle notices. *)

val total_violations : report -> int
(** Zero means every invariant held for every protocol — the pass/fail
    verdict of a chaos run. *)

val pp_report : Format.formatter -> report -> unit
