(** Deterministic replay and shrinking of randomized PIM-SM scenarios.

    The qcheck property "random scenario: complete, duplicate-free,
    drains" (test/test_pim.ml) derives a whole scenario — topology,
    member set, RP, source, send schedule — from a single integer seed.
    This module reproduces that derivation outside the property so a
    failing case can be replayed on demand under full observability
    (typed trace, packet capture, metrics registry), and shrunk to a
    minimal member set and packet count with a delta-debugging pass.

    This is the harness that diagnosed the RP-tree/SPT switchover loss
    (the former ROADMAP open item, seed=56517): replaying the
    counterexample with a capture shows the shared-tree copies of
    pre-join-chain packets arriving at diverging routers after their SPT
    bit flipped, where the literal incoming-interface check dropped them.
    [pimsim trace record] exposes the same replay on the command line,
    and test/test_replay.ml pins the shrunk scenario as a regression
    test. *)

type spec = {
  seed : int;  (** scenario seed (the qcheck-generated first component) *)
  member_count : int;  (** group size (the second component) *)
  members_override : int list option;
      (** replace the derived member set (must be a subset of nodes);
          used by shrinking *)
  packets : int;  (** data packets the source sends (property: 30) *)
  check_from : int;
      (** first sequence number of the steady-state window in which every
          member must receive every packet exactly once (property: 22) *)
  switchover_fallback : bool;
      (** [Config.switchover_fallback] for the run; [false] reproduces
          the pre-fix drop behaviour *)
}

val default_spec : seed:int -> member_count:int -> spec
(** The property's exact parameters: 30 packets, window from 22,
    fallback on. *)

type outcome = {
  nodes : int;
  members : int list;
  rp : int;
  source : int;
  wrong : (int * int * int) list;
      (** (receiver, seq, copies) for every steady-state-window delivery
          count that is not exactly 1 *)
  residual_entries : int;  (** multicast state left after everyone leaves *)
  dup_suppressed : int;  (** switchover duplicates suppressed network-wide *)
  ok : bool;  (** [wrong = \[\]] and [residual_entries = 0] *)
}

val run :
  ?capture_file:string ->
  ?trace_file:string ->
  ?metrics_file:string ->
  spec ->
  outcome
(** Replay the scenario.  [capture_file] writes a JSONL packet capture
    ({!Pim_sim.Capture}), [trace_file] a JSONL typed-event trace,
    [metrics_file] the metrics-registry JSON — all deterministic, so two
    runs of the same spec produce byte-identical files. *)

val shrink : spec -> spec
(** Delta-debug a failing spec: greedily drop members and lower the
    packet count while {!run} keeps failing ([ok = false]).  Returns the
    last failing spec (the input itself if it doesn't fail, making
    [shrink] idempotent on passing specs). *)
