module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Prng = Pim_util.Prng
module Stats = Pim_util.Stats
module M = Pim_util.Metrics
module Json = Pim_util.Json
module Group = Pim_net.Group
module Topology = Pim_graph.Topology
module Transit_stub = Pim_graph.Transit_stub

type model = Zap | Flashcrowd | Zipfian | Diurnal

let models = [ Zap; Flashcrowd; Zipfian; Diurnal ]

let model_to_string = function
  | Zap -> "zap"
  | Flashcrowd -> "flashcrowd"
  | Zipfian -> "zipf"
  | Diurnal -> "diurnal"

let model_of_string s =
  match String.lowercase_ascii s with
  | "zap" -> Some Zap
  | "flashcrowd" | "flash-crowd" | "crowd" -> Some Flashcrowd
  | "zipf" | "zipfian" -> Some Zipfian
  | "diurnal" -> Some Diurnal
  | _ -> None

type rp_strategy = Single | Sharded of int | Elected of int

let rp_strategy_to_string = function
  | Single -> "single"
  | Sharded k -> Printf.sprintf "sharded:%d" k
  | Elected k -> Printf.sprintf "bsr:%d" k

let rp_strategy_of_string s =
  let base, k =
    match String.index_opt s ':' with
    | None -> (s, 4)
    | Some i -> (
      ( String.sub s 0 i,
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some k when k >= 1 -> k
        | _ -> -1 ))
  in
  if k < 1 then None
  else
    match String.lowercase_ascii base with
    | "single" -> Some Single
    | "sharded" | "multi" -> Some (Sharded k)
    | "bsr" | "elected" -> Some (Elected k)
    | _ -> None

type spec = {
  model : model;
  protocol : Stack.protocol;
  rp_strategy : rp_strategy;
  nodes : int;
  groups : int;
  scale : int;
  skew : float;
  duration : float;
  window : float;
  domains : int;
  seed : int;
}

let default_spec model =
  let base =
    {
      model;
      protocol = Stack.Pim_sm;
      rp_strategy = Sharded 4;
      nodes = 200;
      groups = 16;
      scale = 400;
      skew = 1.0;
      duration = 60.;
      window = 5.;
      domains = 1;
      seed = 1994;
    }
  in
  match model with
  | Flashcrowd -> { base with groups = 8; scale = 5_000 }
  | Diurnal -> { base with duration = 90. }
  | Zap | Zipfian -> base

(* {1 Schedule generation} *)

type action = Join | Leave

type sevent = {
  t : float;
  receiver : int;
  seq : int;
  group : int;
  node : Topology.node;
  action : action;
}

type schedule = {
  spec : spec;
  events : sevent array;
  sources : (int * Topology.node) array;
  rp_placement : (int * Topology.node list) list;
}

let compare_sevent a b =
  match Float.compare a.t b.t with
  | 0 -> (
    match Int.compare a.receiver b.receiver with 0 -> Int.compare a.seq b.seq | c -> c)
  | c -> c

(* One transit router per ~40 total, three stubs each (the chaos harness's
   sizing): 200 -> 5 transit / stub size 13, 2000 -> 50 / 13. *)
let transit_stub_sizes ~nodes =
  let transit = Int.max 2 (nodes / 40) in
  let stubs_per_transit = 3 in
  let stub_size = Int.max 1 (((nodes / transit) - 1) / stubs_per_transit) in
  (transit, stubs_per_transit, stub_size)

let gen_topo spec prng =
  let transit, stubs_per_transit, stub_size = transit_stub_sizes ~nodes:spec.nodes in
  Transit_stub.generate ~transit ~stubs_per_transit ~stub_size ~backbone_delay:0.5
    ~access_delay:0.5 ~prng ()

(* Zipf popularity over group indices: weight (i+1)^-skew.  Returns the
   cumulative weights; [zipf_pick] draws by inverse lookup (group counts
   are a few dozen, so the linear scan is moot). *)
let zipf_cum ~groups ~skew =
  let cum = Array.make (Int.max 1 groups) 0. in
  let acc = ref 0. in
  for i = 0 to groups - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) skew);
    cum.(i) <- !acc
  done;
  cum

let zipf_pick stream cum =
  let total = cum.(Array.length cum - 1) in
  let u = Prng.float stream total in
  let g = ref 0 in
  while cum.(!g) < u && !g < Array.length cum - 1 do
    incr g
  done;
  !g

(* Per-receiver event emitters.  Each receiver's whole timeline is a
   function of its own split stream (plus fixed global constants like the
   storm times), which is what makes generation domain-parallel without
   changing a byte of output. *)

type emit_state = { mutable acc : sevent list; mutable seq : int }

let emit st ~receiver ~node t group action =
  st.acc <- { t; receiver; seq = st.seq; group; node; action } :: st.acc;
  st.seq <- st.seq + 1

(* IPTV zapping: Zipf channel choice, exponential dwell, and correlated
   storms — at fixed times (every [storm_period], first at 10 s) a
   [storm_frac] share of the audience zaps within the same half second
   (an ad break ending across the popular channels). *)
let zap_events spec cum ~receiver ~node stream st =
  let mean_dwell = 12. and storm_period = 15. and storm_frac = 0.5 and zap_gap = 0.1 in
  let next_storm_after t =
    let k = Float.max 0. (Float.of_int (int_of_float (ceil ((t -. 10.) /. storm_period)))) in
    let s = 10. +. (storm_period *. k) in
    if s <= t then s +. storm_period else s
  in
  let t0 = Prng.float stream (Float.min 5. (spec.duration /. 6.)) in
  let c0 = zipf_pick stream cum in
  emit st ~receiver ~node t0 c0 Join;
  let t = ref t0 and c = ref c0 in
  let continue = ref true in
  while !continue do
    let dwell = 0.5 +. Prng.exponential stream mean_dwell in
    let s = next_storm_after !t in
    let zap_t =
      if s < !t +. dwell && s < spec.duration && Prng.float stream 1. < storm_frac then
        s +. Prng.float stream 0.5
      else !t +. dwell
    in
    if zap_t >= spec.duration then continue := false
    else begin
      emit st ~receiver ~node zap_t !c Leave;
      let c' =
        if spec.groups <= 1 then 0
        else begin
          (* Redraw until the channel changes (bounded: give up after a
             couple of tries so a degenerate skew cannot loop). *)
          let pickd = zipf_pick stream cum in
          if pickd <> !c then pickd else (pickd + 1) mod spec.groups
        end
      in
      let tj = zap_t +. zap_gap in
      if tj < spec.duration then emit st ~receiver ~node tj c' Join;
      t := zap_t;
      c := c'
    end
  done

(* Flash crowd: group 0 grows from [seed_count] receivers to the full
   crowd on a doubling ramp (seconds, not minutes), over a small Zipf
   background so multi-RP sharding has something to shard. *)
let flashcrowd_events spec cum ~bg ~receiver ~node stream st =
  let seed_count = 10 and ramp_start = 5. and ramp_secs = 8. in
  if receiver < bg then begin
    (* Background: a stable member of a non-crowd channel. *)
    let t0 = Prng.float stream 5. in
    let g = if spec.groups <= 1 then 0 else 1 + zipf_pick stream (Array.sub cum 0 (spec.groups - 1)) in
    emit st ~receiver ~node t0 g Join
  end
  else begin
    let i = receiver - bg in
    let n_crowd = spec.scale - bg in
    let tj =
      if i < seed_count then Prng.float stream 0.5
      else begin
        let log2 x = log x /. log 2. in
        let tau = ramp_secs /. Float.max 1. (log2 (float_of_int n_crowd /. float_of_int seed_count)) in
        ramp_start
        +. (tau *. log2 (float_of_int (i + 1) /. float_of_int seed_count))
        +. Prng.float stream 0.2
      end
    in
    if tj < spec.duration then begin
      emit st ~receiver ~node tj 0 Join;
      (* Half the crowd drains away during the final quarter. *)
      if Prng.bool stream then begin
        let tl = (0.75 *. spec.duration) +. Prng.float stream (0.2 *. spec.duration) in
        if tl > tj then emit st ~receiver ~node tl 0 Leave
      end
    end
  end

(* Stationary Zipf churn: alternate exponential on/off periods, each
   on-period picking its group by popularity. *)
let zipfian_events spec cum ~receiver ~node stream st =
  let t = ref (Prng.float stream 10.) in
  while !t < spec.duration do
    let g = zipf_pick stream cum in
    emit st ~receiver ~node !t g Join;
    let on = 1. +. Prng.exponential stream 20. in
    if !t +. on < spec.duration then emit st ~receiver ~node (!t +. on) g Leave;
    let off = 1. +. Prng.exponential stream 10. in
    t := !t +. on +. off
  done

(* Diurnal modulation: candidate joins from a homogeneous process thinned
   by a sin^2 day curve over the run — peak mid-run, troughs (and
   legitimately empty measurement windows) at both ends. *)
let diurnal_events spec cum ~receiver ~node stream st =
  let base_gap = spec.duration /. 8. in
  let lambda t = Float.pow (sin (Float.pi *. t /. spec.duration)) 2. in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    let cand = !t +. Prng.exponential stream base_gap in
    if cand >= spec.duration then continue := false
    else if Prng.float stream 1. < lambda cand then begin
      let g = zipf_pick stream cum in
      emit st ~receiver ~node cand g Join;
      let on = 2. +. Prng.exponential stream (spec.duration /. 6.) in
      if cand +. on < spec.duration then emit st ~receiver ~node (cand +. on) g Leave;
      t := cand +. on
    end
    else t := cand
  done

let events_for spec cum ~bg ~receiver ~node stream =
  let st = { acc = []; seq = 0 } in
  (match spec.model with
  | Zap -> zap_events spec cum ~receiver ~node stream st
  | Flashcrowd -> flashcrowd_events spec cum ~bg ~receiver ~node stream st
  | Zipfian -> zipfian_events spec cum ~receiver ~node stream st
  | Diurnal -> diurnal_events spec cum ~receiver ~node stream st);
  st.acc

let rp_pool_for spec (ts : Transit_stub.t) =
  match spec.rp_strategy with
  | Single -> [ List.hd ts.Transit_stub.transit ]
  | Sharded k | Elected k ->
    let arr = Array.of_list ts.Transit_stub.transit in
    List.init (Int.min k (Array.length arr)) (fun i -> arr.(i))

let rp_placement_for spec ts =
  match spec.protocol with
  | Stack.Pim_sm | Stack.Cbt ->
    let pool = Array.of_list (rp_pool_for spec ts) in
    List.init spec.groups (fun gi -> (gi, [ pool.(gi mod Array.length pool) ]))
  | Stack.Pim_dm | Stack.Dvmrp | Stack.Mospf -> []

let generate spec =
  if spec.groups < 1 then invalid_arg "Workload.generate: groups must be >= 1";
  if spec.scale < 1 then invalid_arg "Workload.generate: scale must be >= 1";
  if spec.window <= 0. then invalid_arg "Workload.generate: window must be > 0";
  let master = Prng.create spec.seed in
  let topo_stream = Prng.split master in
  let ts = gen_topo spec topo_stream in
  let placement_stream = Prng.split master in
  let homes =
    Array.init spec.scale (fun _ -> Transit_stub.random_stub_member ts ~prng:placement_stream)
  in
  let sources =
    Array.init spec.groups (fun gi ->
        (gi, Transit_stub.random_stub_member ts ~prng:placement_stream))
  in
  (* Array.init's evaluation order is unspecified, and stream identity is
     what makes results domain-count-independent: split every receiver's
     stream here, in receiver order, before any fan-out. *)
  let streams = Array.make spec.scale master in
  for r = 0 to spec.scale - 1 do
    streams.(r) <- Prng.split master
  done;
  let cum = zipf_cum ~groups:spec.groups ~skew:spec.skew in
  let bg =
    match spec.model with
    | Flashcrowd -> if spec.groups <= 1 then 0 else Int.min (spec.scale / 10) (spec.groups * 10)
    | Zap | Zipfian | Diurnal -> 0
  in
  let slots = Array.make spec.scale [] in
  let run_range lo hi =
    for r = lo to hi - 1 do
      slots.(r) <- events_for spec cum ~bg ~receiver:r ~node:homes.(r) streams.(r)
    done
  in
  let nd = Int.max 1 spec.domains in
  if nd <= 1 then run_range 0 spec.scale
  else
    List.init nd (fun k ->
        let lo = k * spec.scale / nd and hi = (k + 1) * spec.scale / nd in
        Domain.spawn (fun () -> run_range lo hi))
    |> List.iter Domain.join;
  let events =
    Array.to_list slots |> List.concat |> List.sort compare_sevent |> Array.of_list
  in
  { spec; events; sources; rp_placement = rp_placement_for spec ts }

let render_schedule sched =
  let buf = Buffer.create (4096 + (64 * Array.length sched.events)) in
  let spec = sched.spec in
  Buffer.add_string buf
    (Printf.sprintf "workload %s protocol=%s rp=%s nodes=%d groups=%d scale=%d skew=%g seed=%d\n"
       (model_to_string spec.model) (Stack.to_string spec.protocol)
       (rp_strategy_to_string spec.rp_strategy) spec.nodes spec.groups spec.scale spec.skew
       spec.seed);
  Array.iter
    (fun (gi, src) -> Buffer.add_string buf (Printf.sprintf "source g=%d node=%d\n" gi src))
    sched.sources;
  List.iter
    (fun (gi, rps) ->
      Buffer.add_string buf
        (Printf.sprintf "rp g=%d nodes=%s\n" gi
           (String.concat "," (List.map string_of_int rps))))
    sched.rp_placement;
  Array.iter
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f r=%d seq=%d g=%d node=%d %s\n" ev.t ev.receiver ev.seq ev.group
           ev.node
           (match ev.action with Join -> "join" | Leave -> "leave")))
    sched.events;
  Buffer.contents buf

(* {1 Replay} *)

type wrow = {
  window : M.window;
  joins : int;
  leaves : int;
  node_joins : int;
  join_latency : Stats.summary;
  spt_switches : int;
  control_msgs : int;
  data_msgs : int;
  rp_peak_load : int;
  rp_concentration : float;
}

type report = {
  schedule : schedule;
  rows : wrow list;
  total_joins : int;
  total_leaves : int;
  total_node_joins : int;
  join_latency : Stats.summary;
  total_spt_switches : int;
  total_control : int;
  total_data : int;
  rp_loads : (Topology.node * int) list;
  rp_concentration : float;
  oracle : (string * int) list;
  entries_end : int;
}

let concentration loads =
  let total = List.fold_left ( + ) 0 loads in
  if total = 0 || loads = [] then 0.
  else
    let peak = List.fold_left Int.max 0 loads in
    float_of_int peak /. (float_of_int total /. float_of_int (List.length loads))

let run ?trace spec =
  let sched = generate spec in
  let spec = sched.spec in
  (* Same first split as [generate]: the replay's topology is the one the
     schedule placed receivers on. *)
  let master = Prng.create spec.seed in
  let ts = gen_topo spec (Prng.split master) in
  let topo = ts.Transit_stub.topo in
  let n_nodes = Topology.n_nodes topo in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let m = Net.metrics net in
  let rp_election = match spec.rp_strategy with Elected _ -> true | Single | Sharded _ -> false in
  let placement =
    List.map (fun (gi, rps) -> (Group.of_index gi, rps)) sched.rp_placement
  in
  let stacks =
    Stack.create_many ~placement ~rp_election ?trace
      ~groups:(List.init spec.groups Group.of_index)
      ~net spec.protocol
    |> List.map snd |> Array.of_list
  in
  let stack gi = stacks.(gi) in
  (* Windowed instruments, all registered before the first roll so every
     instrument has one row per window. *)
  let c_joins = M.wcounter m "workload_joins" in
  let c_leaves = M.wcounter m "workload_leaves" in
  let c_node_joins = M.wcounter m "workload_node_joins" in
  let c_control = M.wcounter m "workload_control_msgs" in
  let c_data = M.wcounter m "workload_data_msgs" in
  let c_spt = M.wcounter m "workload_spt_switches" in
  let h_latency = M.whistogram m "workload_join_latency" in
  let rp_nodes =
    List.concat_map snd sched.rp_placement |> List.sort_uniq Int.compare
  in
  let rp_counters =
    List.map
      (fun rp -> (rp, M.wcounter m ~labels:[ ("rp", string_of_int rp) ] "workload_rp_load"))
      rp_nodes
  in
  (* Link traversals delivered on an RP-adjacent link count toward that
     RP's load — the traffic-concentration measure of Figure 2(b) scoped
     to the rendezvous points. *)
  let rps_on_link = Array.make (Topology.n_links topo) [] in
  Array.iter
    (fun (l : Topology.link) ->
      let here =
        List.filter (fun (rp, _) -> Array.exists (Int.equal rp) l.Topology.ends) rp_counters
      in
      if here <> [] then rps_on_link.(l.Topology.id) <- here)
    (Topology.links topo);
  Net.on_deliver net (fun lid pkt ->
      if Metrics.is_data pkt then M.wincr c_data else M.wincr c_control;
      List.iter (fun (_, c) -> M.wincr c) rps_on_link.(lid));
  (* Receiver-count aggregation (IGMP-style): the protocol only sees the
     0->1 and 1->0 edges of the per-(group, node) receiver count. *)
  let idx g node = (g * n_nodes) + node in
  let counts = Array.make (spec.groups * n_nodes) 0 in
  let waiting = Array.make (spec.groups * n_nodes) (-1.) in
  let registered = Array.make (spec.groups * n_nodes) false in
  let all_latencies = ref [] in
  let apply ev =
    let i = idx ev.group ev.node in
    match ev.action with
    | Join ->
      M.wincr c_joins;
      counts.(i) <- counts.(i) + 1;
      if counts.(i) = 1 then begin
        M.wincr c_node_joins;
        if not registered.(i) then begin
          registered.(i) <- true;
          (stack ev.group).Stack.on_data ev.node (fun _ ->
              if waiting.(i) >= 0. then begin
                let lat = Engine.now eng -. waiting.(i) in
                M.wobserve h_latency lat;
                all_latencies := lat :: !all_latencies;
                waiting.(i) <- -1.
              end)
        end;
        waiting.(i) <- Engine.now eng;
        (stack ev.group).Stack.join ev.node
      end
    | Leave ->
      M.wincr c_leaves;
      if counts.(i) > 0 then begin
        counts.(i) <- counts.(i) - 1;
        if counts.(i) = 0 then begin
          waiting.(i) <- -1.;
          (stack ev.group).Stack.leave ev.node
        end
      end
  in
  Array.iter (fun ev -> ignore (Engine.schedule_at eng ev.t (fun () -> apply ev))) sched.events;
  (* Steady per-channel sources, 1 pkt/s, staggered so the send instants
     don't all collide on the same tick.  They keep sending through the
     settle tail: (S,G) keepalive is data-driven, so stopping data makes
     SPT state decay hop by hop and the oracle would flag that decay
     (upstream oifs legitimately outlive a dying downstream entry by one
     oif_holdtime).  The structural checks only hold under live data —
     the same reason the chaos harness probes with data before checking.
     Settle-tail deliveries land in the open (never-rolled) window, so
     the per-window rows and totals still cover exactly [0, duration). *)
  Array.iter
    (fun (gi, src) ->
      ignore
        (Engine.every eng
           ~start:(1.0 +. (0.01 *. float_of_int gi))
           ~interval:1.0
           (fun () -> (stack gi).Stack.send_from src)))
    sched.sources;
  (* Tumbling windows over [0, duration]. *)
  let n_win = Int.max 1 (int_of_float (ceil (spec.duration /. spec.window -. 1e-9))) in
  let prev_spt = ref 0 in
  for k = 1 to n_win do
    let t_end = Float.min spec.duration (float_of_int k *. spec.window) in
    ignore
      (Engine.schedule_at eng t_end (fun () ->
           let now_spt = (stack 0).Stack.spt_switches () in
           M.wincr c_spt ~by:(now_spt - !prev_spt);
           prev_spt := now_spt;
           let w = M.roll m ~t_start:(t_end -. spec.window) ~t_end in
           Option.iter
             (fun tr ->
               Trace.emit tr ~node:0
                 (Event.Window_roll
                    { index = w.M.index; t_start = w.M.t_start; t_end = w.M.t_end }))
             trace))
  done;
  let settle = Stack.settle_hint ~rp_election spec.protocol in
  Engine.run ~until:(spec.duration +. settle) eng;
  (* Assemble per-window rows from the aligned instrument rows. *)
  let counts_of c = Array.of_list (List.map snd (M.wcounter_rows c)) in
  let a_joins = counts_of c_joins
  and a_leaves = counts_of c_leaves
  and a_node_joins = counts_of c_node_joins
  and a_control = counts_of c_control
  and a_data = counts_of c_data
  and a_spt = counts_of c_spt in
  let a_lat = Array.of_list (M.whistogram_rows h_latency) in
  let a_rp = List.map (fun (rp, c) -> (rp, counts_of c)) rp_counters in
  let rows =
    List.init (Array.length a_lat) (fun i ->
        let window, join_latency = a_lat.(i) in
        let rp_window_loads = List.map (fun (_, a) -> a.(i)) a_rp in
        {
          window;
          joins = a_joins.(i);
          leaves = a_leaves.(i);
          node_joins = a_node_joins.(i);
          join_latency;
          spt_switches = a_spt.(i);
          control_msgs = a_control.(i);
          data_msgs = a_data.(i);
          rp_peak_load = List.fold_left Int.max 0 rp_window_loads;
          rp_concentration = concentration rp_window_loads;
        })
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let rp_loads = List.map (fun (rp, a) -> (rp, Array.fold_left ( + ) 0 a)) a_rp in
  let oracle =
    List.map (fun (name, check) -> (name, List.length (check ()))) (stack 0).Stack.state_checks
  in
  {
    schedule = sched;
    rows;
    total_joins = sum (fun r -> r.joins);
    total_leaves = sum (fun r -> r.leaves);
    total_node_joins = sum (fun r -> r.node_joins);
    join_latency = Stats.summarize !all_latencies;
    total_spt_switches = (stack 0).Stack.spt_switches ();
    total_control = sum (fun r -> r.control_msgs);
    total_data = sum (fun r -> r.data_msgs);
    rp_loads;
    rp_concentration = concentration (List.map snd rp_loads);
    oracle;
    entries_end = (stack 0).Stack.entries ();
  }

(* {1 Rendering} *)

let summary_fields (s : Stats.summary) =
  [
    ("n", Json.Int s.Stats.n);
    ("mean", Json.Float s.Stats.mean);
    ("stddev", Json.Float s.Stats.stddev);
    ("min", Json.Float s.Stats.min);
    ("max", Json.Float s.Stats.max);
    ("p50", Json.Float s.Stats.p50);
    ("p95", Json.Float s.Stats.p95);
  ]

let row_to_json r =
  Json.Obj
    ([
       ("window", Json.Int r.window.M.index);
       ("t_start", Json.Float r.window.M.t_start);
       ("t_end", Json.Float r.window.M.t_end);
       ("joins", Json.Int r.joins);
       ("leaves", Json.Int r.leaves);
       ("node_joins", Json.Int r.node_joins);
       ("join_latency", Json.Obj (summary_fields r.join_latency));
       ("spt_switches", Json.Int r.spt_switches);
       ("control_msgs", Json.Int r.control_msgs);
       ("data_msgs", Json.Int r.data_msgs);
       ("rp_peak_load", Json.Int r.rp_peak_load);
       ("rp_concentration", Json.Float r.rp_concentration);
     ]
      : (string * Json.t) list)

let report_to_json rep =
  let spec = rep.schedule.spec in
  Json.Obj
    [
      ("schema", Json.Str "pim-workload/1");
      ( "params",
        Json.Obj
          [
            ("model", Json.Str (model_to_string spec.model));
            ("protocol", Json.Str (Stack.to_string spec.protocol));
            ("rp_strategy", Json.Str (rp_strategy_to_string spec.rp_strategy));
            ("nodes", Json.Int spec.nodes);
            ("groups", Json.Int spec.groups);
            ("scale", Json.Int spec.scale);
            ("skew", Json.Float spec.skew);
            ("duration", Json.Float spec.duration);
            ("window", Json.Float spec.window);
            ("seed", Json.Int spec.seed);
          ] );
      ("schedule_events", Json.Int (Array.length rep.schedule.events));
      ("rows", Json.Arr (List.map row_to_json rep.rows));
      ( "totals",
        Json.Obj
          [
            ("joins", Json.Int rep.total_joins);
            ("leaves", Json.Int rep.total_leaves);
            ("node_joins", Json.Int rep.total_node_joins);
            ("join_latency", Json.Obj (summary_fields rep.join_latency));
            ("spt_switches", Json.Int rep.total_spt_switches);
            ("control_msgs", Json.Int rep.total_control);
            ("data_msgs", Json.Int rep.total_data);
            ("rp_concentration", Json.Float rep.rp_concentration);
            ("entries_end", Json.Int rep.entries_end);
          ] );
      ( "rp_loads",
        Json.Arr
          (List.map
             (fun (rp, load) ->
               Json.Obj [ ("rp", Json.Int rp); ("load", Json.Int load) ])
             rep.rp_loads) );
      ( "oracle",
        Json.Arr
          (List.map
             (fun (name, problems) ->
               Json.Obj [ ("check", Json.Str name); ("problems", Json.Int problems) ])
             rep.oracle) );
    ]

let pp_report ppf rep =
  let spec = rep.schedule.spec in
  Format.fprintf ppf
    "# E11 workload: model=%s protocol=%s rp=%s nodes=%d groups=%d scale=%d skew=%g seed=%d@."
    (model_to_string spec.model) (Stack.to_string spec.protocol)
    (rp_strategy_to_string spec.rp_strategy) spec.nodes spec.groups spec.scale spec.skew
    spec.seed;
  Format.fprintf ppf
    "# win  [t0, t1)        joins leaves njoins  lat_mean  lat_p95  spt  control     data  rp_peak  conc@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%5d  [%5.1f,%6.1f)  %5d  %5d  %5d  %8.3f %8.3f  %3d  %7d  %7d  %7d  %4.2f@."
        r.window.M.index r.window.M.t_start r.window.M.t_end r.joins r.leaves r.node_joins
        r.join_latency.Stats.mean r.join_latency.Stats.p95 r.spt_switches r.control_msgs
        r.data_msgs r.rp_peak_load r.rp_concentration)
    rep.rows;
  Format.fprintf ppf
    "# totals: joins=%d leaves=%d node_joins=%d spt_switches=%d control=%d data=%d entries_end=%d@."
    rep.total_joins rep.total_leaves rep.total_node_joins rep.total_spt_switches
    rep.total_control rep.total_data rep.entries_end;
  Format.fprintf ppf "# join latency: %a@." Stats.pp_summary rep.join_latency;
  List.iter
    (fun (rp, load) -> Format.fprintf ppf "# rp %d: load=%d@." rp load)
    rep.rp_loads;
  Format.fprintf ppf "# rp concentration (peak/mean): %.2f@." rep.rp_concentration;
  List.iter
    (fun (name, problems) ->
      Format.fprintf ppf "# oracle %s: %s@." name
        (if problems = 0 then "clean" else Printf.sprintf "%d problem(s)" problems))
    rep.oracle
