(** Per-strategy RP placement sweep: traffic concentration and delay.

    For each {!Pim_core.Placement} strategy, place RPs for many groups on
    the same random topologies and measure what the placement buys:

    - {e concentration}: one aggregate stream per group covers its shared
      RP tree; the busiest link's stream count is the Figure 2(b)
      traffic-concentration measure, here compared across placements
      rather than tree kinds;
    - {e delay}: the worst member-to-member delay through the group's
      primary RP, and the spread (max minus min) of member distances to
      it — the objective VNS placement minimizes (arXiv:1303.4771);
    - {e sharding}: the fraction of groups homed on the most-loaded
      primary RP — 1.0 when every group piles onto one RP, approaching
      [1/k] when per-group hash ranking shards groups across a multi-RP
      set (arXiv:1606.04928).

    The ["bsr"] strategy is absent by design: the election distributes a
    placement, it does not choose one — its cost is measured by
    {!Failover.run_strategies} and the chaos harness instead.

    Every strategy sees identical topologies, memberships and placement
    seeds per trial, so rows differ only by the placement itself. *)

type row = {
  strategy : string;
  max_link_streams : float;  (** busiest link's group-stream count, mean over trials *)
  mean_max_delay : float;  (** worst member delay via the primary RP, mean over groups *)
  mean_delay_variation : float;  (** spread of member distances to the RP *)
  shard_balance : float;  (** groups on the most-loaded RP / total groups *)
  trials : int;
}

val all_strategies : string list
(** [["static"; "random"; "center"; "locality"; "vns"]], the canonical
    row order.  ["static"] is one hand-configured domain RP (router 0). *)

val run :
  ?nodes:int ->
  ?degree:float ->
  ?n_groups:int ->
  ?members:int ->
  ?trials:int ->
  ?strategies:string list ->
  seed:int ->
  unit ->
  row list
(** Defaults: 40 nodes, degree 4, 24 groups of 6 members, 8 trials, all
    strategies.  Deterministic per seed; [strategies] selects a subset
    without changing any selected row's numbers. *)

val pp_rows : Format.formatter -> row list -> unit
