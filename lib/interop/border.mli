(** Dense/sparse-mode interoperation (section 4 of the paper).

    "The primary issue in splicing dense mode regions onto a distribution
    tree comprised ... of sparse mode regions, is the incompatibility
    between the data driven nature of dense mode, and the explicit join
    nature of sparse mode. ... We are working on a mechanism to address
    this problem that relies on getting the group member existence
    information to the border routers, and having border routers send
    explicit joins."

    This module implements that mechanism.  A border router is modelled as
    two halves joined by an internal link:

    - a sparse half running full PIM-SM on the wide-area side, and
    - a dense half inside the flood-and-prune region, with membership
      advertisements enabled ({!Pim_dense.Router.config}'s
      [advertise_members]).

    The glue:

    - when the dense region gains its first member of a group, the sparse
      half sends an explicit PIM join toward the group's RP with the
      internal link as the shared-tree oif — wide-area data then flows
      over the internal link and is reverse-path flooded inside the
      region;
    - when the region's last member leaves, the sparse half leaves the
      shared tree and the oif ages out;
    - sources inside the region flood region-wide as usual; their data
      crosses the internal link and the sparse half — acting as the
      region's proxy DR ("BRs would join a PIM tree externally and inject
      themselves as sources internally") — registers it to the RPs, so
      external receivers can join toward it. *)

type t

val create :
  pim:Pim_core.Router.t ->
  dense:Pim_dense.Router.t ->
  internal_iface:Pim_graph.Topology.iface ->
  unit ->
  t
(** [create ~pim ~dense ~internal_iface ()] wires the two halves of one
    border router.  [internal_iface] is the {e sparse half's} interface on
    the link connecting the halves.  The dense half must have
    [advertise_members] enabled, or the border will never learn of region
    members. *)

val pim : t -> Pim_core.Router.t
(** The sparse (wide-area) half. *)

val dense : t -> Pim_dense.Router.t
(** The dense (region) half. *)

val joined_groups : t -> Pim_net.Group.t list
(** Groups the border has currently joined on the region's behalf. *)
