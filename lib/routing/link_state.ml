module Topology = Pim_graph.Topology
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr

type config = {
  refresh_period : float;
  spf_delay : float;
}

let default_config = { refresh_period = 120.; spf_delay = 0.5 }

type lsa = {
  origin : Topology.node;
  seq : int;
  adj : (Topology.node * int * Topology.link_id) list;  (* neighbor, cost, link *)
}

type Packet.payload += Lsa_flood of lsa

let () =
  Packet.register_printer (function
    | Lsa_flood l ->
      Some (Printf.sprintf "lsa origin=%d seq=%d (%d adj)" l.origin l.seq (List.length l.adj))
    | _ -> None)

type state = {
  u : Topology.node;
  lsdb : (Topology.node, lsa) Hashtbl.t;
  mutable own_seq : int;
  mutable dist : int array;
  mutable hop_node : Topology.node option array;
  mutable hop_iface : Topology.iface option array;
  mutable spf_pending : bool;
  subs : (unit -> unit) Pim_util.Vec.t;
}

type t = {
  net : Net.t;
  eng : Engine.t;
  cfg : config;
  states : state array;
  mutable lsa_sent : int;
  mutable spf_count : int;
}

(* Stand-in for a hello protocol: adjacency liveness is read from the
   network oracle.  A production implementation would time out silent
   neighbors instead; the flooding and SPF machinery is unaffected. *)
let live_adjacencies t u =
  let topo = Net.topo t.net in
  Array.to_list (Topology.ifaces topo u)
  |> List.concat_map (fun (_, lid) ->
         if Net.link_up t.net lid then
           let l = Topology.link topo lid in
           Topology.others_on_link topo lid u
           |> List.filter (fun v -> Net.node_up t.net v)
           |> List.map (fun v -> (v, l.Topology.cost, lid))
         else [])

let flood t st ~except lsa =
  let topo = Net.topo t.net in
  Array.iter
    (fun (iface, _) ->
      if Some iface <> except then begin
        let pkt =
          Packet.unicast ~src:(Addr.router st.u) ~dst:Addr.all_pim_routers
            ~size:(12 + (12 * List.length lsa.adj))
            (Lsa_flood lsa)
        in
        t.lsa_sent <- t.lsa_sent + 1;
        Net.send t.net st.u ~iface pkt
      end)
    (Topology.ifaces topo st.u)

let run_spf t st =
  let topo = Net.topo t.net in
  let n = Topology.n_nodes topo in
  t.spf_count <- t.spf_count + 1;
  let bidirectional o v =
    match Hashtbl.find_opt st.lsdb v with
    | None -> false
    | Some lsa -> List.exists (fun (w, _, _) -> w = o) lsa.adj
  in
  let dist = Array.make n max_int in
  let hop_node = Array.make n None in
  let hop_iface = Array.make n None in
  let cmp (d1, n1) (d2, n2) =
    match Int.compare d1 d2 with 0 -> Int.compare n1 n2 | c -> c
  in
  let heap = Pim_util.Heap.create ~cmp in
  let done_ = Array.make n false in
  dist.(st.u) <- 0;
  Pim_util.Heap.push heap (0, st.u);
  let rec loop () =
    match Pim_util.Heap.pop heap with
    | None -> ()
    | Some (d, o) ->
      if not done_.(o) then begin
        done_.(o) <- true;
        (match Hashtbl.find_opt st.lsdb o with
        | None -> ()
        | Some lsa ->
          List.iter
            (fun (v, cost, lid) ->
              if bidirectional o v then begin
                let nd = d + cost in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  (if o = st.u then begin
                     hop_node.(v) <- Some v;
                     hop_iface.(v) <- Topology.iface_of_link_opt topo st.u lid
                   end
                   else begin
                     hop_node.(v) <- hop_node.(o);
                     hop_iface.(v) <- hop_iface.(o)
                   end);
                  Pim_util.Heap.push heap (nd, v)
                end
              end)
            lsa.adj);
        loop ()
      end
      else loop ()
  in
  loop ();
  st.dist <- dist;
  st.hop_node <- hop_node;
  st.hop_iface <- hop_iface;
  Pim_util.Vec.iter (fun f -> f ()) st.subs

let schedule_spf t st =
  if not st.spf_pending then begin
    st.spf_pending <- true;
    ignore
      (Engine.schedule t.eng ~after:t.cfg.spf_delay (fun () ->
           st.spf_pending <- false;
           run_spf t st))
  end

let install t st ~iface lsa =
  let fresher =
    match Hashtbl.find_opt st.lsdb lsa.origin with
    | None -> true
    | Some old -> lsa.seq > old.seq
  in
  if fresher then begin
    Hashtbl.replace st.lsdb lsa.origin lsa;
    flood t st ~except:iface lsa;
    schedule_spf t st
  end

let originate t st =
  st.own_seq <- st.own_seq + 1;
  let lsa = { origin = st.u; seq = st.own_seq; adj = live_adjacencies t st.u } in
  Hashtbl.replace st.lsdb st.u lsa;
  flood t st ~except:None lsa;
  schedule_spf t st

let create ?(config = default_config) net =
  let topo = Net.topo net in
  let eng = Net.engine net in
  let n = Topology.n_nodes topo in
  let states =
    Array.init n (fun u ->
        {
          u;
          lsdb = Hashtbl.create 16;
          own_seq = 0;
          dist = Array.make n max_int;
          hop_node = Array.make n None;
          hop_iface = Array.make n None;
          spf_pending = false;
          subs = Pim_util.Vec.create ();
        })
  in
  let t = { net; eng; cfg = config; states; lsa_sent = 0; spf_count = 0 } in
  Array.iter
    (fun st ->
      Net.set_handler net st.u (fun ~iface pkt ->
          match pkt.Packet.payload with
          | Lsa_flood lsa -> install t st ~iface:(Some iface) lsa
          | _ -> ());
      let start = 0.01 +. (0.01 *. float_of_int st.u) in
      ignore (Engine.schedule eng ~after:start (fun () -> originate t st));
      ignore
        (Engine.every eng ~start:config.refresh_period ~interval:config.refresh_period
           (fun () -> originate t st)))
    states;
  Net.on_link_change net (fun lid _up ->
      let l = Topology.link topo lid in
      Array.iter
        (fun endpoint -> if Net.node_up net endpoint then originate t t.states.(endpoint))
        l.Topology.ends);
  t

let distance t u d = if t.states.(u).dist.(d) = max_int then None else Some t.states.(u).dist.(d)

let rib t u =
  let st = t.states.(u) in
  let next_hop addr =
    match Rib.resolve addr with
    | None -> None
    | Some d ->
      if d = u then None
      else (
        match (st.hop_iface.(d), st.hop_node.(d)) with
        | Some i, Some v when st.dist.(d) <> max_int -> Some (i, v)
        | _ -> None)
  in
  let dist_fn addr =
    match Rib.resolve addr with None -> None | Some d -> distance t u d
  in
  let subscribe f = Pim_util.Vec.push st.subs f in
  { Rib.node = u; next_hop; distance = dist_fn; subscribe }

let converged t ~against =
  let n = Array.length t.states in
  let ok = ref true in
  for u = 0 to n - 1 do
    for d = 0 to n - 1 do
      if u <> d then begin
        let expected = against.(u).(d) in
        let actual = distance t u d in
        let matches = if expected = max_int then actual = None else actual = Some expected in
        if not matches then ok := false
      end
    done
  done;
  !ok

let lsa_count t = t.lsa_sent

let spf_runs t = t.spf_count
