module Topology = Pim_graph.Topology
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr

type config = {
  period : float;
  timeout : float;
  infinity_metric : int;
  triggered_delay : float;
}

let default_config =
  { period = 30.; timeout = 180.; infinity_metric = 64; triggered_delay = 1. }

type Packet.payload +=
  | Dv_update of { origin : Topology.node; entries : (Topology.node * int) list }

let () =
  Packet.register_printer (function
    | Dv_update { origin; entries } ->
      Some (Printf.sprintf "dv-update from %d (%d entries)" origin (List.length entries))
    | _ -> None)

type route = {
  mutable metric : int;
  mutable via_iface : Topology.iface;  (* -1 for the self route *)
  mutable next : Topology.node;
  mutable expiry : float;
}

type state = {
  u : Topology.node;
  table : (Topology.node, route) Hashtbl.t;
  subs : (unit -> unit) Pim_util.Vec.t;
  mutable trigger_pending : bool;
}

type t = {
  net : Net.t;
  eng : Engine.t;
  cfg : config;
  states : state array;
  mutable sent : int;
}

let notify st = Pim_util.Vec.iter (fun f -> f ()) st.subs

let advertise t st =
  let topo = Net.topo t.net in
  Array.iter
    (fun (iface, _lid) ->
      let entries =
        Hashtbl.fold
          (fun dst r acc ->
            (* Split horizon with poison reverse. *)
            let m = if r.via_iface = iface then t.cfg.infinity_metric else r.metric in
            (dst, m) :: acc)
          st.table []
        |> List.sort (fun (d, _) (d', _) -> Int.compare d d')
      in
      let pkt =
        Packet.unicast ~src:(Addr.router st.u) ~dst:Addr.all_pim_routers
          ~size:(8 + (8 * List.length entries))
          (Dv_update { origin = st.u; entries })
      in
      t.sent <- t.sent + 1;
      Net.send t.net st.u ~iface pkt)
    (Topology.ifaces topo st.u)

let schedule_triggered t st =
  if not st.trigger_pending then begin
    st.trigger_pending <- true;
    ignore
      (Engine.schedule t.eng ~after:t.cfg.triggered_delay (fun () ->
           st.trigger_pending <- false;
           advertise t st))
  end

let handle_update t st ~iface ~origin entries =
  let topo = Net.topo t.net in
  let link = Topology.link_of_iface topo st.u iface in
  let cost = link.Topology.cost in
  let now = Engine.now t.eng in
  let changed = ref false in
  List.iter
    (fun (dst, m) ->
      if dst <> st.u then begin
        let candidate = min t.cfg.infinity_metric (m + cost) in
        match Hashtbl.find_opt st.table dst with
        | Some r when r.next = origin && r.via_iface = iface ->
          (* Update from the current next hop is authoritative. *)
          r.expiry <- now +. t.cfg.timeout;
          if candidate <> r.metric then begin
            r.metric <- candidate;
            changed := true
          end
        | Some r ->
          if candidate < r.metric then begin
            r.metric <- candidate;
            r.via_iface <- iface;
            r.next <- origin;
            r.expiry <- now +. t.cfg.timeout;
            changed := true
          end
        | None ->
          if candidate < t.cfg.infinity_metric then begin
            Hashtbl.replace st.table dst
              { metric = candidate; via_iface = iface; next = origin; expiry = now +. t.cfg.timeout };
            changed := true
          end
      end)
    entries;
  if !changed then begin
    notify st;
    schedule_triggered t st
  end

let sweep t st =
  let now = Engine.now t.eng in
  let changed = ref false in
  (* pimlint: allow D1, T1 — in-place metric poisoning, order-independent *)
  Hashtbl.iter
    (fun dst r ->
      if dst <> st.u && r.metric < t.cfg.infinity_metric && r.expiry < now then begin
        r.metric <- t.cfg.infinity_metric;
        changed := true
      end)
    st.table;
  if !changed then begin
    notify st;
    schedule_triggered t st
  end

let on_link_event t st lid =
  (* Poison every route through a flapped link; new routes will be learned
     from the next advertisements. *)
  let topo = Net.topo t.net in
  match Topology.iface_of_link_opt topo st.u lid with
  | None -> ()
  | Some iface ->
    let up = Net.link_up t.net lid in
    let changed = ref false in
    if not up then
      (* pimlint: allow D1, T1 — in-place metric poisoning; order-independent. *)
      Hashtbl.iter
        (fun dst r ->
          if dst <> st.u && r.via_iface = iface && r.metric < t.cfg.infinity_metric then begin
            r.metric <- t.cfg.infinity_metric;
            changed := true
          end)
        st.table;
    if !changed then notify st;
    (* Either direction: advertise promptly so neighbors relearn. *)
    schedule_triggered t st

let create ?(config = default_config) net =
  let topo = Net.topo net in
  let eng = Net.engine net in
  let n = Topology.n_nodes topo in
  let states =
    Array.init n (fun u ->
        let table = Hashtbl.create 16 in
        Hashtbl.replace table u { metric = 0; via_iface = -1; next = u; expiry = infinity };
        { u; table; subs = Pim_util.Vec.create (); trigger_pending = false })
  in
  let t = { net; eng; cfg = config; states; sent = 0 } in
  Array.iter
    (fun st ->
      Net.set_handler net st.u (fun ~iface pkt ->
          match pkt.Packet.payload with
          | Dv_update { origin; entries } -> handle_update t st ~iface ~origin entries
          | _ -> ());
      (* Stagger the periodic advertisements across the first period so all
         routers do not fire simultaneously. *)
      let start = config.period *. (0.1 +. (0.8 *. float_of_int st.u /. float_of_int n)) in
      ignore (Engine.every eng ~start ~interval:config.period (fun () -> advertise t st));
      ignore (Engine.every eng ~start:config.period ~interval:config.period (fun () -> sweep t st)))
    states;
  Net.on_link_change net (fun lid _up -> Array.iter (fun st -> on_link_event t st lid) states);
  t

let metric t u d =
  match Hashtbl.find_opt t.states.(u).table d with
  | Some r when r.metric < t.cfg.infinity_metric -> Some r.metric
  | _ -> None

let rib t u =
  let st = t.states.(u) in
  let next_hop addr =
    match Rib.resolve addr with
    | None -> None
    | Some d ->
      if d = u then None
      else (
        match Hashtbl.find_opt st.table d with
        | Some r when r.metric < t.cfg.infinity_metric -> Some (r.via_iface, r.next)
        | _ -> None)
  in
  let distance addr =
    match Rib.resolve addr with None -> None | Some d -> metric t u d
  in
  let subscribe f = Pim_util.Vec.push st.subs f in
  { Rib.node = u; next_hop; distance; subscribe }

let converged t ~against =
  let n = Array.length t.states in
  let ok = ref true in
  for u = 0 to n - 1 do
    for d = 0 to n - 1 do
      let expected = against.(u).(d) in
      let actual = metric t u d in
      let matches =
        if expected = max_int || expected >= t.cfg.infinity_metric then actual = None
        else actual = Some expected
      in
      if not matches then ok := false
    done
  done;
  !ok

let message_count t = t.sent
