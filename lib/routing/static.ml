module Topology = Pim_graph.Topology
module Spt = Pim_graph.Spt

type t = {
  net : Pim_sim.Net.t;
  mutable trees : Spt.tree array;  (* indexed by source node *)
  mutable hops : (Topology.node option array * Topology.iface option array) array;
  subs : (unit -> unit) Pim_util.Vec.t array;  (* per node *)
}

let usable net u v lid =
  Pim_sim.Net.link_up net lid && Pim_sim.Net.node_up net u && Pim_sim.Net.node_up net v

let compute net =
  let topo = Pim_sim.Net.topo net in
  let n = Topology.n_nodes topo in
  let trees =
    Array.init n (fun u -> Spt.single_source ~usable:(usable net) topo u)
  in
  let hops = Array.map (fun tr -> Spt.first_hop topo tr) trees in
  (trees, hops)

let refresh t =
  let trees, hops = compute t.net in
  t.trees <- trees;
  t.hops <- hops;
  Array.iter (fun subs -> Pim_util.Vec.iter (fun f -> f ()) subs) t.subs

let create net =
  let topo = Pim_sim.Net.topo net in
  let trees, hops = compute net in
  let subs = Array.init (Topology.n_nodes topo) (fun _ -> Pim_util.Vec.create ()) in
  let t = { net; trees; hops; subs } in
  Pim_sim.Net.on_link_change net (fun _ _ -> refresh t);
  t

let rib t u =
  let next_hop addr =
    match Rib.resolve addr with
    | None -> None
    | Some d ->
      if d = u then None
      else
        let hop, hop_iface = t.hops.(u) in
        (match (hop.(d), hop_iface.(d)) with
        | Some v, Some i -> Some (i, v)
        | _ -> None)
  in
  let distance addr =
    match Rib.resolve addr with
    | None -> None
    | Some d ->
      let dd = t.trees.(u).Spt.dist.(d) in
      if dd = max_int then None else Some dd
  in
  let subscribe f = Pim_util.Vec.push t.subs.(u) f in
  { Rib.node = u; next_hop; distance; subscribe }

let distance_matrix t = Array.map (fun tr -> tr.Spt.dist) t.trees
