module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group

type jp_entry = {
  addr : Addr.t;
  wc : bool;
  rp : bool;
  plen : int;
}

type join_prune = {
  target : Addr.t;
  origin : Pim_graph.Topology.node;
  group : Group.t;
  joins : jp_entry list;
  prunes : jp_entry list;
  holdtime : float;
}

type crp = {
  crp_addr : Addr.t;
  priority : int;
  crp_holdtime : float;
  coverage : Group.t list;
}

type Packet.payload +=
  | Join_prune of join_prune
  | Join_prune_bundle of join_prune list
  | Register of Packet.t
  | Rp_reachability of { group : Group.t; rp : Addr.t }
  | Crp_advert of crp
  | Bootstrap of { bsr : Addr.t; bsr_priority : int; seq : int; crps : crp list }

let jp_entry ?(wc = false) ?(rp = false) ?(plen = 32) addr = { addr; wc; rp; plen }

let pp_jp_entry ppf e =
  Format.fprintf ppf "%s%s%s%s" (Addr.to_string e.addr)
    (if e.plen = 32 then "" else Printf.sprintf "/%d" e.plen)
    (if e.wc then "+WC" else "")
    (if e.rp then "+RP" else "")

let jp_to_string side entries =
  if entries = [] then ""
  else
    Printf.sprintf " %s={%s}" side
      (String.concat ","
         (List.map (fun e -> Format.asprintf "%a" pp_jp_entry e) entries))

let () =
  Packet.register_printer (function
    | Join_prune m ->
      Some
        (Printf.sprintf "pim-jp %s ->%s%s%s"
           (Group.to_string m.group)
           (Addr.to_string m.target)
           (jp_to_string "join" m.joins)
           (jp_to_string "prune" m.prunes))
    | Join_prune_bundle ms -> Some (Printf.sprintf "pim-jp-bundle (%d groups)" (List.length ms))
    | Register inner ->
      Some (Printf.sprintf "pim-register [%s]" (Packet.payload_to_string inner.Packet.payload))
    | Rp_reachability { group; rp } ->
      Some (Printf.sprintf "pim-rp-reach %s rp=%s" (Group.to_string group) (Addr.to_string rp))
    | Crp_advert c ->
      Some
        (Printf.sprintf "pim-crp-advert rp=%s prio=%d groups=%s"
           (Addr.to_string c.crp_addr) c.priority
           (if c.coverage = [] then "*"
            else String.concat "," (List.map Group.to_string c.coverage)))
    | Bootstrap { bsr; bsr_priority; seq; crps } ->
      Some
        (Printf.sprintf "pim-bootstrap bsr=%s prio=%d seq=%d crps=%d"
           (Addr.to_string bsr) bsr_priority seq (List.length crps))
    | _ -> None)

let all_pim_routers_group = Group.of_addr_exn Addr.all_pim_routers

let join_prune_packet ~src ~target ~origin ~group ~joins ~prunes ~holdtime =
  let size = 24 + (8 * (List.length joins + List.length prunes)) in
  Packet.multicast ~src ~group:all_pim_routers_group ~ttl:1 ~size
    (Join_prune { target; origin; group; joins; prunes; holdtime })

let jp_size m = 8 + (8 * (List.length m.joins + List.length m.prunes))

let bundle_packet ~src ms =
  assert (ms <> []);
  let size = 16 + List.fold_left (fun acc m -> acc + jp_size m) 0 ms in
  Packet.multicast ~src ~group:all_pim_routers_group ~ttl:1 ~size (Join_prune_bundle ms)

let register_packet ~src ~rp inner =
  Packet.unicast ~src ~dst:rp ~size:(inner.Packet.size + 28) (Register inner)

let rp_reachability_packet ~src ~group ~rp =
  Packet.multicast ~src ~group:all_pim_routers_group ~ttl:1 ~size:16
    (Rp_reachability { group; rp })

let crp ?(priority = 0) ?(holdtime = 150.) ?(coverage = []) addr =
  { crp_addr = addr; priority; crp_holdtime = holdtime; coverage }

let crp_size c = 12 + (8 * max 1 (List.length c.coverage))

let crp_advert_packet ~src ~bsr c = Packet.unicast ~src ~dst:bsr ~size:(8 + crp_size c) (Crp_advert c)

let bootstrap_packet ~src ~bsr ~bsr_priority ~seq crps =
  let size = 16 + List.fold_left (fun acc c -> acc + crp_size c) 0 crps in
  Packet.multicast ~src ~group:all_pim_routers_group ~ttl:1 ~size
    (Bootstrap { bsr; bsr_priority; seq; crps })
