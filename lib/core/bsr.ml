module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Topology = Pim_graph.Topology
module Rib = Pim_routing.Rib
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Packet = Pim_net.Packet

type config = {
  bootstrap_period : float;
  bsr_holdtime : float;
  crp_holdtime : float;
}

let default = { bootstrap_period = 60.; bsr_holdtime = 150.; crp_holdtime = 150. }

let fast = { bootstrap_period = 2.5; bsr_holdtime = 7.5; crp_holdtime = 7.5 }

(* Worst case from an RP crash to every router seeing a mapping without it:
   the dead candidate's record survives one holdtime at the BSR, and the
   purged RP-set still has to ride one bootstrap flood out (plus one period
   of phase error). *)
let failover_budget cfg = cfg.crp_holdtime +. (2. *. cfg.bootstrap_period)

type role = {
  cbsr_priority : int option;
  crp_records : (int * Group.t list) list;
}

let silent = { cbsr_priority = None; crp_records = [] }

type stats = {
  mutable bootstraps_sent : int;
  mutable bootstraps_forwarded : int;
  mutable adverts_sent : int;
  mutable elections_won : int;
  mutable mapping_changes : int;
}

let fresh_stats () =
  {
    bootstraps_sent = 0;
    bootstraps_forwarded = 0;
    adverts_sent = 0;
    elections_won = 0;
    mapping_changes = 0;
  }

(* A candidate-RP record as this node has learned it: one per
   (address, coverage) pair, so a candidate can advertise distinct
   priorities for specific groups and a wildcard fallback. *)
type rp_rec = {
  priority : int;
  holdtime : float;
  mutable deadline : float;
}

type rec_key = Addr.t * Group.t list

let compare_coverage = List.compare Group.compare

let compare_rec_key (a1, c1) (a2, c2) =
  match Addr.compare a1 a2 with 0 -> compare_coverage c1 c2 | c -> c

type agent = {
  node : Topology.node;
  addr : Addr.t;
  rib : Rib.t;
  role : role;
  mutable bsr : (Addr.t * int) option;  (* accepted BSR and its priority *)
  mutable bsr_seq : int;  (* last accepted bootstrap sequence number *)
  mutable bsr_deadline : float;
  mutable my_seq : int;  (* own origination counter (when elected) *)
  view : (rec_key, rp_rec) Hashtbl.t;  (* RP-set learned from bootstraps *)
  table : (rec_key, rp_rec) Hashtbl.t;  (* adverts collected while BSR *)
  watch : (Group.t, unit) Hashtbl.t;  (* groups ever looked up here *)
  cache : (Group.t, Addr.t list) Hashtbl.t;  (* last non-empty mapping *)
  last : (Group.t, Addr.t list) Hashtbl.t;  (* last computed (event dedup) *)
}

type t = {
  net : Net.t;
  eng : Engine.t;
  cfg : config;
  trace : Trace.t option;
  forward_unicast : bool;
  agents : agent array;
  stats : stats;
}

let config t = t.cfg

let stats t = t.stats

let ev t node event =
  match t.trace with None -> () | Some trc -> Trace.emit trc ~node event

(* Higher (priority, address) wins, exactly the PIM-SM BSR tie-break. *)
let pref_compare (p1, a1) (p2, a2) =
  match Int.compare p1 p2 with 0 -> Addr.compare a1 a2 | c -> c

let self_pref a = Option.map (fun p -> (p, a.addr)) a.role.cbsr_priority

(* Deterministic per-(group, RP) mix for load-spreading tie-breaks — the
   hash-mapping step of the bootstrap mechanism. *)
let group_rp_mix g rp =
  let gi = Int32.to_int (Addr.to_int32 (Group.to_addr g)) in
  let ri = Int32.to_int (Addr.to_int32 rp) in
  let x = (gi * 0x9e3779b1) lxor (ri * 0x85ebca6b) in
  let x = x lxor (x lsr 15) in
  x land 0x3fffffff

let sorted_recs tbl =
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> compare_rec_key k1 k2)

let expire_recs tbl ~now =
  sorted_recs tbl
  |> List.iter (fun (k, r) -> if r.deadline <= now then Hashtbl.remove tbl k)

let install_rec tbl (rp, coverage) ~priority ~holdtime ~now =
  let key = (rp, List.sort Group.compare coverage) in
  match Hashtbl.find_opt tbl key with
  | Some r ->
    r.deadline <- Float.max r.deadline (now +. holdtime)
  | None -> Hashtbl.replace tbl key { priority; holdtime; deadline = now +. holdtime }

(* The ranked RP list for a group from this node's current view: records
   explicitly covering the group outrank wildcard records (longest
   match), which remain as failover alternates; within each class,
   higher priority first, then the group-address hash spreads groups over
   equal-priority candidates, addresses breaking the final tie. *)
let compute_mapping a g ~now =
  let live =
    sorted_recs a.view
    |> List.filter (fun ((_, coverage), (r : rp_rec)) ->
           r.deadline > now && (coverage = [] || List.exists (Group.equal g) coverage))
  in
  let rank pool =
    pool
    |> List.map (fun ((rp, _), (r : rp_rec)) -> (r.priority, group_rp_mix g rp, rp))
    |> List.sort (fun (p1, h1, a1) (p2, h2, a2) ->
           match Int.compare p2 p1 with
           | 0 -> ( match Int.compare h2 h1 with 0 -> Addr.compare a2 a1 | c -> c)
           | c -> c)
    |> List.map (fun (_, _, rp) -> rp)
  in
  let specific, wildcard = List.partition (fun ((_, coverage), _) -> coverage <> []) live in
  rank specific @ rank wildcard
  |> List.fold_left (fun acc rp -> if List.exists (Addr.equal rp) acc then acc else rp :: acc) []
  |> List.rev

let lookup t node g =
  let a = t.agents.(node) in
  Hashtbl.replace a.watch g ();
  match compute_mapping a g ~now:(Engine.now t.eng) with
  | [] -> ( match Hashtbl.find_opt a.cache g with Some rps -> rps | None -> [])
  | rps ->
    Hashtbl.replace a.cache g rps;
    rps

let elected_bsr t node = Option.map fst t.agents.(node).bsr

let mapping t node groups =
  List.map (fun g -> (g, lookup t node g)) (List.sort_uniq Group.compare groups)

(* Detect and announce mapping changes for every group this node has ever
   been asked about; the cache keeps the last non-empty mapping so lookups
   degrade to it while the view is empty (last-known-RP fallback). *)
let check_mappings t a ~now =
  Hashtbl.fold (fun g () acc -> g :: acc) a.watch []
  |> List.sort Group.compare
  |> List.iter (fun g ->
         let rps = compute_mapping a g ~now in
         let prev = Option.value (Hashtbl.find_opt a.last g) ~default:[] in
         if not (List.equal Addr.equal rps prev) then begin
           Hashtbl.replace a.last g rps;
           if rps <> [] then Hashtbl.replace a.cache g rps;
           t.stats.mapping_changes <- t.stats.mapping_changes + 1;
           ev t a.node
             (Event.Rp_mapping
                {
                  group = Group.to_string g;
                  rp = (match rps with rp :: _ -> Some (Addr.to_string rp) | [] -> None);
                })
         end)

let flood_bootstrap t a ~bsr ~bsr_priority ~seq ~crps ~except =
  Array.iter
    (fun (iface, _) ->
      if Some iface <> except then
        Net.send t.net a.node ~iface
          (Message.bootstrap_packet ~src:a.addr ~bsr ~bsr_priority ~seq crps))
    (Topology.ifaces (Net.topo t.net) a.node)

let accept_bsr t a ~bsr ~bsr_priority ~seq ~now =
  let changed =
    match a.bsr with Some (cur, _) -> not (Addr.equal cur bsr) | None -> true
  in
  a.bsr <- Some (bsr, bsr_priority);
  a.bsr_seq <- seq;
  a.bsr_deadline <- now +. t.cfg.bsr_holdtime;
  if changed then
    ev t a.node (Event.Bsr_elected { bsr = Addr.to_string bsr; priority = bsr_priority })

let handle_bootstrap t a ~iface ~bsr ~bsr_priority ~seq ~crps =
  let now = Engine.now t.eng in
  let incoming = (bsr_priority, bsr) in
  (* A better local candidacy suppresses inferior floods (the node will
     assert its own at the next tick); our own flood echoed back is
     rejected by the sequence check. *)
  let beats_self =
    match self_pref a with
    | Some sp -> pref_compare incoming sp >= 0
    | None -> true
  in
  let accept =
    beats_self
    &&
    match a.bsr with
    | Some (cur, _) when Addr.equal cur bsr -> seq > a.bsr_seq
    | Some (cur, curp) -> pref_compare incoming (curp, cur) > 0
    | None -> true
  in
  if accept then begin
    accept_bsr t a ~bsr ~bsr_priority ~seq ~now;
    List.iter
      (fun (c : Message.crp) ->
        install_rec a.view (c.Message.crp_addr, c.Message.coverage)
          ~priority:c.Message.priority ~holdtime:c.Message.crp_holdtime ~now)
      crps;
    t.stats.bootstraps_forwarded <- t.stats.bootstraps_forwarded + 1;
    flood_bootstrap t a ~bsr ~bsr_priority ~seq ~crps ~except:(Some iface);
    check_mappings t a ~now
  end

let handle_crp_advert t a (c : Message.crp) =
  let now = Engine.now t.eng in
  install_rec a.table (c.Message.crp_addr, c.Message.coverage) ~priority:c.Message.priority
    ~holdtime:c.Message.crp_holdtime ~now

let tick t a () =
  let now = Engine.now t.eng in
  expire_recs a.view ~now;
  expire_recs a.table ~now;
  (match a.bsr with
  | Some (cur, _) when a.bsr_deadline <= now && not (Addr.equal cur a.addr) -> a.bsr <- None
  | _ -> ());
  (* Candidate-BSR self-election: step up when no (or an inferior) BSR is
     known — covers both cold start and a crashed BSR timing out. *)
  (match self_pref a with
  | Some ((p, _) as sp) ->
    let step_up =
      match a.bsr with
      | None -> true
      | Some (cur, curp) -> (not (Addr.equal cur a.addr)) && pref_compare sp (curp, cur) > 0
    in
    if step_up then begin
      t.stats.elections_won <- t.stats.elections_won + 1;
      accept_bsr t a ~bsr:a.addr ~bsr_priority:p ~seq:a.my_seq ~now
    end
  | None -> ());
  let elected_self =
    match a.bsr with Some (cur, _) -> Addr.equal cur a.addr | None -> false
  in
  (* Candidate-RP advertising: the elected BSR installs its own records
     directly; everyone else unicasts toward the BSR it knows, silently
     retrying next period while no BSR (or no route to it) exists — the
     soft-state backoff that rides out partitions. *)
  (match (a.role.crp_records, a.bsr) with
  | [], _ | _, None -> ()
  | _, Some (bsr_addr, _) ->
    List.iter
      (fun (priority, coverage) ->
        let c = Message.crp ~priority ~holdtime:t.cfg.crp_holdtime ~coverage a.addr in
        if elected_self then handle_crp_advert t a c
        else
          match a.rib.Rib.next_hop bsr_addr with
          | None -> ()
          | Some (iface, _) ->
            t.stats.adverts_sent <- t.stats.adverts_sent + 1;
            ev t a.node
              (Event.Candidate_rp
                 {
                   rp = Addr.to_string a.addr;
                   priority;
                   groups = List.length coverage;
                 });
            Net.send t.net a.node ~iface (Message.crp_advert_packet ~src:a.addr ~bsr:bsr_addr c))
      a.role.crp_records);
  if elected_self then begin
    a.my_seq <- a.my_seq + 1;
    a.bsr_seq <- a.my_seq;
    a.bsr_deadline <- now +. t.cfg.bsr_holdtime;
    let crps =
      sorted_recs a.table
      |> List.filter (fun (_, (r : rp_rec)) -> r.deadline > now)
      |> List.map (fun ((rp, coverage), (r : rp_rec)) ->
             Message.crp ~priority:r.priority ~holdtime:r.holdtime ~coverage rp)
    in
    (* The BSR's own view is its table. *)
    List.iter
      (fun (c : Message.crp) ->
        install_rec a.view (c.Message.crp_addr, c.Message.coverage)
          ~priority:c.Message.priority ~holdtime:c.Message.crp_holdtime ~now)
      crps;
    t.stats.bootstraps_sent <- t.stats.bootstraps_sent + 1;
    flood_bootstrap t a
      ~bsr:a.addr
      ~bsr_priority:(match a.bsr with Some (_, p) -> p | None -> 0)
      ~seq:a.my_seq ~crps ~except:None
  end;
  check_mappings t a ~now

let handle_packet t a ~iface pkt =
  match pkt.Packet.payload with
  | Message.Bootstrap { bsr; bsr_priority; seq; crps } ->
    handle_bootstrap t a ~iface ~bsr ~bsr_priority ~seq ~crps
  | Message.Crp_advert c -> (
    match pkt.Packet.dst with
    | Packet.Unicast dst when Addr.equal dst a.addr -> handle_crp_advert t a c
    | Packet.Unicast dst when t.forward_unicast -> (
      (* Standalone deployments (no PIM router on the node) forward
         transit adverts themselves. *)
      match a.rib.Rib.next_hop dst with
      | Some (ifc, _) -> Net.send t.net a.node ~iface:ifc pkt
      | None -> ())
    | _ -> ())
  | _ -> ()

let restart t node =
  let a = t.agents.(node) in
  a.bsr <- None;
  a.bsr_seq <- 0;
  a.bsr_deadline <- 0.;
  a.my_seq <- 0;
  Hashtbl.reset a.view;
  Hashtbl.reset a.table;
  Hashtbl.reset a.cache;
  Hashtbl.reset a.last;
  (* The watch list is soft state too: a rebooted router forgets which
     groups it was asked about until the next lookup re-registers them
     (mapping-change announcements resume from there). *)
  Hashtbl.reset a.watch

let deploy ?(config = default) ?trace ?(forward_unicast = false) ~net ~ribs ~roles () =
  let eng = Net.engine net in
  let topo = Net.topo net in
  let n = Topology.n_nodes topo in
  if Array.length roles <> n then invalid_arg "Bsr.deploy: roles length";
  let agents =
    Array.init n (fun node ->
        {
          node;
          addr = Addr.router node;
          rib = ribs node;
          role = roles.(node);
          bsr = None;
          bsr_seq = 0;
          bsr_deadline = 0.;
          my_seq = 0;
          view = Hashtbl.create 8;
          table = Hashtbl.create 8;
          watch = Hashtbl.create 4;
          cache = Hashtbl.create 4;
          last = Hashtbl.create 4;
        })
  in
  let t = { net; eng; cfg = config; trace; forward_unicast; agents; stats = fresh_stats () } in
  Array.iter
    (fun a ->
      Net.set_handler net a.node (fun ~iface pkt -> handle_packet t a ~iface pkt);
      let frac = float_of_int (a.node mod 16) /. 16. in
      ignore
        (Engine.every eng
           ~start:(config.bootstrap_period *. (0.1 +. (0.5 *. frac)))
           ~interval:config.bootstrap_period
           (tick t a)))
    agents;
  t
