module Topology = Pim_graph.Topology
module Net = Pim_sim.Net

type t = {
  net : Net.t;
  routers : Router.t array;
}

let create ?config ?igmp_config ?trace ?bsr ~net ~ribs ~rp_set () =
  let n = Topology.n_nodes (Net.topo net) in
  let routers =
    Array.init n (fun u ->
        let rp_lookup = Option.map (fun b g -> Bsr.lookup b u g) bsr in
        Router.create ?config ?igmp_config ?trace ?rp_lookup ~net ~rib:(ribs u) ~rp_set u)
  in
  { net; routers }

let create_static ?config ?igmp_config ?trace net ~rp_set =
  let static = Pim_routing.Static.create net in
  create ?config ?igmp_config ?trace ~net ~ribs:(Pim_routing.Static.rib static) ~rp_set ()

let router t u = t.routers.(u)

let routers t = t.routers

let net t = t.net

let total_entries t =
  Array.fold_left (fun acc r -> acc + Pim_mcast.Fwd.count (Router.fib r)) 0 t.routers

let pp_shared_tree t g ppf () =
  let topo = Net.topo t.net in
  let n = Array.length t.routers in
  (* parent.(u) = the neighbor u's shared-tree iif points at, when u has a
     live shared-tree entry. *)
  let on_tree = Array.make n false in
  let parent = Array.make n None in
  Array.iter
    (fun r ->
      let u = Router.node r in
      match Pim_mcast.Fwd.find_star (Router.fib r) g with
      | None -> ()
      | Some e ->
        on_tree.(u) <- true;
        (match e.Pim_mcast.Fwd.iif with
        | None -> ()
        | Some iface -> (
          let link = Topology.link_of_iface topo u iface in
          match Topology.others_on_link topo link.Topology.id u with
          | [ p ] -> parent.(u) <- Some p
          | candidates -> (
            (* Multi-access: prefer an on-tree neighbor. *)
            match
              List.find_opt
                (fun p -> Pim_mcast.Fwd.find_star (Router.fib t.routers.(p)) g <> None)
                candidates
            with
            | Some p -> parent.(u) <- Some p
            | None -> parent.(u) <- (match candidates with p :: _ -> Some p | [] -> None))))
    )
    t.routers;
  let children u =
    List.filter (fun v -> on_tree.(v) && parent.(v) = Some u) (List.init n Fun.id)
  in
  let describe u =
    let r = t.routers.(u) in
    let tags = ref [] in
    if Router.is_rp_for r g then tags := "RP" :: !tags;
    if Router.has_local_members r g then tags := "members" :: !tags;
    if !tags = [] then Printf.sprintf "router %d" u
    else Printf.sprintf "router %d (%s)" u (String.concat ", " !tags)
  in
  let rec render u depth =
    Format.fprintf ppf "%s%s@." (String.make (2 * depth) ' ') (describe u);
    List.iter (fun v -> render v (depth + 1)) (children u)
  in
  let roots =
    List.filter
      (fun u ->
        on_tree.(u)
        && match parent.(u) with None -> true | Some p -> not on_tree.(p))
      (List.init n Fun.id)
  in
  if roots = [] then Format.fprintf ppf "(no shared tree for %s)@." (Pim_net.Group.to_string g)
  else begin
    Format.fprintf ppf "shared tree for %s:@." (Pim_net.Group.to_string g);
    List.iter (fun u -> render u 1) roots
  end

let total_stats t =
  let acc = Router.fresh_stats () in
  Array.iter
    (fun r ->
      let s = Router.stats r in
      acc.Router.jp_msgs_sent <- acc.Router.jp_msgs_sent + s.Router.jp_msgs_sent;
      acc.Router.joins_sent <- acc.Router.joins_sent + s.Router.joins_sent;
      acc.Router.prunes_sent <- acc.Router.prunes_sent + s.Router.prunes_sent;
      acc.Router.registers_sent <- acc.Router.registers_sent + s.Router.registers_sent;
      acc.Router.rp_reach_sent <- acc.Router.rp_reach_sent + s.Router.rp_reach_sent;
      acc.Router.data_forwarded <- acc.Router.data_forwarded + s.Router.data_forwarded;
      acc.Router.data_dropped_iif <- acc.Router.data_dropped_iif + s.Router.data_dropped_iif;
      acc.Router.data_dup_suppressed <-
        acc.Router.data_dup_suppressed + s.Router.data_dup_suppressed;
      acc.Router.data_dropped_no_state <-
        acc.Router.data_dropped_no_state + s.Router.data_dropped_no_state;
      acc.Router.data_delivered_local <-
        acc.Router.data_delivered_local + s.Router.data_delivered_local;
      acc.Router.unicast_forwarded <- acc.Router.unicast_forwarded + s.Router.unicast_forwarded;
      acc.Router.spt_switches <- acc.Router.spt_switches + s.Router.spt_switches;
      acc.Router.rp_failovers <- acc.Router.rp_failovers + s.Router.rp_failovers)
    t.routers;
  acc

module Metrics = Pim_util.Metrics

let export_metrics t m =
  Array.iter
    (fun r ->
      let labels = [ ("node", string_of_int (Router.node r)) ] in
      (* Export-as-set: an instrument already holding this router's
         previous snapshot is brought up to date, so exporting twice
         doesn't double-count. *)
      let set name v =
        let c = Metrics.counter m ~labels name in
        Metrics.incr ~by:(v - Metrics.counter_value c) c
      in
      let s = Router.stats r in
      set "router_jp_msgs_sent" s.Router.jp_msgs_sent;
      set "router_joins_sent" s.Router.joins_sent;
      set "router_prunes_sent" s.Router.prunes_sent;
      set "router_registers_sent" s.Router.registers_sent;
      set "router_rp_reach_sent" s.Router.rp_reach_sent;
      set "router_data_forwarded" s.Router.data_forwarded;
      set "router_data_dropped_iif" s.Router.data_dropped_iif;
      set "router_data_dup_suppressed" s.Router.data_dup_suppressed;
      set "router_data_dropped_no_state" s.Router.data_dropped_no_state;
      set "router_data_delivered_local" s.Router.data_delivered_local;
      set "router_spt_switches" s.Router.spt_switches;
      let by_group = Hashtbl.create 4 in
      List.iter
        (fun e ->
          let g = Pim_net.Group.to_string e.Pim_mcast.Fwd.group in
          Hashtbl.replace by_group g (1 + Option.value ~default:0 (Hashtbl.find_opt by_group g)))
        (Pim_mcast.Fwd.entries (Router.fib r));
      Hashtbl.fold (fun g count acc -> (g, count) :: acc) by_group []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (g, count) ->
             Metrics.set
               (Metrics.gauge m ~labels:(("group", g) :: labels) "router_group_entries")
               (float_of_int count)))
    t.routers
