(** Convenience for standing up PIM sparse mode on every router of a
    topology: one {!Router} per node, all sharing a unicast substrate and
    one RP-set configuration.  Used by the examples, the integration tests
    and the experiment harnesses. *)

type t

val create :
  ?config:Config.t ->
  ?igmp_config:Pim_igmp.Router.config ->
  ?trace:Pim_sim.Trace.t ->
  ?bsr:Bsr.t ->
  net:Pim_sim.Net.t ->
  ribs:(Pim_graph.Topology.node -> Pim_routing.Rib.t) ->
  rp_set:Rp_set.t ->
  unit ->
  t
(** [bsr] connects every router to an already-deployed election
    subsystem ({!Bsr.deploy} on the same [net]): each router consults the
    node's elected group-to-RP mapping before the static [rp_set]. *)

val create_static :
  ?config:Config.t ->
  ?igmp_config:Pim_igmp.Router.config ->
  ?trace:Pim_sim.Trace.t ->
  Pim_sim.Net.t ->
  rp_set:Rp_set.t ->
  t
(** Like {!create} with an oracle {!Pim_routing.Static} substrate built on
    the spot. *)

val router : t -> Pim_graph.Topology.node -> Router.t

val routers : t -> Router.t array

val net : t -> Pim_sim.Net.t

val total_entries : t -> int
(** Multicast forwarding entries across all routers — the state metric of
    the paper's overhead definition. *)

val total_stats : t -> Router.stats
(** Field-wise sum over all routers. *)

val export_metrics : t -> Pim_util.Metrics.t -> unit
(** Snapshot every router's protocol counters into the registry as
    [router_*] counters labelled [node], plus one [router_group_entries]
    gauge per (router, group) with live forwarding state.  Idempotent:
    re-exporting updates the instruments in place rather than
    double-counting, so it can be called right before each
    {!Pim_util.Metrics.to_json} dump. *)

val pp_shared_tree : t -> Pim_net.Group.t -> Format.formatter -> unit -> unit
(** Render the group's RP-rooted shared tree as indented ASCII, derived
    from the live "(*,G)" entries (each router hangs under the neighbor
    its incoming interface points at).  Orphan branches — e.g. mid-failover
    — are printed under their own roots. *)
