type spt_policy =
  | Immediate
  | Never
  | Threshold of { packets : int; window : float }

type t = {
  jp_period : float;
  oif_holdtime : float;
  entry_linger : float;
  prune_override_delay : float;
  prune_override_window : float;
  rp_reach_period : float;
  rp_timeout : float;
  spt_policy : spt_policy;
  register_suppress : bool;
  aggregate_sources : bool;
  sweep_interval : float;
  switchover_fallback : bool;
}

let default =
  {
    jp_period = 60.;
    oif_holdtime = 180.;
    entry_linger = 180.;
    prune_override_delay = 1.;
    prune_override_window = 3.;
    rp_reach_period = 30.;
    rp_timeout = 105.;
    spt_policy = Immediate;
    register_suppress = true;
    aggregate_sources = false;
    sweep_interval = 20.;
    switchover_fallback = true;
  }

let scale f t =
  {
    t with
    jp_period = t.jp_period *. f;
    oif_holdtime = t.oif_holdtime *. f;
    entry_linger = t.entry_linger *. f;
    prune_override_delay = t.prune_override_delay *. f;
    prune_override_window = t.prune_override_window *. f;
    rp_reach_period = t.rp_reach_period *. f;
    rp_timeout = t.rp_timeout *. f;
    sweep_interval = t.sweep_interval *. f;
  }

let fast = scale 0.1 default

let with_spt_policy p t = { t with spt_policy = p }

let with_jp_period p t =
  {
    t with
    jp_period = p;
    oif_holdtime = 3. *. p;
    entry_linger = 3. *. p;
    sweep_interval = p /. 3.;
  }
