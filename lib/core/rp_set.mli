(** Group-to-RP mappings.

    Section 3.1: a group is identified as sparse-mode by the presence of RP
    address(es) associated with it, learned from configuration or from a
    host message; groups without a mapping are not handled by PIM sparse
    mode.  The list is ordered: receivers join toward the first reachable
    RP and fail over down the list (section 3.9); senders register to
    every RP in the list. *)

type t

val empty : t

val of_list : (Pim_net.Group.t * Pim_net.Addr.t list) list -> t

val add : t -> Pim_net.Group.t -> Pim_net.Addr.t list -> t

val single : Pim_net.Group.t -> Pim_net.Addr.t -> t
(** One group, one RP. *)

val rps : t -> Pim_net.Group.t -> Pim_net.Addr.t list
(** Empty when the group has no mapping (dense-mode / unsupported). *)

val is_sparse : t -> Pim_net.Group.t -> bool

val groups : t -> Pim_net.Group.t list
(** Every group with a mapping, in canonical ascending {!Pim_net.Group.compare}
    order.  The ordering is part of the interface: callers enumerate RP
    configurations into reports and protocol messages, so a stable,
    documented order is what keeps seeded runs byte-identical. *)
