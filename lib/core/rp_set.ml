module Group = Pim_net.Group

module GroupMap = Map.Make (Group)

type t = Pim_net.Addr.t list GroupMap.t

let empty = GroupMap.empty

let add t g rps = GroupMap.add g rps t

let of_list l = List.fold_left (fun acc (g, rps) -> add acc g rps) empty l

let single g rp = of_list [ (g, [ rp ]) ]

let rps t g = Option.value (GroupMap.find_opt g t) ~default:[]

let is_sparse t g = rps t g <> []

(* The fold visits keys in ascending order; consing reverses, so restore
   the canonical ascending order the interface promises. *)
let groups t = GroupMap.fold (fun g _ acc -> g :: acc) t [] |> List.rev
