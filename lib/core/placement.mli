(** Pluggable RP placement strategies.

    The paper treats where RPs live as orthogonal configuration
    ("administratively chosen", section 3.1); this module makes the
    choice a first-class, comparable strategy.  Every strategy maps each
    group to an {e ordered} RP list — first entry primary, the rest the
    failover order of section 3.9 — which can be installed statically
    ({!rp_set_of}) or advertised dynamically through the BSR election
    ({!roles}, see {!Bsr}).

    Strategies:
    - {!Static}: a hand-written mapping (today's {!Rp_set} workflow);
    - {!Random}: [k] RPs drawn uniformly from the candidate pool, ranked
      per group by the BSR hash — the baseline any informed placement
      must beat;
    - {!Centered}: the [k] topological centers minimizing max shared-tree
      delay over the member set (the CBT core-placement heuristic);
    - {!Locality}: farthest-point clustering of the members into [k]
      clusters with one core each, ordered by cluster size — the
      locality-based multi-core placement of arXiv:1606.04928, the
      scale-out path for group sharding;
    - {!Vns}: variable neighborhood search minimizing delay variation
      subject to a bounded max delay (arXiv:1303.4771); the min-max
      center rides along as the alternate.

    All strategies are deterministic in [(seed, topology, groups)]:
    groups are processed in ascending group order with one split PRNG
    stream each, so results are independent of caller enumeration
    order. *)

type spec =
  | Static of (Pim_net.Group.t * Pim_net.Addr.t list) list
  | Random of int  (** [k] RPs per group, uniform over the pool *)
  | Centered of int  (** [k] best min-max-delay centers *)
  | Locality of int  (** [k]-cluster locality placement (1606.04928) *)
  | Vns of { iters : int; delay_factor : float }
      (** VNS delay-variation minimization; max delay bounded by
          [delay_factor] times the best achievable (1303.4771) *)

val named : ?k:int -> ?iters:int -> ?delay_factor:float -> string -> spec option
(** CLI names: ["random"], ["center"], ["locality"], ["vns"].  Defaults:
    [k = 2], [iters = 32], [delay_factor = 1.5].  [None] for unknown
    names ("static" needs an explicit mapping and is built by callers). *)

val compute :
  topo:Pim_graph.Topology.t ->
  ?apsp:int array array ->
  groups:(Pim_net.Group.t * Pim_graph.Topology.node list) list ->
  ?forbidden:Pim_graph.Topology.node list ->
  seed:int ->
  spec ->
  (Pim_net.Group.t * Pim_net.Addr.t list) list
(** Place RPs for each group given its member (sender and receiver)
    nodes.  [apsp] is {!Pim_graph.Spt.all_pairs} (computed when absent);
    [forbidden] excludes nodes from the candidate pool (e.g. sources and
    receivers in RP-crash experiments, so faults never hit endpoints).
    The result is in ascending group order. *)

val roles :
  (Pim_net.Group.t * Pim_net.Addr.t list) list ->
  n_nodes:int ->
  cbsrs:(Pim_graph.Topology.node * int) list ->
  Bsr.role array
(** Convert a placement into per-node BSR roles: the RP at rank [i] for a
    group advertises that group at priority [16 - i], so the elected
    mapping reproduces the placement's failover order exactly.  [cbsrs]
    lists the candidate bootstrap routers with their priorities. *)

val rp_set_of : (Pim_net.Group.t * Pim_net.Addr.t list) list -> Rp_set.t
(** The same placement as static configuration. *)
