module Topology = Pim_graph.Topology
module Center = Pim_graph.Center
module Spt = Pim_graph.Spt
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Prng = Pim_util.Prng

type spec =
  | Static of (Group.t * Addr.t list) list
  | Random of int
  | Centered of int
  | Locality of int
  | Vns of { iters : int; delay_factor : float }

let named ?(k = 2) ?(iters = 32) ?(delay_factor = 1.5) = function
  | "random" -> Some (Random k)
  | "center" -> Some (Centered k)
  | "locality" -> Some (Locality k)
  | "vns" -> Some (Vns { iters; delay_factor })
  | _ -> None

(* Same mix the BSR hash-mapping uses: ranks equal-priority candidates
   per group so multi-RP sets shard groups instead of piling onto one. *)
let group_rp_mix g node =
  let gi = Int32.to_int (Addr.to_int32 (Group.to_addr g)) in
  let x = (gi * 0x9e3779b1) lxor (node * 0x85ebca6b) in
  let x = x lxor (x lsr 15) in
  x land 0x3fffffff

let dist apsp u v = apsp.(u).(v)

(* Max shared-tree delay with [v] as the rendezvous, over the member set
   acting as both senders and receivers; [max_int] when disconnected.
   [cbt_max_delay] skips the [s = r] pairs, which would score every
   candidate 0 for a singleton member set (letting the tie-break pick an
   arbitrary far-away node); score those by round-trip distance instead. *)
let rendezvous_score apsp members v =
  match members with
  | [ m ] ->
    let d = dist apsp v m in
    if d = max_int then max_int else 2 * d
  | _ -> Center.cbt_max_delay apsp ~center:v ~senders:members ~receivers:members

let candidates topo ~forbidden =
  let n = Topology.n_nodes topo in
  List.init n Fun.id |> List.filter (fun v -> not (List.mem v forbidden))

let top_k_centers apsp ~members ~pool k =
  pool
  |> List.filter_map (fun v ->
         let s = rendezvous_score apsp members v in
         if s = max_int then None else Some (s, v))
  |> List.sort (fun (s1, v1) (s2, v2) ->
         match Int.compare s1 s2 with 0 -> Int.compare v1 v2 | c -> c)
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

(* Farthest-point clustering of the member set (the locality heuristic of
   arXiv:1606.04928: several cores, each close to one cluster of
   receivers), then one core per cluster from the candidate pool. *)
let locality_rps apsp ~members ~pool k =
  let members = List.sort_uniq Int.compare members in
  match members with
  | [] -> []
  | _ ->
    let k = max 1 (min k (List.length members)) in
    let eccentricity m =
      List.fold_left (fun acc o -> max acc (dist apsp m o)) 0 members
    in
    let first =
      List.fold_left
        (fun best m ->
          match best with
          | None -> Some (eccentricity m, m)
          | Some (be, bm) ->
            let e = eccentricity m in
            if e < be || (e = be && m < bm) then Some (e, m) else best)
        None members
      |> Option.get |> snd
    in
    (* Accumulated in reverse, restored below; [gap] does not care about
       seed order. *)
    let seeds = ref [ first ] in
    for _ = 2 to k do
      let gap m = List.fold_left (fun acc s -> min acc (dist apsp m s)) max_int !seeds in
      let next =
        List.fold_left
          (fun best m ->
            if List.mem m !seeds then best
            else
              match best with
              | None -> Some (gap m, m)
              | Some (bg, bm) ->
                let g = gap m in
                if g > bg || (g = bg && m < bm) then Some (g, m) else best)
          None members
      in
      match next with None -> () | Some (_, m) -> seeds := m :: !seeds
    done;
    let seeds = List.rev !seeds in
    let cluster_of m =
      List.fold_left
        (fun (bd, bs) s ->
          let d = dist apsp m s in
          if d < bd then (d, s) else (bd, bs))
        (max_int, List.hd seeds)
        seeds
      |> snd
    in
    let clusters =
      List.map (fun s -> (s, List.filter (fun m -> cluster_of m = s) members)) seeds
      |> List.filter (fun (_, ms) -> ms <> [])
    in
    let core_of ms =
      pool
      |> List.filter_map (fun v ->
             let s = rendezvous_score apsp ms v in
             if s = max_int then None else Some (s, v))
      |> List.fold_left
           (fun best (s, v) ->
             match best with
             | None -> Some (s, v)
             | Some (bs, bv) -> if s < bs || (s = bs && v < bv) then Some (s, v) else best)
           None
      |> Option.map snd
    in
    clusters
    |> List.filter_map (fun (_, ms) -> Option.map (fun c -> (List.length ms, c)) (core_of ms))
    |> List.sort (fun (n1, c1) (n2, c2) ->
           match Int.compare n2 n1 with 0 -> Int.compare c1 c2 | c -> c)
    |> List.map snd
    |> List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) []
    |> List.rev

(* Variable neighborhood search for a delay-variation-minimizing RP under
   a bounded max-delay constraint (arXiv:1303.4771): shake within growing
   neighborhoods of the incumbent, descend with best-improvement moves. *)
let vns_rp apsp ~members ~pool ~prng ~iters ~delay_factor =
  let feasible_scores =
    List.filter_map
      (fun v ->
        let s = rendezvous_score apsp members v in
        if s = max_int then None else Some (v, s))
      pool
  in
  match feasible_scores with
  | [] -> None
  | _ ->
    let best_max = List.fold_left (fun acc (_, s) -> min acc s) max_int feasible_scores in
    let bound =
      int_of_float (Float.round (delay_factor *. float_of_int best_max))
    in
    let variation v =
      let ds = List.map (fun m -> dist apsp v m) members in
      if List.exists (fun d -> d = max_int) ds then max_int
      else
        List.fold_left max 0 ds - List.fold_left min max_int ds
    in
    let cost v =
      let s = rendezvous_score apsp members v in
      if s > bound then None else Some (variation v, s, v)
    in
    let compare_cost (va, sa, ia) (vb, sb, ib) =
      match Int.compare va vb with
      | 0 -> ( match Int.compare sa sb with 0 -> Int.compare ia ib | c -> c)
      | c -> c
    in
    let feasible = List.filter_map (fun (v, _) -> cost v) feasible_scores in
    (match feasible with
    | [] -> None
    | _ ->
      (* Start from the min-max-delay center, the natural initial
         solution; VNS then trades residual delay slack for variation. *)
      let center_start =
        List.fold_left
          (fun best (v, s) ->
            match best with
            | None -> Some (s, v)
            | Some (bs, bv) -> if s < bs || (s = bs && v < bv) then Some (s, v) else best)
          None feasible_scores
        |> Option.get |> snd
      in
      let neighborhood v width =
        feasible_scores
        |> List.map (fun (u, _) -> (dist apsp v u, u))
        |> List.sort (fun (d1, u1) (d2, u2) ->
               match Int.compare d1 d2 with 0 -> Int.compare u1 u2 | c -> c)
        |> List.filteri (fun i _ -> i < width)
        |> List.map snd
      in
      (* [descend] starts from a known-feasible cost triple; shaken nodes
         outside the delay bound are simply skipped (they widen the next
         shake instead). *)
      let descend c0 =
        let current = ref c0 in
        let improved = ref true in
        while !improved do
          improved := false;
          let _, _, here = !current in
          List.iter
            (fun u ->
              match cost u with
              | Some c when compare_cost c !current < 0 ->
                current := c;
                improved := true
              | _ -> ())
            (neighborhood here 8)
        done;
        !current
      in
      let incumbent = ref (descend (Option.get (cost center_start))) in
      let k = ref 1 in
      for _ = 1 to iters do
        let _, _, here = !incumbent in
        let hood = neighborhood here (8 * !k) in
        let shaken = List.nth hood (Prng.int prng (List.length hood)) in
        (match cost shaken with
        | Some c ->
          let candidate = descend c in
          if compare_cost candidate !incumbent < 0 then begin
            incumbent := candidate;
            k := 1
          end
          else k := min 3 (!k + 1)
        | None -> k := min 3 (!k + 1))
      done;
      let _, _, v = !incumbent in
      Some (v, center_start))

let compute ~topo ?apsp ~groups ?(forbidden = []) ~seed spec =
  match spec with
  | Static mapping ->
    List.sort (fun (g1, _) (g2, _) -> Group.compare g1 g2) mapping
  | _ ->
    let apsp = match apsp with Some m -> m | None -> Spt.all_pairs topo in
    let pool = candidates topo ~forbidden in
    let prng = Prng.create seed in
    groups
    |> List.sort (fun (g1, _) (g2, _) -> Group.compare g1 g2)
    |> List.map (fun (g, members) ->
           let prng = Prng.split prng in
           let members = List.sort_uniq Int.compare members in
           let rps =
             match spec with
             | Static _ -> assert false
             | Random k ->
               let arr = Array.of_list pool in
               let k = max 1 (min k (Array.length arr)) in
               Prng.sample prng k (Array.length arr)
               |> List.map (fun i -> arr.(i))
               |> List.map (fun v -> (group_rp_mix g v, v))
               |> List.sort (fun (h1, v1) (h2, v2) ->
                      match Int.compare h2 h1 with 0 -> Int.compare v1 v2 | c -> c)
               |> List.map snd
             | Centered k -> top_k_centers apsp ~members ~pool (max 1 k)
             | Locality k -> locality_rps apsp ~members ~pool (max 1 k)
             | Vns { iters; delay_factor } -> (
               match vns_rp apsp ~members ~pool ~prng ~iters ~delay_factor with
               | None -> []
               | Some (best, center) ->
                 if best = center then
                   (* Keep a distinct alternate for failover when one
                      exists. *)
                   best :: List.filter (fun v -> v <> best) (top_k_centers apsp ~members ~pool 2)
                 else [ best; center ])
           in
           (g, List.map Addr.router rps))

(* Per-group rank becomes per-record priority, so the BSR hash ranking
   reproduces exactly the placement's ordered RP list at every router. *)
let rank_priority_base = 16

let roles mapping ~n_nodes ~cbsrs =
  let per_node = Array.make n_nodes [] in
  mapping
  |> List.sort (fun (g1, _) (g2, _) -> Group.compare g1 g2)
  |> List.iter (fun (g, rps) ->
         List.iteri
           (fun rank rp ->
             match Addr.router_index rp with
             | Some v when v < n_nodes ->
               per_node.(v) <- (max 1 (rank_priority_base - rank), g) :: per_node.(v)
             | _ -> ())
           rps);
  Array.mapi
    (fun v recs ->
      let by_priority =
        List.sort_uniq
          (fun (p1, g1) (p2, g2) ->
            match Int.compare p1 p2 with 0 -> Group.compare g1 g2 | c -> c)
          recs
      in
      let priorities = List.sort_uniq Int.compare (List.map fst by_priority) |> List.rev in
      let crp_records =
        List.map
          (fun p -> (p, List.filter_map (fun (p', g) -> if p' = p then Some g else None) by_priority))
          priorities
      in
      let cbsr_priority = List.assoc_opt v cbsrs in
      { Bsr.cbsr_priority; crp_records })
    per_node

let rp_set_of mapping = Rp_set.of_list mapping
