(** Dynamic RP election: a bootstrap-router (BSR) mechanism.

    The paper assumes every router somehow knows the group-to-RP mapping
    and argues RP failure is survivable because "receivers simply start
    sending joins to one of the alternative RPs" (section 3.9).  This
    module supplies the discovery-and-agreement half the paper leaves
    open, modelled on the PIM-SM bootstrap mechanism:

    - {e candidate-RP advertisements}: nodes configured as candidates
      periodically unicast their records (priority, hold-time, group
      coverage) to the elected BSR;
    - {e BSR election}: candidate BSRs flood sequence-numbered bootstrap
      messages hop by hop over the live topology; higher
      (priority, address) preempts, and a crashed BSR times out after its
      hold-time, at which point the next candidate steps up;
    - {e RP-set distribution}: each bootstrap carries the BSR's current
      candidate-RP table, so every connected router converges to the same
      view and hence — via a deterministic per-group hash ranking — to
      the identical group-to-RP mapping;
    - {e soft-state expiry and fallback}: all records carry hold-times;
      when the view decays (lost floods, partitions, BSR crash) lookups
      degrade to the last non-empty mapping, so existing trees keep
      working on the last-known RP while the election recovers.

    One agent runs per node, stacked on the node's {!Pim_sim.Net} handler
    next to the PIM {!Router} (which forwards transit adverts like any
    unicast traffic).  Routers consume the elected mapping through
    {!lookup}, passed as [?rp_lookup] to {!Router.create} — see
    {!Deployment.create}. *)

type config = {
  bootstrap_period : float;  (** BSR origination and agent tick interval *)
  bsr_holdtime : float;  (** accepted-BSR lifetime without a fresh flood *)
  crp_holdtime : float;  (** advertised lifetime of candidate-RP records *)
}

val default : config
(** 60 s bootstrap period, 150 s hold-times (RFC-like ratios). *)

val fast : config
(** Scaled for simulation: 2.5 s period, 7.5 s hold-times. *)

val failover_budget : config -> float
(** Worst-case seconds from an RP crash until every connected router's
    mapping excludes it: one candidate hold-time plus two bootstrap
    periods.  Receivers additionally need their own re-join latency; the
    chaos harness and E2 assert recovery within this budget plus the
    router's RP-reachability timeout. *)

type role = {
  cbsr_priority : int option;
      (** [Some p]: candidate BSR with priority [p]; [None]: never BSR *)
  crp_records : (int * Pim_net.Group.t list) list;
      (** candidate-RP records to advertise, as (priority, coverage)
          pairs; an empty coverage list advertises for every group *)
}

val silent : role
(** Neither candidate BSR nor candidate RP (the default role). *)

type stats = {
  mutable bootstraps_sent : int;  (** originations by elected BSRs *)
  mutable bootstraps_forwarded : int;  (** accepted floods re-sent *)
  mutable adverts_sent : int;  (** candidate-RP advert transmissions *)
  mutable elections_won : int;  (** candidate-BSR step-ups *)
  mutable mapping_changes : int;  (** watched-group mapping transitions *)
}

type t

val deploy :
  ?config:config ->
  ?trace:Pim_sim.Trace.t ->
  ?forward_unicast:bool ->
  net:Pim_sim.Net.t ->
  ribs:(Pim_graph.Topology.node -> Pim_routing.Rib.t) ->
  roles:role array ->
  unit ->
  t
(** One agent per topology node.  [roles] must have exactly [n_nodes]
    entries.  [forward_unicast] (default false) makes agents
    forward transit candidate-RP adverts themselves — set it only in
    standalone deployments with no PIM routers installed, which otherwise
    provide unicast forwarding. *)

val lookup : t -> Pim_graph.Topology.node -> Pim_net.Group.t -> Pim_net.Addr.t list
(** The ranked RP list for a group as seen at [node] right now; empty
    only if no mapping was ever known there.  While the live view is
    empty (election converging, records expired) the last non-empty
    mapping is returned, so callers degrade to the last-known RP.  Also
    registers the group so subsequent mapping changes are announced as
    {!Pim_sim.Event.Rp_mapping} events. *)

val elected_bsr : t -> Pim_graph.Topology.node -> Pim_net.Addr.t option
(** The BSR [node] currently accepts, if any. *)

val mapping :
  t -> Pim_graph.Topology.node -> Pim_net.Group.t list -> (Pim_net.Group.t * Pim_net.Addr.t list) list
(** {!lookup} over a set of groups, deduplicated and in ascending group
    order (the [pimsim rp] report). *)

val restart : t -> Pim_graph.Topology.node -> unit
(** Crash-and-reboot of the node's agent: all learned election state is
    wiped; only the configured {!role} survives.  Pair with
    {!Router.restart} in chaos schedules. *)

val stats : t -> stats

val config : t -> config
