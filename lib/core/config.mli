(** PIM sparse-mode protocol timers and policies.

    Every constant of the paper's soft-state machinery lives here so that
    the refresh-period ablation (DESIGN.md experiment E4) is a pure
    configuration sweep.  [default] uses deployment-scale timers
    (60-second Join/Prune refresh); [fast] scales everything down for
    quick simulations without changing any ratio. *)

type spt_policy =
  | Immediate  (** join the source's SPT on the first data packet seen *)
  | Never  (** stay on the RP tree indefinitely (section 3.3 allows this) *)
  | Threshold of { packets : int; window : float }
      (** join after [packets] data packets within [window] seconds — the
          "m packets in n seconds" DR policy of section 3.3 *)

type t = {
  jp_period : float;  (** periodic Join/Prune refresh (section 3.4) *)
  oif_holdtime : float;  (** outgoing-interface timer set by Joins (section 3.6) *)
  entry_linger : float;  (** entry deleted this long after its oif list empties *)
  prune_override_delay : float;
      (** how long a LAN router waits before overriding a peer's prune
          (section 3.7) *)
  prune_override_window : float;
      (** how long the upstream LAN router keeps a pruned oif alive awaiting
          an override join (section 3.7) *)
  rp_reach_period : float;  (** RP-reachability origination period (section 3.2) *)
  rp_timeout : float;  (** receiver-side RP liveness timeout (section 3.9) *)
  spt_policy : spt_policy;
  register_suppress : bool;
      (** stop encapsulating registers once native (S,G) forwarding toward
          the RP is up (see DESIGN.md substitution table) *)
  aggregate_sources : bool;
      (** in periodic refreshes, collapse multiple (S,G) joins whose
          sources share a /24 (their first-hop router's subnet — the
          "domain level aggregate" of section 4) into one prefix entry;
          off by default, tree construction is always per-source *)
  sweep_interval : float;  (** timer-wheel granularity *)
  switchover_fallback : bool;
      (** during the RP-tree to SPT switchover, forward shared-tree
          stragglers (packets whose SPT twin never existed because the
          source sent them before the (S,G) join chain completed) over the
          shared fallback, deduplicating by packet identity.  Off, the
          router drops every shared-tree arrival once its SPT bit is set —
          the literal section 3.5 incoming-interface check, which loses
          those stragglers (the former ROADMAP open item; see
          test/test_replay.ml).  On by default. *)
}

val default : t
(** jp_period 60 s, oif holdtime 180 s, linger 180 s, override delay 1 s /
    window 3 s, RP reachability 30 s / timeout 105 s, Immediate SPT policy,
    register suppression on. *)

val fast : t
(** [default] with every timer divided by 10 — converges in seconds of
    simulated time; used by most tests and experiments. *)

val scale : float -> t -> t
(** Multiply every timer by a factor (policies unchanged). *)

val with_spt_policy : spt_policy -> t -> t

val with_jp_period : float -> t -> t
(** Set the refresh period and rescale the timers derived from it
    (holdtime = 3x, linger = 3x). *)
