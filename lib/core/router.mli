(** A PIM sparse-mode router (the protocol of section 3).

    One instance per topology node.  The router owns the node's packet
    handler: it forwards unicast packets using the supplied {!Pim_routing.Rib},
    runs router-side IGMP on attached LANs, and implements the full
    sparse-mode machinery:

    - explicit Join/Prune toward RPs and sources, with periodic soft-state
      refresh (sections 3.2, 3.4, 3.6);
    - Register encapsulation at the source's first-hop router and Join
      toward the source at the RP (section 3);
    - shared-tree to shortest-path-tree switching with the SPT-bit
      transition rules and triggered Prune toward the RP (sections 3.3,
      3.5), under a configurable DR policy;
    - negative caches ((S,G) entries with the RP bit) masking pruned
      sources off the shared tree (section 3.3, footnote 11);
    - LAN join suppression and prune override via overheard hop-by-hop
      messages addressed to 224.0.0.2 (section 3.7);
    - reaction to unicast routing changes: iif repair, prune on the old
      path, join on the new (section 3.8);
    - RP-reachability origination and receiver-side failover across an
      ordered RP list (sections 3.2, 3.9).

    Local members can be real IGMP hosts on attached LANs, or synthetic
    members/sources injected with {!join_local} and {!send_local_data}
    (used by the graph-scale experiments, where per-host simulation would
    only add noise). *)

type t

type stats = {
  mutable jp_msgs_sent : int;  (** Join/Prune messages transmitted *)
  mutable joins_sent : int;  (** join-list entries across those messages *)
  mutable prunes_sent : int;  (** prune-list entries *)
  mutable registers_sent : int;
  mutable rp_reach_sent : int;
  mutable data_forwarded : int;  (** data-packet link transmissions *)
  mutable data_dropped_iif : int;  (** failed incoming-interface check *)
  mutable data_dup_suppressed : int;
      (** shared-tree copies suppressed by the (S,G) identity ring during
          RP-tree to shortest-path-tree switchover *)
  mutable data_dropped_no_state : int;  (** no matching entry (sparse mode drops) *)
  mutable data_delivered_local : int;  (** handed to local members *)
  mutable unicast_forwarded : int;
  mutable spt_switches : int;
  mutable rp_failovers : int;
}

val fresh_stats : unit -> stats
(** All-zero counters (used for aggregation). *)

val create :
  ?config:Config.t ->
  ?igmp_config:Pim_igmp.Router.config ->
  ?trace:Pim_sim.Trace.t ->
  ?rp_lookup:(Pim_net.Group.t -> Pim_net.Addr.t list) ->
  net:Pim_sim.Net.t ->
  rib:Pim_routing.Rib.t ->
  rp_set:Rp_set.t ->
  Pim_graph.Topology.node ->
  t
(** Installs the node's packet handler and starts the periodic timers.
    The [rib] must belong to the same node.  [rp_lookup] supplies a
    dynamic (elected) group-to-RP mapping, consulted before the static
    [rp_set] — see {!Bsr}; when it returns [[]] for a group the static
    set and host hints apply, so routers degrade to configuration while
    an election converges.  Memberships joined before any mapping exists
    are remembered and retried every sweep. *)

val node : t -> Pim_graph.Topology.node

val addr : t -> Pim_net.Addr.t

val fib : t -> Pim_mcast.Fwd.t
(** The live forwarding table (inspected by tests and examples). *)

val stats : t -> stats

val config : t -> Config.t

val igmp : t -> Pim_igmp.Router.t

val is_rp_for : t -> Pim_net.Group.t -> bool
(** Is this router in the group's RP set? *)

val current_rp : t -> Pim_net.Group.t -> Pim_net.Addr.t option
(** The RP this router's shared-tree entry currently points at. *)

val join_local : t -> Pim_net.Group.t -> unit
(** Synthetic directly-connected member: establishes (or refreshes) the
    shared tree exactly as an IGMP report would. *)

val leave_local : t -> Pim_net.Group.t -> unit

val join_on_iface : t -> Pim_net.Group.t -> iface:Pim_graph.Topology.iface -> unit
(** Like {!join_local} but the member lives behind a real interface: the
    shared-tree oif is that interface, so group data is transmitted on it.
    Used by border routers joining "on behalf of" an attached dense-mode
    region (section 4, interoperation). *)

val leave_on_iface : t -> Pim_net.Group.t -> iface:Pim_graph.Topology.iface -> unit

val add_proxy_iface : t -> Pim_graph.Topology.iface -> unit
(** Declare an interface to face a non-PIM (dense-mode) region for which
    this router acts as first-hop proxy: multicast data arriving on it
    from unknown sources is treated as locally originated — registered to
    the group's RPs and forwarded natively — exactly the "BRs would join a
    PIM tree externally and inject themselves as sources internally"
    proxying of section 4. *)

val has_local_members : t -> Pim_net.Group.t -> bool

val on_local_data : t -> (Pim_net.Packet.t -> unit) -> unit
(** Fired once per data packet delivered to this router's local members. *)

val send_local_data : t -> group:Pim_net.Group.t -> ?host:int -> ?size:int -> unit -> unit
(** Synthetic directly-connected source: originates one data packet as the
    first-hop DR would see it (registers to the RPs, forwards natively
    where state exists).  [host] (1..255, default 1) selects which host on
    this router's stub subnet the packet claims as source — several hosts
    behind one router share a /24, which is what source aggregation
    collapses. *)

val local_source_addr : ?host:int -> t -> Pim_net.Addr.t
(** The source address {!send_local_data} uses for [host]. *)

val restart : t -> unit
(** Crash-and-reboot: wipe the forwarding table and every per-entry
    protocol timer, keeping only configuration (RP set, {!Config}) and
    directly-connected memberships — which are immediately re-announced,
    as attached hosts would answer the first post-reboot IGMP query.  The
    trees must re-form purely via triggered joins and the periodic
    soft-state refresh (section 3.4).  Pair with
    [Net.set_node_up net node false] / [... true] to model the outage
    itself; call [restart] at the moment the node comes back. *)
