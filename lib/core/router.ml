module Topology = Pim_graph.Topology
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Fwd = Pim_mcast.Fwd
module Mdata = Pim_mcast.Mdata
module Rib = Pim_routing.Rib

(* Pseudo interface number for directly-connected (synthetic) members:
   forwarding to it delivers to the router's local-data callbacks instead
   of transmitting on a link. *)
let local_iface = -1

type stats = {
  mutable jp_msgs_sent : int;
  mutable joins_sent : int;
  mutable prunes_sent : int;
  mutable registers_sent : int;
  mutable rp_reach_sent : int;
  mutable data_forwarded : int;
  mutable data_dropped_iif : int;
  mutable data_dup_suppressed : int;
  mutable data_dropped_no_state : int;
  mutable data_delivered_local : int;
  mutable unicast_forwarded : int;
  mutable spt_switches : int;
  mutable rp_failovers : int;
}

let fresh_stats () =
  {
    jp_msgs_sent = 0;
    joins_sent = 0;
    prunes_sent = 0;
    registers_sent = 0;
    rp_reach_sent = 0;
    data_forwarded = 0;
    data_dropped_iif = 0;
    data_dup_suppressed = 0;
    data_dropped_no_state = 0;
    data_delivered_local = 0;
    unicast_forwarded = 0;
    spt_switches = 0;
    rp_failovers = 0;
  }

type key = Group.t * Addr.t option

(* Per-entry protocol state that is not part of the forwarding entry
   proper: the upstream neighbor joins are sent to, LAN suppression and
   override timers, and the shared-tree prune mask (our representation of
   the paper's negative-cache oif deletions: an interface in the mask does
   not receive this source's shared-tree traffic). *)
type aux = {
  mutable upstream : (Topology.iface * Topology.node) option;
  mutable suppress_until : float;
  mutable override_pending : bool;
  mutable was_wanted : bool;  (* olist was non-empty at the last sweep *)
  pruned : (Topology.iface, float) Hashtbl.t;
  (* Ring of recently forwarded data-packet identities (the IP
     Identification field, [Mdata.seq] here).  During the RP-tree/SPT
     switchover the same packet can reach this router over both trees, and
     packets sent before the (S,G) join chain completed exist only as
     RP-tree copies still in flight when the SPT bit flips.  The identity
     ring lets [handle_data] forward those stragglers over the shared
     fallback while suppressing true duplicates — the hitless variant of
     the paper's accept-transient-duplicate-or-loss switchover
     (section 3.5). *)
  mutable reg_stop_seen : bool;  (* register suppression onset already traced *)
  mutable seen_ids : int array;  (* ring storage, [||] until first use *)
  mutable seen_len : int;  (* valid prefix length *)
  mutable seen_next : int;  (* next write position *)
}

type t = {
  node : Topology.node;
  addr : Addr.t;
  net : Net.t;
  eng : Engine.t;
  rib : Rib.t;
  rp_set : Rp_set.t;
  rp_lookup : (Group.t -> Addr.t list) option;
      (* dynamic (elected) group-to-RP mapping, consulted before [rp_set] *)
  cfg : Config.t;
  igmp : Pim_igmp.Router.t;
  fib : Fwd.t;
  trace : Trace.t option;
  auxes : (key, aux) Hashtbl.t;
  spt_counters : (key, int ref * float ref) Hashtbl.t;
  stats : stats;
  local_cbs : (Packet.t -> unit) Pim_util.Vec.t;
  mutable local_seq : int;
  mutable proxy_ifaces : Topology.iface list;
  (* Directly-connected memberships, remembered outside the FIB so that a
     restart (which wipes the FIB) can re-learn them — the equivalent of
     attached hosts answering the first post-reboot IGMP query. *)
  mutable local_members : (Group.t * Topology.iface) list;
}

let node t = t.node

let addr t = t.addr

let fib t = t.fib

let stats t = t.stats

let config t = t.cfg

let igmp t = t.igmp

let now t = Engine.now t.eng

let tr t tag fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some trc -> Format.kasprintf (fun s -> Trace.log trc ~node:t.node ~tag s) fmt

let ev t event =
  match t.trace with None -> () | Some trc -> Trace.emit trc ~node:t.node event

let route_of_sg g s = { Event.group = Group.to_string g; source = Some (Addr.to_string s) }

let route_of_entry (e : Fwd.entry) =
  { Event.group = Group.to_string e.Fwd.group; source = Option.map Addr.to_string e.Fwd.source }

let aux t e =
  let k = Fwd.key e in
  match Hashtbl.find_opt t.auxes k with
  | Some a -> a
  | None ->
    let a =
      {
        upstream = None;
        suppress_until = 0.;
        override_pending = false;
        was_wanted = false;
        pruned = Hashtbl.create 4;
        reg_stop_seen = false;
        seen_ids = [||];
        seen_len = 0;
        seen_next = 0;
      }
    in
    Hashtbl.replace t.auxes k a;
    a

(* The address periodic joins chase: the source for an SPT entry, the RP
   for shared-tree entries and negative caches. *)
let entry_target (e : Fwd.entry) =
  match e.source with Some s when not e.rp_bit -> Some s | _ -> e.rp

let compute_upstream t target =
  if Addr.equal target t.addr then None else t.rib.Rib.next_hop target

(* G -> RP list: the dynamic (elected) mapping wins when it knows the
   group, then static configuration, then host-advertised hints
   (section 3.1). *)
let rps_for t g =
  match (match t.rp_lookup with Some f -> f g | None -> []) with
  | _ :: _ as rps -> rps
  | [] -> (
    match Rp_set.rps t.rp_set g with
    | [] -> Pim_igmp.Router.rp_hint t.igmp g
    | rps -> rps)

let is_rp_for t g = List.exists (Addr.equal t.addr) (rps_for t g)

let select_rp t g =
  let candidates = rps_for t g in
  let reachable rp = Addr.equal rp t.addr || t.rib.Rib.distance rp <> None in
  match List.find_opt reachable candidates with
  | Some rp -> Some rp
  | None -> ( match candidates with rp :: _ -> Some rp | [] -> None)

let current_rp t g = Option.bind (Fwd.find_star t.fib g) (fun e -> e.Fwd.rp)

(* {1 Outgoing-interface computation} *)

let pruned_mask t e =
  let a = aux t e in
  let n = now t in
  Hashtbl.fold (fun i exp acc -> if exp > n then i :: acc else acc) a.pruned []
  |> List.sort Int.compare

(* Effective outgoing-interface list for a data packet matching [e]:
   SPT entries inherit the shared-tree interfaces (so receivers that stayed
   on the RP tree keep getting data once an upstream router has switched),
   negative caches forward on the shared tree minus the pruned mask. *)
let effective_olist t (e : Fwd.entry) ~exclude =
  let n = now t in
  let star = if Fwd.is_star e then Some e else Fwd.find_star t.fib e.group in
  let base =
    if Fwd.is_star e then Fwd.live_oifs e ~now:n
    else if e.rp_bit then (match star with Some s -> Fwd.live_oifs s ~now:n | None -> [])
    else
      let own = Fwd.live_oifs e ~now:n in
      let inherited = match star with Some s -> Fwd.live_oifs s ~now:n | None -> [] in
      List.sort_uniq Int.compare (own @ inherited)
  in
  let mask = if Fwd.is_star e then [] else pruned_mask t e in
  base
  |> List.filter (fun i ->
         (not (List.mem i mask)) && Some i <> e.Fwd.iif && Some i <> exclude)

(* The shared-tree list used while an (S,G) entry's SPT bit is clear and
   data still arrives via the RP tree (section 3.5 first exception). *)
let shared_olist t (e : Fwd.entry) ~exclude =
  match Fwd.find_star t.fib e.group with
  | None -> []
  | Some star ->
    let mask = pruned_mask t e in
    Fwd.live_oifs star ~now:(now t)
    |> List.filter (fun i -> (not (List.mem i mask)) && Some i <> exclude)

(* {1 Sending control messages} *)

let send_jp t ~iface ~target ~group ~joins ~prunes =
  if joins <> [] || prunes <> [] then begin
    let pkt =
      Message.join_prune_packet ~src:t.addr ~target ~origin:t.node ~group ~joins ~prunes
        ~holdtime:t.cfg.oif_holdtime
    in
    t.stats.jp_msgs_sent <- t.stats.jp_msgs_sent + 1;
    t.stats.joins_sent <- t.stats.joins_sent + List.length joins;
    t.stats.prunes_sent <- t.stats.prunes_sent + List.length prunes;
    Net.send t.net t.node ~iface pkt
  end

let jp_entry_of (e : Fwd.entry) =
  match (e.source, e.rp) with
  | None, Some rp -> Some (Message.jp_entry ~wc:true ~rp:true rp)
  | Some s, _ when not e.rp_bit -> Some (Message.jp_entry s)
  | Some s, _ -> Some (Message.jp_entry ~rp:true s)
  | None, None -> None

let triggered_join t e =
  let a = aux t e in
  match (a.upstream, jp_entry_of e) with
  | Some (iface, up), Some je ->
    ev t (Event.Join { route = route_of_entry e; iface });
    send_jp t ~iface ~target:(Addr.router up) ~group:e.Fwd.group ~joins:[ je ] ~prunes:[]
  | _ -> ()

let triggered_prune t e =
  let a = aux t e in
  match (a.upstream, jp_entry_of e) with
  | Some (iface, up), Some je ->
    ev t (Event.Prune { route = route_of_entry e; iface });
    send_jp t ~iface ~target:(Addr.router up) ~group:e.Fwd.group ~joins:[] ~prunes:[ je ]
  | _ -> ()

(* The prune sent toward the RP when the SPT transition completes and the
   shared and shortest-path trees diverge at this router (section 3.3). *)
let divergence_prune t (e : Fwd.entry) =
  match (Fwd.find_star t.fib e.group, e.source) with
  | Some star, Some s when star.Fwd.iif <> e.Fwd.iif -> (
    let a = aux t star in
    match a.upstream with
    | Some (iface, up) ->
      ev t (Event.Prune { route = route_of_sg e.Fwd.group s; iface });
      send_jp t ~iface ~target:(Addr.router up) ~group:e.Fwd.group ~joins:[]
        ~prunes:[ Message.jp_entry ~rp:true s ]
    | None -> ())
  | _ -> ()

(* {1 Entry construction} *)

let keepalive t (e : Fwd.entry) = e.Fwd.expires <- Float.max e.Fwd.expires (now t +. t.cfg.entry_linger)

let ensure_star t g ~rp =
  match Fwd.find_star t.fib g with
  | Some e ->
    keepalive t e;
    e
  | None ->
    let upstream = compute_upstream t rp in
    let e = Fwd.make_star ~group:g ~rp ~iif:(Option.map fst upstream) ~expires:(now t +. t.cfg.entry_linger) in
    e.Fwd.rp_deadline <- now t +. t.cfg.rp_timeout;
    Fwd.insert t.fib e;
    (aux t e).upstream <- upstream;
    ev t (Event.Entry_install { route = route_of_entry e });
    triggered_join t e;
    e

let ensure_sg t g s ~rp_bit =
  match Fwd.find_sg t.fib g s with
  | Some e ->
    keepalive t e;
    e
  | None ->
    let star = Fwd.find_star t.fib g in
    let rp = match star with Some st -> st.Fwd.rp | None -> select_rp t g in
    let target = if rp_bit then rp else Some s in
    let upstream =
      match target with Some a -> compute_upstream t a | None -> None
    in
    let iif =
      if rp_bit then (match star with Some st -> st.Fwd.iif | None -> Option.map fst upstream)
      else Option.map fst upstream
    in
    let e = Fwd.make_sg ~group:g ~source:s ?rp ~rp_bit ~iif ~expires:(now t +. t.cfg.entry_linger) () in
    Fwd.insert t.fib e;
    (aux t e).upstream <- upstream;
    ev t (Event.Entry_install { route = route_of_entry e });
    if not rp_bit then triggered_join t e;
    e

let delete_entry t (e : Fwd.entry) =
  ev t (Event.Entry_expire { route = route_of_entry e });
  Hashtbl.remove t.auxes (Fwd.key e);
  Fwd.remove t.fib e.Fwd.group e.Fwd.source

(* {1 Local members and data delivery} *)

let dst_group_string pkt =
  match pkt.Packet.dst with
  | Packet.Multicast g -> Group.to_string g
  | Packet.Unicast a -> Addr.to_string a

let local_deliver t pkt =
  t.stats.data_delivered_local <- t.stats.data_delivered_local + 1;
  ev t
    (Event.Pkt_deliver
       {
         src = Addr.to_string pkt.Packet.src;
         group = dst_group_string pkt;
         iface = local_iface;
       });
  Pim_util.Vec.iter (fun f -> f pkt) t.local_cbs

let on_local_data t f = Pim_util.Vec.push t.local_cbs f

let add_local_member t g ~iface =
  (* Remember the membership regardless: with dynamic RP election the
     mapping can arrive after the join, and [sweep] retries then. *)
  if not (List.mem (g, iface) t.local_members) then
    t.local_members <- (g, iface) :: t.local_members;
  match select_rp t g with
  | None -> tr t "ignore" "group %s has no RP yet: not sparse-mode" (Group.to_string g)
  | Some rp ->
    let e = ensure_star t g ~rp in
    Fwd.add_oif e iface ~expires:(now t) ~local:true;
    keepalive t e;
    tr t "member" "local member for %s on iface %d" (Group.to_string g) iface

let drop_local_member t g ~iface =
  t.local_members <- List.filter (fun m -> m <> (g, iface)) t.local_members;
  match Fwd.find_star t.fib g with
  | None -> ()
  | Some e -> (
    match Fwd.find_oif e iface with
    | Some o ->
      o.Fwd.local <- false;
      o.Fwd.expires <- Float.min o.Fwd.expires (now t)
    | None -> ())

let join_local t g = add_local_member t g ~iface:local_iface

let leave_local t g = drop_local_member t g ~iface:local_iface

let join_on_iface t g ~iface = add_local_member t g ~iface

let leave_on_iface t g ~iface = drop_local_member t g ~iface

let add_proxy_iface t iface =
  if not (List.mem iface t.proxy_ifaces) then t.proxy_ifaces <- iface :: t.proxy_ifaces

(* A crash-and-reboot: all forwarding and per-entry protocol state is
   lost; only configuration (RP set, Config) and directly-connected
   memberships survive.  The tree re-forms purely through the soft-state
   machinery — triggered joins now, periodic refresh thereafter
   (section 3.4's robustness argument, which the chaos harness tests). *)
let restart t =
  tr t "restart" "rebooted: forwarding state wiped";
  Fwd.clear t.fib;
  Hashtbl.reset t.auxes;
  Hashtbl.reset t.spt_counters;
  let members = t.local_members in
  t.local_members <- [];
  List.iter (fun (g, iface) -> add_local_member t g ~iface) members

let has_local_members t g =
  match Fwd.find_star t.fib g with
  | None -> false
  | Some e -> List.exists (fun (o : Fwd.oif) -> o.local) e.Fwd.oifs

(* {1 Data-packet forwarding (section 3.5)} *)

(* Identity ring for switchover duplicate suppression: capacity bounds the
   window of remembered packets, which must exceed the number of packets in
   flight across the RP-tree/SPT path-length skew (a few dozen at realistic
   rates; 256 leaves ample margin). *)
let seen_capacity = 256

let seen_id a id =
  let ids = a.seen_ids in
  let n = a.seen_len in
  let rec go i = i < n && (Array.unsafe_get ids i = id || go (i + 1)) in
  go 0

let record_id a id =
  if Array.length a.seen_ids = 0 then a.seen_ids <- Array.make seen_capacity (-1);
  a.seen_ids.(a.seen_next) <- id;
  a.seen_next <- (a.seen_next + 1) mod seen_capacity;
  if a.seen_len < seen_capacity then a.seen_len <- a.seen_len + 1

let forward_data t pkt ~olist =
  match Packet.decr_ttl pkt with
  | None -> ()
  | Some pkt' ->
    List.iter
      (fun i ->
        if i = local_iface then local_deliver t pkt
        else begin
          t.stats.data_forwarded <- t.stats.data_forwarded + 1;
          Net.send t.net t.node ~iface:i pkt'
        end)
      olist

(* Forward a data packet matched by an (S,G) entry, suppressing identities
   this entry already forwarded.  During the switchover the same packet can
   arrive over both the shared tree and the SPT; identity (the IP
   Identification field, modelled by [Mdata.seq]) tells a straggler — an
   RP-tree copy whose SPT twin never existed — from a true duplicate. *)
let forward_sg t a pkt ~olist =
  if olist <> [] then begin
    match Mdata.info pkt with
    | Some i ->
      if seen_id a i.Mdata.seq then begin
        t.stats.data_dup_suppressed <- t.stats.data_dup_suppressed + 1;
        ev t
          (Event.Pkt_drop
             {
               src = Addr.to_string pkt.Packet.src;
               group = dst_group_string pkt;
               iface = local_iface;
               reason = Printf.sprintf "dup id=%d" i.Mdata.seq;
             })
      end
      else begin
        record_id a i.Mdata.seq;
        forward_data t pkt ~olist
      end
    | None -> forward_data t pkt ~olist
  end

(* A last-hop router with directly connected members notices shared-tree
   data from a source it has no (S,G) entry for and may initiate the
   switch to the source's shortest-path tree (section 3.3). *)
let maybe_spt_switch t g src =
  let switch () =
    t.stats.spt_switches <- t.stats.spt_switches + 1;
    ev t (Event.Spt_switch { group = Group.to_string g; source = Addr.to_string src });
    ignore (ensure_sg t g src ~rp_bit:false)
  in
  if has_local_members t g && Fwd.find_sg t.fib g src = None
     && Addr.host_router_index src <> Some t.node
  then
    match t.cfg.spt_policy with
    | Config.Never -> ()
    | Config.Immediate -> switch ()
    | Config.Threshold { packets; window } ->
      let k = (g, Some src) in
      let count, start =
        match Hashtbl.find_opt t.spt_counters k with
        | Some c -> c
        | None ->
          let c = (ref 0, ref (now t)) in
          Hashtbl.replace t.spt_counters k c;
          c
      in
      if now t -. !start > window then begin
        start := now t;
        count := 0
      end;
      incr count;
      if !count >= packets then begin
        Hashtbl.remove t.spt_counters k;
        switch ()
      end

let handle_data t ~iface pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g -> (
    let src = pkt.Packet.src in
    match Fwd.match_data t.fib g ~src with
    | None ->
      t.stats.data_dropped_no_state <- t.stats.data_dropped_no_state + 1;
      ev t
            (Event.Pkt_drop
               {
                 src = Addr.to_string src;
                 group = Group.to_string g;
                 iface;
                 reason = "no-state";
               })
    | Some e when (not (Fwd.is_star e)) && e.Fwd.iif = None ->
      (* An (S,G) entry with a null iif means we are the source's first-hop
         router: data for S arriving from the network is a looped copy
         (e.g. decapsulated by the RP) and must fail the incoming-interface
         check. *)
      t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1
    | Some e ->
      keepalive t e;
      if Fwd.is_star e then begin
        if Some iface = e.Fwd.iif then begin
          maybe_spt_switch t g src;
          forward_data t pkt ~olist:(effective_olist t e ~exclude:(Some iface))
        end
        else begin
          t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1;
          ev t
            (Event.Pkt_drop
               {
                 src = Addr.to_string src;
                 group = Group.to_string g;
                 iface;
                 reason = "star-iif";
               })
        end
      end
      else if e.Fwd.rp_bit then begin
        (* Negative cache: data still arriving via the RP tree. *)
        if Some iface = e.Fwd.iif then
          forward_data t pkt ~olist:(shared_olist t e ~exclude:(Some iface))
        else begin
          t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1;
          ev t
            (Event.Pkt_drop
               {
                 src = Addr.to_string src;
                 group = Group.to_string g;
                 iface;
                 reason = "neg-cache-iif";
               })
        end
      end
      else if e.Fwd.spt_bit then begin
        if Some iface = e.Fwd.iif then
          forward_sg t (aux t e) pkt ~olist:(effective_olist t e ~exclude:(Some iface))
        else begin
          (* RP-tree copies still arrive on the shared interface until the
             divergence prune takes effect upstream.  Dropping them here —
             the [switchover_fallback = false] behaviour, and what a
             literal reading of the iif check prescribes — loses every
             packet whose SPT twin never existed because the source sent it
             before the (S,G) join chain completed.  Forward those
             stragglers over the shared fallback; the identity ring in
             [forward_sg] suppresses the true duplicates (diagnosed from
             the seed=56517 capture; see test/test_replay.ml). *)
          match Fwd.find_star t.fib g with
          | Some star when t.cfg.switchover_fallback && Some iface = star.Fwd.iif ->
            forward_sg t (aux t e) pkt ~olist:(shared_olist t e ~exclude:(Some iface))
          | _ ->
            t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1;
            ev t
            (Event.Pkt_drop
               {
                 src = Addr.to_string src;
                 group = Group.to_string g;
                 iface;
                 reason = "spt-iif";
               })
        end
      end
      else if Some iface = e.Fwd.iif then begin
        (* First packet over the new shortest path: transition completes
           (section 3.5, second exception). *)
        e.Fwd.spt_bit <- true;
        tr t "spt-bit" "SPT established for (%s, %s)" (Addr.to_string src) (Group.to_string g);
        divergence_prune t e;
        forward_sg t (aux t e) pkt ~olist:(effective_olist t e ~exclude:(Some iface))
      end
      else begin
        (* SPT bit clear: fall back to the shared tree if the packet came
           over it (section 3.5, first exception). *)
        match Fwd.find_star t.fib g with
        | Some star when Some iface = star.Fwd.iif ->
          forward_sg t (aux t e) pkt ~olist:(shared_olist t e ~exclude:(Some iface))
        | _ ->
          t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1;
          ev t
            (Event.Pkt_drop
               {
                 src = Addr.to_string src;
                 group = Group.to_string g;
                 iface;
                 reason = "pre-spt-iif";
               })
      end)

(* {1 Register path (section 3)} *)

let register_suppressed t g src rp =
  t.cfg.register_suppress
  &&
  match Fwd.find_sg t.fib g src with
  | None -> false
  | Some e -> (
    match Rib.rpf_iface t.rib rp with
    | None -> false
    | Some i -> List.mem i (Fwd.live_oifs e ~now:(now t)))

let rec handle_register t inner =
  match Mdata.group inner with
  | None -> ()
  | Some g ->
    let src = inner.Packet.src in
    if is_rp_for t g then begin
      (* Deliver down the shared tree — unless the source's data is already
         arriving natively over the shortest path (SPT bit set), in which
         case the register copy would only duplicate it. *)
      let native =
        match Fwd.find_sg t.fib g src with Some sg -> sg.Fwd.spt_bit | None -> false
      in
      (match Fwd.find_star t.fib g with
      | Some star when not native ->
        let mask =
          match Fwd.find_sg t.fib g src with Some sg -> pruned_mask t sg | None -> []
        in
        let olist =
          effective_olist t star ~exclude:None
          |> List.filter (fun i -> not (List.mem i mask))
        in
        forward_data t inner ~olist
      | _ -> ());
      (* ...and join toward the source so data starts flowing natively
         (the RP "responds by sending a join toward the source"). *)
      let e = ensure_sg t g src ~rp_bit:false in
      keepalive t e
    end

and originate_data t ~incoming pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g ->
    let src = pkt.Packet.src in
    let rps = rps_for t g in
    if rps <> [] then begin
      (* Forward natively wherever state already exists. *)
      (match Fwd.match_data t.fib g ~src with
      | Some e ->
        keepalive t e;
        let olist = effective_olist t e ~exclude:incoming in
        forward_data t pkt ~olist
      | None -> ());
      (* Register (data piggybacked) to every RP of the group. *)
      List.iter
        (fun rp ->
          if Addr.equal rp t.addr then
            (* The RP is the source's first-hop router: the data "needed to
               be delivered there anyway" (section 4), so no register —
               the native forwarding above already used the shared tree.
               Just make sure the (S,G) entry exists. *)
            ignore (ensure_sg t g src ~rp_bit:false)
          else if not (register_suppressed t g src rp) then begin
            t.stats.registers_sent <- t.stats.registers_sent + 1;
            ev t (Event.Register { group = Group.to_string g; source = Addr.to_string src });
            let reg = Message.register_packet ~src:t.addr ~rp pkt in
            send_unicast t reg
          end
          else
            (* Suppression onset stands in for the RP's explicit
               register-stop (the model infers it from the (S,G) oif state
               rather than exchanging a message): emit the event once per
               entry so captures show when encapsulation ceased. *)
            match Fwd.find_sg t.fib g src with
            | Some e ->
              let a = aux t e in
              if not a.reg_stop_seen then begin
                a.reg_stop_seen <- true;
                ev t (Event.Register_stop { group = Group.to_string g; source = Addr.to_string src })
              end
            | None -> ())
        rps
    end

and send_unicast t pkt =
  match pkt.Packet.dst with
  | Packet.Multicast _ -> ()
  | Packet.Unicast dst -> (
    match t.rib.Rib.next_hop dst with
    | None -> ()
    | Some (iface, next) ->
      t.stats.unicast_forwarded <- t.stats.unicast_forwarded + 1;
      Net.send t.net t.node ~iface ~to_node:next pkt)

let local_source_addr ?(host = 1) t = Addr.host ~router:t.node host

let send_local_data t ~group ?(host = 1) ?size () =
  let pkt =
    Mdata.make ~src:(local_source_addr ~host t) ~group ~seq:t.local_seq ~sent_at:(now t) ?size ()
  in
  t.local_seq <- t.local_seq + 1;
  originate_data t ~incoming:None pkt

(* Is this data packet from a host on a directly attached subnet this
   router is DR for?  (First-hop router test, section 3.) *)
let is_dr t lid =
  Topology.others_on_link (Net.topo t.net) lid t.node
  |> List.for_all (fun v -> (not (Net.node_up t.net v)) || v > t.node)

let is_local_origin t ~iface src =
  (* Proxying for an attached dense-mode region (section 4): any source
     behind a proxy interface is treated as directly connected. *)
  List.mem iface t.proxy_ifaces
  ||
  match Addr.host_router_index src with
  | None -> false
  | Some r ->
    let link = Topology.link_of_iface (Net.topo t.net) t.node iface in
    link.Topology.is_lan
    && Array.exists (Int.equal r) link.Topology.ends
    && is_dr t link.Topology.id

(* {1 Join/Prune reception (sections 3.2, 3.3, 3.7)} *)

let lan_with_peers t iface =
  let link = Topology.link_of_iface (Net.topo t.net) t.node iface in
  link.Topology.is_lan && List.length (Topology.others_on_link (Net.topo t.net) link.Topology.id t.node) >= 2

let process_join t ~iface (je : Message.jp_entry) g =
  let holdtime_end = now t +. t.cfg.oif_holdtime in
  if je.Message.plen < 32 && not je.Message.wc then begin
    (* Aggregated source join (section 4): refresh every matching (S,G)
       this router already holds.  Aggregates never instantiate state —
       that is what keeps the "large fanout" problem the paper worries
       about at bay; tree construction stays per-source via triggered
       /32 joins. *)
    let prefix = Pim_net.Prefix.make je.Message.addr je.Message.plen in
    List.iter
      (fun (e : Fwd.entry) ->
        match e.Fwd.source with
        | Some src when (not e.Fwd.rp_bit) && Pim_net.Prefix.contains prefix src ->
          Fwd.add_oif e iface ~expires:holdtime_end ~local:false;
          keepalive t e
        | _ -> ())
      (Fwd.group_entries t.fib g)
  end
  else if je.Message.wc then begin
    let e = ensure_star t g ~rp:je.Message.addr in
    (if e.Fwd.rp <> Some je.Message.addr then begin
       (* The joiner rendezvouses at a different RP (failover, section
          3.9): re-target the shared-tree entry toward it. *)
       let upstream = compute_upstream t je.Message.addr in
       tr t "rp-retarget" "group %s: shared tree moves to RP %s" (Group.to_string g)
         (Addr.to_string je.Message.addr);
       e.Fwd.rp <- Some je.Message.addr;
       e.Fwd.iif <- Option.map fst upstream;
       (match e.Fwd.iif with Some i -> Fwd.remove_oif e i | None -> ());
       e.Fwd.rp_deadline <- now t +. t.cfg.rp_timeout;
       (aux t e).upstream <- upstream;
       triggered_join t e
     end);
    Fwd.add_oif e iface ~expires:holdtime_end ~local:false;
    keepalive t e;
    (* Footnote 12: refreshing a "(*,G)" oif also refreshes the negative
       caches' view of it — our mask representation needs no action, but
       (S,G) SPT entries that explicitly carry the oif are refreshed. *)
    List.iter
      (fun (sg : Fwd.entry) ->
        if not (Fwd.is_star sg) then
          match Fwd.find_oif sg iface with
          | Some o when not o.Fwd.local -> o.Fwd.expires <- Float.max o.Fwd.expires holdtime_end
          | _ -> ())
      (Fwd.group_entries t.fib g)
  end
  else if je.Message.rp then begin
    (* RP-bit join: cancel a negative cache for this source on this
       interface (prune override on the shared tree). *)
    match Fwd.find_sg t.fib g je.Message.addr with
    | Some e when e.Fwd.rp_bit ->
      Hashtbl.remove (aux t e).pruned iface;
      keepalive t e
    | _ -> ()
  end
  else begin
    let e = ensure_sg t g je.Message.addr ~rp_bit:false in
    Fwd.add_oif e iface ~expires:holdtime_end ~local:false;
    keepalive t e
  end

let process_prune t ~iface (pe : Message.jp_entry) g =
  let lan = lan_with_peers t iface in
  let window_removal (e : Fwd.entry) =
    match Fwd.find_oif e iface with
    | Some o when o.Fwd.local -> ()  (* local members outrank peer prunes *)
    | Some o ->
      if lan then
        (* Keep the oif alive long enough for another LAN router to
           override the prune with a join (section 3.7). *)
        o.Fwd.expires <- Float.min o.Fwd.expires (now t +. t.cfg.prune_override_window)
      else begin
        Fwd.remove_oif e iface;
        if Fwd.live_oifs e ~now:(now t) = [] then triggered_prune t e
      end
    | None -> ()
  in
  if pe.Message.wc then Option.iter window_removal (Fwd.find_star t.fib g)
  else if pe.Message.rp then begin
    (* Negative-cache prune: stop sending this source's shared-tree
       traffic down [iface] (section 3.3). *)
    let e = ensure_sg t g pe.Message.addr ~rp_bit:true in
    if e.Fwd.rp_bit then begin
      let a = aux t e in
      Hashtbl.replace a.pruned iface (now t +. t.cfg.oif_holdtime);
      keepalive t e;
      (* Propagate toward the RP once nothing downstream wants the
         source's RP-tree traffic any more. *)
      if shared_olist t e ~exclude:None = [] then triggered_prune t e
    end
    else begin
      (* An SPT entry already exists here: the pruned iface must stop
         receiving this source's traffic through the shared limb. *)
      let a = aux t e in
      Hashtbl.replace a.pruned iface (now t +. t.cfg.oif_holdtime);
      window_removal e
    end
  end
  else Option.iter window_removal (Fwd.find_sg t.fib g pe.Message.addr)

(* Overheard messages on multi-access networks: suppress duplicate joins,
   override prunes that would cut us off (section 3.7). *)
let overhear_join t ~iface (je : Message.jp_entry) g ~target =
  let consider e =
    match e with
    | Some (e : Fwd.entry) ->
      let a = aux t e in
      let same_upstream =
        match a.upstream with
        | Some (i, up) -> i = iface && Addr.equal (Addr.router up) target
        | None -> false
      in
      if same_upstream && e.Fwd.iif = Some iface then begin
        a.suppress_until <- now t +. (0.9 *. t.cfg.jp_period);
        a.override_pending <- false;
        tr t "suppress" "join suppressed for %a" Fwd.pp_entry e
      end
    | None -> ()
  in
  if je.Message.wc then consider (Fwd.find_star t.fib g)
  else if not je.Message.rp then consider (Fwd.find_sg t.fib g je.Message.addr)

let schedule_override t (e : Fwd.entry) ~iface ~target je =
  let a = aux t e in
  if not a.override_pending then begin
    a.override_pending <- true;
    let jitter = 0.5 +. (0.5 *. float_of_int (t.node mod 8) /. 8.) in
    let delay = t.cfg.prune_override_delay *. jitter in
    ignore
      (Engine.schedule t.eng ~after:delay (fun () ->
           if a.override_pending then begin
             a.override_pending <- false;
             tr t "override" "overriding prune for %a" Message.pp_jp_entry je;
             send_jp t ~iface ~target ~group:e.Fwd.group ~joins:[ je ] ~prunes:[]
           end))
  end

let overhear_prune t ~iface (pe : Message.jp_entry) g ~target =
  (* Only meaningful on multi-access networks with at least the pruning
     router and the upstream router besides us. *)
  if lan_with_peers t iface then begin
    if pe.Message.wc then begin
      match Fwd.find_star t.fib g with
      | Some e
        when e.Fwd.iif = Some iface && effective_olist t e ~exclude:None <> [] ->
        schedule_override t e ~iface ~target (Message.jp_entry ~wc:true ~rp:true pe.Message.addr)
      | _ -> ()
    end
    else if pe.Message.rp then begin
      (* A peer pruned source S off the shared tree; if we still depend on
         the shared tree for S, override with an RP-bit join. *)
      let wants_via_shared =
        (* Any (S,G) entry of ours means we either pruned S ourselves or
           receive it over its SPT; only without one do we depend on the
           shared tree for S. *)
        Fwd.find_sg t.fib g pe.Message.addr = None
      in
      match Fwd.find_star t.fib g with
      | Some star
        when wants_via_shared && star.Fwd.iif = Some iface
             && effective_olist t star ~exclude:None <> [] ->
        schedule_override t star ~iface ~target (Message.jp_entry ~rp:true pe.Message.addr)
      | _ -> ()
    end
    else begin
      match Fwd.find_sg t.fib g pe.Message.addr with
      | Some e
        when (not e.Fwd.rp_bit) && e.Fwd.iif = Some iface
             && effective_olist t e ~exclude:None <> [] ->
        schedule_override t e ~iface ~target (Message.jp_entry pe.Message.addr)
      | _ -> ()
    end
  end

let handle_jp t ~iface (m : Message.join_prune) =
  if Addr.equal m.Message.target t.addr then begin
    List.iter (fun je -> process_join t ~iface je m.Message.group) m.Message.joins;
    List.iter (fun pe -> process_prune t ~iface pe m.Message.group) m.Message.prunes
  end
  else begin
    List.iter (fun je -> overhear_join t ~iface je m.Message.group ~target:m.Message.target) m.Message.joins;
    List.iter (fun pe -> overhear_prune t ~iface pe m.Message.group ~target:m.Message.target) m.Message.prunes
  end

(* {1 RP reachability and failover (sections 3.2, 3.9)} *)

let handle_rp_reach t ~iface ~group ~rp =
  match Fwd.find_star t.fib group with
  | Some e when e.Fwd.iif = Some iface && e.Fwd.rp = Some rp ->
    e.Fwd.rp_deadline <- now t +. t.cfg.rp_timeout;
    keepalive t e;
    let pkt = Message.rp_reachability_packet ~src:t.addr ~group ~rp in
    List.iter
      (fun i -> if i <> local_iface then Net.send t.net t.node ~iface:i pkt)
      (effective_olist t e ~exclude:(Some iface))
  | _ -> ()

let originate_rp_reach t =
  List.iter
    (fun (e : Fwd.entry) ->
      if Fwd.is_star e && e.Fwd.rp = Some t.addr then begin
        let pkt = Message.rp_reachability_packet ~src:t.addr ~group:e.Fwd.group ~rp:t.addr in
        t.stats.rp_reach_sent <- t.stats.rp_reach_sent + 1;
        List.iter
          (fun i -> if i <> local_iface then Net.send t.net t.node ~iface:i pkt)
          (effective_olist t e ~exclude:None)
      end)
    (Fwd.entries t.fib)

let rp_failover t (e : Fwd.entry) =
  let current = e.Fwd.rp in
  let alternates =
    rps_for t e.Fwd.group
    |> List.filter (fun rp -> Some rp <> current)
    |> List.filter (fun rp -> Addr.equal rp t.addr || t.rib.Rib.distance rp <> None)
  in
  match alternates with
  | [] -> e.Fwd.rp_deadline <- now t +. t.cfg.rp_timeout (* keep waiting *)
  | rp :: _ ->
    t.stats.rp_failovers <- t.stats.rp_failovers + 1;
    ev t
      (Event.Rp_failover
         {
           group = Group.to_string e.Fwd.group;
           from_rp = Option.map Addr.to_string current;
           to_rp = Addr.to_string rp;
         });
    tr t "rp-failover" "group %s: RP %s unreachable, joining %s"
      (Group.to_string e.Fwd.group)
      (match current with Some a -> Addr.to_string a | None -> "?")
      (Addr.to_string rp);
    let upstream = compute_upstream t rp in
    e.Fwd.rp <- Some rp;
    e.Fwd.iif <- Option.map fst upstream;
    (* Only interfaces with directly-connected members survive the move to
       the new RP (section 3.9). *)
    e.Fwd.oifs <- List.filter (fun (o : Fwd.oif) -> o.local) e.Fwd.oifs;
    e.Fwd.rp_deadline <- now t +. t.cfg.rp_timeout;
    (aux t e).upstream <- upstream;
    keepalive t e;
    triggered_join t e

(* {1 Reaction to unicast routing changes (section 3.8)} *)

let update_rpf t =
  List.iter
    (fun (e : Fwd.entry) ->
      match entry_target e with
      | None -> ()
      | Some target ->
        let a = aux t e in
        let fresh = compute_upstream t target in
        if fresh <> a.upstream then begin
          tr t "rpf-change" "%a: upstream %s -> %s" Fwd.pp_entry e
            (match a.upstream with Some (_, n) -> string_of_int n | None -> "-")
            (match fresh with Some (_, n) -> string_of_int n | None -> "-");
          (* Prune from the old upstream if the old path still works. *)
          (match (a.upstream, jp_entry_of e) with
          | Some (old_iface, old_up), Some je ->
            send_jp t ~iface:old_iface ~target:(Addr.router old_up) ~group:e.Fwd.group
              ~joins:[] ~prunes:[ je ]
          | _ -> ());
          a.upstream <- fresh;
          e.Fwd.iif <- Option.map fst fresh;
          (* The new incoming interface must not remain an oif. *)
          (match e.Fwd.iif with Some i -> Fwd.remove_oif e i | None -> ());
          triggered_join t e
        end)
    (Fwd.entries t.fib)

(* {1 Periodic soft-state machinery (sections 3.4, 3.6)} *)

(* Canonical order for join/prune entries inside a message section, so
   bundles serialize identically regardless of hash layout. *)
let compare_jp_entry (a : Message.jp_entry) (b : Message.jp_entry) =
  match Addr.compare a.Message.addr b.Message.addr with
  | 0 -> (
    match Int.compare a.Message.plen b.Message.plen with
    | 0 -> (
      match Bool.compare a.Message.wc b.Message.wc with
      | 0 -> Bool.compare a.Message.rp b.Message.rp
      | c -> c)
    | c -> c)
  | c -> c

(* Bindings of [tbl] sorted by [cmp] on the key — a deterministic
   iteration snapshot for tables whose visit order escapes into
   protocol messages. *)
let sorted_bindings cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort (fun (k, _) (k', _) -> cmp k k')

let periodic_refresh t =
  (* Per-group sections, bucketed by upstream neighbor; all of a neighbor's
     sections leave in one bundled message (section 4's message-size
     aggregation). *)
  let buckets : (Topology.iface * Topology.node * Group.t, Message.jp_entry list ref * Message.jp_entry list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let bucket iface up g =
    let k = (iface, up, g) in
    match Hashtbl.find_opt buckets k with
    | Some b -> b
    | None ->
      let b = (ref [], ref []) in
      Hashtbl.replace buckets k b;
      b
  in
  let n = now t in
  List.iter
    (fun (e : Fwd.entry) ->
      let a = aux t e in
      match a.upstream with
      | None -> ()
      | Some (iface, up) ->
        let suppressed = n < a.suppress_until in
        if Fwd.is_star e then begin
          if (not suppressed) && Fwd.live_oifs e ~now:n <> [] then
            match jp_entry_of e with
            | Some je ->
              let joins, _ = bucket iface up e.Fwd.group in
              joins := je :: !joins
            | None -> ()
        end
        else if e.Fwd.rp_bit then begin
          (* Negative cache with nothing downstream: keep the prune state
             alive toward the RP (footnote 13). *)
          if shared_olist t e ~exclude:None = [] then
            match (jp_entry_of e, e.Fwd.source) with
            | Some _, Some s ->
              let _, prunes = bucket iface up e.Fwd.group in
              prunes := Message.jp_entry ~rp:true s :: !prunes
            | _ -> ()
        end
        else begin
          let wanted =
            effective_olist t e ~exclude:None <> [] || is_rp_for t e.Fwd.group
          in
          if (not suppressed) && wanted then begin
            match e.Fwd.source with
            | Some s ->
              let joins, _ = bucket iface up e.Fwd.group in
              joins := Message.jp_entry s :: !joins
            | None -> ()
          end;
          (* Periodically re-assert the shared-tree prune for diverged
             sources (section 3.4). *)
          if e.Fwd.spt_bit then begin
            match (Fwd.find_star t.fib e.Fwd.group, e.Fwd.source) with
            | Some star, Some s when star.Fwd.iif <> e.Fwd.iif -> (
              match (aux t star).upstream with
              | Some (siface, sup) ->
                let _, prunes = bucket siface sup e.Fwd.group in
                prunes := Message.jp_entry ~rp:true s :: !prunes
              | None -> ())
            | _ -> ()
          end
        end)
    (Fwd.entries t.fib);
  (* Optional source aggregation (section 4): collapse plain /32 joins
     whose sources share a first-hop subnet into one /24 entry. *)
  let aggregate entries =
    if not t.cfg.Config.aggregate_sources then entries
    else begin
      let plain, rest =
        List.partition
          (fun (e : Message.jp_entry) ->
            (not e.Message.wc) && (not e.Message.rp) && e.Message.plen = 32)
          entries
      in
      let by_prefix = Hashtbl.create 4 in
      List.iter
        (fun (e : Message.jp_entry) ->
          let p = Pim_net.Prefix.make e.Message.addr 24 in
          let cur = Option.value (Hashtbl.find_opt by_prefix p) ~default:[] in
          Hashtbl.replace by_prefix p (e :: cur))
        plain;
      Hashtbl.fold
        (fun p es acc ->
          match es with
          | [ single ] -> single :: acc
          | _ :: _ :: _ ->
            Message.jp_entry ~plen:24 (Pim_net.Prefix.network p) :: acc
          | [] -> acc)
        by_prefix rest
      |> List.sort compare_jp_entry
    end
  in
  (* Regroup by upstream and emit one bundle per neighbor. *)
  let per_upstream : (Topology.iface * Topology.node, Message.join_prune list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let compare_bucket_key (i, u, g) (i', u', g') =
    match Int.compare i i' with
    | 0 -> ( match Int.compare u u' with 0 -> Group.compare g g' | c -> c)
    | c -> c
  in
  List.iter
    (fun ((iface, up, g), (joins, prunes)) ->
      let joins = ref (aggregate !joins) in
      if !joins <> [] || !prunes <> [] then begin
        let sections =
          match Hashtbl.find_opt per_upstream (iface, up) with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace per_upstream (iface, up) l;
            l
        in
        sections :=
          {
            Message.target = Addr.router up;
            origin = t.node;
            group = g;
            joins = !joins;
            prunes = !prunes;
            holdtime = t.cfg.oif_holdtime;
          }
          :: !sections
      end)
    (sorted_bindings compare_bucket_key buckets);
  let compare_upstream_key (i, u) (i', u') =
    match Int.compare i i' with 0 -> Int.compare u u' | c -> c
  in
  List.iter
    (fun ((iface, _), sections) ->
      t.stats.jp_msgs_sent <- t.stats.jp_msgs_sent + 1;
      List.iter
        (fun (m : Message.join_prune) ->
          t.stats.joins_sent <- t.stats.joins_sent + List.length m.Message.joins;
          t.stats.prunes_sent <- t.stats.prunes_sent + List.length m.Message.prunes)
        !sections;
      Net.send t.net t.node ~iface (Message.bundle_packet ~src:t.addr !sections))
    (sorted_bindings compare_upstream_key per_upstream)

let sweep t =
  let n = now t in
  List.iter
    (fun (e : Fwd.entry) ->
      let a = aux t e in
      (* Expired shared-tree prune masks grow back (section 1.1 style
         soft state). *)
      let dead_masks =
        Hashtbl.fold (fun i exp acc -> if exp <= n then i :: acc else acc) a.pruned []
        |> List.sort Int.compare
      in
      List.iter (Hashtbl.remove a.pruned) dead_masks;
      (* Directly connected members are authoritative: their presence keeps
         the entry alive without downstream joins (section 3.1). *)
      if List.exists (fun (o : Fwd.oif) -> o.Fwd.local) e.Fwd.oifs then keepalive t e;
      ignore (Fwd.prune_expired_oifs e ~now:n);
      (* "When the outgoing interface list is null a prune message is sent
         upstream" (section 3.6).  The effective list counts inherited
         shared-tree interfaces, so a last-hop (S,G) entry whose receivers
         left via the shared tree also prunes promptly instead of letting
         the upstream oifs age out one holdtime per hop. *)
      let wanted =
        effective_olist t e ~exclude:None <> [] || is_rp_for t e.Fwd.group
      in
      if a.was_wanted && not wanted then triggered_prune t e;
      a.was_wanted <- wanted;
      (* RP failover at routers with directly connected members: either
         the RP stopped proving liveness (deadline passed), or a dynamic
         mapping change dropped it from the group's RP list (BSR churn)
         — in which case re-target immediately rather than waiting out
         the reachability timeout. *)
      (if Fwd.is_star e && List.exists (fun (o : Fwd.oif) -> o.Fwd.local) e.Fwd.oifs then
         let stale =
           match (e.Fwd.rp, rps_for t e.Fwd.group) with
           | Some cur, (_ :: _ as rps) -> not (List.exists (Addr.equal cur) rps)
           | _ -> false
         in
         if stale || e.Fwd.rp_deadline < n then rp_failover t e);
      if e.Fwd.expires < n then delete_entry t e)
    (Fwd.entries t.fib);
  (* Memberships recorded before any RP mapping was known (election still
     converging at join time): retry until one appears. *)
  List.iter
    (fun (g, iface) ->
      if Fwd.find_star t.fib g = None then
        match select_rp t g with
        | Some rp ->
          let e = ensure_star t g ~rp in
          Fwd.add_oif e iface ~expires:n ~local:true;
          keepalive t e
        | None -> ())
    t.local_members

(* {1 Packet dispatch} *)

let handle_packet t ~iface pkt =
  if not (Pim_igmp.Router.handle_packet t.igmp ~iface pkt) then begin
    match pkt.Packet.payload with
    | Message.Join_prune m -> handle_jp t ~iface m
    | Message.Join_prune_bundle ms -> List.iter (fun m -> handle_jp t ~iface m) ms
    | Message.Rp_reachability { group; rp } -> handle_rp_reach t ~iface ~group ~rp
    | Message.Register inner -> (
      match pkt.Packet.dst with
      | Packet.Unicast dst when Addr.equal dst t.addr -> handle_register t inner
      | _ -> send_unicast t pkt)
    | Mdata.Data _ ->
      if is_local_origin t ~iface pkt.Packet.src then originate_data t ~incoming:(Some iface) pkt
      else handle_data t ~iface pkt
    | _ -> (
      (* Transit unicast traffic (e.g. registers using other substrates). *)
      match pkt.Packet.dst with
      | Packet.Unicast dst when not (Addr.equal dst t.addr) -> send_unicast t pkt
      | _ -> ())
  end

let create ?(config = Config.default) ?igmp_config ?trace ?rp_lookup ~net ~rib ~rp_set node =
  let eng = Net.engine net in
  let igmp = Pim_igmp.Router.create ?config:igmp_config net ~node in
  let t =
    {
      node;
      addr = Addr.router node;
      net;
      eng;
      rib;
      rp_set;
      rp_lookup;
      cfg = config;
      igmp;
      fib = Fwd.create ();
      trace;
      auxes = Hashtbl.create 32;
      spt_counters = Hashtbl.create 8;
      stats = fresh_stats ();
      local_cbs = Pim_util.Vec.create ();
      local_seq = 0;
      proxy_ifaces = [];
      local_members = [];
    }
  in
  Net.set_handler net node (fun ~iface pkt -> handle_packet t ~iface pkt);
  (* IGMP-driven membership: only the subnet's DR acts (section 3.1). *)
  Pim_igmp.Router.on_join igmp (fun ~iface g ->
      let link = Topology.link_of_iface (Net.topo net) node iface in
      if is_dr t link.Topology.id then add_local_member t g ~iface);
  Pim_igmp.Router.on_leave igmp (fun ~iface g -> drop_local_member t g ~iface);
  (* Timers: staggered so routers do not act in lockstep. *)
  let frac = float_of_int (node mod 16) /. 16. in
  ignore
    (Engine.every eng
       ~start:(config.Config.jp_period *. (0.2 +. (0.6 *. frac)))
       ~interval:config.Config.jp_period
       (fun () -> periodic_refresh t));
  ignore
    (Engine.every eng
       ~start:(config.Config.sweep_interval *. (0.5 +. (0.5 *. frac)))
       ~interval:config.Config.sweep_interval
       (fun () -> sweep t));
  ignore
    (Engine.every eng
       ~start:(config.Config.rp_reach_period *. (0.3 +. (0.4 *. frac)))
       ~interval:config.Config.rp_reach_period
       (fun () -> originate_rp_reach t));
  (* React to unicast routing changes (section 3.8). *)
  rib.Rib.subscribe (fun () -> update_rpf t);
  t
