(** PIM control messages.

    The 1994 architecture piggybacks PIM on IGMP message types; here they
    are typed payloads with modelled byte sizes.  Join/Prune messages carry
    a join list and a prune list of addresses, each flagged with the WC and
    RP bits exactly as in section 3.2; they are multicast hop-by-hop on the
    outgoing interface (to 224.0.0.2 on multi-access networks, section 3.7)
    with the intended upstream neighbor named in the header. *)

type jp_entry = {
  addr : Pim_net.Addr.t;  (** a source, or the RP when [wc] is set *)
  wc : bool;  (** wildcard: [addr] is the RP of a shared-tree entry *)
  rp : bool;  (** RP bit: this entry lives on the RP tree (section 3.2) *)
  plen : int;
      (** prefix length of [addr]: 32 names one source; shorter lengths
          aggregate all sources in the prefix — "one might consider using
          the highest level aggregate available for an address ...
          optimal with respect to PIM message size" (section 4).
          Aggregated entries appear only in periodic refreshes; tree
          construction stays per-source. *)
}

type join_prune = {
  target : Pim_net.Addr.t;  (** the upstream router this message is for *)
  origin : Pim_graph.Topology.node;  (** sending router *)
  group : Pim_net.Group.t;
  joins : jp_entry list;
  prunes : jp_entry list;
  holdtime : float;  (** how long receivers should keep the oifs alive *)
}

type crp = {
  crp_addr : Pim_net.Addr.t;  (** address receivers will join toward *)
  priority : int;  (** higher wins when ranking RPs for a group *)
  crp_holdtime : float;  (** soft-state lifetime of this advertisement *)
  coverage : Pim_net.Group.t list;
      (** groups this candidate serves; [[]] means every group *)
}
(** A candidate-RP advertisement record, in the spirit of the PIM-SM
    bootstrap mechanism the paper's section 3.9 alludes to ("alternative
    RPs" discovered rather than configured). *)

type Pim_net.Packet.payload +=
  | Join_prune of join_prune
  | Join_prune_bundle of join_prune list
      (** several groups' periodic join/prune state for the same upstream
          neighbor, bundled into one message — the message-size aggregation
          section 4 calls for ("the most important issues are PIM message
          size and the amount of memory used for routing forwarding
          entries") *)
  | Register of Pim_net.Packet.t
      (** data packet piggybacked to the RP by the source's first-hop router
          (section 3) *)
  | Rp_reachability of { group : Pim_net.Group.t; rp : Pim_net.Addr.t }
      (** periodic liveness beacon distributed down the "(*,G)" tree
          (sections 3.2, 3.9) *)
  | Crp_advert of crp
      (** candidate-RP advertisement, unicast periodically to the elected
          bootstrap router *)
  | Bootstrap of {
      bsr : Pim_net.Addr.t;
      bsr_priority : int;
      seq : int;
      crps : crp list;
    }
      (** bootstrap message: the elected BSR's identity plus the current
          RP-set snapshot, flooded hop-by-hop ([seq] dedups re-floods) *)

val jp_entry : ?wc:bool -> ?rp:bool -> ?plen:int -> Pim_net.Addr.t -> jp_entry
(** [plen] defaults to 32 (a single source or RP). *)

val join_prune_packet :
  src:Pim_net.Addr.t ->
  target:Pim_net.Addr.t ->
  origin:Pim_graph.Topology.node ->
  group:Pim_net.Group.t ->
  joins:jp_entry list ->
  prunes:jp_entry list ->
  holdtime:float ->
  Pim_net.Packet.t
(** Multicast to 224.0.0.2, TTL 1 (link-local, hop-by-hop). *)

val bundle_packet : src:Pim_net.Addr.t -> join_prune list -> Pim_net.Packet.t
(** One wire message carrying several groups' join/prune sections (all for
    the same target).  The list must be non-empty. *)

val register_packet : src:Pim_net.Addr.t -> rp:Pim_net.Addr.t -> Pim_net.Packet.t -> Pim_net.Packet.t
(** Unicast encapsulation of a data packet toward the RP. *)

val rp_reachability_packet :
  src:Pim_net.Addr.t -> group:Pim_net.Group.t -> rp:Pim_net.Addr.t -> Pim_net.Packet.t

val crp :
  ?priority:int -> ?holdtime:float -> ?coverage:Pim_net.Group.t list -> Pim_net.Addr.t -> crp
(** [priority] defaults to 0, [holdtime] to 150 s, [coverage] to [[]]
    (all groups). *)

val crp_advert_packet : src:Pim_net.Addr.t -> bsr:Pim_net.Addr.t -> crp -> Pim_net.Packet.t
(** Unicast advertisement toward the elected BSR. *)

val bootstrap_packet :
  src:Pim_net.Addr.t ->
  bsr:Pim_net.Addr.t ->
  bsr_priority:int ->
  seq:int ->
  crp list ->
  Pim_net.Packet.t
(** Multicast to 224.0.0.2, TTL 1 — each hop re-originates the flood. *)

val pp_jp_entry : Format.formatter -> jp_entry -> unit
