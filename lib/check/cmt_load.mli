(** Locate and read the [.cmt] (Typedtree) file matching a source [.ml]
    path out of dune's build tree.  Resolution is deterministic (sorted
    directory walks) and verified against the cmt's recorded source
    file. *)

exception No_cmt of string * string
(** (source path, explanation): no usable [.cmt] was found. *)

val default_build_root : unit -> string
(** [_build/default] when present, else [.] (already inside the build
    context). *)

val load : ?build_root:string -> string -> Typedtree.structure
(** Typedtree for the given [.ml] source path.
    @raise No_cmt when no matching, readable implementation cmt exists. *)
