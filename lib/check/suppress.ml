(* Suppression comments: the marker below followed by one or more rule
   ids (comma- or space-separated), e.g. [(* pimlint: allow <IDS> — why *)]
   with [<IDS>] replaced by ids such as [D1, T1].  A suppression covers
   findings on its own line and on the following line, so both trailing
   and line-above placement work (see RULES.md for worked examples —
   spelled out here they would themselves trip the S1 stale-suppression
   check).

   Matching is purely lexical on the source text, which keeps it robust
   to how the parser attaches (or drops) comments. *)

type t = (int, Finding.rule list) Hashtbl.t

let marker = "pimlint: allow"

(* Parse the rule ids following [marker] in [line]; stop at the first
   token that is not a rule id or separator. *)
let rules_after line idx =
  let n = String.length line in
  let rec skip_sep i =
    if i < n && (line.[i] = ' ' || line.[i] = ',' || line.[i] = '\t') then skip_sep (i + 1)
    else i
  in
  let rec collect i acc =
    let i = skip_sep i in
    if i + 1 < n then
      match Finding.rule_of_id (String.sub line i 2) with
      | Some r -> collect (i + 2) (r :: acc)
      | None -> acc
    else acc
  in
  collect (idx + String.length marker) []

let index_of_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else go (i + 1)
  in
  go 0

let scan_lines lines =
  let t : t = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match index_of_sub line marker with
      | None -> ()
      | Some idx -> (
        match rules_after line idx with
        | [] -> ()
        | rules ->
          let lineno = i + 1 in
          let add l =
            let cur = Option.value (Hashtbl.find_opt t l) ~default:[] in
            Hashtbl.replace t l (List.rev_append rules cur)
          in
          add lineno;
          add (lineno + 1)))
    lines;
  t

(* Origins keep the comment's own line (not the covered span), so the
   driver can report a suppression whose rule no longer fires (S1). *)
let origins_of_lines lines =
  List.concat
    (List.mapi
       (fun i line ->
         match index_of_sub line marker with
         | None -> []
         | Some idx -> (
           match rules_after line idx with
           | [] -> []
           | rules -> [ (i + 1, List.rev rules) ]))
       lines)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let scan_file path = scan_lines (read_lines path)

let origins_file path = origins_of_lines (read_lines path)

let allows t ~line rule =
  match Hashtbl.find_opt t line with
  | Some rules -> List.mem rule rules
  | None -> false
