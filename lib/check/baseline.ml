(* The baseline is the ratchet: it records, per (rule, file), how many
   legacy findings are tolerated.  A lint run fails only when some
   (rule, file) pair reports MORE findings than its baselined count, so
   new violations fail the build while grandfathered ones do not come
   back.  When a file improves, [--update-baseline] shrinks the
   recorded count; it can never be grown by hand-editing review.

   Lines carry a tier tag ("TIER RULE FILE COUNT") so one baseline file
   serves both analysis tiers; the tag is derived from the rule and
   checked on load.  Legacy three-field lines ("RULE FILE COUNT") are
   still accepted and upgraded on the next save. *)

type key = string * string  (* rule id, path with '/' separators *)

type t = (key, int) Hashtbl.t

let empty () : t = Hashtbl.create 8

(* Paths are stored and compared with '/' separators so the baseline is
   portable across platforms and invocation styles. *)
let norm_path p = String.map (fun c -> if c = '\\' then '/' else c) p

let line_re line =
  match String.split_on_char ' ' (String.trim line) with
  | [ rule; path; count ] -> (
    match (Finding.rule_of_id rule, int_of_string_opt count) with
    | Some _, Some n when n > 0 -> Some ((rule, norm_path path), n)
    | _ -> None)
  | [ tier; rule; path; count ] -> (
    match (Finding.tier_of_id tier, Finding.rule_of_id rule, int_of_string_opt count) with
    | Some t, Some r, Some n when n > 0 && Finding.tier_of_rule r = t ->
      Some ((rule, norm_path path), n)
    | _ -> None)
  | _ -> None

let load path =
  let t = empty () in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.length (String.trim line) > 0 && (String.trim line).[0] <> '#' then
              match line_re line with
              | Some (k, n) -> Hashtbl.replace t k n
              | None -> failwith (Printf.sprintf "%s: malformed baseline line %S" path line)
          done
        with End_of_file -> ())
  end;
  t

let allowance t ~rule ~file =
  Option.value (Hashtbl.find_opt t (Finding.rule_id rule, norm_path file)) ~default:0

let counts findings =
  let tbl : t = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      let k = (Finding.rule_id f.rule, norm_path f.file) in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    findings;
  tbl

(* [--update-baseline] runs one tier at a time; rows belonging to the
   other tier must survive the rewrite or updating the untyped baseline
   would silently un-ratchet the typed one (and vice versa). *)
let merge_tier ~tier ~existing fresh =
  let out : t = Hashtbl.create 16 in
  (* pimlint: allow D1, T1 — rebuilding into a Hashtbl; order-independent *)
  Hashtbl.iter
    (fun (rule, file) n ->
      match Finding.rule_of_id rule with
      | Some r when Finding.tier_of_rule r <> tier -> Hashtbl.replace out (rule, file) n
      | _ -> ())
    existing;
  (* pimlint: allow D1, T1 — rebuilding into a Hashtbl; order-independent *)
  Hashtbl.iter (fun k n -> Hashtbl.replace out k n) fresh;
  out

let tier_of_rule_id rule =
  match Finding.rule_of_id rule with
  | Some r -> Finding.tier_id (Finding.tier_of_rule r)
  | None -> "untyped"

let header =
  "# pimlint baseline: TIER RULE FILE COUNT per line.  A run fails when a\n\
   # (rule, file) pair exceeds its count here; regenerate with\n\
   # `pimlint [--typed] --update-baseline` after legitimate ratchet-downs\n\
   # (each tier rewrites only its own rows).\n"

let save t path =
  let rows =
    Hashtbl.fold (fun (rule, file) n acc -> (rule, file, n) :: acc) t []
    |> List.sort (fun (r1, f1, _) (r2, f2, _) ->
           match String.compare f1 f2 with 0 -> String.compare r1 r2 | c -> c)
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      List.iter
        (fun (rule, file, n) ->
          Printf.fprintf oc "%s %s %s %d\n" (tier_of_rule_id rule) rule file n)
        rows)

(* Split [findings] into (overflow, grandfathered): for each (rule, file)
   the first [allowance] findings (in canonical order) are grandfathered,
   the rest overflow and must fail the build. *)
let apply t findings =
  let sorted = List.sort Finding.compare findings in
  let used : (key, int) Hashtbl.t = Hashtbl.create 16 in
  List.partition
    (fun (f : Finding.t) ->
      let k = (Finding.rule_id f.rule, norm_path f.file) in
      let seen = Option.value (Hashtbl.find_opt used k) ~default:0 in
      Hashtbl.replace used k (seen + 1);
      seen >= allowance t ~rule:f.rule ~file:f.file)
    sorted
