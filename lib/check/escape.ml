(* Capture analysis for the R1 domain-race rule, plus the shared
   type-structure helpers the typed rules use.

   The model is deliberately per-compilation-unit: a closure handed to
   [Domain.spawn] races on a value iff the value is (a) free in the
   closure — i.e. also visible to the spawning scope — and (b) of a
   mutable type, and (c) not wrapped in [Atomic]/[Mutex].  Typed ASTs
   make (a) exact (idents are uniquely stamped, so shadowing cannot
   confuse the free-variable computation) and make (b) a matter of the
   value's inferred type rather than its name. *)

open Typedtree

let norm_name s =
  (* "Pim_util__Prng.t" (dune-wrapped alias) reads as "Pim_util.Prng.t". *)
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let path_name p = norm_name (Path.name p)

let last2 name =
  match List.rev (String.split_on_char '.' name) with
  | last :: prev :: _ -> Some (prev, last)
  | [ last ] -> Some ("", last)
  | [] -> None

let has_suffix ~suffix name =
  name = suffix
  || (String.length name > String.length suffix
     && String.sub name (String.length name - String.length suffix - 1)
          (String.length suffix + 1)
        = "." ^ suffix)

(* {1 Mutability classification} *)

type verdict = Safe | Unsafe of string

let constr_name ty =
  match Types.get_desc ty with Types.Tconstr (p, _, _) -> Some (path_name p) | _ -> None

(* The fig2a fan-out pattern — one PRNG stream per trial, split from the
   parent stream in trial order BEFORE spawning, each domain touching
   only its own slots — is the codebase's sanctioned way to share
   randomness across domains, so [Prng.t array] is deliberately safe
   while a single shared [Prng.t] is not. *)
let rec classify ?(depth = 0) ty =
  if depth > 8 then Safe
  else
    let recurse t = classify ~depth:(depth + 1) t in
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) -> (
      let n = path_name p in
      if n = "ref" || n = "Stdlib.ref" then Unsafe "a ref cell"
      else if has_suffix ~suffix:"Atomic.t" n then Safe
      else if has_suffix ~suffix:"Mutex.t" n || has_suffix ~suffix:"Condition.t" n then Safe
      else if has_suffix ~suffix:"Hashtbl.t" n then Unsafe "a Hashtbl"
      else if has_suffix ~suffix:"Vec.t" n then Unsafe "a Pim_util.Vec"
      else if has_suffix ~suffix:"Queue.t" n then Unsafe "a Queue"
      else if has_suffix ~suffix:"Stack.t" n then Unsafe "a Stack"
      else if has_suffix ~suffix:"Buffer.t" n then Unsafe "a Buffer"
      else if n = "bytes" || n = "Stdlib.bytes" then Unsafe "mutable bytes"
      else if n = "array" || n = "Stdlib.array" then (
        match args with
        | [ el ] -> (
          match constr_name el with
          | Some en when has_suffix ~suffix:"Prng.t" en -> Safe
          | _ -> (
            match recurse el with
            | Unsafe what -> Unsafe ("an array of " ^ what)
            | Safe -> Safe))
        | _ -> Safe)
      else if has_suffix ~suffix:"Prng.t" n then Unsafe "a mutable PRNG stream"
      else if
        (* Known mutable simulator state: sharing a live engine, network
           or FIB across domains is never slot-disjoint. *)
        has_suffix ~suffix:"Engine.t" n
        || has_suffix ~suffix:"Net.t" n
        || has_suffix ~suffix:"Fwd.t" n
        || has_suffix ~suffix:"Timer_wheel.t" n
        || has_suffix ~suffix:"Metrics.t" n
      then Unsafe ("mutable simulator state (" ^ n ^ ")")
      else if n = "option" || n = "list" || n = "result" || has_suffix ~suffix:"Either.t" n
      then
        List.fold_left
          (fun acc a -> match acc with Unsafe _ -> acc | Safe -> recurse a)
          Safe args
      else Safe)
    | Types.Ttuple ts ->
      List.fold_left
        (fun acc t -> match acc with Unsafe _ -> acc | Safe -> recurse t)
        Safe ts
    | _ -> Safe

(* {1 Free variables} *)

type use = { id : Ident.t; ty : Types.type_expr; loc : Location.t }

(* Idents bound anywhere inside [expr] (patterns, for-loop indices,
   function params); everything used but not bound is free.  Typedtree
   idents are uniquely stamped, so shadowing is impossible to confuse. *)
let free_idents expr =
  let used : (string, use) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bind id = Hashtbl.replace bound (Ident.unique_name id) () in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) self (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> bind id
          | Tpat_alias (_, id, _) -> bind id
          | _ -> ());
          Tast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
            let k = Ident.unique_name id in
            if not (Hashtbl.mem used k) then begin
              Hashtbl.replace used k { id; ty = e.exp_type; loc = e.exp_loc };
              order := k :: !order
            end
          | Texp_for (id, _, _, _, _, _) -> bind id
          | Texp_function { param; _ } -> bind param
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  List.rev !order
  |> List.filter_map (fun k ->
         if Hashtbl.mem bound k then None else Hashtbl.find_opt used k)

(* Transitive capture: [Domain.spawn (fun () -> run_range lo hi)] shares
   whatever [run_range] itself captures.  [bindings] maps locally-bound
   idents to their defining expressions; functions among the free idents
   are chased (bounded depth, cycle-safe) and their own free idents are
   folded in. *)
let free_idents_transitive ~bindings expr =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go depth e =
    if depth <= 4 then
      List.iter
        (fun (u : use) ->
          let k = Ident.unique_name u.id in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            acc := u :: !acc;
            (* Chase function values: their captures are shared too. *)
            match (Types.get_desc u.ty, Hashtbl.find_opt bindings k) with
            | Types.Tarrow _, Some rhs -> go (depth + 1) rhs
            | _ -> ()
          end)
        (free_idents e)
  in
  go 0 expr;
  List.rev !acc
