(* Typed rule engine: runs on the Typedtree out of [.cmt] files, where
   identifier paths are resolved and every expression carries its
   inferred type.  Rule families (see RULES.md):

   - R1: mutable state reachable both from the spawning scope and from a
     closure passed to [Domain.spawn] / a [Domain_pool], without an
     [Atomic]/[Mutex] wrapper.  The fig2a per-trial split-PRNG pattern
     ([Prng.t array], slot-disjoint results arrays) is recognized as
     safe (see {!Escape.classify}).
   - L1: soft-state timer lifecycle in modules that define [restart]
     (the protocol routers): a one-shot [Engine.schedule]/[schedule_at]
     whose handle is dropped can never be cancelled by [restart], so its
     callback must re-validate state when it fires (head [if]/[match]
     guard); periodic [Engine.every] timers with dropped handles are the
     sanctioned module-lifetime pattern only inside the module
     constructor ([create]/[deploy]/...).
   - L2: every Hashtbl state-table field that is inserted into must have
     a matching remove/reset/sweep site in the same module — soft state
     must be able to expire.
   - L3 (cross-file): every [Packet.payload] extension constructor must
     be matched somewhere in the linted tree; an extension nobody
     pattern-matches is silently swallowed by the catch-alls that
     extensible dispatch forces.
   - T1: the typed re-implementation of D1/H1 — unordered Hashtbl
     traversals and polymorphic compare — which sees through module
     aliases ([module H = Hashtbl]) and functor instantiations
     ([Hashtbl.Make]) and does not false-positive on locally shadowed
     [compare]. *)

open Typedtree

type state = {
  file : string;
  mutable findings : Finding.t list;
  (* Module aliases/instances that behave like Stdlib.Hashtbl: ident
     unique-name -> `Alias (resolved prefix) or `Hashtbl_instance. *)
  hashtbl_mods : (string, unit) Hashtbl.t;
  sanctioned : (int, unit) Hashtbl.t;  (* loc_start.pos_cnum of blessed folds *)
  bindings : (string, expression) Hashtbl.t;  (* ident -> defining expr, for R1 *)
  mutable has_restart : bool;
  mutable top_binding : string;  (* name of the enclosing top-level let *)
  inserts : (string, Location.t) Hashtbl.t;  (* L2: field -> first insert site *)
  clears : (string, unit) Hashtbl.t;  (* L2: fields with a remove/reset site *)
}

let report st rule loc message =
  let pos = loc.Location.loc_start in
  st.findings <-
    {
      Finding.rule;
      file = st.file;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      message;
    }
    :: st.findings

let loc_key e = e.exp_loc.Location.loc_start.Lexing.pos_cnum

(* Resolved dotted name of an identifier head, with local Hashtbl module
   aliases/instances rewritten to a canonical "Hashtbl.<fn>" spelling so
   the member tests below see through them. *)
let head_name st e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    let n = Escape.path_name p in
    match p with
    | Path.Pdot (Path.Pident m, fn) when Hashtbl.mem st.hashtbl_mods (Ident.unique_name m)
      ->
      Some ("Hashtbl." ^ fn)
    | _ -> Some n)
  | _ -> None

let rec app_head st e =
  match e.exp_desc with
  | Texp_ident _ -> head_name st e
  | Texp_apply (f, _) -> app_head st f
  | _ -> None

let is_member ~m ~fns name =
  match Escape.last2 name with
  | Some (prev, last) -> prev = m && List.mem last fns
  | None -> false

let is_hashtbl_member fns name = is_member ~m:"Hashtbl" ~fns name

let is_sort_head name =
  match Escape.last2 name with
  | Some (_, ("sort" | "sort_uniq" | "stable_sort" | "fast_sort")) -> true
  | _ -> false

let positional_args args =
  List.filter_map (fun (_, a) -> a) args

let is_hashtbl_fold_app st e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
    match app_head st f with Some n -> is_hashtbl_member [ "fold" ] n | None -> false)
  | _ -> false

(* Does this fold body build a list?  Same signature as the untyped
   tier: an element-order-dependent result escaping the traversal. *)
let builds_list body =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_construct (_, cd, _) when cd.Types.cstr_name = "::" -> found := true
          | Texp_apply (f, _) -> (
            match f.exp_desc with
            | Texp_ident (p, _, _) -> (
              let n = Escape.path_name p in
              match Escape.last2 n with
              | Some (_, ("@" | "append" | "rev_append" | "cons")) -> found := true
              | _ -> ())
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !found

(* Innermost body of a (possibly curried) function literal; [None] when
   the expression is not a function or dispatches over several cases
   (a [function] match counts as a guard on its own). *)
let rec lambda_body e =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> (
    match lambda_body c.c_rhs with Some inner -> Some inner | None -> Some c.c_rhs)
  | _ -> None

let is_multicase_function e =
  match e.exp_desc with Texp_function { cases = _ :: _ :: _; _ } -> true | _ -> false

(* {1 L1 helpers} *)

let timer_kind name =
  match Escape.last2 name with
  | Some ("Engine", ("schedule" | "schedule_at")) -> Some `One_shot
  | Some ("Engine", "every") -> Some `Periodic
  | _ -> None

let constructor_names =
  [ "create"; "deploy"; "make"; "launch"; "attach"; "init"; "spawn"; "start" ]

let in_constructor st =
  List.exists
    (fun n ->
      st.top_binding = n
      || (String.length st.top_binding > String.length n
         && String.sub st.top_binding 0 (String.length n) = n))
    constructor_names

(* A dropped-handle one-shot timer is tolerable iff its callback begins
   by re-validating state: a head [if]/[match] (or a multi-case
   [function]) that can observe the post-restart world before acting. *)
let callback_guarded cb =
  if is_multicase_function cb then true
  else
    match lambda_body cb with
    | Some body -> (
      match body.exp_desc with
      | Texp_ifthenelse _ | Texp_match _ -> true
      | _ -> false)
    | None -> false

let check_discarded_timer st loc inner =
  match inner.exp_desc with
  | Texp_apply (f, args) -> (
    match Option.bind (head_name st f) (fun n -> timer_kind n) with
    | None -> ()
    | Some kind when st.has_restart -> (
      match kind with
      | `Periodic ->
        if not (in_constructor st) then
          report st Finding.L1 loc
            (Printf.sprintf
               "periodic timer armed in '%s' with a dropped handle: restart cannot \
                cancel it; arm module-lifetime timers in the constructor or keep the \
                handle and cancel it in restart"
               st.top_binding)
      | `One_shot ->
        let cb =
          List.rev (positional_args args)
          |> List.find_opt (fun a ->
                 match a.exp_desc with Texp_function _ -> true | _ -> false)
        in
        let guarded = match cb with Some cb -> callback_guarded cb | None -> false in
        if not guarded then
          report st Finding.L1 loc
            "one-shot timer with a dropped handle: restart cannot cancel it and the \
             callback does not re-validate state first (head if/match guard); store \
             the handle and cancel it in restart, or begin the callback with a \
             staleness check")
    | Some _ -> ())
  | _ -> ()

(* {1 L2 helpers} *)

let hashtbl_insert_fns = [ "replace"; "add" ]
let hashtbl_clear_fns = [ "remove"; "reset"; "clear"; "filter_map_inplace" ]

let record_table_op st name args =
  let field_of_first_arg () =
    match positional_args args with
    | first :: _ -> (
      match first.exp_desc with
      | Texp_field (_, _, ld) -> Some (ld.Types.lbl_name, first.exp_loc)
      | _ -> None)
    | [] -> None
  in
  if is_hashtbl_member hashtbl_insert_fns name then (
    match field_of_first_arg () with
    | Some (fld, loc) ->
      if not (Hashtbl.mem st.inserts fld) then Hashtbl.replace st.inserts fld loc
    | None -> ())
  else if is_hashtbl_member hashtbl_clear_fns name then (
    match field_of_first_arg () with
    | Some (fld, _) -> Hashtbl.replace st.clears fld ()
    | None -> ())

(* {1 R1} *)

let is_spawn name =
  match Escape.last2 name with
  | Some ("Domain", "spawn") -> true
  | Some ("Domain_pool", _) | Some ("Thread", "create") -> true
  | _ -> false

let closure_mentions_mutex cb =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
            match Escape.last2 (Escape.path_name p) with
            | Some ("Mutex", _) -> found := true
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it cb;
  !found

let check_spawn st args =
  match positional_args args with
  | cb :: _ when not (closure_mentions_mutex cb) ->
    List.iter
      (fun (u : Escape.use) ->
        match Escape.classify u.ty with
        | Escape.Safe -> ()
        | Escape.Unsafe what ->
          report st Finding.R1 u.loc
            (Printf.sprintf
               "'%s' (%s) is shared between the spawning scope and this Domain.spawn \
                closure without an Atomic/Mutex wrapper; wrap it, hand each domain its \
                own copy, or use the per-trial split-PRNG / disjoint-slot pattern"
               (Ident.name u.id) what))
      (Escape.free_idents_transitive ~bindings:st.bindings cb)
  | _ -> ()

(* {1 T1} *)

let check_t1_ident st e =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    let n = Escape.path_name p in
    if n = "Stdlib.compare" then
      report st Finding.T1 e.exp_loc
        "polymorphic compare (resolves to Stdlib.compare here): use the type's own \
         compare (Int.compare, Addr.compare, ...)"
  | _ -> ()

let check_t1_apply st e f args =
  match head_name st f with
  | Some n when is_hashtbl_member [ "iter" ] n ->
    report st Finding.T1 e.exp_loc
      "Hashtbl.iter visits entries in nondeterministic order; iterate a sorted \
       snapshot instead"
  | Some n when is_hashtbl_member [ "to_seq"; "to_seq_keys"; "to_seq_values" ] n ->
    report st Finding.T1 e.exp_loc
      "Hashtbl.to_seq* yields entries in nondeterministic order; sort the result"
  | Some n when is_hashtbl_member [ "fold" ] n ->
    if not (Hashtbl.mem st.sanctioned (loc_key e)) then (
      match positional_args args with
      | fn :: _ ->
        let body_builds =
          match lambda_body fn with
          | Some body -> builds_list body
          | None -> is_multicase_function fn && builds_list fn
        in
        if body_builds then
          report st Finding.T1 e.exp_loc
            "Hashtbl.fold accumulates a list in nondeterministic order; pipe the \
             result into a canonical List.sort"
      | [] -> ())
  | _ -> ()

(* Pre-mark folds whose immediate consumer canonically sorts them, as in
   the untyped tier: [fold |> List.sort f] or [List.sort f (fold ...)].
   The typechecker rewrites [x |> f a] into the plain (curried) nested
   application before the Typedtree exists, so both source spellings
   land here as "a sort application with the fold among its arguments";
   [app_head] walks through the currying. *)
let mark_sanctioned st e =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
    match app_head st f with
    | Some n when is_sort_head n ->
      List.iter
        (fun a -> if is_hashtbl_fold_app st a then Hashtbl.replace st.sanctioned (loc_key a) ())
        (positional_args args)
    | _ -> ())
  | _ -> ()

(* {1 Structure pre-passes} *)

let scan_structure st str =
  let it =
    {
      Tast_iterator.default_iterator with
      structure_item =
        (fun self item ->
          (match item.str_desc with
          | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                  if Ident.name id = "restart" then st.has_restart <- true
                | _ -> ())
              vbs
          | Tstr_module mb -> (
            let target =
              let rec resolve me =
                match me.mod_desc with
                | Tmod_ident (p, _) -> Some (`Ident (Escape.path_name p))
                | Tmod_apply (f, _, _) -> (
                  match resolve f with
                  | Some (`Ident n) when Escape.has_suffix ~suffix:"Hashtbl.Make" n ->
                    Some `Instance
                  | _ -> None)
                | Tmod_constraint (me, _, _, _) -> resolve me
                | _ -> None
              in
              resolve mb.mb_expr
            in
            match (mb.mb_id, target) with
            | Some id, Some (`Ident n) when Escape.has_suffix ~suffix:"Hashtbl" n ->
              Hashtbl.replace st.hashtbl_mods (Ident.unique_name id) ()
            | Some id, Some `Instance ->
              Hashtbl.replace st.hashtbl_mods (Ident.unique_name id) ()
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.structure_item self item);
      value_binding =
        (fun self vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) -> Hashtbl.replace st.bindings (Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str

(* {1 Main per-file pass} *)

let make_iterator st =
  let default = Tast_iterator.default_iterator in
  let expr self e =
    mark_sanctioned st e;
    check_t1_ident st e;
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      check_t1_apply st e f args;
      (match head_name st f with
      | Some n ->
        record_table_op st n args;
        if is_spawn n then check_spawn st args;
        (* [ignore (Engine.schedule ...)]: the timer handle is dropped. *)
        if n = "Stdlib.ignore" || n = "ignore" then (
          match positional_args args with
          | [ inner ] -> check_discarded_timer st e.exp_loc inner
          | _ -> ())
      | None -> ()))
    | Texp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          match vb.vb_pat.pat_desc with
          | Tpat_any -> check_discarded_timer st vb.vb_loc vb.vb_expr
          | _ -> ())
        vbs
    | _ -> ());
    default.expr self e
  in
  let structure_item self item =
    (match item.str_desc with
    | Tstr_value (_, vbs) -> (
      match vbs with
      | { vb_pat = { pat_desc = Tpat_var (id, _); _ }; _ } :: _ ->
        st.top_binding <- Ident.name id
      | _ -> st.top_binding <- "")
    | _ -> st.top_binding <- "");
    default.structure_item self item
  in
  { default with Tast_iterator.expr; structure_item }

let finish_l2 st =
  let missing =
    Hashtbl.fold
      (fun fld loc acc -> if Hashtbl.mem st.clears fld then acc else (fld, loc) :: acc)
      st.inserts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (fld, loc) ->
      report st Finding.L2 loc
        (Printf.sprintf
           "state table '%s' accumulates entries but this module has no remove/reset/\
            sweep site for it; soft state must be able to expire (wire it into sweep \
            or restart)"
           fld))
    missing

let check_file ~file str =
  let st =
    {
      file;
      findings = [];
      hashtbl_mods = Hashtbl.create 4;
      sanctioned = Hashtbl.create 16;
      bindings = Hashtbl.create 64;
      has_restart = false;
      top_binding = "";
      inserts = Hashtbl.create 8;
      clears = Hashtbl.create 8;
    }
  in
  scan_structure st str;
  let it = make_iterator st in
  it.Tast_iterator.structure it str;
  if st.has_restart then finish_l2 st;
  st.findings

(* {1 L3: cross-file payload-constructor coverage} *)

type l3_decl = { ctor : string; decl_file : string; decl_loc : Location.t }

let payload_extensions str ~file =
  let decls = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      structure_item =
        (fun self item ->
          (match item.str_desc with
          | Tstr_typext te ->
            if Escape.last2 (Escape.path_name te.tyext_path) = Some ("Packet", "payload")
            then
              List.iter
                (fun ec ->
                  decls :=
                    { ctor = ec.ext_name.txt; decl_file = file; decl_loc = ec.ext_loc }
                    :: !decls)
                te.tyext_constructors
          | _ -> ());
          Tast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it str;
  List.rev !decls

let matched_constructors str acc =
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) self (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_construct (_, cd, _, _) -> Hashtbl.replace acc cd.Types.cstr_name ()
          | _ -> ());
          Tast_iterator.default_iterator.pat self p);
    }
  in
  it.structure it str

let check_l3 files =
  let matched : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (_, str) -> matched_constructors str matched) files;
  List.concat_map
    (fun (file, str) ->
      payload_extensions str ~file
      |> List.filter_map (fun d ->
             if Hashtbl.mem matched d.ctor then None
             else
               let pos = d.decl_loc.Location.loc_start in
               Some
                 {
                   Finding.rule = Finding.L3;
                   file = d.decl_file;
                   line = pos.Lexing.pos_lnum;
                   col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
                   message =
                     Printf.sprintf
                       "payload constructor %s is never pattern-matched anywhere in the \
                        linted tree: every receiver swallows it through the catch-all \
                        that extensible dispatch forces; handle it (or drop it)"
                       d.ctor;
                 }))
    files

(* {1 Batch entry point} *)

let check_batch files =
  let per_file = List.concat_map (fun (file, str) -> check_file ~file str) files in
  let l3 = check_l3 files in
  List.sort Finding.compare (per_file @ l3)
