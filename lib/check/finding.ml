type rule = D1 | D2 | H1 | H2 | H3 | H4

let all_rules = [ D1; D2; H1; H2; H3; H4 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | H1 -> "H1"
  | H2 -> "H2"
  | H3 -> "H3"
  | H4 -> "H4"

let rule_of_id = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "H1" -> Some H1
  | "H2" -> Some H2
  | "H3" -> Some H3
  | "H4" -> Some H4
  | _ -> None

let rule_doc = function
  | D1 -> "unordered Hashtbl traversal whose result escapes"
  | D2 -> "randomness source other than Pim_util.Prng"
  | H1 -> "polymorphic compare"
  | H2 -> "float equality / physical equality on boxed values"
  | H3 -> "catch-all exception handler"
  | H4 -> "list append in a loop (quadratic growth)"

type severity = Error | Warning

(* Every rule defaults to a build-failing error; the driver can demote
   individual rules to warnings (reported, never fatal). *)
let default_severity (_ : rule) = Error

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
      | c -> c)
    | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule) f.message
