(* Findings are shared by both analysis tiers:

   - the {e untyped} tier (PR 3) parses sources with compiler-libs and
     runs lexical/structural rules (the D and H families) on the Parsetree;
   - the {e typed} tier reads [.cmt] files (dune's [-bin-annot] output)
     and runs rules with real type and identity information (R1, L1-L3,
     T1) on the Typedtree.

   S1 (stale suppression) is emitted by the driver for whichever tier is
   running, and is the only warn-by-default rule. *)

type rule = D1 | D2 | H1 | H2 | H3 | H4 | S1 | R1 | L1 | L2 | L3 | T1

let all_rules = [ D1; D2; H1; H2; H3; H4; S1; R1; L1; L2; L3; T1 ]

type tier = Untyped | Typed

let tier_id = function Untyped -> "untyped" | Typed -> "typed"

let tier_of_id = function
  | "untyped" -> Some Untyped
  | "typed" -> Some Typed
  | _ -> None

(* S1 is tier-less in spirit (the driver checks suppressions of the
   active tier) but files under the untyped column in the baseline. *)
let tier_of_rule = function
  | D1 | D2 | H1 | H2 | H3 | H4 | S1 -> Untyped
  | R1 | L1 | L2 | L3 | T1 -> Typed

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | H1 -> "H1"
  | H2 -> "H2"
  | H3 -> "H3"
  | H4 -> "H4"
  | S1 -> "S1"
  | R1 -> "R1"
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | T1 -> "T1"

let rule_of_id = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "H1" -> Some H1
  | "H2" -> Some H2
  | "H3" -> Some H3
  | "H4" -> Some H4
  | "S1" -> Some S1
  | "R1" -> Some R1
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "T1" -> Some T1
  | _ -> None

let rule_doc = function
  | D1 -> "unordered Hashtbl traversal whose result escapes"
  | D2 -> "randomness source other than Pim_util.Prng"
  | H1 -> "polymorphic compare"
  | H2 -> "float equality / physical equality on boxed values"
  | H3 -> "catch-all exception handler"
  | H4 -> "list append in a loop (quadratic growth)"
  | S1 -> "stale suppression comment (its rule no longer fires)"
  | R1 -> "mutable state shared with a Domain.spawn closure without Atomic/Mutex"
  | L1 -> "timer armed without a cancel path or staleness guard reachable from restart"
  | L2 -> "state-table insert without a matching expiry/sweep/remove site"
  | L3 -> "payload constructor never matched: receivers swallow it via catch-alls"
  | T1 -> "typed determinism: Hashtbl order / polymorphic compare through aliases and functors"

type severity = Error | Warning

(* Every rule defaults to a build-failing error except S1, which exists
   to nag (a rotten suppression must not block the build it documents). *)
let default_severity = function S1 -> Warning | _ -> Error

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
      | c -> c)
    | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule) f.message
