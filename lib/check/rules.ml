(* Syntactic rule engine over the untyped Parsetree.  No type
   information is available, so every rule is a lexical/structural
   heuristic tuned to this codebase's idioms; RULES.md documents the
   deliberate blind spots.  Traversal is a single DFS (Ast_iterator
   based) with two pieces of context threaded through mutable state:

   - [sanctioned]: fold applications whose immediate consumer is a
     canonical sort ([List.sort f (Hashtbl.fold ...)] or
     [Hashtbl.fold ... |> List.sort f]) are pre-marked by the parent
     visit and not reported by D1.
   - [loop_depth]: bumped inside for/while bodies and inside function
     literals passed to iteration combinators (.iter/.fold/...), the
     contexts where a list append (H4) goes quadratic. *)

open Parsetree

type state = {
  file : string;
  mutable findings : Finding.t list;
  sanctioned : (int, unit) Hashtbl.t;  (* loc_start.pos_cnum of blessed folds *)
  mutable loop_depth : int;
  mutable shadowed_compare : bool;  (* file defines its own [compare] *)
}

let path_of_longident lid =
  let rec flat acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> flat (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  String.concat "." (flat [] lid)

let last_two path =
  match List.rev (String.split_on_char '.' path) with
  | last :: prev :: _ -> Some (prev, last)
  | [ last ] -> Some ("", last)
  | [] -> None

let head_path e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (path_of_longident txt) | _ -> None

(* The head identifier of a possibly partial application:
   [List.sort Int.compare] and [List.sort] both resolve to "List.sort". *)
let rec app_head e =
  match e.pexp_desc with
  | Pexp_ident _ -> head_path e
  | Pexp_apply (f, _) -> app_head f
  | _ -> None

let is_hashtbl_member member path =
  match last_two path with
  | Some (prev, last) -> prev = "Hashtbl" && last = member
  | None -> false

let is_sort_head path =
  match last_two path with
  | Some (_, ("sort" | "sort_uniq" | "stable_sort" | "fast_sort")) -> true
  | _ -> false

let is_hashtbl_fold_app e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
    match head_path f with Some p -> is_hashtbl_member "fold" p | None -> false)
  | _ -> false

let loc_key e = e.pexp_loc.Location.loc_start.Lexing.pos_cnum

let report st rule loc message =
  let pos = loc.Location.loc_start in
  st.findings <-
    {
      Finding.rule;
      file = st.file;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      message;
    }
    :: st.findings

(* Does this expression (a fold body) build a list? — the signature of a
   traversal whose element order escapes into the result. *)
let builds_list body =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> found := true
          | Pexp_apply (f, _) -> (
            match head_path f with
            | Some ("@" | "List.append" | "List.rev_append" | "List.cons") -> found := true
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  !found

let rec lambda_body e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> Some (lambda_innermost body)
  | Pexp_function _ -> Some e
  | _ -> None

and lambda_innermost e =
  match e.pexp_desc with Pexp_fun (_, _, _, body) -> lambda_innermost body | _ -> e

let is_float_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* An iteration combinator whose function-literal argument is a loop
   body for H4 purposes. *)
let is_loop_combinator path =
  match last_two path with
  | Some (_, ("iter" | "iteri" | "iter2" | "fold" | "fold_left" | "fold_right")) -> true
  | _ -> false

let randomness_paths = [ "Unix.time"; "Unix.gettimeofday"; "Sys.time" ]

let is_randomness path =
  List.mem path randomness_paths
  ||
  match String.split_on_char '.' path with
  | "Random" :: _ :: _ -> true
  | "Stdlib" :: "Random" :: _ :: _ -> true
  | _ -> false

let check_ident st loc path =
  if is_randomness path then
    report st Finding.D2 loc
      (Printf.sprintf "%s: use the seeded Pim_util.Prng instead of ambient randomness" path);
  if (path = "compare" && not st.shadowed_compare) || path = "Stdlib.compare" then
    report st Finding.H1 loc
      "polymorphic compare: use the type's own compare (Int.compare, Addr.compare, ...)"

(* [e.f <- e'.f @ xs] (or [xs @ e'.f]) where both sides name the same
   field: the classic quadratic subscriber-list append. *)
let is_self_append_set fld rhs =
  match rhs.pexp_desc with
  | Pexp_apply (f, args) -> (
    match head_path f with
    | Some ("@" | "List.append") ->
      List.exists
        (fun (_, a) ->
          match a.pexp_desc with
          | Pexp_field (_, { txt; _ }) -> (
            match (last_two (path_of_longident txt), last_two (path_of_longident fld)) with
            | Some (_, f1), Some (_, f2) -> f1 = f2
            | _ -> false)
          | _ -> false)
        args
    | _ -> false)
  | _ -> false

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | _ -> None

let mentions_get e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) when head_path f = Some "Array.get" -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

let mentions_deref_of name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, [ (_, arg) ]) when head_path f = Some "!" ->
            if ident_name arg = Some name then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

let make_iterator st =
  let default = Ast_iterator.default_iterator in
  let with_loop self e =
    st.loop_depth <- st.loop_depth + 1;
    self.Ast_iterator.expr self e;
    st.loop_depth <- st.loop_depth - 1
  in
  let expr self e =
    (* Pre-mark folds whose immediate consumer canonically sorts them. *)
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match head_path f with
      | Some "|>" -> (
        match args with
        | [ (_, lhs); (_, rhs) ] ->
          if is_hashtbl_fold_app lhs then (
            match app_head rhs with
            | Some p when is_sort_head p -> Hashtbl.replace st.sanctioned (loc_key lhs) ()
            | _ -> ())
        | _ -> ())
      | Some p when is_sort_head p ->
        List.iter
          (fun (_, a) ->
            if is_hashtbl_fold_app a then Hashtbl.replace st.sanctioned (loc_key a) ())
          args
      | _ -> ())
    | _ -> ());
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident st e.pexp_loc (path_of_longident txt)
    | Pexp_apply (f, args) ->
      (match head_path f with
      | Some p when is_hashtbl_member "iter" p ->
        report st Finding.D1 e.pexp_loc
          "Hashtbl.iter visits entries in nondeterministic order; iterate a sorted \
           snapshot instead"
      | Some p
        when is_hashtbl_member "to_seq" p || is_hashtbl_member "to_seq_keys" p
             || is_hashtbl_member "to_seq_values" p ->
        report st Finding.D1 e.pexp_loc
          "Hashtbl.to_seq* yields entries in nondeterministic order; sort the result"
      | Some p when is_hashtbl_member "fold" p ->
        if not (Hashtbl.mem st.sanctioned (loc_key e)) then (
          match args with
          | (_, fn) :: _ -> (
            match lambda_body fn with
            | Some body when builds_list body ->
              report st Finding.D1 e.pexp_loc
                "Hashtbl.fold accumulates a list in nondeterministic order; pipe the \
                 result into a canonical List.sort"
            | _ -> ())
          | [] -> ())
      | Some "randomize" | None | Some _ -> ());
      (match head_path f with
      | Some ("=" | "<>") ->
        if List.exists (fun (_, a) -> is_float_const a) args then
          report st Finding.H2 e.pexp_loc
            "float equality: compare against an epsilon or use Float.compare"
      | Some ("==" | "!=") ->
        report st Finding.H2 e.pexp_loc
          "physical equality on possibly-boxed values; use structural equality or a \
           typed equal"
      | Some ("@" | "List.append") ->
        if st.loop_depth > 0 then
          report st Finding.H4 e.pexp_loc
            "list append inside a loop is quadratic; accumulate with :: / Vec.push and \
             sort or reverse once"
      | Some "Array.set" -> (
        (* [a.(i) <- ... @ a.(i) ...]: the parser desugars [.()] to
           Array.get/Array.set, so catch the array-slot self-append too. *)
        match List.rev args with
        | (_, rhs) :: _ -> (
          match rhs.pexp_desc with
          | Pexp_apply (op, _)
            when (head_path op = Some "@" || head_path op = Some "List.append")
                 && mentions_get rhs ->
            report st Finding.H4 e.pexp_loc
              "self-append to an array slot is quadratic across registrations; use \
               Pim_util.Vec"
          | _ -> ())
        | [] -> ())
      | Some ":=" -> (
        match args with
        | [ (_, lhs); (_, rhs) ] -> (
          match (ident_name lhs, rhs.pexp_desc) with
          | Some r, Pexp_apply (op, _)
            when (head_path op = Some "@" || head_path op = Some "List.append")
                 && mentions_deref_of r rhs ->
            report st Finding.H4 e.pexp_loc
              "r := !r @ ... grows quadratically; accumulate with :: or Vec.push"
          | _ -> ())
        | _ -> ())
      | _ -> ());
      (* Recurse manually so function literals handed to iteration
         combinators count as loop bodies for H4. *)
      let loopy =
        match head_path f with Some p -> is_loop_combinator p | None -> false
      in
      self.Ast_iterator.expr self f;
      List.iter
        (fun (_, a) ->
          match a.pexp_desc with
          | (Pexp_fun _ | Pexp_function _) when loopy -> with_loop self a
          | _ -> self.Ast_iterator.expr self a)
        args
    | Pexp_setfield (lhs, fld, rhs) ->
      if is_self_append_set fld.txt rhs then
        report st Finding.H4 e.pexp_loc
          "self-append to a mutable list field is quadratic across registrations; use \
           Pim_util.Vec";
      self.Ast_iterator.expr self lhs;
      self.Ast_iterator.expr self rhs
    | Pexp_try (body, cases) ->
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_any ->
            report st Finding.H3 c.pc_lhs.ppat_loc
              "catch-all handler swallows every exception (including Assert_failure); \
               match the exceptions you mean"
          | _ -> ())
        cases;
      self.Ast_iterator.expr self body;
      List.iter (fun c -> self.Ast_iterator.case self c) cases
    | Pexp_while (cond, body) ->
      self.Ast_iterator.expr self cond;
      with_loop self body
    | Pexp_for (pat, lo, hi, _, body) ->
      self.Ast_iterator.pat self pat;
      self.Ast_iterator.expr self lo;
      self.Ast_iterator.expr self hi;
      with_loop self body
    | _ -> default.expr self e
  in
  { default with Ast_iterator.expr }

(* A file that defines its own [compare] (e.g. lib/net/prefix.ml) uses
   the bare name for the typed function; H1 must not fire there. *)
let defines_compare structure =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = "compare"; _ } -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure;
  !found

let check ~file structure =
  let st =
    {
      file;
      findings = [];
      sanctioned = Hashtbl.create 16;
      loop_depth = 0;
      shadowed_compare = defines_compare structure;
    }
  in
  let it = make_iterator st in
  it.Ast_iterator.structure it structure;
  List.sort Finding.compare st.findings
