(** Capture analysis for the R1 domain-race rule and shared
    type/path-structure helpers for the typed rule engine. *)

val norm_name : string -> string
(** Collapse dune's wrapped-library mangling: ["Pim_util__Prng.t"] reads
    as ["Pim_util.Prng.t"]. *)

val path_name : Path.t -> string
(** [norm_name] of [Path.name]. *)

val last2 : string -> (string * string) option
(** Last two dotted components: ["Stdlib.Hashtbl.iter"] gives
    [Some ("Hashtbl", "iter")]. *)

val has_suffix : suffix:string -> string -> bool
(** Dotted-suffix test: ["Pim_util.Prng.t"] has suffix ["Prng.t"]. *)

type verdict = Safe | Unsafe of string

val classify : ?depth:int -> Types.type_expr -> verdict
(** Is a value of this type dangerous to share across domains
    unsynchronized?  [Unsafe what] carries a human description.
    [Atomic.t]/[Mutex.t] wrappers are safe; [Prng.t array] is the
    sanctioned per-trial split-stream fan-out pattern and is safe, while
    a bare shared [Prng.t] is not. *)

type use = { id : Ident.t; ty : Types.type_expr; loc : Location.t }

val free_idents : Typedtree.expression -> use list
(** Locally-named idents used but not bound inside the expression, in
    first-use order.  Exact under shadowing (typedtree idents are
    uniquely stamped). *)

val free_idents_transitive :
  bindings:(string, Typedtree.expression) Hashtbl.t ->
  Typedtree.expression ->
  use list
(** [free_idents] closed over function values: a free ident whose type
    is an arrow and whose defining expression is in [bindings] (keyed by
    [Ident.unique_name]) contributes its own free idents, to bounded
    depth. *)
