(* Driver: expand paths to .ml files, parse each with compiler-libs,
   run the rule engine, drop suppressed findings, apply the baseline
   ratchet and report.  The linter itself must be deterministic: files
   are visited in sorted order and findings are reported in canonical
   order. *)

type options = {
  baseline_path : string option;
  update_baseline : bool;
  warn_rules : Finding.rule list;  (* demoted: reported, never fatal *)
  quiet : bool;
}

let default_options =
  { baseline_path = None; update_baseline = false; warn_rules = []; quiet = false }

let is_ml_file path = Filename.check_suffix path ".ml"

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path
    |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || name = ".git" then acc
           else walk acc (Filename.concat path name))
         acc
  else if is_ml_file path then path :: acc
  else acc

let expand paths =
  List.fold_left walk [] paths |> List.sort_uniq String.compare

exception Parse_failure of string * string  (* file, message *)

let parse_file path =
  try Pparse.parse_implementation ~tool_name:"pimlint" path
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    raise (Parse_failure (path, msg))

let lint_file path =
  let structure = parse_file path in
  let suppressions = Suppress.scan_file path in
  Rules.check ~file:path structure
  |> List.filter (fun (f : Finding.t) -> not (Suppress.allows suppressions ~line:f.line f.rule))

let lint_paths paths = List.concat_map lint_file (expand paths)

let severity opts (f : Finding.t) =
  if List.mem f.rule opts.warn_rules then Finding.Warning else Finding.default_severity f.rule

(* Returns the process exit code: 0 clean (or fully baselined), 1 when
   non-baselined error findings exist, 2 on parse/IO failure. *)
let run ?(options = default_options) ~paths ppf =
  match lint_paths paths with
  | exception Parse_failure (file, msg) ->
    Format.fprintf ppf "pimlint: cannot parse %s:@.%s@." file msg;
    2
  | exception Sys_error msg ->
    Format.fprintf ppf "pimlint: %s@." msg;
    2
  | findings ->
    let baseline =
      match options.baseline_path with
      | Some p when not options.update_baseline -> Baseline.load p
      | _ -> Baseline.empty ()
    in
    if options.update_baseline then begin
      match options.baseline_path with
      | None ->
        Format.fprintf ppf "pimlint: --update-baseline requires --baseline PATH@.";
        2
      | Some p ->
        Baseline.save (Baseline.counts findings) p;
        Format.fprintf ppf "pimlint: baseline of %d finding(s) written to %s@."
          (List.length findings) p;
        0
    end
    else begin
      let overflow, grandfathered = Baseline.apply baseline findings in
      let errors, warnings =
        List.partition (fun f -> severity options f = Finding.Error) overflow
      in
      if not options.quiet then begin
        List.iter (fun f -> Format.fprintf ppf "warning: %a@." Finding.pp f) warnings;
        List.iter (fun f -> Format.fprintf ppf "error: %a@." Finding.pp f) errors;
        if grandfathered <> [] then
          Format.fprintf ppf
            "pimlint: %d baselined legacy finding(s) tolerated — ratchet down when \
             possible@."
            (List.length grandfathered)
      end;
      if errors = [] then begin
        if not options.quiet then
          Format.fprintf ppf "pimlint: OK (%d file(s), %d warning(s), %d baselined)@."
            (List.length (expand paths))
            (List.length warnings) (List.length grandfathered);
        0
      end
      else begin
        Format.fprintf ppf "pimlint: %d error(s)@." (List.length errors);
        1
      end
    end
