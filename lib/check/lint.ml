(* Driver: expand paths to .ml files, run one analysis tier over them,
   drop suppressed findings, flag stale suppressions (S1), apply the
   baseline ratchet and report (text or JSON).  The linter itself must
   be deterministic: files are visited in sorted order and findings are
   reported in canonical order.

   Tiers: the untyped tier parses sources and runs {!Rules} on the
   Parsetree; the typed tier loads [.cmt] files via {!Cmt_load} and runs
   {!Typed_rules} on the Typedtree.  One invocation runs exactly one
   tier; the baseline file is shared (rows are tier-tagged, and
   [--update-baseline] rewrites only the active tier's rows). *)

type tier_mode = Untyped_tier | Typed_tier

type options = {
  baseline_path : string option;
  update_baseline : bool;
  warn_rules : Finding.rule list;  (* demoted: reported, never fatal *)
  quiet : bool;
  tier : tier_mode;
  build_root : string option;  (* typed tier: where the .cmt files live *)
  json : bool;  (* machine-readable output, schema "pimlint/1" *)
}

let default_options =
  {
    baseline_path = None;
    update_baseline = false;
    warn_rules = [];
    quiet = false;
    tier = Untyped_tier;
    build_root = None;
    json = false;
  }

let finding_tier = function Untyped_tier -> Finding.Untyped | Typed_tier -> Finding.Typed

let is_ml_file path = Filename.check_suffix path ".ml"

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path
    |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || name = ".git" then acc
           else walk acc (Filename.concat path name))
         acc
  else if is_ml_file path then path :: acc
  else acc

let expand paths =
  List.fold_left walk [] paths |> List.sort_uniq String.compare

exception Parse_failure of string * string  (* file, message *)

let parse_file path =
  try Pparse.parse_implementation ~tool_name:"pimlint" path
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    raise (Parse_failure (path, msg))

(* Raw (pre-suppression) findings per file, for the active tier.  The
   typed tier checks the whole batch at once because L3 is cross-file. *)
let raw_findings ~options files =
  match options.tier with
  | Untyped_tier ->
    List.concat_map (fun file -> Rules.check ~file (parse_file file)) files
  | Typed_tier ->
    files
    |> List.map (fun file -> (file, Cmt_load.load ?build_root:options.build_root file))
    |> Typed_rules.check_batch

(* A suppression comment is stale when none of the rules it names (of
   the active tier) fired on the lines it covers — the code it excused
   has been fixed or moved, and the comment now silently masks future
   regressions.  Rules of the other tier are invisible to this run and
   are never judged here. *)
let stale_suppressions ~tier file raw =
  Suppress.origins_file file
  |> List.filter_map (fun (line, rules) ->
         let relevant = List.filter (fun r -> Finding.tier_of_rule r = tier) rules in
         if relevant = [] then None
         else if
           List.exists
             (fun (f : Finding.t) ->
               List.mem f.rule relevant && (f.line = line || f.line = line + 1))
             raw
         then None
         else
           Some
             {
               Finding.rule = Finding.S1;
               file;
               line;
               col = 0;
               message =
                 Printf.sprintf
                   "stale suppression: no %s finding on this or the next line; remove \
                    the allow comment (or re-scope it)"
                   (String.concat "/" (List.map Finding.rule_id relevant));
             })

(* Findings for one batch of files: tier rules minus suppressed, plus
   stale-suppression warnings. *)
let lint_files ~options files =
  let raw = raw_findings ~options files in
  let tier = finding_tier options.tier in
  List.concat_map
    (fun file ->
      let raw_here = List.filter (fun (f : Finding.t) -> f.file = file) raw in
      let suppressions = Suppress.scan_file file in
      let kept =
        List.filter
          (fun (f : Finding.t) -> not (Suppress.allows suppressions ~line:f.line f.rule))
          raw_here
      in
      kept @ stale_suppressions ~tier file raw_here)
    files
  |> List.sort Finding.compare

let lint_file path = lint_files ~options:default_options [ path ]

let lint_paths ?(options = default_options) paths = lint_files ~options (expand paths)

let severity opts (f : Finding.t) =
  if List.mem f.rule opts.warn_rules then Finding.Warning else Finding.default_severity f.rule

(* {1 JSON output}  Schema "pimlint/1": stable field set, findings in
   canonical order, hand-rolled escaping (no external dependency). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_finding opts (f : Finding.t) =
  Printf.sprintf
    {|{"rule":"%s","tier":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (Finding.rule_id f.rule)
    (Finding.tier_id (Finding.tier_of_rule f.rule))
    (match severity opts f with Finding.Error -> "error" | Finding.Warning -> "warning")
    (json_escape f.file) f.line f.col (json_escape f.message)

let print_json ppf opts ~errors ~warnings ~grandfathered ~exit_code =
  let findings = List.sort Finding.compare (errors @ warnings) in
  Format.fprintf ppf
    {|{"schema":"pimlint/1","tier":"%s","errors":%d,"warnings":%d,"baselined":%d,"exit":%d,"findings":[%s]}@.|}
    (Finding.tier_id (finding_tier opts.tier))
    (List.length errors) (List.length warnings) (List.length grandfathered) exit_code
    (String.concat "," (List.map (json_finding opts) findings))

(* {1 Entry point} *)

(* Returns the process exit code: 0 clean (or fully baselined), 1 when
   non-baselined error findings exist, 2 on parse/IO/cmt failure. *)
let run ?(options = default_options) ~paths ppf =
  match lint_paths ~options paths with
  | exception Parse_failure (file, msg) ->
    Format.fprintf ppf "pimlint: cannot parse %s:@.%s@." file msg;
    2
  | exception Cmt_load.No_cmt (file, msg) ->
    Format.fprintf ppf "pimlint: %s: %s@." file msg;
    2
  | exception Sys_error msg ->
    Format.fprintf ppf "pimlint: %s@." msg;
    2
  | findings ->
    if options.update_baseline then begin
      match options.baseline_path with
      | None ->
        Format.fprintf ppf "pimlint: --update-baseline requires --baseline PATH@.";
        2
      | Some p ->
        (* S1 is a meta-rule about comments, never ratcheted; and the
           other tier's rows must survive a one-tier rewrite. *)
        let ratchetable =
          List.filter (fun (f : Finding.t) -> f.rule <> Finding.S1) findings
        in
        let merged =
          Baseline.merge_tier ~tier:(finding_tier options.tier)
            ~existing:(Baseline.load p) (Baseline.counts ratchetable)
        in
        Baseline.save merged p;
        Format.fprintf ppf "pimlint: baseline of %d %s finding(s) written to %s@."
          (List.length ratchetable)
          (Finding.tier_id (finding_tier options.tier))
          p;
        0
    end
    else begin
      let baseline =
        match options.baseline_path with
        | Some p -> Baseline.load p
        | None -> Baseline.empty ()
      in
      let overflow, grandfathered = Baseline.apply baseline findings in
      let errors, warnings =
        List.partition (fun f -> severity options f = Finding.Error) overflow
      in
      let exit_code = if errors = [] then 0 else 1 in
      if options.json then
        print_json ppf options ~errors ~warnings ~grandfathered ~exit_code
      else begin
        if not options.quiet then begin
          List.iter (fun f -> Format.fprintf ppf "warning: %a@." Finding.pp f) warnings;
          List.iter (fun f -> Format.fprintf ppf "error: %a@." Finding.pp f) errors;
          if grandfathered <> [] then
            Format.fprintf ppf
              "pimlint: %d baselined legacy finding(s) tolerated — ratchet down when \
               possible@."
              (List.length grandfathered)
        end;
        if errors = [] then begin
          if not options.quiet then
            Format.fprintf ppf "pimlint: OK (%d file(s), %d warning(s), %d baselined)@."
              (List.length (expand paths))
              (List.length warnings) (List.length grandfathered)
        end
        else Format.fprintf ppf "pimlint: %d error(s)@." (List.length errors)
      end;
      exit_code
    end
