(** Lexical scan for [(* pimlint: allow <rule>... *)] suppression
    comments.  A suppression covers its own line and the next one. *)

type t

val scan_file : string -> t

val scan_lines : string list -> t
(** Exposed for tests: line numbering starts at 1. *)

val allows : t -> line:int -> Finding.rule -> bool
