(** Lexical scan for [pimlint: allow <rule>...] suppression comments.
    A suppression covers its own line and the next one. *)

type t

val scan_file : string -> t

val scan_lines : string list -> t
(** Exposed for tests: line numbering starts at 1. *)

val allows : t -> line:int -> Finding.rule -> bool

val origins_file : string -> (int * Finding.rule list) list
(** The suppression comments themselves: (comment line, rules listed),
    in file order.  Used by the driver's S1 stale-suppression check. *)

val origins_of_lines : string list -> (int * Finding.rule list) list
(** Exposed for tests. *)
