(** pimlint driver: run one analysis tier over the given paths, apply
    {!Suppress} comments (flagging stale ones as S1) and the {!Baseline}
    ratchet, and report as text or JSON.

    The untyped tier parses [.ml] sources with compiler-libs and runs
    {!Rules}; the typed tier loads [.cmt] files via {!Cmt_load} and runs
    {!Typed_rules}. *)

type tier_mode = Untyped_tier | Typed_tier

type options = {
  baseline_path : string option;
  update_baseline : bool;
  warn_rules : Finding.rule list;
      (** Rules demoted to warnings: reported but never fatal. *)
  quiet : bool;
  tier : tier_mode;
  build_root : string option;
      (** Typed tier: directory holding the built tree with [.cmt]
          files.  Defaults to [_build/default] when present, else [.]. *)
  json : bool;  (** Emit one "pimlint/1" JSON object instead of text. *)
}

val default_options : options
(** Untyped tier, no baseline, text output. *)

exception Parse_failure of string * string

val lint_file : string -> Finding.t list
(** Untyped findings for one file, suppression comments applied (stale
    ones reported as S1), no baseline.
    @raise Parse_failure when the file does not parse. *)

val lint_paths : ?options:options -> string list -> Finding.t list
(** The active tier's findings over every [.ml] under the paths, in
    canonical order, suppressions applied, no baseline. *)

val run : ?options:options -> paths:string list -> Format.formatter -> int
(** Full run; returns the intended process exit code (0 clean or fully
    baselined, 1 non-baselined errors, 2 parse/IO/cmt failure). *)
