(** pimlint driver: parse every [.ml] under the given paths with
    compiler-libs, run {!Rules}, apply {!Suppress} comments and the
    {!Baseline} ratchet, and report. *)

type options = {
  baseline_path : string option;
  update_baseline : bool;
  warn_rules : Finding.rule list;
      (** Rules demoted to warnings: reported but never fatal. *)
  quiet : bool;
}

val default_options : options

exception Parse_failure of string * string

val lint_file : string -> Finding.t list
(** Findings for one file, suppression comments applied, no baseline.
    @raise Parse_failure when the file does not parse. *)

val lint_paths : string list -> Finding.t list
(** [lint_file] over every [.ml] under the paths, in sorted file order. *)

val run : ?options:options -> paths:string list -> Format.formatter -> int
(** Full run; returns the intended process exit code (0 clean or fully
    baselined, 1 non-baselined errors, 2 parse/IO failure). *)
