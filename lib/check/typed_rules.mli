(** The typed analysis tier: R1 (domain races), L1–L3 (soft-state
    lifecycle conformance) and T1 (typed determinism — the D1/H1
    re-implementation that sees through aliases and functor instances
    and is exact under shadowing).  Runs on Typedtree structures loaded
    from [.cmt] files by {!Cmt_load}. *)

val check_file : file:string -> Typedtree.structure -> Finding.t list
(** Per-file rules (R1, L1, L2, T1) for one compilation unit.  Sorted. *)

val check_batch : (string * Typedtree.structure) list -> Finding.t list
(** All typed rules over a batch of units, including the cross-file L3
    payload-constructor coverage check.  Sorted by [Finding.compare]. *)
