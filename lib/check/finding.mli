(** Rule identifiers, severities and the finding record shared by the
    [pimlint] rule engines (untyped Parsetree tier and typed [.cmt]
    tier), baseline and drivers.  See [RULES.md] for the rationale
    behind each rule. *)

type rule = D1 | D2 | H1 | H2 | H3 | H4 | S1 | R1 | L1 | L2 | L3 | T1

val all_rules : rule list

type tier = Untyped | Typed

val tier_id : tier -> string

val tier_of_id : string -> tier option

val tier_of_rule : rule -> tier
(** Which analysis tier emits the rule.  D*, H* and S1 belong to the
    untyped Parsetree tier; R1, L1-L3 and T1 to the typed [.cmt] tier. *)

val rule_id : rule -> string

val rule_of_id : string -> rule option

val rule_doc : rule -> string
(** One-line summary used in [--help] style listings. *)

type severity = Error | Warning

val default_severity : rule -> severity
(** [Error] for every rule except S1 (stale suppression), which warns. *)

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

val compare : t -> t -> int
(** Canonical (file, line, col, rule) ordering, so reports are stable. *)

val pp : Format.formatter -> t -> unit
