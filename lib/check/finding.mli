(** Rule identifiers, severities and the finding record shared by the
    [pimlint] rule engine, baseline and drivers.  See [RULES.md] for the
    rationale behind each rule. *)

type rule = D1 | D2 | H1 | H2 | H3 | H4

val all_rules : rule list

val rule_id : rule -> string

val rule_of_id : string -> rule option

val rule_doc : rule -> string
(** One-line summary used in [--help] style listings. *)

type severity = Error | Warning

val default_severity : rule -> severity

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

val compare : t -> t -> int
(** Canonical (file, line, col, rule) ordering, so reports are stable. *)

val pp : Format.formatter -> t -> unit
