(* Locate and read the [.cmt] file matching a source [.ml] path.  Dune
   compiles every module with [-bin-annot], leaving cmts under
   [<dir>/.<lib>.objs/byte/] (libraries) or [<dir>/.<exe>.eobjs/byte/]
   (executables) inside the build context.  Rather than indexing the
   whole build tree (reading every cmt is expensive), we look only in
   the candidate directory derived from the source path:

     build_root / dirname(source) / ** / <mod>.cmt
                                         <lib>__<Mod>.cmt

   and verify the match by the cmt's own recorded [cmt_sourcefile]
   (compared by path suffix, since dune records paths relative to the
   context root while callers may pass workspace- or cwd-relative
   paths).  Traversal is sorted, so resolution is deterministic. *)

let norm p = String.map (fun c -> if c = '\\' then '/' else c) p

(* "a/b/lib/core/router.ml" tail-matches "lib/core/router.ml". *)
let suffix_path ~candidate ~requested =
  let c = norm candidate and r = norm requested in
  (* Strip leading "./" and "../" segments from the requested path: a
     caller in _build/default/test asks for "../lib/...", the cmt
     records "lib/...". *)
  let rec strip r =
    if String.length r >= 2 && String.sub r 0 2 = "./" then
      strip (String.sub r 2 (String.length r - 2))
    else if String.length r >= 3 && String.sub r 0 3 = "../" then
      strip (String.sub r 3 (String.length r - 3))
    else r
  in
  let r = strip r in
  c = r
  || (String.length c > String.length r
     && String.sub c (String.length c - String.length r - 1) (String.length r + 1)
        = "/" ^ r)
  || (String.length r > String.length c
     && String.sub r (String.length r - String.length c - 1) (String.length c + 1)
        = "/" ^ c)

let module_name_of_source source =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename source))

(* Candidate filter: "router.cmt", "pim_core__Router.cmt" and
   "dune__exe__Pimsim.cmt" all resolve module "Router"/"Pimsim". *)
let cmt_matches_module ~modname file =
  Filename.check_suffix file ".cmt"
  &&
  let base = Filename.remove_extension (Filename.basename file) in
  (* Strip the wrapped-library prefix up to the LAST "__": the module
     name itself may contain single underscores ("Cmt_load"). *)
  let tail =
    let sep = ref None in
    String.iteri (fun i c -> if c = '_' && i + 1 < String.length base && base.[i + 1] = '_' then sep := Some i) base;
    match !sep with
    | Some i when i + 2 < String.length base ->
      String.sub base (i + 2) (String.length base - i - 2)
    | _ -> base
  in
  String.capitalize_ascii tail = modname

let rec walk acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | names ->
    Array.to_list names
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           let p = Filename.concat dir name in
           if Sys.is_directory p then if name = ".git" then acc else walk acc p
           else p :: acc)
         acc

let default_build_root () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    "_build/default"
  else "."

exception No_cmt of string * string  (* source, explanation *)

let read_structure ~source cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception exn ->
    Error (Printf.sprintf "%s: unreadable cmt (%s)" cmt_path (Printexc.to_string exn))
  | infos -> (
    match infos.Cmt_format.cmt_annots with
    | Cmt_format.Implementation structure -> Ok (infos, structure)
    | _ -> Error (Printf.sprintf "%s: cmt for %s holds no implementation" cmt_path source))

(* Find and load the typedtree for [source].  [build_root] defaults to
   [_build/default] when present (invocation from the workspace root)
   and to [.] otherwise (invocation from inside the build context). *)
let load ?build_root source =
  let root = match build_root with Some r -> r | None -> default_build_root () in
  let dir =
    let d = Filename.dirname source in
    if d = "." then root else Filename.concat root d
  in
  let modname = module_name_of_source source in
  let candidates = walk [] dir |> List.filter (cmt_matches_module ~modname) in
  let rec try_candidates = function
    | [] ->
      raise
        (No_cmt
           ( source,
             Printf.sprintf
               "no matching .cmt under %s — build first (dune emits .cmt via -bin-annot; \
                try `dune build @check`)"
               dir ))
    | c :: rest -> (
      match read_structure ~source c with
      | Ok (infos, structure) -> (
        match infos.Cmt_format.cmt_sourcefile with
        | Some sf when suffix_path ~candidate:sf ~requested:source -> structure
        | Some _ -> try_candidates rest
        | None -> try_candidates rest)
      | Error _ -> try_candidates rest)
  in
  try_candidates (List.sort String.compare candidates)
