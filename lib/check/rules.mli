(** The pimlint rule engine: a single untyped-Parsetree traversal
    producing findings for rules D1, D2, H1–H4 (see [RULES.md]).
    Suppression comments and the baseline are applied by {!Lint}, not
    here. *)

val check : file:string -> Parsetree.structure -> Finding.t list
(** Findings in canonical (file, line, col, rule) order. *)
