(** Per-(rule, file) finding-count ratchet.  Legacy findings recorded
    here are tolerated; anything beyond the recorded count fails.  Rows
    are tier-tagged ("TIER RULE FILE COUNT") so one file ratchets both
    the untyped and the typed analysis tier; legacy three-field rows
    load as before. *)

type t

val empty : unit -> t

val load : string -> t
(** Missing file loads as an empty baseline.
    @raise Failure on a malformed line. *)

val save : t -> string -> unit
(** Write tier-tagged counts sorted by (file, rule), with a header. *)

val counts : Finding.t list -> t
(** Baseline that exactly covers [findings] (used by [--update-baseline]). *)

val merge_tier : tier:Finding.tier -> existing:t -> t -> t
(** [merge_tier ~tier ~existing fresh] keeps [existing]'s rows belonging
    to the {e other} tier and takes [fresh] for [tier]'s rows, so a
    one-tier [--update-baseline] cannot drop the other tier's ratchet. *)

val allowance : t -> rule:Finding.rule -> file:string -> int

val apply : t -> Finding.t list -> Finding.t list * Finding.t list
(** [apply t findings] is [(overflow, grandfathered)]: findings beyond
    each (rule, file) allowance, and findings covered by it. *)
