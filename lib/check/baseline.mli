(** Per-(rule, file) finding-count ratchet.  Legacy findings recorded
    here are tolerated; anything beyond the recorded count fails. *)

type t

val empty : unit -> t

val load : string -> t
(** Missing file loads as an empty baseline.
    @raise Failure on a malformed line. *)

val save : t -> string -> unit
(** Write counts sorted by (file, rule), with an explanatory header. *)

val counts : Finding.t list -> t
(** Baseline that exactly covers [findings] (used by [--update-baseline]). *)

val allowance : t -> rule:Finding.rule -> file:string -> int

val apply : t -> Finding.t list -> Finding.t list * Finding.t list
(** [apply t findings] is [(overflow, grandfathered)]: findings beyond
    each (rule, file) allowance, and findings covered by it. *)
