(** Delivery bookkeeping for experiments and tests.

    Records which member (router or host, identified by an integer id)
    received which data packet and when, so tests can assert complete,
    duplicate-free delivery and experiments can measure end-to-end delay. *)

type t

val create : unit -> t

val record :
  t ->
  group:Pim_net.Group.t ->
  src:Pim_net.Addr.t ->
  seq:int ->
  receiver:int ->
  sent_at:float ->
  at:float ->
  unit

val receivers : t -> group:Pim_net.Group.t -> src:Pim_net.Addr.t -> seq:int -> int list
(** Sorted, deduplicated receiver ids of one packet. *)

val copies : t -> group:Pim_net.Group.t -> src:Pim_net.Addr.t -> seq:int -> receiver:int -> int
(** How many copies the receiver got (1 = no duplicates). *)

val delays : t -> float list
(** All recorded end-to-end delays, sorted ascending (canonical order). *)

val delay_of : t -> group:Pim_net.Group.t -> src:Pim_net.Addr.t -> seq:int -> receiver:int -> float option
(** Delay of the first copy. *)

val total : t -> int
(** Total recorded receptions (copies included). *)

val clear : t -> unit
