module Group = Pim_net.Group
module Addr = Pim_net.Addr

type key = Group.t * Addr.t * int

type reception = {
  receiver : int;
  delay : float;
}

type t = { tbl : (key, reception list ref) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }

let record t ~group ~src ~seq ~receiver ~sent_at ~at =
  let k = (group, src, seq) in
  let cell =
    match Hashtbl.find_opt t.tbl k with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.replace t.tbl k c;
      c
  in
  cell := { receiver; delay = at -. sent_at } :: !cell

let find t ~group ~src ~seq =
  match Hashtbl.find_opt t.tbl (group, src, seq) with Some c -> !c | None -> []

let receivers t ~group ~src ~seq =
  find t ~group ~src ~seq |> List.map (fun r -> r.receiver) |> List.sort_uniq Int.compare

let copies t ~group ~src ~seq ~receiver =
  find t ~group ~src ~seq |> List.filter (fun r -> r.receiver = receiver) |> List.length

let delays t =
  Hashtbl.fold (fun _ c acc -> List.rev_append (List.map (fun r -> r.delay) !c) acc) t.tbl []
  |> List.sort Float.compare

let delay_of t ~group ~src ~seq ~receiver =
  find t ~group ~src ~seq
  |> List.filter (fun r -> r.receiver = receiver)
  |> List.fold_left (fun acc r -> match acc with None -> Some r.delay | Some d -> Some (min d r.delay)) None

let total t = Hashtbl.fold (fun _ c acc -> acc + List.length !c) t.tbl 0

let clear t = Hashtbl.reset t.tbl
