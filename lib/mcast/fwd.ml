module Group = Pim_net.Group
module Addr = Pim_net.Addr

type oif = {
  iface : Pim_graph.Topology.iface;
  mutable expires : float;
  mutable local : bool;
}

type entry = {
  group : Group.t;
  source : Addr.t option;
  mutable rp : Addr.t option;
  mutable iif : Pim_graph.Topology.iface option;
  mutable oifs : oif list;
  mutable wc_bit : bool;
  mutable rp_bit : bool;
  mutable spt_bit : bool;
  mutable expires : float;
  mutable rp_deadline : float;
}

let make_star ~group ~rp ~iif ~expires =
  {
    group;
    source = None;
    rp = Some rp;
    iif;
    oifs = [];
    wc_bit = true;
    rp_bit = true;
    spt_bit = false;
    expires;
    rp_deadline = infinity;
  }

let make_sg ~group ~source ?rp ?(rp_bit = false) ~iif ~expires () =
  {
    group;
    source = Some source;
    rp;
    iif;
    oifs = [];
    wc_bit = false;
    rp_bit;
    spt_bit = false;
    expires;
    rp_deadline = infinity;
  }

let is_star e = e.source = None

let key e = (e.group, e.source)

let find_oif e iface = List.find_opt (fun o -> o.iface = iface) e.oifs

let add_oif e iface ~expires ~local =
  match find_oif e iface with
  | Some o ->
    o.expires <- max o.expires expires;
    o.local <- o.local || local
  | None -> e.oifs <- { iface; expires; local } :: e.oifs

let remove_oif e iface = e.oifs <- List.filter (fun o -> o.iface <> iface) e.oifs

let live_oifs e ~now =
  e.oifs
  |> List.filter (fun o -> (o.local || o.expires > now) && Some o.iface <> e.iif)
  |> List.map (fun o -> o.iface)
  |> List.sort Int.compare

let prune_expired_oifs e ~now =
  let before = List.length e.oifs in
  e.oifs <- List.filter (fun o -> o.local || o.expires > now) e.oifs;
  List.length e.oifs <> before

let pp_entry ppf e =
  let src =
    match e.source with None -> "*" | Some s -> Addr.to_string s
  in
  let flags =
    String.concat ""
      [
        (if e.wc_bit then "W" else "");
        (if e.rp_bit then "R" else "");
        (if e.spt_bit then "S" else "");
      ]
  in
  let oifs =
    String.concat ","
      (List.map
         (fun o -> Printf.sprintf "%d%s" o.iface (if o.local then "(loc)" else ""))
         (List.sort (fun a b -> Int.compare a.iface b.iface) e.oifs))
  in
  Format.fprintf ppf "(%s, %s) iif=%s oifs={%s} flags=%s rp=%s" src
    (Group.to_string e.group)
    (match e.iif with None -> "-" | Some i -> string_of_int i)
    oifs flags
    (match e.rp with None -> "-" | Some rp -> Addr.to_string rp)

type t = { tbl : (Group.t * Addr.t option, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let find_sg t g s = Hashtbl.find_opt t.tbl (g, Some s)

let find_star t g = Hashtbl.find_opt t.tbl (g, None)

let match_data t g ~src =
  match find_sg t g src with Some e -> Some e | None -> find_star t g

let insert t e =
  let k = key e in
  if Hashtbl.mem t.tbl k then invalid_arg "Fwd.insert: duplicate entry";
  Hashtbl.replace t.tbl k e

let remove t g s = Hashtbl.remove t.tbl (g, s)

(* Canonical (group, source) order, with the "(*,G)" entry ahead of its
   (S,G) siblings.  [entries] sorts with it so that every consumer —
   sweeps, periodic refresh, invariant checks — visits the table in an
   order independent of hash-bucket layout. *)
let compare_entry a b =
  match Group.compare a.group b.group with
  | 0 -> Option.compare Addr.compare a.source b.source
  | c -> c

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [] |> List.sort compare_entry

let group_entries t g = entries t |> List.filter (fun e -> Group.equal e.group g)

let count t = Hashtbl.length t.tbl

let clear t = Hashtbl.reset t.tbl

let pp ppf t = List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
