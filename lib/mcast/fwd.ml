module Group = Pim_net.Group
module Addr = Pim_net.Addr

type oif = {
  iface : Pim_graph.Topology.iface;
  mutable expires : float;
  mutable local : bool;
}

type entry = {
  group : Group.t;
  source : Addr.t option;
  mutable rp : Addr.t option;
  mutable iif : Pim_graph.Topology.iface option;
  mutable oifs : oif list;
  mutable wc_bit : bool;
  mutable rp_bit : bool;
  mutable spt_bit : bool;
  mutable expires : float;
  mutable rp_deadline : float;
}

let make_star ~group ~rp ~iif ~expires =
  {
    group;
    source = None;
    rp = Some rp;
    iif;
    oifs = [];
    wc_bit = true;
    rp_bit = true;
    spt_bit = false;
    expires;
    rp_deadline = infinity;
  }

let make_sg ~group ~source ?rp ?(rp_bit = false) ~iif ~expires () =
  {
    group;
    source = Some source;
    rp;
    iif;
    oifs = [];
    wc_bit = false;
    rp_bit;
    spt_bit = false;
    expires;
    rp_deadline = infinity;
  }

let is_star e = e.source = None

let key e = (e.group, e.source)

let find_oif e iface = List.find_opt (fun o -> o.iface = iface) e.oifs

let add_oif e iface ~expires ~local =
  match find_oif e iface with
  | Some o ->
    o.expires <- max o.expires expires;
    o.local <- o.local || local
  | None -> e.oifs <- { iface; expires; local } :: e.oifs

let remove_oif e iface = e.oifs <- List.filter (fun o -> o.iface <> iface) e.oifs

let live_oifs e ~now =
  e.oifs
  |> List.filter (fun o -> (o.local || o.expires > now) && Some o.iface <> e.iif)
  |> List.map (fun o -> o.iface)
  |> List.sort Int.compare

let prune_expired_oifs e ~now =
  let before = List.length e.oifs in
  e.oifs <- List.filter (fun o -> o.local || o.expires > now) e.oifs;
  List.length e.oifs <> before

let pp_entry ppf e =
  let src =
    match e.source with None -> "*" | Some s -> Addr.to_string s
  in
  let flags =
    String.concat ""
      [
        (if e.wc_bit then "W" else "");
        (if e.rp_bit then "R" else "");
        (if e.spt_bit then "S" else "");
      ]
  in
  let oifs =
    String.concat ","
      (List.map
         (fun o -> Printf.sprintf "%d%s" o.iface (if o.local then "(loc)" else ""))
         (List.sort (fun a b -> Int.compare a.iface b.iface) e.oifs))
  in
  Format.fprintf ppf "(%s, %s) iif=%s oifs={%s} flags=%s rp=%s" src
    (Group.to_string e.group)
    (match e.iif with None -> "-" | Some i -> string_of_int i)
    oifs flags
    (match e.rp with None -> "-" | Some rp -> Addr.to_string rp)

(* Per-group slot: the "(*,G)" entry plus the (S,G) list kept sorted by
   source address, so group-local enumeration needs no sort. *)
type slot = {
  mutable star : entry option;
  mutable sgs : entry list;
}

(* The FIB is keyed by dense group id from a per-FIB interner: router
   state for G lives at [slots.(gid)], an array index instead of a
   hash-table probe on a (group, source option) tuple key.  A lookup for
   a group the router has no state for uses [Interner.find] and touches
   nothing, so data-plane probes never grow the interner. *)
type t = {
  interner : Group.Interner.t;
  mutable slots : slot array;
  mutable size : int;
}

let create () = { interner = Group.Interner.create (); slots = [||]; size = 0 }

let slot_of t g =
  match Group.Interner.find t.interner g with
  | Some gid when gid < Array.length t.slots -> Some t.slots.(gid)
  | _ -> None

let find_sg t g s =
  match slot_of t g with
  | None -> None
  | Some sl ->
    List.find_opt (fun e -> match e.source with Some s' -> Addr.equal s' s | None -> false) sl.sgs

let find_star t g = match slot_of t g with None -> None | Some sl -> sl.star

let match_data t g ~src =
  match slot_of t g with
  | None -> None
  | Some sl ->
    let rec go = function
      | e :: tl -> (
        match e.source with Some s' when Addr.equal s' src -> Some e | _ -> go tl)
      | [] -> sl.star
    in
    go sl.sgs

let ensure_slot t gid =
  if gid >= Array.length t.slots then begin
    let cap = Int.max 16 (Int.max (gid + 1) (2 * Array.length t.slots)) in
    let a = Array.init cap (fun i ->
        if i < Array.length t.slots then t.slots.(i) else { star = None; sgs = [] })
    in
    t.slots <- a
  end;
  t.slots.(gid)

let insert t e =
  let gid = Group.Interner.intern t.interner e.group in
  let sl = ensure_slot t gid in
  (match e.source with
  | None ->
    if sl.star <> None then invalid_arg "Fwd.insert: duplicate entry";
    sl.star <- Some e
  | Some s ->
    let rec ins = function
      | e' :: tl as l -> (
        match e'.source with
        | Some s' ->
          let c = Addr.compare s s' in
          if c = 0 then invalid_arg "Fwd.insert: duplicate entry"
          else if c < 0 then e :: l
          else e' :: ins tl
        | None -> assert false)
      | [] -> [ e ]
    in
    sl.sgs <- ins sl.sgs);
  t.size <- t.size + 1

let remove t g s =
  match slot_of t g with
  | None -> ()
  | Some sl -> (
    match s with
    | None -> if sl.star <> None then begin sl.star <- None; t.size <- t.size - 1 end
    | Some s ->
      let before = List.length sl.sgs in
      sl.sgs <-
        List.filter
          (fun e -> match e.source with Some s' -> not (Addr.equal s' s) | None -> true)
          sl.sgs;
      if List.length sl.sgs <> before then t.size <- t.size - 1)

(* Canonical (group, source) order, with the "(*,G)" entry ahead of its
   (S,G) siblings.  [entries] enumerates in this order so that every
   consumer — sweeps, periodic refresh, invariant checks — visits the
   table in an order independent of interner id assignment. *)
let compare_entry a b =
  match Group.compare a.group b.group with
  | 0 -> Option.compare Addr.compare a.source b.source
  | c -> c

let slot_entries sl = (match sl.star with Some e -> [ e ] | None -> []) @ sl.sgs

let entries t =
  let per_group = ref [] in
  for gid = Array.length t.slots - 1 downto 0 do
    match slot_entries t.slots.(gid) with
    | [] -> ()
    | es -> per_group := (Group.Interner.group_of t.interner gid, es) :: !per_group
  done;
  !per_group
  |> List.sort (fun (g1, _) (g2, _) -> Group.compare g1 g2)
  |> List.concat_map snd

let group_entries t g = match slot_of t g with None -> [] | Some sl -> slot_entries sl

let count t = t.size

let clear t =
  (* A restart loses forwarding state; interned ids survive (they are
     stable identifiers, not state). *)
  Array.iter
    (fun sl ->
      sl.star <- None;
      sl.sgs <- [])
    t.slots;
  t.size <- 0

let pp ppf t = List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
