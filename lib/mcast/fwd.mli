(** Multicast forwarding entries and the forwarding information base.

    Mirrors the state the paper describes in section 3: a source-specific
    entry (S,G) or a shared-tree wildcard entry "(*,G)", each carrying an
    incoming interface, a timed outgoing-interface list, and the WC / RP /
    SPT flag bits whose meanings are:

    - WC bit: the entry is "(*,G)"; the address stored is the RP, not a
      source.
    - RP bit: the entry lives on the RP-rooted shared tree — its incoming
      interface check points toward the RP and its prunes travel toward the
      RP (negative caches are (S,G) entries with the RP bit set).
    - SPT bit: the shortest-path transition for (S,G) is complete; data
      from S is expected on the SPT interface (section 3.3). *)

type oif = {
  iface : Pim_graph.Topology.iface;
  mutable expires : float;  (** reset on every Join received on it *)
  mutable local : bool;  (** kept alive by directly-connected members, not by joins *)
}

type entry = {
  group : Pim_net.Group.t;
  source : Pim_net.Addr.t option;  (** [None] for "(*,G)" *)
  mutable rp : Pim_net.Addr.t option;  (** the group's RP *)
  mutable iif : Pim_graph.Topology.iface option;
  mutable oifs : oif list;
  mutable wc_bit : bool;
  mutable rp_bit : bool;
  mutable spt_bit : bool;
  mutable expires : float;  (** entry timer *)
  mutable rp_deadline : float;  (** RP-reachability timer ("(*,G)" at routers with members) *)
}

val make_star :
  group:Pim_net.Group.t ->
  rp:Pim_net.Addr.t ->
  iif:Pim_graph.Topology.iface option ->
  expires:float ->
  entry
(** A "(*,G)" entry: WC and RP bits set. *)

val make_sg :
  group:Pim_net.Group.t ->
  source:Pim_net.Addr.t ->
  ?rp:Pim_net.Addr.t ->
  ?rp_bit:bool ->
  iif:Pim_graph.Topology.iface option ->
  expires:float ->
  unit ->
  entry
(** An (S,G) entry; SPT bit initially cleared (section 3.3). *)

val is_star : entry -> bool

val key : entry -> Pim_net.Group.t * Pim_net.Addr.t option

val find_oif : entry -> Pim_graph.Topology.iface -> oif option

val add_oif : entry -> Pim_graph.Topology.iface -> expires:float -> local:bool -> unit
(** Add or refresh: an existing oif gets its timer extended (never
    shortened) and its [local] flag or'ed. *)

val remove_oif : entry -> Pim_graph.Topology.iface -> unit

val live_oifs : entry -> now:float -> Pim_graph.Topology.iface list
(** Interfaces whose timers have not expired, excluding the entry's iif. *)

val prune_expired_oifs : entry -> now:float -> bool
(** Drop expired, non-local oifs; returns true if any were dropped. *)

val pp_entry : Format.formatter -> entry -> unit

(** {1 FIB} *)

type t

val create : unit -> t

val find_sg : t -> Pim_net.Group.t -> Pim_net.Addr.t -> entry option

val find_star : t -> Pim_net.Group.t -> entry option

val match_data : t -> Pim_net.Group.t -> src:Pim_net.Addr.t -> entry option
(** Longest-match rule for data packets: (S,G) if present, else "(*,G)". *)

val insert : t -> entry -> unit
(** @raise Invalid_argument if an entry with the same key exists. *)

val remove : t -> Pim_net.Group.t -> Pim_net.Addr.t option -> unit

val compare_entry : entry -> entry -> int
(** Canonical (group, source) order; "(*,G)" sorts before its (S,G)s. *)

val entries : t -> entry list
(** All entries in {!compare_entry} order, so traversal-driven protocol
    actions (sweeps, refreshes) are independent of hash layout. *)

val group_entries : t -> Pim_net.Group.t -> entry list
(** All entries of a group: the "(*,G)" first if present, then (S,G)s in
    source order. *)

val count : t -> int

val clear : t -> unit
(** Drop every entry — a router restart loses its forwarding state and
    must rebuild it from soft-state refreshes. *)

val pp : Format.formatter -> t -> unit
