(** Dense-mode multicast router: truncated reverse-path broadcast with
    prunes (paper section 1.1), in two flavours.

    - [Dvmrp] restricts flooding to child links — the downstream routers
      whose reverse path toward the source runs through this router — as
      DVMRP learns from its unicast exchange (footnote 1 of the paper).
      We read the same information from the neighbors' RIBs, which is what
      the poison-reverse machinery would converge to.
    - [Pim_dm] is the protocol-independent dense variant (paper reference
      [13]): no child information, flood on every non-incoming interface
      and let prunes (including prunes triggered by packets arriving on
      non-RPF point-to-point interfaces) cut the useless branches.

    In both, pruned branches grow back after [prune_timeout] and the next
    data packet re-floods them — the periodic re-broadcast behaviour whose
    cost Figure 1 illustrates and PIM sparse mode eliminates. *)

type mode =
  | Dvmrp
  | Pim_dm

type config = {
  mode : mode;
  prune_timeout : float;  (** pruned branch lifetime before grow-back *)
  entry_linger : float;  (** (S,G) state kept this long past the last packet *)
  graft : bool;
      (** send an immediate Join upstream when a local member appears on a
          pruned branch (off by default: the '94 text relies on grow-back) *)
  prune_override_delay : float;  (** LAN prune-override delay (section 3.7) *)
  prune_override_window : float;
  prune_rate_limit : float;  (** min interval between prunes per (S,G) *)
  sweep_interval : float;
  advertise_members : bool;
      (** flood intra-region membership advertisements — the "group member
          existence information" border routers need to join PIM trees on
          the region's behalf (section 4, interoperation); off by default *)
  advert_interval : float;  (** periodic re-advertisement period *)
}

val default_config : config
(** DVMRP mode, 180 s prune timeout, 210 s linger, no graft. *)

val fast_config : config
(** Timers divided by 10 for quick simulations. *)

type stats = {
  mutable data_forwarded : int;
  mutable data_dropped_iif : int;
  mutable data_delivered_local : int;
  mutable prunes_sent : int;
  mutable joins_sent : int;
}

type t

val create :
  ?config:config ->
  ?igmp_config:Pim_igmp.Router.config ->
  ?trace:Pim_sim.Trace.t ->
  net:Pim_sim.Net.t ->
  rib:Pim_routing.Rib.t ->
  neighbor_rib:(Pim_graph.Topology.node -> Pim_routing.Rib.t) ->
  Pim_graph.Topology.node ->
  t
(** [neighbor_rib] is consulted for the DVMRP child check; [Pim_dm] mode
    never calls it. *)

val node : t -> Pim_graph.Topology.node

val fib : t -> Pim_mcast.Fwd.t

val stats : t -> stats

val join_local : t -> Pim_net.Group.t -> unit

val leave_local : t -> Pim_net.Group.t -> unit

val on_local_data : t -> (Pim_net.Packet.t -> unit) -> unit

val send_local_data : t -> group:Pim_net.Group.t -> ?size:int -> unit -> unit

val local_source_addr : t -> Pim_net.Addr.t

val restart : t -> unit
(** Crash-and-reboot: wipe (S,G) entries, prune state, and learned region
    adverts; configured local memberships survive (attached hosts
    re-report).  Data-driven broadcast-and-prune rebuilds forwarding state
    on the next packet; the membership advert is re-originated immediately
    with a higher sequence number. *)

(** {1 Region membership (for dense/sparse border routers)} *)

val region_has_member : t -> Pim_net.Group.t -> bool
(** Any member of the group anywhere in the dense region, as learned from
    membership advertisements plus this router's own members.  Only
    meaningful when [advertise_members] is on. *)

val on_region_change : t -> (Pim_net.Group.t -> bool -> unit) -> unit
(** Fired when a group's region-wide member presence flips (true = first
    member appeared, false = last member gone).  Border routers use this
    to join or leave the external PIM tree on the region's behalf. *)

(** {1 Whole-topology deployment} *)

module Deployment : sig
  type router := t

  type t

  val create_static :
    ?config:config ->
    ?igmp_config:Pim_igmp.Router.config ->
    ?trace:Pim_sim.Trace.t ->
    Pim_sim.Net.t ->
    t

  val router : t -> Pim_graph.Topology.node -> router

  val total_stats : t -> stats

  val total_entries : t -> int
end
