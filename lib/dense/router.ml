module Topology = Pim_graph.Topology
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Fwd = Pim_mcast.Fwd
module Mdata = Pim_mcast.Mdata
module Rib = Pim_routing.Rib

let local_iface = -1

type mode =
  | Dvmrp
  | Pim_dm

type config = {
  mode : mode;
  prune_timeout : float;
  entry_linger : float;
  graft : bool;
  prune_override_delay : float;
  prune_override_window : float;
  prune_rate_limit : float;
  sweep_interval : float;
  advertise_members : bool;
  advert_interval : float;
}

let default_config =
  {
    mode = Dvmrp;
    prune_timeout = 180.;
    entry_linger = 210.;
    graft = false;
    prune_override_delay = 1.;
    prune_override_window = 3.;
    prune_rate_limit = 5.;
    sweep_interval = 20.;
    advertise_members = false;
    advert_interval = 30.;
  }

let fast_config =
  {
    default_config with
    prune_timeout = 18.;
    entry_linger = 21.;
    prune_override_delay = 0.1;
    prune_override_window = 0.3;
    prune_rate_limit = 0.5;
    sweep_interval = 2.;
    advert_interval = 3.;
  }

type stats = {
  mutable data_forwarded : int;
  mutable data_dropped_iif : int;
  mutable data_delivered_local : int;
  mutable prunes_sent : int;
  mutable joins_sent : int;
}

type key = Group.t * Addr.t option

type aux = {
  pruned : (Topology.iface, float) Hashtbl.t;
  last_join : (Topology.iface, float) Hashtbl.t;
  mutable last_prune_up : float;
  mutable pruned_upstream : bool;
  mutable override_pending : bool;
}

module GroupSet = Set.Make (Group)

(* Intra-region membership advertisement (flooded with per-origin sequence
   numbers).  This is the "getting the group member existence information
   to the border routers" mechanism section 4 of the PIM paper says
   dense/sparse interoperation needs: every router in the dense region —
   border routers included — learns whether the region has members. *)
type advert = {
  a_origin : Topology.node;
  a_seq : int;
  a_groups : Group.t list;
}

type Packet.payload += Member_advert of advert

let () =
  Packet.register_printer (function
    | Member_advert a ->
      Some
        (Printf.sprintf "dm-members origin=%d seq=%d (%d groups)" a.a_origin a.a_seq
           (List.length a.a_groups))
    | _ -> None)

type t = {
  node : Topology.node;
  addr : Addr.t;
  net : Net.t;
  eng : Engine.t;
  rib : Rib.t;
  neighbor_rib : Topology.node -> Rib.t;
  cfg : config;
  igmp : Pim_igmp.Router.t;
  fib : Fwd.t;
  trace : Trace.t option;
  auxes : (key, aux) Hashtbl.t;
  stats : stats;
  mutable local_groups : GroupSet.t;
  local_cbs : (Packet.t -> unit) Pim_util.Vec.t;
  mutable local_seq : int;
  region_db : (Topology.node, int * GroupSet.t * float) Hashtbl.t;  (* seq, groups, expiry *)
  mutable advert_seq : int;
  region_cbs : (Group.t -> bool -> unit) Pim_util.Vec.t;
  mutable region_reported : GroupSet.t;  (* presence last told to subscribers *)
}

let node t = t.node

let fib t = t.fib

let stats t = t.stats

let now t = Engine.now t.eng

let tr t tag fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some trc -> Format.kasprintf (fun s -> Trace.log trc ~node:t.node ~tag s) fmt

let ev t event =
  match t.trace with None -> () | Some trc -> Trace.emit trc ~node:t.node event

let route_of_sg g s = { Event.group = Group.to_string g; source = Some (Addr.to_string s) }

let aux t e =
  let k = Fwd.key e in
  match Hashtbl.find_opt t.auxes k with
  | Some a -> a
  | None ->
    let a =
      {
        pruned = Hashtbl.create 4;
        last_join = Hashtbl.create 4;
        last_prune_up = neg_infinity;
        pruned_upstream = false;
        override_pending = false;
      }
    in
    Hashtbl.replace t.auxes k a;
    a

let has_local_members t g =
  GroupSet.mem g t.local_groups || Pim_igmp.Router.member_ifaces t.igmp g <> []

(* DVMRP child check: does some router on this link route toward the
   source through us?  (What poison reverse teaches real DVMRP.) *)
let link_has_child t lid src =
  Topology.others_on_link (Net.topo t.net) lid t.node
  |> List.exists (fun v ->
         Net.node_up t.net v
         &&
         match (t.neighbor_rib v).Rib.next_hop src with
         | Some (vi, next) -> (
           next = t.node
           &&
           match Topology.iface_of_link_opt (Net.topo t.net) v lid with
           | Some i -> i = vi
           | None -> false)
         | None -> false)

(* Truncated reverse-path broadcast: every interface except the incoming
   one, minus leaf subnets without members, minus pruned branches, and in
   DVMRP mode minus links with no child routers. *)
let broadcast_olist t (e : Fwd.entry) ~exclude src g =
  let a = aux t e in
  let n = now t in
  let live_pruned i =
    match Hashtbl.find_opt a.pruned i with Some exp -> exp > n | None -> false
  in
  let topo = Net.topo t.net in
  let wire =
    Array.to_list (Topology.ifaces topo t.node)
    |> List.filter_map (fun (i, lid) ->
           if Some i = e.Fwd.iif || Some i = exclude || live_pruned i then None
           else if not (Net.link_up t.net lid) then None
           else
             let others = Topology.others_on_link topo lid t.node in
             if others = [] then
               (* Leaf subnetwork: truncated broadcast (section 1.1). *)
               if List.mem i (Pim_igmp.Router.member_ifaces t.igmp g) then Some i else None
             else
               match t.cfg.mode with
               | Pim_dm -> Some i
               | Dvmrp -> if link_has_child t lid src then Some i else None)
  in
  if has_local_members t g && GroupSet.mem g t.local_groups then local_iface :: wire else wire

let local_deliver t pkt =
  t.stats.data_delivered_local <- t.stats.data_delivered_local + 1;
  Pim_util.Vec.iter (fun f -> f pkt) t.local_cbs

let forward_data t pkt ~olist =
  match Packet.decr_ttl pkt with
  | None -> ()
  | Some pkt' ->
    List.iter
      (fun i ->
        if i = local_iface then local_deliver t pkt
        else begin
          t.stats.data_forwarded <- t.stats.data_forwarded + 1;
          Net.send t.net t.node ~iface:i pkt'
        end)
      olist

let send_prune_upstream t (e : Fwd.entry) src g =
  if now t -. (aux t e).last_prune_up >= t.cfg.prune_rate_limit then begin
    match t.rib.Rib.next_hop src with
    | None -> ()
    | Some (iface, up) ->
      let a = aux t e in
      a.last_prune_up <- now t;
      a.pruned_upstream <- true;
      t.stats.prunes_sent <- t.stats.prunes_sent + 1;
      ev t (Event.Prune { route = route_of_sg g src; iface });
      let pkt =
        Message.prune_packet ~src:t.addr ~target:(Addr.router up) ~origin:t.node ~source:src
          ~group:g ~holdtime:t.cfg.prune_timeout
      in
      Net.send t.net t.node ~iface pkt
  end

let send_join_upstream t src g =
  match t.rib.Rib.next_hop src with
  | None -> ()
  | Some (iface, up) ->
    t.stats.joins_sent <- t.stats.joins_sent + 1;
    ev t (Event.Graft { route = route_of_sg g src; iface });
    let pkt =
      Message.join_packet ~src:t.addr ~target:(Addr.router up) ~origin:t.node ~source:src
        ~group:g
    in
    Net.send t.net t.node ~iface pkt

let ensure_entry t g src =
  match Fwd.find_sg t.fib g src with
  | Some e ->
    e.Fwd.expires <- Float.max e.Fwd.expires (now t +. t.cfg.entry_linger);
    e
  | None ->
    let iif =
      match Addr.host_router_index src with
      | Some r when r = t.node -> None  (* local source *)
      | _ -> Rib.rpf_iface t.rib src
    in
    let e = Fwd.make_sg ~group:g ~source:src ~iif ~expires:(now t +. t.cfg.entry_linger) () in
    Fwd.insert t.fib e;
    ev t (Event.Entry_install { route = route_of_sg g src });
    e

let handle_data t ~iface pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g ->
    let src = pkt.Packet.src in
    let e = ensure_entry t g src in
    if Some iface <> e.Fwd.iif then begin
      t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1;
      (* PIM dense mode prunes useless parallel paths on point-to-point
         links when packets arrive off the reverse path. *)
      if t.cfg.mode = Pim_dm then begin
        let link = Topology.link_of_iface (Net.topo t.net) t.node iface in
        match Topology.others_on_link (Net.topo t.net) link.Topology.id t.node with
        | [ v ] when not link.Topology.is_lan ->
          let pkt' =
            Message.prune_packet ~src:t.addr ~target:(Addr.router v) ~origin:t.node
              ~source:src ~group:g ~holdtime:t.cfg.prune_timeout
          in
          t.stats.prunes_sent <- t.stats.prunes_sent + 1;
          Net.send t.net t.node ~iface pkt'
        | _ -> ()
      end
    end
    else begin
      let olist = broadcast_olist t e ~exclude:(Some iface) src g in
      forward_data t pkt ~olist;
      if olist = [] && not (has_local_members t g) then send_prune_upstream t e src g
    end

let originate_data t ~incoming pkt =
  match Mdata.group pkt with
  | None -> ()
  | Some g ->
    let src = pkt.Packet.src in
    let e = ensure_entry t g src in
    let olist = broadcast_olist t e ~exclude:incoming src g in
    forward_data t pkt ~olist

(* {1 Prune/Join processing with LAN override (section 3.7)} *)

let lan_with_peers t iface =
  let link = Topology.link_of_iface (Net.topo t.net) t.node iface in
  link.Topology.is_lan
  && List.length (Topology.others_on_link (Net.topo t.net) link.Topology.id t.node) >= 2

let apply_prune t (e : Fwd.entry) ~iface ~holdtime =
  Hashtbl.replace (aux t e).pruned iface (now t +. holdtime)

let handle_prune t ~iface (b : Message.body) =
  match Fwd.find_sg t.fib b.Message.group b.Message.source with
  | None -> ()
  | Some e ->
    if lan_with_peers t iface then begin
      (* Delay the cut so another LAN router can override with a join. *)
      let asked_at = now t in
      ignore
        (Engine.schedule t.eng ~after:t.cfg.prune_override_window (fun () ->
             (* Re-validate on fire: a join heard during the window (or
                state wiped by a reboot) cancels the cut. *)
             match Hashtbl.find_opt (aux t e).last_join iface with
             | Some tj when tj >= asked_at -> ()
             | _ -> apply_prune t e ~iface ~holdtime:b.Message.holdtime))
    end
    else apply_prune t e ~iface ~holdtime:b.Message.holdtime

let handle_join t ~iface (b : Message.body) =
  match Fwd.find_sg t.fib b.Message.group b.Message.source with
  | None -> ()
  | Some e ->
    let a = aux t e in
    Hashtbl.remove a.pruned iface;
    Hashtbl.replace a.last_join iface (now t);
    (* Hop-by-hop graft propagation: if we had pruned ourselves off the
       broadcast tree, rejoin it so the revived branch gets data. *)
    if a.pruned_upstream then begin
      a.pruned_upstream <- false;
      send_join_upstream t b.Message.source b.Message.group
    end

let overhear_prune t ~iface (b : Message.body) =
  if lan_with_peers t iface then begin
    match Fwd.find_sg t.fib b.Message.group b.Message.source with
    | Some e when e.Fwd.iif = Some iface ->
      let interested =
        has_local_members t b.Message.group
        || broadcast_olist t e ~exclude:None b.Message.source b.Message.group <> []
      in
      let a = aux t e in
      if interested && not a.override_pending then begin
        a.override_pending <- true;
        let jitter = 0.5 +. (0.5 *. float_of_int (t.node mod 8) /. 8.) in
        ignore
          (Engine.schedule t.eng ~after:(t.cfg.prune_override_delay *. jitter) (fun () ->
               if a.override_pending then begin
                 a.override_pending <- false;
                 t.stats.joins_sent <- t.stats.joins_sent + 1;
                 tr t "override" "overriding prune for (%s,%s)"
                   (Addr.to_string b.Message.source)
                   (Group.to_string b.Message.group);
                 let pkt =
                   Message.join_packet ~src:t.addr ~target:b.Message.target ~origin:t.node
                     ~source:b.Message.source ~group:b.Message.group
                 in
                 Net.send t.net t.node ~iface pkt
               end))
      end
    | _ -> ()
  end

let overhear_join t ~iface (b : Message.body) =
  ignore iface;
  match Fwd.find_sg t.fib b.Message.group b.Message.source with
  | Some e -> (aux t e).override_pending <- false
  | None -> ()

(* {1 Region membership advertisements (section 4 interoperation)} *)

let region_presence_snapshot t =
  let n = now t in
  let remote =
    Hashtbl.fold
      (fun _ (_, gs, expiry) acc -> if expiry > n then GroupSet.union gs acc else acc)
      t.region_db GroupSet.empty
  in
  let local = GroupSet.union t.local_groups (GroupSet.of_list (Pim_igmp.Router.groups t.igmp)) in
  GroupSet.union remote local

let region_has_member t g = GroupSet.mem g (region_presence_snapshot t)

let on_region_change t f = Pim_util.Vec.push t.region_cbs f

(* Report to subscribers every group whose region-wide presence differs
   from what was last reported.  Presence is time-dependent (adverts
   expire), so this also runs from the periodic sweep. *)
let sync_presence t =
  if Pim_util.Vec.length t.region_cbs > 0 then begin
    let current = region_presence_snapshot t in
    GroupSet.iter
      (fun g ->
        if not (GroupSet.mem g t.region_reported) then
          Pim_util.Vec.iter (fun cb -> cb g true) t.region_cbs)
      current;
    GroupSet.iter
      (fun g ->
        if not (GroupSet.mem g current) then Pim_util.Vec.iter (fun cb -> cb g false) t.region_cbs)
      t.region_reported;
    t.region_reported <- current
  end

let flood_advert t ~except adv =
  Array.iter
    (fun (iface, lid) ->
      if Some iface <> except && Net.link_up t.net lid then begin
        let pkt =
          Packet.unicast ~src:t.addr ~dst:Addr.all_pim_routers
            ~size:(12 + (4 * List.length adv.a_groups))
            (Member_advert adv)
        in
        Net.send t.net t.node ~iface pkt
      end)
    (Topology.ifaces (Net.topo t.net) t.node)

let originate_advert t =
  if t.cfg.advertise_members then begin
    t.advert_seq <- t.advert_seq + 1;
    let groups =
      GroupSet.elements
        (GroupSet.union t.local_groups (GroupSet.of_list (Pim_igmp.Router.groups t.igmp)))
    in
    flood_advert t ~except:None { a_origin = t.node; a_seq = t.advert_seq; a_groups = groups }
  end

let install_advert t ~iface adv =
  if t.cfg.advertise_members && adv.a_origin <> t.node then begin
    let fresher =
      match Hashtbl.find_opt t.region_db adv.a_origin with
      | None -> true
      | Some (seq, _, _) -> adv.a_seq > seq
    in
    if fresher then begin
      Hashtbl.replace t.region_db adv.a_origin
        (adv.a_seq, GroupSet.of_list adv.a_groups, now t +. (3. *. t.cfg.advert_interval));
      sync_presence t;
      flood_advert t ~except:(Some iface) adv
    end
    else
      (* Refresh of the entry we already hold: extend its lifetime. *)
      match Hashtbl.find_opt t.region_db adv.a_origin with
      | Some (seq, gs, _) when seq = adv.a_seq ->
        Hashtbl.replace t.region_db adv.a_origin
          (seq, gs, now t +. (3. *. t.cfg.advert_interval))
      | _ -> ()
  end

(* {1 Membership} *)

let graft_if_needed t g =
  if t.cfg.graft then
    List.iter
      (fun (e : Fwd.entry) ->
        match e.Fwd.source with
        | Some src when (aux t e).pruned_upstream ->
          (aux t e).pruned_upstream <- false;
          send_join_upstream t src g
        | _ -> ())
      (Fwd.group_entries t.fib g)

let join_local t g =
  if not (GroupSet.mem g t.local_groups) then begin
    t.local_groups <- GroupSet.add g t.local_groups;
    sync_presence t;
    originate_advert t;
    graft_if_needed t g
  end

let leave_local t g =
  if GroupSet.mem g t.local_groups then begin
    t.local_groups <- GroupSet.remove g t.local_groups;
    sync_presence t;
    originate_advert t
  end

let on_local_data t f = Pim_util.Vec.push t.local_cbs f

let local_source_addr t = Addr.host ~router:t.node 1

let send_local_data t ~group ?size () =
  let pkt =
    Mdata.make ~src:(local_source_addr t) ~group ~seq:t.local_seq ~sent_at:(now t) ?size ()
  in
  t.local_seq <- t.local_seq + 1;
  originate_data t ~incoming:None pkt

let is_dr t lid =
  Topology.others_on_link (Net.topo t.net) lid t.node
  |> List.for_all (fun v -> (not (Net.node_up t.net v)) || v > t.node)

let is_local_origin t ~iface src =
  match Addr.host_router_index src with
  | None -> false
  | Some r ->
    let link = Topology.link_of_iface (Net.topo t.net) t.node iface in
    link.Topology.is_lan
    && Array.exists (Int.equal r) link.Topology.ends
    && is_dr t link.Topology.id

let sweep t =
  let n = now t in
  List.iter
    (fun (e : Fwd.entry) ->
      let a = aux t e in
      let dead =
        Hashtbl.fold (fun i exp acc -> if exp <= n then i :: acc else acc) a.pruned []
        |> List.sort Int.compare
      in
      List.iter (Hashtbl.remove a.pruned) dead;
      (* A join timestamp can only override prunes whose window is still
         open, i.e. callbacks firing by [tj + prune_override_window];
         strictly past that it is dead soft state. *)
      let stale_joins =
        Hashtbl.fold
          (fun i tj acc ->
            if tj +. t.cfg.prune_override_window < n then i :: acc else acc)
          a.last_join []
        |> List.sort Int.compare
      in
      List.iter (Hashtbl.remove a.last_join) stale_joins;
      if e.Fwd.expires < n then begin
        ev t
          (Event.Entry_expire
             {
               route =
                 {
                   Event.group = Group.to_string e.Fwd.group;
                   source = Option.map Addr.to_string e.Fwd.source;
                 };
             });
        Hashtbl.remove t.auxes (Fwd.key e);
        Fwd.remove t.fib e.Fwd.group e.Fwd.source
      end)
    (Fwd.entries t.fib)

(* Crash-and-reboot: all data-driven state ((S,G) entries, prune state,
   learned region adverts) is lost; configured local memberships survive
   (attached hosts re-report).  Broadcast-and-prune needs no resync
   protocol — the next data packet rebuilds the entry — but the region
   membership advert is re-originated at once so border routers keep an
   accurate view.  [advert_seq] stays monotonic across the reboot,
   otherwise peers would discard the post-reboot adverts as stale. *)
let restart t =
  tr t "restart" "rebooted: forwarding state wiped";
  Fwd.clear t.fib;
  Hashtbl.reset t.auxes;
  Hashtbl.reset t.region_db;
  sync_presence t;
  originate_advert t

let handle_packet t ~iface pkt =
  if not (Pim_igmp.Router.handle_packet t.igmp ~iface pkt) then begin
    match pkt.Packet.payload with
    | Message.Prune b ->
      if Addr.equal b.Message.target t.addr then handle_prune t ~iface b
      else overhear_prune t ~iface b
    | Message.Join b ->
      if Addr.equal b.Message.target t.addr then handle_join t ~iface b
      else overhear_join t ~iface b
    | Member_advert adv -> install_advert t ~iface adv
    | Mdata.Data _ ->
      if is_local_origin t ~iface pkt.Packet.src then originate_data t ~incoming:(Some iface) pkt
      else handle_data t ~iface pkt
    | _ -> ()
  end

let create ?(config = default_config) ?igmp_config ?trace ~net ~rib ~neighbor_rib node =
  let eng = Net.engine net in
  let igmp = Pim_igmp.Router.create ?config:igmp_config net ~node in
  let t =
    {
      node;
      addr = Addr.router node;
      net;
      eng;
      rib;
      neighbor_rib;
      cfg = config;
      igmp;
      fib = Fwd.create ();
      trace;
      auxes = Hashtbl.create 32;
      stats =
        {
          data_forwarded = 0;
          data_dropped_iif = 0;
          data_delivered_local = 0;
          prunes_sent = 0;
          joins_sent = 0;
        };
      local_groups = GroupSet.empty;
      local_cbs = Pim_util.Vec.create ();
      local_seq = 0;
      region_db = Hashtbl.create 16;
      advert_seq = 0;
      region_cbs = Pim_util.Vec.create ();
      region_reported = GroupSet.empty;
    }
  in
  Net.set_handler net node (fun ~iface pkt -> handle_packet t ~iface pkt);
  Pim_igmp.Router.on_join igmp (fun ~iface:_ g ->
      graft_if_needed t g;
      if config.advertise_members then begin
        sync_presence t;
        originate_advert t
      end);
  Pim_igmp.Router.on_leave igmp (fun ~iface:_ _ ->
      if config.advertise_members then begin
        sync_presence t;
        originate_advert t
      end);
  let frac = float_of_int (node mod 16) /. 16. in
  ignore
    (Engine.every eng
       ~start:(config.sweep_interval *. (0.5 +. (0.5 *. frac)))
       ~interval:config.sweep_interval
       (fun () ->
         sweep t;
         (* Expire silent origins' adverts (crashed routers) and report
            any resulting presence flips. *)
         if config.advertise_members then begin
           let n = now t in
           let dead =
             Hashtbl.fold
               (fun o (_, _, exp) acc -> if exp <= n then o :: acc else acc)
               t.region_db []
             |> List.sort Int.compare
           in
           List.iter (Hashtbl.remove t.region_db) dead;
           sync_presence t
         end));
  if config.advertise_members then
    ignore
      (Engine.every eng
         ~start:(0.2 +. (0.05 *. frac))
         ~interval:config.advert_interval
         (fun () -> originate_advert t));
  t

module Deployment = struct
  type router = t

  type nonrec t = {
    routers : router array;
  }

  let create_static ?config ?igmp_config ?trace net =
    let static = Pim_routing.Static.create net in
    let n = Topology.n_nodes (Net.topo net) in
    let routers =
      Array.init n (fun u ->
          create ?config ?igmp_config ?trace ~net ~rib:(Pim_routing.Static.rib static u)
            ~neighbor_rib:(Pim_routing.Static.rib static) u)
    in
    { routers }

  let router t u = t.routers.(u)

  let total_stats t =
    let acc =
      {
        data_forwarded = 0;
        data_dropped_iif = 0;
        data_delivered_local = 0;
        prunes_sent = 0;
        joins_sent = 0;
      }
    in
    Array.iter
      (fun r ->
        acc.data_forwarded <- acc.data_forwarded + r.stats.data_forwarded;
        acc.data_dropped_iif <- acc.data_dropped_iif + r.stats.data_dropped_iif;
        acc.data_delivered_local <- acc.data_delivered_local + r.stats.data_delivered_local;
        acc.prunes_sent <- acc.prunes_sent + r.stats.prunes_sent;
        acc.joins_sent <- acc.joins_sent + r.stats.joins_sent)
      t.routers;
    acc

  let total_entries t =
    Array.fold_left (fun acc r -> acc + Fwd.count r.fib) 0 t.routers
end
