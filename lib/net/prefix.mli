(** Address prefixes (CIDR-style network/length pairs).

    Used by the unicast routing substrates for longest-prefix routes and by
    the aggregation discussion of the paper (section 4): PIM join/prune
    lists may name an aggregate rather than a host route. *)

type t

val make : Addr.t -> int -> t
(** [make addr len] is the prefix of the leading [len] bits of [addr]
    (host bits are zeroed).  [len] must be in [\[0, 32\]]. *)

val network : t -> Addr.t
(** The network address (host bits zero). *)

val length : t -> int
(** The prefix length in bits. *)

val compare : t -> t -> int
(** Total order: by network address, then by length (shorter first). *)

val equal : t -> t -> bool

val contains : t -> Addr.t -> bool
(** [contains p a] is true when [a]'s leading [length p] bits match. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true when every address matched by [q] is matched by
    [p]. *)

val host : Addr.t -> t
(** /32 prefix for a single address. *)

val default : t
(** 0.0.0.0/0. *)

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
