(** Multicast group addresses.

    A group is an address in 224.0.0.0/4 (class D).  The type is distinct
    from {!Addr.t} so that forwarding code cannot confuse a group with a
    unicast source or RP address; explicit conversions are provided. *)

type t

val compare : t -> t -> int
(** Structural order on the underlying address. *)

val equal : t -> t -> bool

val hash : t -> int

val of_addr : Addr.t -> t option
(** [of_addr a] is [Some g] iff [a] is a class-D address. *)

val of_addr_exn : Addr.t -> t
(** @raise Invalid_argument if the address is not multicast. *)

val to_addr : t -> Addr.t
(** The group as a plain address (for packet destinations). *)

val of_index : int -> t
(** [of_index k] is the [k]-th simulated group address (in 225.0.0.0/8,
    avoiding the reserved link-local block 224.0.0.0/24).
    0 <= k < 2^24. *)

val index : t -> int option
(** Inverse of {!of_index}. *)

val of_string : string -> t option

val to_string : t -> string

val pp : Format.formatter -> t -> unit
