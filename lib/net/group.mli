(** Multicast group addresses.

    A group is an address in 224.0.0.0/4 (class D).  The type is distinct
    from {!Addr.t} so that forwarding code cannot confuse a group with a
    unicast source or RP address; explicit conversions are provided. *)

type t

val compare : t -> t -> int
(** Structural order on the underlying address. *)

val equal : t -> t -> bool

val hash : t -> int

val of_addr : Addr.t -> t option
(** [of_addr a] is [Some g] iff [a] is a class-D address. *)

val of_addr_exn : Addr.t -> t
(** @raise Invalid_argument if the address is not multicast. *)

val to_addr : t -> Addr.t
(** The group as a plain address (for packet destinations). *)

val of_index : int -> t
(** [of_index k] is the [k]-th simulated group address (in 225.0.0.0/8,
    avoiding the reserved link-local block 224.0.0.0/24).
    0 <= k < 2^24. *)

val index : t -> int option
(** Inverse of {!of_index}. *)

(** Dense integer ids for groups.

    A simulation touches a tiny, stable set of groups, while group
    addresses are sparse 32-bit values.  An interner assigns each
    distinct group the next id [0, 1, 2, ...] so per-router state can
    live in arrays indexed by group id instead of hash tables keyed by
    address.  Ids are per-interner and follow interning order — they are
    deterministic for a deterministic workload, but not comparable
    across interners. *)
module Interner : sig
  type group = t

  type t

  val create : unit -> t

  val intern : t -> group -> int
  (** The group's id, assigning the next dense id on first sight. *)

  val find : t -> group -> int option
  (** The group's id, or [None] if it was never interned.  Lookup paths
      use this so that probing for an absent group does not grow the
      interner. *)

  val group_of : t -> int -> group
  (** Inverse of {!intern}.
      @raise Invalid_argument on an unassigned id. *)

  val count : t -> int
  (** Number of distinct groups interned (ids are [0 .. count - 1]). *)
end

val of_string : string -> t option

val to_string : t -> string

val pp : Format.formatter -> t -> unit
