(** Simulated packets.

    The payload is an extensible variant: each protocol library adds its own
    constructors (PIM join/prune, IGMP report, DVMRP prune, ...) without
    this module depending on any of them.  Byte sizes are modelled per
    message so bandwidth overhead can be accounted, even though no real
    serialization takes place. *)

type payload = ..
(** Extended by protocol libraries. *)

type payload += Raw of string  (** Opaque application data (tests). *)

type dst =
  | Unicast of Addr.t
  | Multicast of Group.t

type t = {
  src : Addr.t;
  dst : dst;
  ttl : int;
  size : int;  (** modelled size in bytes, headers included *)
  payload : payload;
}

val unicast : src:Addr.t -> dst:Addr.t -> ?ttl:int -> size:int -> payload -> t
(** Build a unicast packet (default [ttl] 64). *)

val multicast : src:Addr.t -> group:Group.t -> ?ttl:int -> size:int -> payload -> t
(** Build a multicast packet addressed to [group] (default [ttl] 64). *)

val decr_ttl : t -> t option
(** [None] when the TTL is exhausted. *)

val register_printer : (payload -> string option) -> unit
(** Protocol libraries register printers for their payload constructors so
    traces stay readable. *)

val payload_to_string : payload -> string
(** Render via the registered printers; the first token is the payload
    kind (e.g. ["data"], ["pim-jp"]), which the packet-capture layer
    keys on. *)

val pp : Format.formatter -> t -> unit
