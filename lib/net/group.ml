type t = Addr.t

let compare = Addr.compare

let equal = Addr.equal

let hash = Addr.hash

let of_addr a = if Addr.is_multicast a then Some a else None

let of_addr_exn a =
  match of_addr a with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Group.of_addr_exn: %s is not multicast" (Addr.to_string a))

let to_addr g = g

let of_index k =
  assert (k >= 0 && k < 1 lsl 24);
  Addr.of_octets 225 ((k lsr 16) land 0xFF) ((k lsr 8) land 0xFF) (k land 0xFF)

let index g =
  let x = Int32.to_int (Addr.to_int32 g) land 0xFFFFFFFF in
  if (x lsr 24) land 0xFF = 225 then Some (x land 0xFFFFFF) else None

module GH = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)

module Interner = struct
  type group = t

  type t = {
    ids : int GH.t;
    mutable groups : group array;
    mutable n : int;
  }

  let create () = { ids = GH.create 64; groups = [||]; n = 0 }

  let count it = it.n

  let find it g = GH.find_opt it.ids g

  let intern it g =
    match GH.find_opt it.ids g with
    | Some id -> id
    | None ->
      let id = it.n in
      if id >= Array.length it.groups then begin
        let cap = Int.max 16 (2 * Array.length it.groups) in
        let a = Array.make cap g in
        Array.blit it.groups 0 a 0 id;
        it.groups <- a
      end;
      it.groups.(id) <- g;
      it.n <- id + 1;
      GH.replace it.ids g id;
      id

  let group_of it id =
    if id < 0 || id >= it.n then invalid_arg "Group.Interner.group_of: unknown id";
    it.groups.(id)
end

let of_string s = Option.bind (Addr.of_string s) of_addr

let to_string = Addr.to_string

let pp = Addr.pp
