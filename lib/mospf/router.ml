module Topology = Pim_graph.Topology
module Spt = Pim_graph.Spt
module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Trace = Pim_sim.Trace
module Event = Pim_sim.Event
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Mdata = Pim_mcast.Mdata

module GroupSet = Set.Make (Group)

type stats = {
  mutable lsa_sent : int;
  mutable spf_runs : int;
  mutable data_forwarded : int;
  mutable data_dropped_iif : int;
  mutable data_dropped_off_tree : int;
  mutable data_delivered_local : int;
}

let fresh_stats () =
  {
    lsa_sent = 0;
    spf_runs = 0;
    data_forwarded = 0;
    data_dropped_iif = 0;
    data_dropped_off_tree = 0;
    data_delivered_local = 0;
  }

type lsa = {
  origin : Topology.node;
  seq : int;
  groups : Group.t list;
}

type Packet.payload += Membership_lsa of lsa

let () =
  Packet.register_printer (function
    | Membership_lsa l ->
      Some (Printf.sprintf "mospf-lsa origin=%d seq=%d (%d groups)" l.origin l.seq (List.length l.groups))
    | _ -> None)

type plan = {
  iif : Topology.iface option;  (** None when this router is the source's first hop *)
  olist : Topology.iface list;
  member_here : bool;
  on_tree : bool;
}

type t = {
  node : Topology.node;
  addr : Addr.t;
  net : Net.t;
  eng : Engine.t;
  trace : Trace.t option;
  lsdb : (Topology.node, int * GroupSet.t) Hashtbl.t;
  cache : (Topology.node * Group.t, plan) Hashtbl.t;
  stats : stats;
  mutable own_seq : int;
  mutable local_groups : GroupSet.t;
  local_cbs : (Packet.t -> unit) Pim_util.Vec.t;
  mutable local_seq : int;
}

let node t = t.node

let stats t = t.stats

let tr t tag fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some trc -> Format.kasprintf (fun s -> Trace.log trc ~node:t.node ~tag s) fmt

let membership_entries t =
  Hashtbl.fold (fun _ (_, gs) acc -> acc + GroupSet.cardinal gs) t.lsdb 0
  + GroupSet.cardinal t.local_groups

let knows_member t u g =
  if u = t.node then GroupSet.mem g t.local_groups
  else
    match Hashtbl.find_opt t.lsdb u with
    | Some (_, gs) -> GroupSet.mem g gs
    | None -> false

let flood t ~except lsa_v =
  Array.iter
    (fun (iface, _) ->
      if Some iface <> except then begin
        t.stats.lsa_sent <- t.stats.lsa_sent + 1;
        let pkt =
          Packet.unicast ~src:t.addr ~dst:Addr.all_pim_routers
            ~size:(12 + (4 * List.length lsa_v.groups))
            (Membership_lsa lsa_v)
        in
        Net.send t.net t.node ~iface pkt
      end)
    (Topology.ifaces (Net.topo t.net) t.node)

let originate_lsa t =
  t.own_seq <- t.own_seq + 1;
  let lsa_v = { origin = t.node; seq = t.own_seq; groups = GroupSet.elements t.local_groups } in
  Hashtbl.reset t.cache;
  flood t ~except:None lsa_v

let install_lsa t ~iface (l : lsa) =
  (* An echo of our own LSA flooded back around a cycle carries nothing we
     don't already know (local_groups is authoritative); installing it
     would leave a stale self-entry in the database after the final
     origination.  Real OSPF likewise special-cases self-originated
     LSAs. *)
  if l.origin <> t.node then begin
    let fresher =
      match Hashtbl.find_opt t.lsdb l.origin with None -> true | Some (seq, _) -> l.seq > seq
    in
    if fresher then begin
      Hashtbl.replace t.lsdb l.origin (l.seq, GroupSet.of_list l.groups);
      Hashtbl.reset t.cache;
      flood t ~except:(Some iface) l
    end
  end

(* Compute this router's part of the source-rooted shortest-path tree to
   the group members — the per-(source, group) Dijkstra MOSPF performs on
   demand ("the processing cost ... performed to compute the delivery
   trees", section 1.1). *)
let compute_plan t src_router g =
  t.stats.spf_runs <- t.stats.spf_runs + 1;
  let topo = Net.topo t.net in
  let usable u v lid =
    Net.link_up t.net lid && Net.node_up t.net u && Net.node_up t.net v
  in
  let tree = Spt.single_source ~usable topo src_router in
  let members =
    List.init (Topology.n_nodes topo) Fun.id
    |> List.filter (fun u -> knows_member t u g)
  in
  let edges = Spt.tree_edges tree ~members in
  let olist =
    List.filter_map
      (fun (p, _, lid) ->
        if p = t.node then Topology.iface_of_link_opt topo t.node lid else None)
      edges
    |> List.sort_uniq Int.compare
  in
  let iif =
    if t.node = src_router then None
    else
      List.find_map
        (fun (_, c, lid) ->
          if c = t.node then Topology.iface_of_link_opt topo t.node lid else None)
        edges
  in
  let member_here = GroupSet.mem g t.local_groups in
  let on_tree = t.node = src_router || iif <> None in
  { iif; olist; member_here; on_tree }

let ev t event =
  match t.trace with None -> () | Some trc -> Trace.emit trc ~node:t.node event

let plan_for t src_router g =
  match Hashtbl.find_opt t.cache (src_router, g) with
  | Some p -> p
  | None ->
    let p = compute_plan t src_router g in
    Hashtbl.replace t.cache (src_router, g) p;
    (* The on-demand Dijkstra result is MOSPF's forwarding state; caching
       it is this protocol's analogue of a PIM entry install. *)
    ev t
      (Event.Entry_install
         {
           route =
             {
               Event.group = Group.to_string g;
               source = Some (Addr.to_string (Addr.router src_router));
             };
         });
    p

let local_deliver t pkt =
  t.stats.data_delivered_local <- t.stats.data_delivered_local + 1;
  (match Mdata.group pkt with
  | Some g ->
    ev t
      (Event.Pkt_deliver
         {
           src = Addr.to_string pkt.Packet.src;
           group = Group.to_string g;
           iface = -1;
         })
  | None -> ());
  Pim_util.Vec.iter (fun f -> f pkt) t.local_cbs

let forward t pkt olist =
  match Packet.decr_ttl pkt with
  | None -> ()
  | Some pkt' ->
    List.iter
      (fun i ->
        t.stats.data_forwarded <- t.stats.data_forwarded + 1;
        Net.send t.net t.node ~iface:i pkt')
      olist

let src_router_of pkt =
  match Addr.router_index pkt.Packet.src with
  | Some r -> Some r
  | None -> Addr.host_router_index pkt.Packet.src

let handle_data t ~iface pkt =
  match (Mdata.group pkt, src_router_of pkt) with
  | Some g, Some src_router ->
    let p = plan_for t src_router g in
    if not p.on_tree then t.stats.data_dropped_off_tree <- t.stats.data_dropped_off_tree + 1
    else if t.node = src_router then begin
      (* First-hop router of the source subnetwork. *)
      forward t pkt p.olist;
      if p.member_here then local_deliver t pkt
    end
    else if p.iif = Some iface then begin
      forward t pkt p.olist;
      if p.member_here then local_deliver t pkt
    end
    else t.stats.data_dropped_iif <- t.stats.data_dropped_iif + 1
  | _ -> ()

let join_local t g =
  if not (GroupSet.mem g t.local_groups) then begin
    t.local_groups <- GroupSet.add g t.local_groups;
    tr t "member" "local member for %s; flooding LSA" (Group.to_string g);
    originate_lsa t
  end

let leave_local t g =
  if GroupSet.mem g t.local_groups then begin
    t.local_groups <- GroupSet.remove g t.local_groups;
    originate_lsa t
  end

let on_local_data t f = Pim_util.Vec.push t.local_cbs f

let local_source_addr t = Addr.host ~router:t.node 1

let send_local_data t ~group ?size () =
  let pkt =
    Mdata.make ~src:(local_source_addr t) ~group ~seq:t.local_seq
      ~sent_at:(Engine.now t.eng) ?size ()
  in
  t.local_seq <- t.local_seq + 1;
  let p = plan_for t t.node group in
  forward t pkt p.olist;
  if p.member_here then local_deliver t pkt

let handle_packet t ~iface pkt =
  match pkt.Packet.payload with
  | Membership_lsa l -> install_lsa t ~iface l
  | Mdata.Data _ -> (
    match src_router_of pkt with
    | Some r when r = t.node -> (
      (* Data from a directly attached host: act as the source's first
         hop. *)
      match Mdata.group pkt with
      | Some g ->
        let p = plan_for t t.node g in
        forward t pkt p.olist;
        if p.member_here then local_deliver t pkt
      | None -> ())
    | _ -> handle_data t ~iface pkt)
  | _ -> ()

(* Crash-and-reboot: the link-state database and forwarding cache are
   lost; local memberships survive (attached hosts re-report).  The own
   LSA is re-originated immediately — with a higher sequence number, so
   neighbours accept it — but other routers' membership is only relearned
   from their next flooded LSA, which is why deployments that exercise
   restarts need [lsa_refresh] (real OSPF re-floods every LSRefreshTime). *)
let restart t =
  tr t "restart" "rebooted: LSDB and forwarding cache wiped";
  Hashtbl.reset t.lsdb;
  Hashtbl.reset t.cache;
  originate_lsa t

let create ?trace ?lsa_refresh ~net node =
  let t =
    {
      node;
      addr = Addr.router node;
      net;
      eng = Net.engine net;
      trace;
      lsdb = Hashtbl.create 32;
      cache = Hashtbl.create 64;
      stats = fresh_stats ();
      own_seq = 0;
      local_groups = GroupSet.empty;
      local_cbs = Pim_util.Vec.create ();
      local_seq = 0;
    }
  in
  Net.set_handler net node (fun ~iface pkt -> handle_packet t ~iface pkt);
  Net.on_link_change net (fun _ _ -> Hashtbl.reset t.cache);
  (match lsa_refresh with
  | None -> ()
  | Some period ->
    if period <= 0. then invalid_arg "Mospf.Router.create: lsa_refresh must be > 0";
    let frac = float_of_int (node mod 16) /. 16. in
    ignore
      (Engine.every t.eng
         ~start:(period *. (0.3 +. (0.5 *. frac)))
         ~interval:period
         (fun () -> if GroupSet.is_empty t.local_groups then () else originate_lsa t)));
  t

module Deployment = struct
  type router = t

  type nonrec t = { routers : router array }

  let create ?trace ?lsa_refresh net =
    let n = Topology.n_nodes (Net.topo net) in
    { routers = Array.init n (fun u -> create ?trace ?lsa_refresh ~net u) }

  let router t u = t.routers.(u)

  let total_stats t =
    let acc = fresh_stats () in
    Array.iter
      (fun r ->
        acc.lsa_sent <- acc.lsa_sent + r.stats.lsa_sent;
        acc.spf_runs <- acc.spf_runs + r.stats.spf_runs;
        acc.data_forwarded <- acc.data_forwarded + r.stats.data_forwarded;
        acc.data_dropped_iif <- acc.data_dropped_iif + r.stats.data_dropped_iif;
        acc.data_dropped_off_tree <- acc.data_dropped_off_tree + r.stats.data_dropped_off_tree;
        acc.data_delivered_local <- acc.data_delivered_local + r.stats.data_delivered_local)
      t.routers;
    acc

  let total_membership_entries t =
    Array.fold_left (fun acc r -> acc + membership_entries r) 0 t.routers
end
