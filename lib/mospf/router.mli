(** MOSPF-style link-state multicast (paper references [3], [7]) — the
    membership-broadcast baseline.

    Group membership is flooded to every router in the domain as
    group-membership LSAs; on receiving a data packet, a router computes
    (and caches) the shortest-path tree from the packet's source subnetwork
    to the group members, then forwards on its downstream tree links.

    The paper names the two costs that stop this design from scaling to
    wide areas, and both are surfaced as counters here: every router
    stores membership for {e every} group in the domain
    ({!membership_entries}), and forwarding cache misses trigger Dijkstra
    runs ({!stats}'s [spf_runs]).

    The SPT is computed over the topology restricted to live links/nodes —
    the converged state link-state routing maintains at every router. *)

type stats = {
  mutable lsa_sent : int;  (** membership-LSA transmissions (flooding) *)
  mutable spf_runs : int;  (** source-tree Dijkstra computations *)
  mutable data_forwarded : int;
  mutable data_dropped_iif : int;
  mutable data_dropped_off_tree : int;
  mutable data_delivered_local : int;
}

type t

val create :
  ?trace:Pim_sim.Trace.t ->
  ?lsa_refresh:float ->
  net:Pim_sim.Net.t ->
  Pim_graph.Topology.node ->
  t
(** [lsa_refresh] enables periodic re-origination of this router's
    membership LSA (real OSPF's LSRefreshTime), off by default.  Without
    it a router that {!restart}s never relearns other routers' membership
    until they next change. *)

val node : t -> Pim_graph.Topology.node

val stats : t -> stats

val membership_entries : t -> int
(** (router, group) membership pairs this router currently stores — the
    per-router state burden of flooded membership. *)

val knows_member : t -> Pim_graph.Topology.node -> Pim_net.Group.t -> bool

val join_local : t -> Pim_net.Group.t -> unit
(** Floods a membership LSA to the whole domain. *)

val leave_local : t -> Pim_net.Group.t -> unit

val on_local_data : t -> (Pim_net.Packet.t -> unit) -> unit

val send_local_data : t -> group:Pim_net.Group.t -> ?size:int -> unit -> unit

val local_source_addr : t -> Pim_net.Addr.t

val restart : t -> unit
(** Crash-and-reboot: wipe the LSDB and forwarding cache; local
    memberships survive and the own LSA is re-flooded at once with a
    higher sequence number.  Other routers' membership is relearned from
    their next (refresh-driven) LSA. *)

module Deployment : sig
  type router := t

  type t

  val create : ?trace:Pim_sim.Trace.t -> ?lsa_refresh:float -> Pim_sim.Net.t -> t

  val router : t -> Pim_graph.Topology.node -> router

  val total_stats : t -> stats

  val total_membership_entries : t -> int
end
