module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group

module GroupSet = Set.Make (Group)

type t = {
  net : Net.t;
  eng : Engine.t;
  addr : Addr.t;
  prng : Pim_util.Prng.t;
  unsolicited : bool;
  rps_for : Group.t -> Addr.t list;
  mutable hid : Net.host_id option;
  mutable groups : GroupSet.t;
  mutable pending : GroupSet.t;  (* reports scheduled but not yet sent *)
  data_cbs : (Packet.t -> unit) Pim_util.Vec.t;
  mutable seq : int;
  mutable sent : int;
}

let send_report t g =
  let pkt = Message.report_packet ~src:t.addr ~group:g ~rps:(t.rps_for g) () in
  match t.hid with Some hid -> Net.host_send t.net hid pkt | None -> ()

let handle_query t (q : Message.query) =
  (* Schedule a randomly delayed report for each joined group the query
     covers; cancel it if we overhear another member's report first. *)
  let covered g =
    match q.Message.group with None -> true | Some qg -> Group.equal qg g
  in
  GroupSet.iter
    (fun g ->
      if covered g && not (GroupSet.mem g t.pending) then begin
        t.pending <- GroupSet.add g t.pending;
        let delay = Pim_util.Prng.float t.prng (max 0.001 q.Message.max_resp) in
        ignore
          (Engine.schedule t.eng ~after:delay (fun () ->
               if GroupSet.mem g t.pending then begin
                 t.pending <- GroupSet.remove g t.pending;
                 if GroupSet.mem g t.groups then send_report t g
               end))
      end)
    t.groups

let handle_packet t pkt =
  match pkt.Packet.payload with
  | Message.Query q -> handle_query t q
  | Message.Report r ->
    (* Report suppression: someone else answered for this group. *)
    t.pending <- GroupSet.remove r.Message.group t.pending
  | Pim_mcast.Mdata.Data _ -> (
    match pkt.Packet.dst with
    | Packet.Multicast g when GroupSet.mem g t.groups ->
      Pim_util.Vec.iter (fun f -> f pkt) t.data_cbs
    | _ -> ())
  | _ -> ()

let create ?seed ?(unsolicited = true) ?(rps_for = fun _ -> []) net ~link ~addr () =
  let seed = Option.value seed ~default:(Addr.hash addr) in
  let t =
    {
      net;
      eng = Net.engine net;
      addr;
      prng = Pim_util.Prng.create seed;
      unsolicited;
      rps_for;
      hid = None;
      groups = GroupSet.empty;
      pending = GroupSet.empty;
      data_cbs = Pim_util.Vec.create ();
      seq = 0;
      sent = 0;
    }
  in
  t.hid <- Some (Net.attach_host net link ~addr (fun pkt -> handle_packet t pkt));
  t

let addr t = t.addr

let join t g =
  if not (GroupSet.mem g t.groups) then begin
    t.groups <- GroupSet.add g t.groups;
    if t.unsolicited then send_report t g
  end

let leave t g = t.groups <- GroupSet.remove g t.groups

let member_of t g = GroupSet.mem g t.groups

let on_data t f = Pim_util.Vec.push t.data_cbs f

let send_data t ~group ?size () =
  let pkt =
    Pim_mcast.Mdata.make ~src:t.addr ~group ~seq:t.seq ~sent_at:(Engine.now t.eng) ?size ()
  in
  t.seq <- t.seq + 1;
  t.sent <- t.sent + 1;
  match t.hid with Some hid -> Net.host_send t.net hid pkt | None -> ()

let sent t = t.sent
