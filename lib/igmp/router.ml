module Net = Pim_sim.Net
module Engine = Pim_sim.Engine
module Topology = Pim_graph.Topology
module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group

type config = {
  query_interval : float;
  max_resp : float;
  robustness : int;
}

let default_config = { query_interval = 60.; max_resp = 10.; robustness = 2 }

type t = {
  net : Net.t;
  eng : Engine.t;
  node : Topology.node;
  cfg : config;
  members : (Topology.iface * Group.t, float) Hashtbl.t;  (* expiry *)
  rp_hints : (Group.t, Addr.t list) Hashtbl.t;
  join_cbs : (iface:Topology.iface -> Group.t -> unit) Pim_util.Vec.t;
  leave_cbs : (iface:Topology.iface -> Group.t -> unit) Pim_util.Vec.t;
}

let hold_time cfg = (float_of_int cfg.robustness *. cfg.query_interval) +. cfg.max_resp

(* Stand-in for the IGMPv2 querier election: the live router with the
   smallest id on the subnet queries. *)
let is_querier t lid =
  let others = Topology.others_on_link (Net.topo t.net) lid t.node in
  List.for_all (fun v -> (not (Net.node_up t.net v)) || v > t.node) others

let send_queries t =
  Array.iter
    (fun (iface, lid) ->
      let link = Topology.link (Net.topo t.net) lid in
      if link.Topology.is_lan && is_querier t lid then begin
        let pkt =
          Message.query_packet ~src:(Addr.router t.node) ~max_resp:t.cfg.max_resp ()
        in
        Net.send t.net t.node ~iface pkt
      end)
    (Topology.ifaces (Net.topo t.net) t.node)

let compare_membership (i, g) (i', g') =
  match Int.compare i i' with 0 -> Group.compare g g' | c -> c

let sweep t =
  let now = Engine.now t.eng in
  let dead =
    Hashtbl.fold (fun k exp acc -> if exp < now then k :: acc else acc) t.members []
    |> List.sort compare_membership
  in
  List.iter
    (fun ((iface, g) as k) ->
      Hashtbl.remove t.members k;
      Pim_util.Vec.iter (fun f -> f ~iface g) t.leave_cbs)
    dead

let handle_report t ~iface (r : Message.report) =
  let g = r.Message.group in
  let fresh = not (Hashtbl.mem t.members (iface, g)) in
  Hashtbl.replace t.members (iface, g) (Engine.now t.eng +. hold_time t.cfg);
  if r.Message.rps <> [] then Hashtbl.replace t.rp_hints g r.Message.rps;
  if fresh then Pim_util.Vec.iter (fun f -> f ~iface g) t.join_cbs

let handle_packet t ~iface pkt =
  match pkt.Packet.payload with
  | Message.Report r ->
    handle_report t ~iface r;
    true
  | Message.Query _ -> true  (* other querier's query: nothing to do *)
  | _ -> false

let create ?(config = default_config) net ~node =
  let t =
    {
      net;
      eng = Net.engine net;
      node;
      cfg = config;
      members = Hashtbl.create 16;
      rp_hints = Hashtbl.create 8;
      join_cbs = Pim_util.Vec.create ();
      leave_cbs = Pim_util.Vec.create ();
    }
  in
  (* First query almost immediately so simulations converge fast; stagger
     by node id to keep runs deterministic but not synchronized. *)
  let start = 0.1 +. (0.001 *. float_of_int node) in
  ignore (Engine.every t.eng ~start ~interval:config.query_interval (fun () -> send_queries t));
  ignore
    (Engine.every t.eng ~start:config.query_interval ~interval:config.query_interval (fun () ->
         sweep t));
  t

let has_member t g = Hashtbl.fold (fun (_, g') _ acc -> acc || Group.equal g g') t.members false

let member_ifaces t g =
  Hashtbl.fold (fun (i, g') _ acc -> if Group.equal g g' then i :: acc else acc) t.members []
  |> List.sort_uniq Int.compare

let groups t =
  Hashtbl.fold (fun (_, g) _ acc -> g :: acc) t.members []
  |> List.sort_uniq Group.compare

let rp_hint t g = Option.value (Hashtbl.find_opt t.rp_hints g) ~default:[]

let on_join t f = Pim_util.Vec.push t.join_cbs f

let on_leave t f = Pim_util.Vec.push t.leave_cbs f
