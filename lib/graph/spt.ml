type tree = {
  src : Topology.node;
  dist : int array;
  parent : Topology.node option array;
  via : Topology.link_id option array;
}

type scratch = {
  s_dist : int array;
  s_parent : Topology.node option array;
  s_via : Topology.link_id option array;
  s_heap : Pim_util.Indexed_heap.t;
}

let make_scratch ~n =
  if n < 0 then invalid_arg "Spt.make_scratch: negative size";
  {
    s_dist = Array.make n max_int;
    s_parent = Array.make n None;
    s_via = Array.make n None;
    s_heap = Pim_util.Indexed_heap.create ~capacity:n;
  }

let scratch_size s = Array.length s.s_dist

(* Dijkstra with an indexed heap: each node is pushed/decreased while grey
   and popped exactly once, so no [done_] marks or lazy deletions are
   needed.  The heap breaks key ties on the node id, which preserves the
   deterministic settle order the lazy-deletion implementation had. *)
let single_source_into ?(usable = fun _ _ _ -> true) scratch topo src =
  let n = Topology.n_nodes topo in
  if scratch_size scratch <> n then
    invalid_arg
      (Printf.sprintf "Spt.single_source_into: scratch for %d nodes, topology has %d"
         (scratch_size scratch) n);
  let dist = scratch.s_dist and parent = scratch.s_parent and via = scratch.s_via in
  let heap = scratch.s_heap in
  Array.fill dist 0 n max_int;
  Array.fill parent 0 n None;
  Array.fill via 0 n None;
  Pim_util.Indexed_heap.clear heap;
  dist.(src) <- 0;
  Pim_util.Indexed_heap.insert heap src ~key:0;
  let rec loop () =
    match Pim_util.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, d) ->
      Array.iter
        (fun (_, lid) ->
          let l = Topology.link topo lid in
          let nd = d + l.Topology.cost in
          (* Iterate the link ends in place rather than via
             [Topology.others_on_link], which allocates a list per edge. *)
          Array.iter
            (fun v ->
              if v <> u && usable u v lid && nd < dist.(v) then begin
                dist.(v) <- nd;
                parent.(v) <- Some u;
                via.(v) <- Some lid;
                Pim_util.Indexed_heap.push heap v ~key:nd
              end)
            l.Topology.ends)
        (Topology.ifaces topo u);
      loop ()
  in
  loop ();
  { src; dist; parent; via }

let single_source ?usable topo src =
  single_source_into ?usable (make_scratch ~n:(Topology.n_nodes topo)) topo src

let distance t v = if t.dist.(v) = max_int then None else Some t.dist.(v)

let path t v =
  if t.dist.(v) = max_int then None
  else begin
    let rec up v acc =
      if v = t.src then v :: acc
      else
        match t.parent.(v) with
        | None -> v :: acc (* v = src handled above; unreachable has no parent *)
        | Some p -> up p (v :: acc)
    in
    Some (up v [])
  end

let first_hop topo t =
  let n = Topology.n_nodes topo in
  let hop = Array.make n None in
  let hop_iface = Array.make n None in
  (* Walk parent pointers once per node, memoizing the answer. *)
  let rec resolve v =
    if v = t.src then None
    else
      match hop.(v) with
      | Some _ as h -> h
      | None -> (
        match t.parent.(v) with
        | None -> None
        | Some p ->
          let answer =
            if p = t.src then begin
              (match t.via.(v) with
              | Some lid -> hop_iface.(v) <- Some (Topology.iface_of_link topo t.src lid)
              | None -> ());
              Some v
            end
            else begin
              let h = resolve p in
              hop_iface.(v) <- hop_iface.(p);
              h
            end
          in
          hop.(v) <- answer;
          answer)
  in
  for v = 0 to n - 1 do
    ignore (resolve v)
  done;
  (hop, hop_iface)

let tree_edges t ~members =
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let rec up v =
    if v <> t.src && not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      match (t.parent.(v), t.via.(v)) with
      | Some p, Some lid ->
        edges := (p, v, lid) :: !edges;
        up p
      | _ -> ()
    end
  in
  List.iter (fun m -> if t.dist.(m) <> max_int then up m) members;
  List.rev !edges

let all_pairs_into scratch topo out =
  let n = Topology.n_nodes topo in
  if Array.length out <> n then invalid_arg "Spt.all_pairs_into: matrix has wrong row count";
  for u = 0 to n - 1 do
    let t = single_source_into scratch topo u in
    if Array.length out.(u) <> n then
      invalid_arg "Spt.all_pairs_into: matrix has wrong column count";
    Array.blit t.dist 0 out.(u) 0 n
  done

let all_pairs topo =
  let n = Topology.n_nodes topo in
  let scratch = make_scratch ~n in
  let out = Array.init n (fun _ -> Array.make n max_int) in
  all_pairs_into scratch topo out;
  out
