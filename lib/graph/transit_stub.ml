module Prng = Pim_util.Prng

type t = {
  topo : Topology.t;
  transit : Topology.node list;
  gateways : Topology.node list;
  stubs : Topology.node list list;
}

let generate ?(transit = 4) ?(stubs_per_transit = 2) ?(stub_size = 4) ?(backbone_cost = 3)
    ?(backbone_delay = 5.) ?(access_cost = 2) ?(access_delay = 3.) ~prng () =
  if transit < 1 || stubs_per_transit < 1 || stub_size < 1 then
    invalid_arg "Transit_stub.generate: sizes must be positive";
  let total = transit + (transit * stubs_per_transit * stub_size) in
  let b = Topology.builder total in
  (* A random chord draw can land on a link that already exists — another
     chord from an earlier draw, a ring edge, or a stub's spanning-tree
     edge.  Track every edge as an unordered pair and skip duplicates, so
     the generated topology is always a simple graph.  A skipped draw
     consumes exactly the numbers it would have anyway, so the PRNG
     stream (and every later stub) is unchanged by the dedup. *)
  let edges = Hashtbl.create (2 * total) in
  let add_edge ?cost ?delay u v =
    let k = if u < v then (u, v) else (v, u) in
    if not (Hashtbl.mem edges k) then begin
      Hashtbl.add edges k ();
      ignore (Topology.add_p2p ?cost ?delay b u v)
    end
  in
  (* Backbone: ring plus a few random chords for path diversity. *)
  let transit_nodes = List.init transit Fun.id in
  if transit > 1 then begin
    for i = 0 to transit - 1 do
      if transit > 2 || i < transit - 1 then
        add_edge ~cost:backbone_cost ~delay:backbone_delay i ((i + 1) mod transit)
    done;
    if transit >= 4 then
      for _ = 1 to transit / 2 do
        let u = Prng.int prng transit and v = Prng.int prng transit in
        (* Ring edges and repeated draws are caught by [add_edge]. *)
        if u <> v then add_edge ~cost:backbone_cost ~delay:backbone_delay u v
      done
  end;
  (* Stub domains: a random connected graph behind one gateway. *)
  let next = ref transit in
  let stubs = ref [] in
  let gateways = ref [] in
  List.iter
    (fun tnode ->
      for _ = 1 to stubs_per_transit do
        let base = !next in
        next := !next + stub_size;
        let members = List.init stub_size (fun k -> base + k) in
        (* Spanning tree inside the stub... *)
        for k = 1 to stub_size - 1 do
          let parent = base + Prng.int prng k in
          add_edge (base + k) parent
        done;
        (* ...plus a chord when the stub is big enough; a draw that lands
           on a spanning-tree edge is dropped rather than doubled. *)
        if stub_size >= 4 then begin
          let u = base + Prng.int prng stub_size and v = base + Prng.int prng stub_size in
          if u <> v then add_edge u v
        end;
        (* Gateway = first router of the stub, attached to its transit. *)
        add_edge ~cost:access_cost ~delay:access_delay base tnode;
        gateways := base :: !gateways;
        stubs := members :: !stubs
      done)
    transit_nodes;
  {
    topo = Topology.freeze b;
    transit = transit_nodes;
    gateways = List.rev !gateways;
    stubs = List.rev !stubs;
  }

let random_stub_member t ~prng =
  let candidates =
    List.concat_map (function _gw :: rest when rest <> [] -> rest | stub -> stub) t.stubs
  in
  let arr = Array.of_list candidates in
  Prng.pick prng arr
