(** Transit-stub topologies: the two-level wide-area structure the paper's
    setting implies (domains attached to an inter-domain backbone, as in
    its Figure 1).

    A backbone ("transit domain") of [transit] routers is wired as a ring
    plus random chords; each transit router attaches [stubs_per_transit]
    stub domains, each a small connected random graph of [stub_size]
    routers reached through one gateway.  Backbone and access links get
    higher cost/delay than intra-stub links, matching the "expensive WAN
    link" discussion of section 4. *)

type t = {
  topo : Topology.t;
  transit : Topology.node list;  (** backbone routers *)
  gateways : Topology.node list;  (** one stub gateway per stub domain *)
  stubs : Topology.node list list;  (** per stub domain, all its routers (gateway first) *)
}

val generate :
  ?transit:int ->
  ?stubs_per_transit:int ->
  ?stub_size:int ->
  ?backbone_cost:int ->
  ?backbone_delay:float ->
  ?access_cost:int ->
  ?access_delay:float ->
  prng:Pim_util.Prng.t ->
  unit ->
  t
(** Defaults: 4 transit routers, 2 stubs each, 4 routers per stub
    (20 nodes total); backbone links cost 3 / delay 5, access links cost
    2 / delay 3, stub links cost 1 / delay 1.

    The result is always a simple graph: chord draws that land on an
    existing link (a ring edge, a spanning-tree edge, or an earlier
    chord) are dropped rather than added as parallel edges.  Generation
    is linear in the number of routers, so multi-thousand-router
    topologies (e.g. [~transit:50 ~stubs_per_transit:3 ~stub_size:13]
    for 2000 routers) are cheap to produce. *)

val random_stub_member : t -> prng:Pim_util.Prng.t -> Topology.node
(** A uniformly chosen non-gateway stub router (where members and sources
    live in wide-area scenarios). *)
