(** Undirected distribution trees over a subset of topology nodes.

    A tree is described by labelled edges (the label is typically the
    topology link id).  The module answers the questions the Figure 2(b)
    traffic-concentration experiment needs: which tree edges does a given
    sender's traffic cover, and what is the tree path between two nodes. *)

type node = Topology.node

type 'label t

val of_edges : n:int -> (node * node * 'label) list -> 'label t
(** [of_edges ~n edges] builds the tree.  [n] is the topology size (node
    ids must be below [n]).  The edge set must be acyclic; nodes absent
    from every edge are simply not on the tree. *)

val mem_node : 'label t -> node -> bool
(** Whether the node lies on the tree (appears in some edge). *)

val n_edges : 'label t -> int

val edges : 'label t -> (node * node * 'label) list
(** The edge list, as given to {!of_edges}. *)

val path : 'label t -> node -> node -> (node list * 'label list) option
(** Unique tree path between two on-tree nodes: the node sequence and the
    labels of traversed edges.  [None] if either endpoint is off-tree or in
    a different component. *)

val path_length : 'label t -> node -> node -> int option
(** Number of edges on the tree path. *)

val covered_labels : 'label t -> src:node -> targets:node list -> 'label list
(** Labels of the edges lying on the union of tree paths from [src] to each
    target — i.e. the links that carry [src]'s traffic when it is
    distributed over this tree to those targets.  Targets equal to [src]
    or off-tree are ignored. *)
