module Tw = Pim_util.Timer_wheel

(* A handle IS the wheel node; its payload is the callback.  One
   allocation per scheduled event, and cancellation is [Tw.cancel] —
   worst-case O(1) slot removal, no tombstones, so [pending] counts only
   live events.

   Cancellation also swaps the payload for [noop]:
   - it drops the callback (and whatever its closure captures) even if
     the caller retains the handle;
   - it lets a recurring timer's tick detect a cancel performed by its
     own action (the node is unlinked during the tick either way, so
     [linked] cannot distinguish the two). *)
type handle = (unit -> unit) Tw.node

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : (unit -> unit) Tw.t;
}

let noop () = ()

let create () = { clock = 0.; seq = 0; queue = Tw.create () }

let now t = t.clock

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let schedule t ~after action =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  Tw.add t.queue ~time:(t.clock +. after) ~seq:(next_seq t) action

let schedule_at t time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Tw.add t.queue ~time ~seq:(next_seq t) action

let every t ?start ~interval action =
  if interval <= 0. then invalid_arg "Engine.every: non-positive interval";
  let first = Option.value start ~default:interval in
  if first < 0. then invalid_arg "Engine.every: negative start";
  let node = ref None in
  let rec tick () =
    action ();
    match !node with
    | Some n
      when Tw.value n == tick (* pimlint: allow H2 — cancel swaps the payload; identity is the test *)
      ->
      (* Not cancelled mid-tick: re-arm in place, reusing the node. *)
      Tw.readd n ~time:(t.clock +. interval) ~seq:(next_seq t)
    | _ -> ()
  in
  let n = Tw.add t.queue ~time:(t.clock +. first) ~seq:(next_seq t) tick in
  node := Some n;
  n

(* True removal: the event leaves its wheel bucket now, not at its fire
   time, so cancelling N timers is O(N) total and leaks nothing. *)
let cancel hdl =
  Tw.cancel hdl;
  Tw.set_value hdl noop

let run ?until t =
  let limit = Option.value until ~default:infinity in
  Tw.drain_until t.queue ~limit (fun node ->
      let time = Tw.time node in
      if time > t.clock then t.clock <- time;
      Tw.value node ());
  if Float.is_finite limit then t.clock <- max t.clock limit

let pending t = Tw.length t.queue
