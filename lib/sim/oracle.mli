(** Global invariant checker for multicast deployments.

    The oracle watches the whole network from outside the protocols: it
    taps {!Net.on_deliver} to verify {b loop freedom} on every probe
    packet as it flows, collects per-probe delivery reports so an
    experiment can assert {b receiver reachability} within a delay
    bound, and accepts protocol-specific state checks ({!run_check}) for
    the invariants only the deployment can phrase — stale oifs, iif/RPF
    consistency, orphaned state.  Violations accumulate with their
    virtual timestamps; a chaos run fails if any are present.

    The oracle is protocol-agnostic: the caller supplies [probe_id] to
    say which packets are probes (e.g. native multicast data but not
    Register/Encap tunnel copies, which legitimately re-traverse
    links). *)

type violation = {
  time : float;  (** virtual time the violation was detected *)
  invariant : string;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t

val create :
  ?max_copies:int ->
  Net.t ->
  probe_id:(Pim_net.Packet.t -> int option) ->
  t
(** Install the on-wire loop-freedom tap: a probe packet traversing any
    single link more than [max_copies] times (default 1 — correct for
    point-to-point topologies, where a tree uses each link once) is a
    violation.  [probe_id] returns a stable identifier (e.g. the data
    sequence number) for packets subject to tracking, [None] for
    everything else. *)

val set_max_copies : t -> int -> unit
(** Adjust the duplication threshold mid-run.  During active churn a
    packet in flight across an RPF change can legitimately cross one
    link twice, so an experiment raises the threshold to catch only
    sustained duplication (a real loop revisits links without bound)
    and restores the strict bound for quiet-period probes. *)

val reset_probes : t -> unit
(** Start a new probe epoch: forget per-probe traversal counts and
    delivery reports (violations are kept).  Call before a measurement
    burst so earlier traffic — including duplicates that are legitimate
    during reconvergence, like SPT-switchover overlap — does not bleed
    into the checked window. *)

val checkpoint : t -> max_copies:int -> unit
(** Begin a quiet-period measurement epoch in one step: restore the
    strict duplication bound [max_copies] and {!reset_probes}.  The
    programmatic form of the chaos harness's checkpoint discipline, used
    by the scenario DSL before each probe window. *)

val note_received : t -> node:Pim_graph.Topology.node -> probe:int -> unit
(** Report that [node]'s local member received probe [probe] (wired to
    the routers' local-data callbacks by the experiment). *)

val received_by : t -> probe:int -> Pim_graph.Topology.node list
(** Nodes that reported the probe, sorted. *)

val record : t -> invariant:string -> string -> unit
(** Record a violation found by the caller. *)

val run_check : t -> invariant:string -> (unit -> string list) -> unit
(** Run a state check returning one detail string per violation found
    (empty list = invariant holds) and record the results. *)

val check_blackhole :
  t -> source:Pim_graph.Topology.node -> members:Pim_graph.Topology.node list -> probes:int list -> unit
(** Record a ["blackhole"] violation for every member that is reachable
    from [source] in the {e live} topology (BFS over up links and nodes)
    yet received none of the probe window [probes].  Weaker than
    per-probe reachability — it fires only when routing state eats an
    entire convergence window — and exactly the complement of the
    loop-freedom tap: one invariant catches packets that multiply, this
    one catches packets that vanish. *)

val violations : t -> violation list
(** All violations in detection order. *)

val pp : Format.formatter -> t -> unit
