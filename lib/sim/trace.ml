type record = {
  time : float;
  node : int;
  tag : string;
  detail : string;
  event : Event.t option;
}

type t = {
  eng : Engine.t;
  mutable enabled : bool;
  mutable entries : record list;  (* reversed *)
}

let create ?(enabled = true) eng = { eng; enabled; entries = [] }

let enable t b = t.enabled <- b

let log t ~node ~tag detail =
  if t.enabled then
    t.entries <- { time = Engine.now t.eng; node; tag; detail; event = None } :: t.entries

let logf t ~node ~tag fmt =
  Format.kasprintf (fun s -> log t ~node ~tag s) fmt

let emit t ~node ev =
  if t.enabled then
    t.entries <-
      {
        time = Engine.now t.eng;
        node;
        tag = Event.tag ev;
        detail = Format.asprintf "%a" Event.pp ev;
        event = Some ev;
      }
      :: t.entries

let records t = List.rev t.entries

let events t =
  List.fold_left
    (fun acc r -> match r.event with Some ev -> (r.time, r.node, ev) :: acc | None -> acc)
    [] t.entries

let count t ~tag =
  List.fold_left (fun acc r -> if String.equal r.tag tag then acc + 1 else acc) 0 t.entries

let find t ~tag = List.filter (fun r -> String.equal r.tag tag) (records t)

let clear t = t.entries <- []

let pp_record ppf r =
  Format.fprintf ppf "%8.3f node=%-3d %-10s %s" r.time r.node r.tag r.detail

let dump ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) (records t)

let record_to_json r =
  match r.event with
  | Some ev -> (
    match Event.to_json ev with
    | Pim_util.Json.Obj fields ->
      Pim_util.Json.Obj (("t", Pim_util.Json.Float r.time) :: ("node", Pim_util.Json.Int r.node) :: fields)
    | j -> j)
  | None ->
    Pim_util.Json.Obj
      [
        ("t", Pim_util.Json.Float r.time);
        ("node", Pim_util.Json.Int r.node);
        ("type", Pim_util.Json.Str "log");
        ("tag", Pim_util.Json.Str r.tag);
        ("detail", Pim_util.Json.Str r.detail);
      ]

let dump_jsonl oc t =
  List.iter
    (fun r -> output_string oc (Pim_util.Json.to_string (record_to_json r) ^ "\n"))
    (records t)
