(** Packet delivery over a topology inside the event loop.

    Routers register one handler; hosts attach to (stub) LANs.  Sending on
    an interface models one link-layer transmission: a point-to-point frame
    reaches the other endpoint, a broadcast/multicast frame on a LAN
    reaches every other router and host on it, and a targeted frame
    ([?to_node]) reaches only the addressed router — the distinction
    section 3.7 of the paper relies on (joins/prunes are multicast on the
    LAN so other routers can overhear and suppress or override).

    Links and nodes can be taken down and up to exercise the soft-state
    repair and RP-failover machinery. *)

type t

type host_id

val create : Engine.t -> Pim_graph.Topology.t -> t

val engine : t -> Engine.t

val topo : t -> Pim_graph.Topology.t

val set_handler : t -> Pim_graph.Topology.node -> (iface:Pim_graph.Topology.iface -> Pim_net.Packet.t -> unit) -> unit
(** Install a packet handler of a router.  Handlers stack: every handler
    receives every packet, in installation order — a unicast routing
    process and a multicast routing process coexist on one node, each
    ignoring the other's payloads (which is how real routers work). *)

val send :
  t -> Pim_graph.Topology.node -> iface:Pim_graph.Topology.iface -> ?to_node:Pim_graph.Topology.node -> Pim_net.Packet.t -> unit
(** Transmit on an interface.  Dropped silently when the sending node or
    the link is down.  Delivery happens after the link's propagation
    delay; receivers whose node went down in the meantime miss the
    packet. *)

val attach_host :
  t -> Pim_graph.Topology.link_id -> addr:Pim_net.Addr.t -> (Pim_net.Packet.t -> unit) -> host_id
(** Attach a host to a LAN (or point-to-point) link; it overhears every
    broadcast frame on that link. *)

val host_send : t -> host_id -> Pim_net.Packet.t -> unit
(** Host transmission: broadcast on the host's link. *)

val host_addr : t -> host_id -> Pim_net.Addr.t

val host_link : t -> host_id -> Pim_graph.Topology.link_id

val set_link_up : t -> Pim_graph.Topology.link_id -> bool -> unit
(** Change link state and notify {!on_link_change} subscribers. *)

val link_up : t -> Pim_graph.Topology.link_id -> bool

val set_node_up : t -> Pim_graph.Topology.node -> bool -> unit
(** A down node neither sends nor receives.  Subscribers are notified for
    each of the node's links (as if they flapped). *)

val node_up : t -> Pim_graph.Topology.node -> bool

val set_loss_rate :
  t -> ?prng:Pim_util.Prng.t -> ?filter:(Pim_net.Packet.t -> bool) -> float -> unit
(** Drop each transmission independently with the given probability
    (0 disables, the default).  Deterministic given the PRNG (a fixed-seed
    one is used when none is supplied).  [filter] (default: every frame)
    selects which packets are subject to loss — experiments drop control
    frames only, the regime soft state is designed to survive: "lost
    packets will be recovered from at the next periodic refresh time"
    (paper section 3.4). *)

val loss_rate : t -> float

val dropped : t -> int
(** Transmissions lost to the configured loss rate so far. *)

val set_jitter : t -> ?prng:Pim_util.Prng.t -> float -> unit
(** Add a uniform extra propagation delay in [0, amplitude) to every
    subsequent transmission (0 disables, the default).  With jitter on,
    two frames sent back-to-back on the same link can genuinely arrive
    out of order — the reordering regime the chaos harness exercises.
    Deterministic given the PRNG (a fixed-seed one is used when none is
    supplied). *)

val jitter : t -> float

type tamper = [ `Drop | `Duplicate | `Delay of float ]
(** A one-shot, message-level fault applied to the next transmission on a
    link: silently discard it, deliver it twice, or hold it back an extra
    [`Delay d] seconds (a one-shot reordering — later frames overtake the
    delayed one).  The search layer's action alphabet, in contrast to the
    probabilistic regimes of {!set_loss_rate} / {!set_jitter}. *)

val tamper_next : t -> Pim_graph.Topology.link_id -> tamper -> unit
(** Arm a one-shot tamper on a link.  Tampers queue in FIFO order: each
    subsequent transmission on the link consumes one.  A [`Drop] counts
    toward {!dropped} and is reported to {!on_drop}; a [`Duplicate] is a
    single offered transmission delivered twice (two traversals). *)

val on_link_change : t -> (Pim_graph.Topology.link_id -> bool -> unit) -> unit
(** Subscribe to link up/down transitions (unicast protocols re-converge,
    PIM re-runs its RPF checks — section 3.8). *)

val on_send : t -> (Pim_graph.Topology.link_id -> Pim_net.Packet.t -> unit) -> unit
(** Observe every transmission accepted onto a link, at send time and
    before the loss roll — the capture layer's view of offered load.
    Together with {!on_deliver} and {!on_drop} every frame's fate is
    observable: sent, then either delivered or dropped. *)

val on_drop : t -> (Pim_graph.Topology.link_id -> Pim_net.Packet.t -> unit) -> unit
(** Observe frames that die in the network: lost to {!set_loss_rate} at
    send time, or in flight on a link that went down (reported at what
    would have been delivery time). *)

val metrics : t -> Pim_util.Metrics.t
(** The network's metrics registry.  [Net] itself maintains the
    [net_offered] / [net_delivered] / [net_dropped] counters; protocol
    routers register their per-node/per-group instruments against the
    same registry, and experiments export it as JSON (see
    EXPERIMENTS.md). *)

val on_deliver : t -> (Pim_graph.Topology.link_id -> Pim_net.Packet.t -> unit) -> unit
(** Observe every completed link traversal (one call per delivered
    transmission, not per receiver, at delivery time) — the hook the
    overhead experiments use to count data and control bandwidth per
    link, and the oracle uses to detect forwarding loops.  Frames lost
    to the loss rate or to a mid-flight link failure are not observed. *)

val traversals : t -> Pim_graph.Topology.link_id -> int
(** Delivered transmissions per link since creation.  A frame lost to
    {!set_loss_rate} or to the link going down while it was in flight is
    not counted — these counters feed the overhead figures, which measure
    bandwidth actually consumed end to end. *)

val total_traversals : t -> int

val offered : t -> int
(** Transmission attempts accepted onto some link (before the loss roll),
    network-wide.  [offered >= total_traversals + dropped]; the remainder
    is frames that died in flight on a link that went down. *)
