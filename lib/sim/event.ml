module Json = Pim_util.Json

type route = {
  group : string;
  source : string option;
}

type t =
  | Join of { route : route; iface : int }
  | Prune of { route : route; iface : int }
  | Graft of { route : route; iface : int }
  | Register of { group : string; source : string }
  | Register_stop of { group : string; source : string }
  | Spt_switch of { group : string; source : string }
  | Assert of { group : string; iface : int; winner : int }
  | Entry_install of { route : route }
  | Entry_expire of { route : route }
  | Pkt_send of { src : string; group : string; iface : int }
  | Pkt_deliver of { src : string; group : string; iface : int }
  | Pkt_drop of { src : string; group : string; iface : int; reason : string }
  | Candidate_rp of { rp : string; priority : int; groups : int }
  | Bsr_elected of { bsr : string; priority : int }
  | Rp_mapping of { group : string; rp : string option }
  | Rp_failover of { group : string; from_rp : string option; to_rp : string }
  | Fault_injected of { action : string }
  | Checkpoint_digest of { digest : string }
  | Window_roll of { index : int; t_start : float; t_end : float }

let tag = function
  | Join _ -> "join"
  | Prune _ -> "prune"
  | Graft _ -> "graft"
  | Register _ -> "register"
  | Register_stop _ -> "register-stop"
  | Spt_switch _ -> "spt-switch"
  | Assert _ -> "assert"
  | Entry_install _ -> "entry-new"
  | Entry_expire _ -> "entry-del"
  | Pkt_send _ -> "fwd"
  | Pkt_deliver _ -> "deliver"
  | Pkt_drop _ -> "drop"
  | Candidate_rp _ -> "crp-advert"
  | Bsr_elected _ -> "bsr-elected"
  | Rp_mapping _ -> "rp-mapping-change"
  | Rp_failover _ -> "rp-failover"
  | Fault_injected _ -> "fault-injected"
  | Checkpoint_digest _ -> "checkpoint-digest"
  | Window_roll _ -> "window-roll"

let route_equal a b =
  String.equal a.group b.group
  &&
  match (a.source, b.source) with
  | None, None -> true
  | Some x, Some y -> String.equal x y
  | _ -> false

let routed_equal ra ia rb ib = route_equal ra rb && Int.equal ia ib

let sg_equal ga sa gb sb = String.equal ga gb && String.equal sa sb

let pkt_equal (sa, ga, ia) (sb, gb, ib) =
  String.equal sa sb && String.equal ga gb && Int.equal ia ib

let equal a b =
  match (a, b) with
  | Join x, Join y -> routed_equal x.route x.iface y.route y.iface
  | Prune x, Prune y -> routed_equal x.route x.iface y.route y.iface
  | Graft x, Graft y -> routed_equal x.route x.iface y.route y.iface
  | Register x, Register y -> sg_equal x.group x.source y.group y.source
  | Register_stop x, Register_stop y -> sg_equal x.group x.source y.group y.source
  | Spt_switch x, Spt_switch y -> sg_equal x.group x.source y.group y.source
  | Assert x, Assert y ->
    String.equal x.group y.group && Int.equal x.iface y.iface && Int.equal x.winner y.winner
  | Entry_install x, Entry_install y -> route_equal x.route y.route
  | Entry_expire x, Entry_expire y -> route_equal x.route y.route
  | Pkt_send x, Pkt_send y -> pkt_equal (x.src, x.group, x.iface) (y.src, y.group, y.iface)
  | Pkt_deliver x, Pkt_deliver y -> pkt_equal (x.src, x.group, x.iface) (y.src, y.group, y.iface)
  | Pkt_drop x, Pkt_drop y ->
    pkt_equal (x.src, x.group, x.iface) (y.src, y.group, y.iface)
    && String.equal x.reason y.reason
  | Candidate_rp x, Candidate_rp y ->
    String.equal x.rp y.rp && Int.equal x.priority y.priority && Int.equal x.groups y.groups
  | Bsr_elected x, Bsr_elected y -> String.equal x.bsr y.bsr && Int.equal x.priority y.priority
  | Rp_mapping x, Rp_mapping y ->
    String.equal x.group y.group && Option.equal String.equal x.rp y.rp
  | Rp_failover x, Rp_failover y ->
    String.equal x.group y.group
    && Option.equal String.equal x.from_rp y.from_rp
    && String.equal x.to_rp y.to_rp
  | Fault_injected x, Fault_injected y -> String.equal x.action y.action
  | Checkpoint_digest x, Checkpoint_digest y -> String.equal x.digest y.digest
  | Window_roll x, Window_roll y ->
    Int.equal x.index y.index
    && Float.equal x.t_start y.t_start
    && Float.equal x.t_end y.t_end
  | ( ( Join _ | Prune _ | Graft _ | Register _ | Register_stop _ | Spt_switch _ | Assert _
      | Entry_install _ | Entry_expire _ | Pkt_send _ | Pkt_deliver _ | Pkt_drop _
      | Candidate_rp _ | Bsr_elected _ | Rp_mapping _ | Rp_failover _ | Fault_injected _
      | Checkpoint_digest _ | Window_roll _ ),
      _ ) ->
    false

let pp_route ppf r =
  match r.source with
  | Some s -> Format.fprintf ppf "(%s, %s)" s r.group
  | None -> Format.fprintf ppf "(*, %s)" r.group

let pp ppf = function
  | Join e -> Format.fprintf ppf "join %a iface %d" pp_route e.route e.iface
  | Prune e -> Format.fprintf ppf "prune %a iface %d" pp_route e.route e.iface
  | Graft e -> Format.fprintf ppf "graft %a iface %d" pp_route e.route e.iface
  | Register e -> Format.fprintf ppf "register (%s, %s)" e.source e.group
  | Register_stop e -> Format.fprintf ppf "register-stop (%s, %s)" e.source e.group
  | Spt_switch e -> Format.fprintf ppf "spt switch (%s, %s)" e.source e.group
  | Assert e -> Format.fprintf ppf "assert %s iface %d winner %d" e.group e.iface e.winner
  (* No keyword prefix: the tag already says install/expire, and tooling
     that keys on the route designator reads the detail verbatim. *)
  | Entry_install e -> Format.fprintf ppf "%a" pp_route e.route
  | Entry_expire e -> Format.fprintf ppf "%a" pp_route e.route
  | Pkt_send e -> Format.fprintf ppf "send (%s, %s) iface %d" e.src e.group e.iface
  | Pkt_deliver e -> Format.fprintf ppf "deliver (%s, %s) iface %d" e.src e.group e.iface
  | Pkt_drop e ->
    Format.fprintf ppf "drop (%s, %s) iface %d: %s" e.src e.group e.iface e.reason
  | Candidate_rp e ->
    Format.fprintf ppf "c-rp %s prio %d %s" e.rp e.priority
      (if e.groups = 0 then "all groups" else Printf.sprintf "%d group(s)" e.groups)
  | Bsr_elected e -> Format.fprintf ppf "bsr %s prio %d" e.bsr e.priority
  | Rp_mapping e ->
    Format.fprintf ppf "%s -> %s" e.group (match e.rp with Some rp -> rp | None -> "(none)")
  | Rp_failover e ->
    Format.fprintf ppf "%s: %s -> %s" e.group
      (match e.from_rp with Some rp -> rp | None -> "(none)")
      e.to_rp
  | Fault_injected e -> Format.fprintf ppf "%s" e.action
  | Checkpoint_digest e -> Format.fprintf ppf "%s" e.digest
  | Window_roll e ->
    Format.fprintf ppf "window %d [%.3f, %.3f)" e.index e.t_start e.t_end

let route_fields r =
  [
    ("group", Json.Str r.group);
    ("source", match r.source with Some s -> Json.Str s | None -> Json.Null);
  ]

let to_json ev =
  let typed name fields = Json.Obj (("type", Json.Str name) :: fields) in
  match ev with
  | Join e -> typed "join" (route_fields e.route @ [ ("iface", Json.Int e.iface) ])
  | Prune e -> typed "prune" (route_fields e.route @ [ ("iface", Json.Int e.iface) ])
  | Graft e -> typed "graft" (route_fields e.route @ [ ("iface", Json.Int e.iface) ])
  | Register e -> typed "register" [ ("group", Json.Str e.group); ("source", Json.Str e.source) ]
  | Register_stop e ->
    typed "register-stop" [ ("group", Json.Str e.group); ("source", Json.Str e.source) ]
  | Spt_switch e ->
    typed "spt-switch" [ ("group", Json.Str e.group); ("source", Json.Str e.source) ]
  | Assert e ->
    typed "assert"
      [ ("group", Json.Str e.group); ("iface", Json.Int e.iface); ("winner", Json.Int e.winner) ]
  | Entry_install e -> typed "entry-install" (route_fields e.route)
  | Entry_expire e -> typed "entry-expire" (route_fields e.route)
  | Pkt_send e ->
    typed "pkt-send"
      [ ("src", Json.Str e.src); ("group", Json.Str e.group); ("iface", Json.Int e.iface) ]
  | Pkt_deliver e ->
    typed "pkt-deliver"
      [ ("src", Json.Str e.src); ("group", Json.Str e.group); ("iface", Json.Int e.iface) ]
  | Pkt_drop e ->
    typed "pkt-drop"
      [
        ("src", Json.Str e.src);
        ("group", Json.Str e.group);
        ("iface", Json.Int e.iface);
        ("reason", Json.Str e.reason);
      ]
  | Candidate_rp e ->
    typed "crp-advert"
      [ ("rp", Json.Str e.rp); ("priority", Json.Int e.priority); ("groups", Json.Int e.groups) ]
  | Bsr_elected e -> typed "bsr-elected" [ ("bsr", Json.Str e.bsr); ("priority", Json.Int e.priority) ]
  | Rp_mapping e ->
    typed "rp-mapping-change"
      [
        ("group", Json.Str e.group);
        ("rp", match e.rp with Some rp -> Json.Str rp | None -> Json.Null);
      ]
  | Rp_failover e ->
    typed "rp-failover"
      [
        ("group", Json.Str e.group);
        ("from", match e.from_rp with Some rp -> Json.Str rp | None -> Json.Null);
        ("to", Json.Str e.to_rp);
      ]
  | Fault_injected e -> typed "fault-injected" [ ("action", Json.Str e.action) ]
  | Checkpoint_digest e -> typed "checkpoint-digest" [ ("digest", Json.Str e.digest) ]
  | Window_roll e ->
    typed "window-roll"
      [
        ("index", Json.Int e.index);
        ("t_start", Json.Float e.t_start);
        ("t_end", Json.Float e.t_end);
      ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let int_field j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer field %S" name)

let float_field j name =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-number field %S" name)

let opt_str_field j name =
  match Json.member name j with
  | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | _ -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let route_of j =
  let* group = str_field j "group" in
  match Json.member "source" j with
  | Some Json.Null -> Ok { group; source = None }
  | Some (Json.Str s) -> Ok { group; source = Some s }
  | _ -> Error "missing or ill-typed field \"source\""

let of_json j =
  let* ty = str_field j "type" in
  match ty with
  | "join" | "prune" | "graft" ->
    let* route = route_of j in
    let* iface = int_field j "iface" in
    Ok
      (match ty with
      | "join" -> Join { route; iface }
      | "prune" -> Prune { route; iface }
      | _ -> Graft { route; iface })
  | "register" | "register-stop" | "spt-switch" ->
    let* group = str_field j "group" in
    let* source = str_field j "source" in
    Ok
      (match ty with
      | "register" -> Register { group; source }
      | "register-stop" -> Register_stop { group; source }
      | _ -> Spt_switch { group; source })
  | "assert" ->
    let* group = str_field j "group" in
    let* iface = int_field j "iface" in
    let* winner = int_field j "winner" in
    Ok (Assert { group; iface; winner })
  | "entry-install" | "entry-expire" ->
    let* route = route_of j in
    Ok (if String.equal ty "entry-install" then Entry_install { route } else Entry_expire { route })
  | "pkt-send" | "pkt-deliver" ->
    let* src = str_field j "src" in
    let* group = str_field j "group" in
    let* iface = int_field j "iface" in
    Ok
      (if String.equal ty "pkt-send" then Pkt_send { src; group; iface }
       else Pkt_deliver { src; group; iface })
  | "pkt-drop" ->
    let* src = str_field j "src" in
    let* group = str_field j "group" in
    let* iface = int_field j "iface" in
    let* reason = str_field j "reason" in
    Ok (Pkt_drop { src; group; iface; reason })
  | "crp-advert" ->
    let* rp = str_field j "rp" in
    let* priority = int_field j "priority" in
    let* groups = int_field j "groups" in
    Ok (Candidate_rp { rp; priority; groups })
  | "bsr-elected" ->
    let* bsr = str_field j "bsr" in
    let* priority = int_field j "priority" in
    Ok (Bsr_elected { bsr; priority })
  | "rp-mapping-change" ->
    let* group = str_field j "group" in
    let* rp = opt_str_field j "rp" in
    Ok (Rp_mapping { group; rp })
  | "rp-failover" ->
    let* group = str_field j "group" in
    let* from_rp = opt_str_field j "from" in
    let* to_rp = str_field j "to" in
    Ok (Rp_failover { group; from_rp; to_rp })
  | "fault-injected" ->
    let* action = str_field j "action" in
    Ok (Fault_injected { action })
  | "checkpoint-digest" ->
    let* digest = str_field j "digest" in
    Ok (Checkpoint_digest { digest })
  | "window-roll" ->
    let* index = int_field j "index" in
    let* t_start = float_field j "t_start" in
    let* t_end = float_field j "t_end" in
    Ok (Window_roll { index; t_start; t_end })
  | other -> Error (Printf.sprintf "unknown event type %S" other)
