(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock.  Events scheduled for
    the same instant run in scheduling order (a monotonically increasing
    sequence number breaks ties), which keeps every run deterministic.

    The paper's soft-state machinery — periodic Join/Prune refresh, oif
    timers, RP-reachability timers (sections 3.4, 3.6, 3.9) — is built on
    {!schedule} and {!every}.

    The queue is a calendar-queue timer wheel ({!Pim_util.Timer_wheel}):
    schedule, fire and {!cancel} are all amortized O(1), and cancellation
    removes the event from its wheel slot immediately rather than leaving
    a tombstone until its fire time. *)

type t

type handle
(** A cancellable reference to a scheduled event (or recurring timer). *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> after:float -> (unit -> unit) -> handle
(** Run a callback [after] seconds from now ([after >= 0]). *)

val schedule_at : t -> float -> (unit -> unit) -> handle
(** Run a callback at an absolute time (not earlier than [now]). *)

val every : t -> ?start:float -> interval:float -> (unit -> unit) -> handle
(** Recurring timer: first fires after [start] (default [interval]) and then
    every [interval] seconds until cancelled. *)

val cancel : handle -> unit
(** Remove the event from the queue in O(1).  Cancelling an already-fired
    one-shot event (or cancelling twice) is a no-op. *)

val run : ?until:float -> t -> unit
(** Process events in time order.  Stops when the queue empties, or, when
    [until] is given, once the clock would pass it (the clock is then set
    to [until]; pending recurring timers remain scheduled). *)

val pending : t -> int
(** Number of live queued events.  Cancelled events leave the queue
    immediately and are never counted. *)
