(** Timestamped event trace.

    Protocols append records; examples print them, tests assert on them.
    A record is either a free-form string ({!log} / {!logf}) or the
    rendering of a typed {!Event.t} ({!emit}) — in the latter case the
    original event rides along in the [event] field, so tooling can
    consume the structured form while humans keep reading the same text.
    Disabled traces cost one branch per call. *)

type t

type record = {
  time : float;
  node : int;  (** router node, or -1 for hosts/global events *)
  tag : string;  (** short event class, e.g. "join", "prune", "register" *)
  detail : string;
  event : Event.t option;
      (** the typed event this record renders, when it came from {!emit} *)
}

val create : ?enabled:bool -> Engine.t -> t

val enable : t -> bool -> unit

val log : t -> node:int -> tag:string -> string -> unit

val logf : t -> node:int -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val emit : t -> node:int -> Event.t -> unit
(** Append a typed event; its tag and detail are derived via {!Event.tag}
    and {!Event.pp}, so string-based assertions keep working. *)

val records : t -> record list
(** In chronological (append) order. *)

val events : t -> (float * int * Event.t) list
(** Just the typed records, as [(time, node, event)], chronological. *)

val count : t -> tag:string -> int

val find : t -> tag:string -> record list

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit

val dump : Format.formatter -> t -> unit

val record_to_json : record -> Pim_util.Json.t
(** Typed records serialize via {!Event.to_json} with ["t"]/["node"]
    prepended; plain string records get [{"type": "log", ...}]. *)

val dump_jsonl : out_channel -> t -> unit
(** One compact JSON object per line, chronological. *)
