(** Packet-level capture ("pcap" for the simulator).

    Attached to a {!Net}, a capture records every frame's life on every
    link: one [`Send] entry when a transmission is accepted, then either a
    [`Deliver] entry when propagation completes or a [`Drop] entry when
    the frame dies (loss rate, or the link failed mid-flight).  Entries
    carry the virtual timestamp, the link and its endpoints, and a packet
    summary (source, destination, modelled size, and the payload's
    registered printer output), so a capture can be filtered by node,
    group, payload kind, or time window, and two captures can be diffed —
    the workflow [pimsim trace] exposes on the command line.

    Captures serialize to JSONL (one entry per line, chronological).
    Under a fixed seed the simulator is deterministic, so two runs of the
    same scenario produce byte-identical capture files; this is part of
    the reproducibility contract (EXPERIMENTS.md). *)

type phase = [ `Send | `Deliver | `Drop ]

type entry = {
  time : float;
  phase : phase;
  link : int;
  node_a : int;  (** lower-numbered link endpoint *)
  node_b : int;  (** higher-numbered link endpoint *)
  src : string;
  dst : string;  (** group address for multicast, unicast address otherwise *)
  kind : string;  (** first token of the payload summary, e.g. ["data"] *)
  info : string;  (** full payload summary, e.g. ["data seq=22"] *)
  size : int;
}

type t

val attach : Net.t -> t
(** Subscribe to the network's send/deliver/drop hooks and start
    recording.  Multiple captures on one net are independent. *)

val entries : t -> entry list
(** Chronological. *)

val clear : t -> unit

val filter :
  ?node:int ->
  ?group:string ->
  ?kind:string ->
  ?phase:phase ->
  ?t_min:float ->
  ?t_max:float ->
  entry list ->
  entry list
(** Keep entries matching every given criterion: [node] matches either
    link endpoint, [group] the destination, [kind] the payload class,
    and [t_min]/[t_max] an inclusive time window. *)

val entry_to_json : entry -> Pim_util.Json.t

val entry_of_json : Pim_util.Json.t -> (entry, string) result

val save : string -> entry list -> unit
(** Write JSONL (one compact object per line). *)

val load : string -> (entry list, string) result
(** Parse a JSONL capture file; the error names the offending line. *)

val diff : entry list -> entry list -> entry list * entry list
(** [diff a b] is [(only_in_a, only_in_b)] as multisets: entries are
    matched by full structural equality, and an entry appearing [n] times
    in [a] but [m < n] times in [b] contributes [n - m] copies to
    [only_in_a].  Order within each result follows the first argument's
    (respectively second argument's) order. *)

val pp_entry : Format.formatter -> entry -> unit
