module Packet = Pim_net.Packet
module Topology = Pim_graph.Topology
module Vec = Pim_util.Vec

type host_id = int

type host = {
  hlink : Topology.link_id;
  haddr : Pim_net.Addr.t;
  hrecv : Packet.t -> unit;
}

(* A frame queued on a link, waiting out the propagation delay. *)
type pending = {
  deadline : float;
  pkt : Packet.t;
  p_from : int option;
  p_to : int option;
}

type tamper = [ `Drop | `Duplicate | `Delay of float ]

type t = {
  eng : Engine.t;
  topo : Topology.t;
  handlers : (iface:Topology.iface -> Packet.t -> unit) Vec.t array;
  link_state : bool array;
  node_state : bool array;
  mutable hosts : host array;
  link_subs : (Topology.link_id -> bool -> unit) Vec.t;
  deliver_subs : (Topology.link_id -> Packet.t -> unit) Vec.t;
  send_subs : (Topology.link_id -> Packet.t -> unit) Vec.t;
  drop_subs : (Topology.link_id -> Packet.t -> unit) Vec.t;
  metrics : Pim_util.Metrics.t;
  m_offered : Pim_util.Metrics.counter;
  m_delivered : Pim_util.Metrics.counter;
  m_dropped : Pim_util.Metrics.counter;
  counts : int array;
  queues : pending Queue.t array;
  armed : bool array;
  tampers : tamper Queue.t array;
  mutable offered : int;
  mutable loss_rate : float;
  mutable loss_prng : Pim_util.Prng.t;
  mutable loss_filter : Packet.t -> bool;
  mutable dropped : int;
  mutable jitter : float;
  mutable jitter_prng : Pim_util.Prng.t;
}

let create eng topo =
  let metrics = Pim_util.Metrics.create () in
  {
    eng;
    topo;
    handlers = Array.init (Topology.n_nodes topo) (fun _ -> Vec.create ());
    link_state = Array.make (Topology.n_links topo) true;
    node_state = Array.make (Topology.n_nodes topo) true;
    hosts = [||];
    link_subs = Vec.create ();
    deliver_subs = Vec.create ();
    send_subs = Vec.create ();
    drop_subs = Vec.create ();
    metrics;
    m_offered = Pim_util.Metrics.counter metrics "net_offered";
    m_delivered = Pim_util.Metrics.counter metrics "net_delivered";
    m_dropped = Pim_util.Metrics.counter metrics "net_dropped";
    counts = Array.make (Topology.n_links topo) 0;
    queues = Array.init (Topology.n_links topo) (fun _ -> Queue.create ());
    armed = Array.make (Topology.n_links topo) false;
    tampers = Array.init (Topology.n_links topo) (fun _ -> Queue.create ());
    offered = 0;
    loss_rate = 0.;
    loss_prng = Pim_util.Prng.create 0x10ad;
    loss_filter = (fun _ -> true);
    dropped = 0;
    jitter = 0.;
    jitter_prng = Pim_util.Prng.create 0x317e;
  }

let engine t = t.eng

let topo t = t.topo

let set_handler t u h = Vec.push t.handlers.(u) h

let link_up t lid = t.link_state.(lid)

let node_up t u = t.node_state.(u)

let notify_link t lid up = Vec.iter (fun f -> f lid up) t.link_subs

let set_link_up t lid up =
  if t.link_state.(lid) <> up then begin
    t.link_state.(lid) <- up;
    notify_link t lid up
  end

let set_node_up t u up =
  if t.node_state.(u) <> up then begin
    t.node_state.(u) <- up;
    (* Neighbors perceive the node's links flapping. *)
    Array.iter (fun (_, lid) -> if t.link_state.(lid) then notify_link t lid up) (Topology.ifaces t.topo u)
  end

let on_link_change t f = Vec.push t.link_subs f

let on_deliver t f = Vec.push t.deliver_subs f

let on_send t f = Vec.push t.send_subs f

let on_drop t f = Vec.push t.drop_subs f

let metrics t = t.metrics

let traversals t lid = t.counts.(lid)

let total_traversals t = Array.fold_left ( + ) 0 t.counts

let offered t = t.offered

let hosts_on_link t lid =
  Array.to_list t.hosts |> List.filter (fun h -> h.hlink = lid)

let set_loss_rate t ?prng ?(filter = fun _ -> true) rate =
  if rate < 0. || rate >= 1. then invalid_arg "Net.set_loss_rate: rate must be in [0, 1)";
  t.loss_rate <- rate;
  t.loss_filter <- filter;
  (match prng with Some p -> t.loss_prng <- p | None -> ())

let loss_rate t = t.loss_rate

let dropped t = t.dropped

let set_jitter t ?prng amplitude =
  if amplitude < 0. then invalid_arg "Net.set_jitter: amplitude must be >= 0";
  t.jitter <- amplitude;
  (match prng with Some p -> t.jitter_prng <- p | None -> ())

let jitter t = t.jitter

(* Propagation complete: hand the frame to routers/hosts on the link. *)
let deliver_one t lid ~from_node ~to_node pkt =
  (* The frame only counts as a traversal if the link is still up when
     propagation completes — a frame in flight on a link that died is
     lost, and must not inflate the overhead metrics. *)
  if not t.link_state.(lid) then begin
    Pim_util.Metrics.incr t.m_dropped;
    Vec.iter (fun f -> f lid pkt) t.drop_subs
  end
  else begin
    let link = Topology.link t.topo lid in
    t.counts.(lid) <- t.counts.(lid) + 1;
    Pim_util.Metrics.incr t.m_delivered;
    Vec.iter (fun f -> f lid pkt) t.deliver_subs;
    let routers =
      match to_node with
      | Some v -> if Array.exists (Int.equal v) link.Topology.ends then [ v ] else []
      | None -> (
        match from_node with
        | Some u -> Topology.others_on_link t.topo lid u
        | None -> Array.to_list link.Topology.ends)
    in
    List.iter
      (fun v ->
        if t.node_state.(v) then
          let iface = Topology.iface_of_link t.topo v lid in
          Vec.iter (fun h -> h ~iface pkt) t.handlers.(v))
      routers;
    (* Hosts only overhear broadcast frames; a host never hears its own
       transmission. *)
    if to_node = None then begin
      let from_host h =
        match from_node with
        | None -> Pim_net.Addr.equal h.haddr pkt.Packet.src
        | Some _ -> false
      in
      List.iter (fun h -> if not (from_host h) then h.hrecv pkt) (hosts_on_link t lid)
    end
  end

(* Deliver every queued frame that is due, then re-arm one timer for the
   head of what remains.  Per-link deadlines are monotone (fixed link
   delay, non-decreasing clock), so the FIFO queue is in deadline order
   and frames sharing a deadline are contiguous: the whole same-instant
   burst costs one engine event instead of one per packet. *)
let rec flush t lid =
  let q = t.queues.(lid) in
  let now = Engine.now t.eng in
  let rec go () =
    match Queue.peek_opt q with
    | Some it when it.deadline <= now ->
      ignore (Queue.pop q);
      deliver_one t lid ~from_node:it.p_from ~to_node:it.p_to it.pkt;
      go ()
    | _ -> ()
  in
  go ();
  match Queue.peek_opt q with
  | Some it -> ignore (Engine.schedule_at t.eng it.deadline (fun () -> flush t lid))
  | None -> t.armed.(lid) <- false

(* Normal propagation path: per-frame timer under jitter, otherwise the
   batched per-link FIFO (deadlines are monotone, so the queue stays in
   deadline order). *)
let propagate t ~from_node ~lid ~to_node pkt =
  let link = Topology.link t.topo lid in
  if t.jitter > 0. then begin
    (* Jitter gives every frame its own deadline: per-frame timer. *)
    let delay = link.Topology.delay +. Pim_util.Prng.float t.jitter_prng t.jitter in
    ignore
      (Engine.schedule t.eng ~after:delay (fun () ->
           deliver_one t lid ~from_node ~to_node pkt))
  end
  else begin
    let deadline = Engine.now t.eng +. link.Topology.delay in
    Queue.push { deadline; pkt; p_from = from_node; p_to = to_node } t.queues.(lid);
    if not t.armed.(lid) then begin
      t.armed.(lid) <- true;
      ignore (Engine.schedule_at t.eng deadline (fun () -> flush t lid))
    end
  end

let tamper_next t lid action = Queue.push action t.tampers.(lid)

let transmit t ~from_node ~lid ~to_node pkt =
  t.offered <- t.offered + 1;
  Pim_util.Metrics.incr t.m_offered;
  Vec.iter (fun f -> f lid pkt) t.send_subs;
  match Queue.take_opt t.tampers.(lid) with
  | Some `Drop ->
    t.dropped <- t.dropped + 1;
    Pim_util.Metrics.incr t.m_dropped;
    Vec.iter (fun f -> f lid pkt) t.drop_subs
  | Some (`Delay extra) ->
    (* Deliberately bypass the FIFO so later frames can overtake: a
       one-shot reordering.  Per-frame timer, like the jitter path, to
       preserve the queue's monotone-deadline invariant. *)
    let link = Topology.link t.topo lid in
    ignore
      (Engine.schedule t.eng ~after:(link.Topology.delay +. extra) (fun () ->
           deliver_one t lid ~from_node ~to_node pkt))
  | (Some `Duplicate | None) as tampered ->
    let duplicate = match tampered with Some `Duplicate -> true | _ -> false in
    if t.loss_rate > 0. && t.loss_filter pkt
       && Pim_util.Prng.float t.loss_prng 1.0 < t.loss_rate
    then begin
      t.dropped <- t.dropped + 1;
      Pim_util.Metrics.incr t.m_dropped;
      Vec.iter (fun f -> f lid pkt) t.drop_subs
    end
    else begin
      propagate t ~from_node ~lid ~to_node pkt;
      if duplicate then propagate t ~from_node ~lid ~to_node pkt
    end

let send t u ~iface ?to_node pkt =
  if t.node_state.(u) then begin
    let link = Topology.link_of_iface t.topo u iface in
    if t.link_state.(link.Topology.id) then
      transmit t ~from_node:(Some u) ~lid:link.Topology.id ~to_node pkt
  end

let attach_host t lid ~addr recv =
  let h = { hlink = lid; haddr = addr; hrecv = recv } in
  t.hosts <- Array.append t.hosts [| h |];
  Array.length t.hosts - 1

let host_send t hid pkt =
  let h = t.hosts.(hid) in
  if t.link_state.(h.hlink) then transmit t ~from_node:None ~lid:h.hlink ~to_node:None pkt

let host_addr t hid = t.hosts.(hid).haddr

let host_link t hid = t.hosts.(hid).hlink
