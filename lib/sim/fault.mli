(** Deterministic fault injection driving {!Net}.

    A schedule is a list of timestamped actions — scripted by a test, or
    drawn from a seeded PRNG with {!random_schedule} — that the scheduler
    replays through the event engine: link flaps, node crash/restart,
    partition/heal, loss bursts, and delay-jitter bursts.  Replaying the
    same schedule against deployments of different protocols is how the
    chaos experiment compares their reconvergence behaviour under
    identical stress (the systematic fault-injection methodology of
    Helmy/Estrin/Gupta, arXiv cs/0007005).

    Every composite action restores what it broke: flapped links come
    back, crashed nodes restart (via the [restart] callback, which wipes
    the router's state — see e.g. [Pim_core.Router.restart]), partitions
    heal, and loss/jitter bursts end.  A {!random_schedule} additionally
    guarantees all restorations land before its [until], so a
    post-schedule checkpoint observes the intact topology. *)

type action =
  | Link_down of Pim_graph.Topology.link_id
  | Link_up of Pim_graph.Topology.link_id
  | Link_flap of Pim_graph.Topology.link_id * float  (** down, restored after the duration *)
  | Node_crash of Pim_graph.Topology.node * float
      (** node down for the duration, then brought up and [restart]ed *)
  | Partition of Pim_graph.Topology.node list
      (** cut every up link between the set and the rest of the network *)
  | Heal  (** restore all links cut by partitions so far *)
  | Loss_burst of float * float  (** loss rate applied for the duration *)
  | Jitter_burst of float * float  (** delay-jitter amplitude applied for the duration *)
  | Drop_next of Pim_graph.Topology.link_id
      (** one-shot: discard the next frame transmitted on the link *)
  | Duplicate_next of Pim_graph.Topology.link_id
      (** one-shot: deliver the next frame on the link twice *)
  | Delay_next of Pim_graph.Topology.link_id * float
      (** one-shot: hold the next frame back by the extra delay, letting
          later frames overtake it (a single targeted reordering) *)

type event = { at : float;  (** absolute virtual time *) action : action }

val pp_action : Format.formatter -> action -> unit

val pp_event : Format.formatter -> event -> unit

type t

val install : ?restart:(Pim_graph.Topology.node -> unit) -> Net.t -> event list -> t
(** Schedule every event on the net's engine ([at] must not be in the
    past).  [restart] is invoked when a crashed node comes back up —
    wire it to the deployment's router-restart so the node reboots with
    wiped state rather than resuming with stale state. *)

val apply : t -> action -> unit
(** Apply one action immediately (at the engine's current time), with the
    same bookkeeping as a scheduled event — partition links are remembered
    for [Heal], restorations are logged.  The scenario DSL drives faults
    through this instead of a precomputed schedule. *)

val log : t -> (float * string) list
(** Human-readable record of every applied action and restoration, in
    time order — printed when a run fails so the seed can be replayed
    and understood. *)

val random_schedule :
  prng:Pim_util.Prng.t ->
  topo:Pim_graph.Topology.t ->
  start:float ->
  until:float ->
  ?protected:Pim_graph.Topology.node list ->
  ?events:int ->
  ?mean_outage:float ->
  unit ->
  event list
(** Draw [events] faults uniformly over [\[start, until)], weighted
    toward link flaps and node crashes with occasional loss bursts,
    jitter bursts, and single-node partitions.  [protected] nodes are
    never crashed or partitioned off (the experiment's receivers and
    source must survive to measure delivery).  Outage durations average
    [mean_outage] (default 8 s) and are clamped so everything heals
    before [until]. *)

val targeted_schedule :
  prng:Pim_util.Prng.t ->
  targets:Pim_graph.Topology.node list ->
  start:float ->
  until:float ->
  ?events:int ->
  ?mean_outage:float ->
  unit ->
  event list
(** Faults aimed at [targets] (the chaos harness passes the elected RPs):
    alternating crash/restart and brief single-node isolation, cycling
    through the list, one fault per successive time window so partitions
    never overlap.  [events] defaults to 4; durations and healing behave
    as in {!random_schedule}. *)
