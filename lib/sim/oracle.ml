module Packet = Pim_net.Packet
module Topology = Pim_graph.Topology

type violation = {
  time : float;
  invariant : string;
  detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "t=%.2f [%s] %s" v.time v.invariant v.detail

type t = {
  net : Net.t;
  probe_id : Packet.t -> int option;
  mutable max_copies : int;
  copies : (int * Topology.link_id, int) Hashtbl.t;
  received : (int, (Topology.node, unit) Hashtbl.t) Hashtbl.t;
  mutable violations : violation list;  (* newest first *)
}

let record t ~invariant detail =
  t.violations <-
    { time = Engine.now (Net.engine t.net); invariant; detail } :: t.violations

let recordf t ~invariant fmt = Format.kasprintf (record t ~invariant) fmt

let create ?(max_copies = 1) net ~probe_id =
  let t =
    {
      net;
      probe_id;
      max_copies;
      copies = Hashtbl.create 256;
      received = Hashtbl.create 64;
      violations = [];
    }
  in
  (* Loop freedom, checked on the wire: no single data packet may
     traverse one link more than [max_copies] times.  A forwarding loop
     (or duplicate-delivery bug) shows up here within one packet
     lifetime, long before any state inspection would catch it. *)
  Net.on_deliver net (fun lid pkt ->
      match t.probe_id pkt with
      | None -> ()
      | Some probe ->
        let k = (probe, lid) in
        let n = 1 + Option.value (Hashtbl.find_opt t.copies k) ~default:0 in
        Hashtbl.replace t.copies k n;
        if n = t.max_copies + 1 then
          recordf t ~invariant:"loop-freedom"
            "probe %d traversed link %d %d times (max %d) — %s" probe lid n t.max_copies
            (Packet.payload_to_string pkt.Packet.payload));
  t

let set_max_copies t n =
  if n < 1 then invalid_arg "Oracle.set_max_copies";
  t.max_copies <- n

let reset_probes t =
  Hashtbl.reset t.copies;
  Hashtbl.reset t.received

let checkpoint t ~max_copies =
  set_max_copies t max_copies;
  reset_probes t

let note_received t ~node ~probe =
  let tbl =
    match Hashtbl.find_opt t.received probe with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.received probe tbl;
      tbl
  in
  Hashtbl.replace tbl node ()

let received_by t ~probe =
  match Hashtbl.find_opt t.received probe with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun u () acc -> u :: acc) tbl [] |> List.sort Int.compare

let run_check t ~invariant f = List.iter (record t ~invariant) (f ())

(* A member the topology can still reach, that nonetheless received none
   of a probe window's packets, is behind a blackhole: the routing state
   silently eats traffic even though a path exists.  Reachability is
   computed over live links and nodes only — a genuinely partitioned
   member is not a blackhole. *)
let check_blackhole t ~source ~members ~probes =
  if probes <> [] then begin
    let topo = Net.topo t.net in
    let n = Topology.n_nodes topo in
    let reachable = Array.make n false in
    if Net.node_up t.net source then begin
      reachable.(source) <- true;
      let q = Queue.create () in
      Queue.push source q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun (_, lid) ->
            if Net.link_up t.net lid then
              List.iter
                (fun v ->
                  if Net.node_up t.net v && not reachable.(v) then begin
                    reachable.(v) <- true;
                    Queue.push v q
                  end)
                (Topology.others_on_link topo lid u))
          (Topology.ifaces topo u)
      done
    end;
    let got_any m =
      List.exists
        (fun p ->
          match Hashtbl.find_opt t.received p with
          | Some tbl -> Hashtbl.mem tbl m
          | None -> false)
        probes
    in
    List.sort_uniq Int.compare members
    |> List.iter (fun m ->
           if m <> source && reachable.(m) && not (got_any m) then
             recordf t ~invariant:"blackhole"
               "member %d is reachable from source %d but received none of the %d-probe window"
               m source (List.length probes))
  end

let violations t = List.rev t.violations

let pp ppf t =
  match violations t with
  | [] -> Format.fprintf ppf "no violations"
  | vs ->
    Format.fprintf ppf "%d violation(s):@." (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs
