module Json = Pim_util.Json
module Packet = Pim_net.Packet
module Topology = Pim_graph.Topology

type phase = [ `Send | `Deliver | `Drop ]

type entry = {
  time : float;
  phase : phase;
  link : int;
  node_a : int;
  node_b : int;
  src : string;
  dst : string;
  kind : string;
  info : string;
  size : int;
}

type t = {
  net : Net.t;
  mutable recorded : entry list;  (* reversed *)
}

let phase_to_string = function `Send -> "send" | `Deliver -> "deliver" | `Drop -> "drop"

let phase_of_string = function
  | "send" -> Some `Send
  | "deliver" -> Some `Deliver
  | "drop" -> Some `Drop
  | _ -> None

let dst_string pkt =
  match pkt.Packet.dst with
  | Packet.Unicast a -> Pim_net.Addr.to_string a
  | Packet.Multicast g -> Pim_net.Group.to_string g

let first_token s =
  match String.index_opt s ' ' with Some i -> String.sub s 0 i | None -> s

let make_entry net phase lid pkt =
  let topo = Net.topo net in
  let link = Topology.link topo lid in
  let a = link.Topology.ends.(0) and b = link.Topology.ends.(1) in
  let info = Packet.payload_to_string pkt.Packet.payload in
  {
    time = Engine.now (Net.engine net);
    phase;
    link = lid;
    node_a = min a b;
    node_b = max a b;
    src = Pim_net.Addr.to_string pkt.Packet.src;
    dst = dst_string pkt;
    kind = first_token info;
    info;
    size = pkt.Packet.size;
  }

let attach net =
  let t = { net; recorded = [] } in
  let record phase lid pkt = t.recorded <- make_entry net phase lid pkt :: t.recorded in
  Net.on_send net (record `Send);
  Net.on_deliver net (record `Deliver);
  Net.on_drop net (record `Drop);
  t

let entries t = List.rev t.recorded

let clear t = t.recorded <- []

let filter ?node ?group ?kind ?phase ?t_min ?t_max es =
  let keep e =
    (match node with Some n -> e.node_a = n || e.node_b = n | None -> true)
    && (match group with Some g -> String.equal e.dst g | None -> true)
    && (match kind with Some k -> String.equal e.kind k | None -> true)
    && (match phase with
       | Some p -> String.equal (phase_to_string e.phase) (phase_to_string p)
       | None -> true)
    && (match t_min with Some lo -> e.time >= lo | None -> true)
    && match t_max with Some hi -> e.time <= hi | None -> true
  in
  List.filter keep es

let entry_to_json e =
  Json.Obj
    [
      ("t", Json.Float e.time);
      ("phase", Json.Str (phase_to_string e.phase));
      ("link", Json.Int e.link);
      ("a", Json.Int e.node_a);
      ("b", Json.Int e.node_b);
      ("src", Json.Str e.src);
      ("dst", Json.Str e.dst);
      ("kind", Json.Str e.kind);
      ("info", Json.Str e.info);
      ("size", Json.Int e.size);
    ]

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let entry_of_json j =
  let* time = field "t" Json.to_float j in
  let* phase_s = field "phase" Json.to_str j in
  let* phase =
    match phase_of_string phase_s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown phase %S" phase_s)
  in
  let* link = field "link" Json.to_int j in
  let* node_a = field "a" Json.to_int j in
  let* node_b = field "b" Json.to_int j in
  let* src = field "src" Json.to_str j in
  let* dst = field "dst" Json.to_str j in
  let* kind = field "kind" Json.to_str j in
  let* info = field "info" Json.to_str j in
  let* size = field "size" Json.to_int j in
  Ok { time; phase; link; node_a; node_b; src; dst; kind; info; size }

let save path es =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun e -> output_string oc (Json.to_string (entry_to_json e) ^ "\n")) es)

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match In_channel.input_line ic with
        | None -> Ok (List.rev acc)
        | Some "" -> go (lineno + 1) acc
        | Some line -> (
          match Json.of_string line with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok j -> (
            match entry_of_json j with
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
            | Ok e -> go (lineno + 1) (e :: acc)))
      in
      go 1 [])

(* Multiset difference keyed on the canonical serialized line, so no
   polymorphic comparison is involved and the notion of equality is
   exactly "same JSONL line". *)
let subtract xs ys =
  let counts = Hashtbl.create 64 in
  let key e = Json.to_string (entry_to_json e) in
  List.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    ys;
  List.filter
    (fun e ->
      let k = key e in
      match Hashtbl.find_opt counts k with
      | Some n when n > 0 ->
        Hashtbl.replace counts k (n - 1);
        false
      | _ -> true)
    xs

let diff a b = (subtract a b, subtract b a)

let pp_entry ppf e =
  Format.fprintf ppf "%8.3f %-7s link %d (%d-%d) %s -> %s  %s [%dB]" e.time
    (phase_to_string e.phase) e.link e.node_a e.node_b e.src e.dst e.info e.size
