(** Typed protocol events.

    The structured counterpart of the free-form string trace: each
    constructor captures one protocol decision with enough detail to
    attribute a delivered, duplicated, or dropped packet to it (the
    analysis the paper's Figure 2 evaluation relies on, and the one that
    diagnosed the RP-tree/SPT switchover loss — see ARCHITECTURE.md).

    This module lives below the protocol libraries, so addresses and
    groups appear in their string rendering ([Pim_net.Addr.to_string] /
    [Pim_net.Group.to_string]); interface numbers are the per-node
    interface indices of {!Net}, with [-1] denoting the synthetic local
    (host-facing) interface.

    Events serialize to single-line JSON and parse back losslessly —
    {!of_json} is a total inverse of {!to_json} — so captures written as
    JSONL can be re-read by [pimsim trace] and by the replay harness. *)

type route = {
  group : string;
  source : string option;  (** [None] for shared-tree (star,G) state *)
}
(** An (S,G) or shared-tree (star,G) route designator. *)

type t =
  | Join of { route : route; iface : int }
      (** Join-list entry accepted from [iface] (or scheduled upstream). *)
  | Prune of { route : route; iface : int }
      (** Prune-list entry accepted from [iface]. *)
  | Graft of { route : route; iface : int }
      (** Dense-mode graft re-attaching [iface]. *)
  | Register of { group : string; source : string }
      (** DR encapsulated a packet from [source] towards the RP. *)
  | Register_stop of { group : string; source : string }
      (** RP told the DR to stop encapsulating. *)
  | Spt_switch of { group : string; source : string }
      (** RP-tree to shortest-path-tree transition completed (spt-bit set). *)
  | Assert of { group : string; iface : int; winner : int }
      (** Assert election on a LAN; [winner] is the elected forwarder. *)
  | Entry_install of { route : route }  (** Forwarding entry created. *)
  | Entry_expire of { route : route }  (** Forwarding entry timed out / deleted. *)
  | Pkt_send of { src : string; group : string; iface : int }
      (** Data packet transmitted out [iface]. *)
  | Pkt_deliver of { src : string; group : string; iface : int }
      (** Data packet handed to local members ([iface] it arrived on). *)
  | Pkt_drop of { src : string; group : string; iface : int; reason : string }
      (** Data packet discarded; [reason] is a stable keyword
          (e.g. ["iif"], ["no-state"], ["dup"], ["ttl"]). *)
  | Candidate_rp of { rp : string; priority : int; groups : int }
      (** Candidate-RP advertisement sent toward the BSR; [groups] is the
          coverage count (0 = advertises for every group). *)
  | Bsr_elected of { bsr : string; priority : int }
      (** This router accepted [bsr] as the elected bootstrap router. *)
  | Rp_mapping of { group : string; rp : string option }
      (** The router's group-to-RP mapping changed; [None] means the group
          lost its mapping (all candidate state expired). *)
  | Rp_failover of { group : string; from_rp : string option; to_rp : string }
      (** Shared-tree state re-targeted from a failed or withdrawn RP to an
          alternate (section 3.9). *)
  | Fault_injected of { action : string }
      (** The harness perturbed the network; [action] is the rendered
          fault (e.g. ["link 3 down"]).  Emitted by the scenario DSL and
          the explorer so a trace interleaves protocol reactions with the
          faults that caused them. *)
  | Checkpoint_digest of { digest : string }
      (** Hex digest of the canonical global mroute/forwarding state at a
          scenario checkpoint — the state-equivalence key the explorer
          dedups on (see ARCHITECTURE.md). *)
  | Window_roll of { index : int; t_start : float; t_end : float }
      (** A measurement window closed: the workload harness rolled every
          windowed instrument in the metrics registry (see
          {!Pim_util.Metrics.roll}), snapshotting per-window rows for
          virtual time [[t_start, t_end)).  Interleaves the measurement
          cadence with the protocol events it aggregates. *)

val tag : t -> string
(** Short event-class keyword, identical to the tag the string trace uses
    for the same occurrence (["join"], ["spt-switch"], ["drop"], ...). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering (the string trace's detail field). *)

val to_json : t -> Pim_util.Json.t
(** One flat object with a ["type"] discriminator. *)

val of_json : Pim_util.Json.t -> (t, string) result
(** Inverse of {!to_json}; the error names the missing or ill-typed
    field. *)
