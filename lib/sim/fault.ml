module Topology = Pim_graph.Topology
module Prng = Pim_util.Prng

type action =
  | Link_down of Topology.link_id
  | Link_up of Topology.link_id
  | Link_flap of Topology.link_id * float
  | Node_crash of Topology.node * float
  | Partition of Topology.node list
  | Heal
  | Loss_burst of float * float
  | Jitter_burst of float * float
  | Drop_next of Topology.link_id
  | Duplicate_next of Topology.link_id
  | Delay_next of Topology.link_id * float

type event = { at : float; action : action }

let pp_action ppf = function
  | Link_down lid -> Format.fprintf ppf "link %d down" lid
  | Link_up lid -> Format.fprintf ppf "link %d up" lid
  | Link_flap (lid, d) -> Format.fprintf ppf "link %d flaps for %.1fs" lid d
  | Node_crash (u, d) -> Format.fprintf ppf "node %d crashes for %.1fs" u d
  | Partition nodes ->
    Format.fprintf ppf "partition {%s}" (String.concat "," (List.map string_of_int nodes))
  | Heal -> Format.fprintf ppf "heal partition"
  | Loss_burst (rate, d) -> Format.fprintf ppf "%.0f%% loss for %.1fs" (100. *. rate) d
  | Jitter_burst (amp, d) -> Format.fprintf ppf "jitter %.1fs for %.1fs" amp d
  | Drop_next lid -> Format.fprintf ppf "drop next frame on link %d" lid
  | Duplicate_next lid -> Format.fprintf ppf "duplicate next frame on link %d" lid
  | Delay_next (lid, d) -> Format.fprintf ppf "delay next frame on link %d by %.1fs" lid d

let pp_event ppf e = Format.fprintf ppf "t=%.1f %a" e.at pp_action e.action

type t = {
  net : Net.t;
  restart : Topology.node -> unit;
  mutable partitioned : Topology.link_id list;  (* links cut by Partition, to Heal *)
  mutable loss_depth : int;
  mutable base_loss : float;
  mutable jitter_depth : int;
  mutable base_jitter : float;
  mutable log : (float * string) list;  (* newest first *)
}

let log t = List.rev t.log

let note t msg =
  t.log <- (Engine.now (Net.engine t.net), msg) :: t.log

let notef t fmt = Format.kasprintf (note t) fmt

let apply t action =
  let net = t.net in
  let eng = Net.engine net in
  notef t "%a" pp_action action;
  match action with
  | Link_down lid -> Net.set_link_up net lid false
  | Link_up lid -> Net.set_link_up net lid true
  | Link_flap (lid, d) ->
    Net.set_link_up net lid false;
    ignore
      (Engine.schedule eng ~after:d (fun () ->
           notef t "link %d restored" lid;
           Net.set_link_up net lid true))
  | Node_crash (u, d) ->
    Net.set_node_up net u false;
    ignore
      (Engine.schedule eng ~after:d (fun () ->
           notef t "node %d restarts" u;
           Net.set_node_up net u true;
           t.restart u))
  | Partition nodes ->
    let inside = Array.make (Topology.n_nodes (Net.topo net)) false in
    List.iter (fun u -> inside.(u) <- true) nodes;
    Array.iter
      (fun (l : Topology.link) ->
        let any_in = Array.exists (fun u -> inside.(u)) l.Topology.ends in
        let any_out = Array.exists (fun u -> not inside.(u)) l.Topology.ends in
        if any_in && any_out && Net.link_up net l.Topology.id then begin
          t.partitioned <- l.Topology.id :: t.partitioned;
          Net.set_link_up net l.Topology.id false
        end)
      (Topology.links (Net.topo net))
  | Heal ->
    List.iter (fun lid -> Net.set_link_up net lid true) t.partitioned;
    t.partitioned <- []
  | Loss_burst (rate, d) ->
    if t.loss_depth = 0 then t.base_loss <- Net.loss_rate net;
    t.loss_depth <- t.loss_depth + 1;
    Net.set_loss_rate net rate;
    ignore
      (Engine.schedule eng ~after:d (fun () ->
           t.loss_depth <- t.loss_depth - 1;
           if t.loss_depth = 0 then begin
             notef t "loss burst over";
             Net.set_loss_rate net t.base_loss
           end))
  | Jitter_burst (amp, d) ->
    if t.jitter_depth = 0 then t.base_jitter <- Net.jitter net;
    t.jitter_depth <- t.jitter_depth + 1;
    Net.set_jitter net amp;
    ignore
      (Engine.schedule eng ~after:d (fun () ->
           t.jitter_depth <- t.jitter_depth - 1;
           if t.jitter_depth = 0 then begin
             notef t "jitter burst over";
             Net.set_jitter net t.base_jitter
           end))
  | Drop_next lid -> Net.tamper_next net lid `Drop
  | Duplicate_next lid -> Net.tamper_next net lid `Duplicate
  | Delay_next (lid, d) -> Net.tamper_next net lid (`Delay d)

let install ?(restart = fun _ -> ()) net events =
  let t =
    {
      net;
      restart;
      partitioned = [];
      loss_depth = 0;
      base_loss = 0.;
      jitter_depth = 0;
      base_jitter = 0.;
      log = [];
    }
  in
  let eng = Net.engine net in
  List.iter
    (fun e -> ignore (Engine.schedule_at eng e.at (fun () -> apply t e.action)))
    events;
  t

(* Faults aimed at specific nodes (the elected RPs, in the chaos
   harness's rp-crash mode): alternate crash/restart and brief isolation,
   cycling over the targets.  Events are confined to successive windows so
   a partition always heals before the next fault begins, and everything
   heals before [until]. *)
let targeted_schedule ~prng ~targets ~start ~until ?(events = 4) ?(mean_outage = 8.) () =
  if until <= start then invalid_arg "Fault.targeted_schedule: until must exceed start";
  if targets = [] then invalid_arg "Fault.targeted_schedule: no targets";
  let targets = Array.of_list targets in
  let window = (until -. start) /. float_of_int events in
  List.init events (fun i ->
      let w0 = start +. (window *. float_of_int i) in
      let at = w0 +. Prng.float prng (Float.max 0.1 (window /. 2.)) in
      let d =
        let d = mean_outage *. (0.5 +. Prng.float prng 1.0) in
        Float.min d (Float.max 0.5 (w0 +. window -. at -. 0.1))
      in
      let u = targets.(i mod Array.length targets) in
      if i mod 2 = 0 then [ { at; action = Node_crash (u, d) } ]
      else [ { at; action = Partition [ u ] }; { at = at +. d; action = Heal } ])
  |> List.concat
  |> List.sort (fun a b -> Float.compare a.at b.at)

let random_schedule ~prng ~topo ~start ~until ?(protected = []) ?(events = 8)
    ?(mean_outage = 8.) () =
  if until <= start then invalid_arg "Fault.random_schedule: until must exceed start";
  let n_nodes = Topology.n_nodes topo in
  let n_links = Topology.n_links topo in
  let crashable =
    List.init n_nodes Fun.id |> List.filter (fun u -> not (List.mem u protected))
  in
  (* Every injected outage heals before [until], so a post-schedule
     checkpoint sees the full topology again. *)
  let duration at =
    let d = mean_outage *. (0.5 +. Prng.float prng 1.0) in
    Float.min d (Float.max 0.5 (until -. at -. 0.5))
  in
  let rec event_at at =
    let roll = Prng.float prng 1.0 in
    if roll < 0.35 then Link_flap (Prng.int prng n_links, duration at)
    else if roll < 0.60 && crashable <> [] then
      Node_crash (List.nth crashable (Prng.int prng (List.length crashable)), duration at)
    else if roll < 0.75 then Loss_burst (0.2 +. Prng.float prng 0.3, duration at)
    else if roll < 0.90 then Jitter_burst (0.5 +. Prng.float prng 2.0, duration at)
    else if crashable <> [] then
      (* Isolate one router briefly: its links are cut, state survives. *)
      Partition [ List.nth crashable (Prng.int prng (List.length crashable)) ]
    else event_at at
  in
  List.init events (fun _ ->
      let at = start +. Prng.float prng (until -. start -. 1.0) in
      match event_at at with
      | Partition _ as p ->
        let d = duration at in
        [ { at; action = p }; { at = at +. d; action = Heal } ]
      | a -> [ { at; action = a } ])
  |> List.concat
  |> List.sort (fun a b -> Float.compare a.at b.at)
