#!/usr/bin/env bash
# Fail (exit 1) on intra-repo markdown links whose target file does not
# exist.  External links (http/https/mailto) and pure #anchors are
# skipped; anchors on file links are stripped before the existence
# check.  Run from anywhere inside the repository; CI runs it on every
# push (see .github/workflows/ci.yml, "docs" job).
set -u

cd "$(dirname "$0")/.." || exit 2

fail=0
# Tracked + untracked markdown, never the build tree (_build has copies).
files=$(git ls-files -c -o --exclude-standard '*.md')

for f in $files; do
  dir=$(dirname "$f")
  # Every inline-link target: the (...) after a ]. Reference-style links
  # are not used in this repository.
  targets=$(grep -o '\]([^)]*)' "$f" | sed 's/^](//; s/)$//')
  while IFS= read -r t; do
    [ -z "$t" ] && continue
    case "$t" in
      http://*|https://*|mailto:*) continue ;;   # external
      '#'*) continue ;;                          # same-file anchor
    esac
    path=${t%%#*}                                # strip anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link: $f -> $t"
      fail=1
    fi
  done <<EOF
$targets
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "check_links: dead intra-repo markdown links found"
  exit 1
fi
echo "check_links: ok"
