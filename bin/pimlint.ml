(* pimlint: determinism & protocol-hygiene static analyzer for the
   simulator sources.  Two tiers: the default untyped tier runs on the
   Parsetree; [--typed] runs the R1/L1-L3/T1 rules on the Typedtree
   read from dune's [.cmt] output (build first: `dune build @check`).
   See lib/check/RULES.md for the rule catalogue, suppression syntax
   and the baseline ratchet workflow. *)

let usage =
  "pimlint [--typed] [--build-root DIR] [--baseline FILE] [--update-baseline] \
   [--warn RULE] [--json] [--quiet] PATH..."

let () =
  let baseline = ref None in
  let update = ref false in
  let warn = ref [] in
  let quiet = ref false in
  let typed = ref false in
  let build_root = ref None in
  let json = ref false in
  let paths = ref [] in
  let add_warn s =
    match Pim_check.Finding.rule_of_id s with
    | Some r -> warn := r :: !warn
    | None -> raise (Arg.Bad (Printf.sprintf "unknown rule %S" s))
  in
  let spec =
    [
      ("--typed", Arg.Set typed, " run the typed tier (R1/L1-L3/T1) on .cmt files");
      ( "--build-root",
        Arg.String (fun s -> build_root := Some s),
        "DIR built tree holding the .cmt files (default: _build/default if present)" );
      ("--baseline", Arg.String (fun s -> baseline := Some s), "FILE ratchet file of tolerated legacy findings");
      ("--update-baseline", Arg.Set update, " rewrite the active tier's baseline rows from current findings");
      ("--warn", Arg.String add_warn, "RULE demote RULE (e.g. H4) to a non-fatal warning");
      ("--json", Arg.Set json, " emit one pimlint/1 JSON object instead of text");
      ("--quiet", Arg.Set quiet, " only print errors and the final verdict");
      ( "--rules",
        Arg.Unit
          (fun () ->
            List.iter
              (fun r ->
                Printf.printf "%s  [%s]  %s\n" (Pim_check.Finding.rule_id r)
                  (Pim_check.Finding.tier_id (Pim_check.Finding.tier_of_rule r))
                  (Pim_check.Finding.rule_doc r))
              Pim_check.Finding.all_rules;
            exit 0),
        " list the rule ids and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let options =
    {
      Pim_check.Lint.baseline_path = !baseline;
      update_baseline = !update;
      warn_rules = !warn;
      quiet = !quiet;
      tier = (if !typed then Pim_check.Lint.Typed_tier else Pim_check.Lint.Untyped_tier);
      build_root = !build_root;
      json = !json;
    }
  in
  exit (Pim_check.Lint.run ~options ~paths Format.std_formatter)
