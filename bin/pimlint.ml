(* pimlint: determinism & protocol-hygiene static analyzer for the
   simulator sources.  See lib/check/RULES.md for the rule catalogue,
   suppression syntax and the baseline ratchet workflow. *)

let usage = "pimlint [--baseline FILE] [--update-baseline] [--warn RULE] [--quiet] PATH..."

let () =
  let baseline = ref None in
  let update = ref false in
  let warn = ref [] in
  let quiet = ref false in
  let paths = ref [] in
  let add_warn s =
    match Pim_check.Finding.rule_of_id s with
    | Some r -> warn := r :: !warn
    | None -> raise (Arg.Bad (Printf.sprintf "unknown rule %S" s))
  in
  let spec =
    [
      ("--baseline", Arg.String (fun s -> baseline := Some s), "FILE ratchet file of tolerated legacy findings");
      ("--update-baseline", Arg.Set update, " rewrite the baseline to cover current findings");
      ("--warn", Arg.String add_warn, "RULE demote RULE (e.g. H4) to a non-fatal warning");
      ("--quiet", Arg.Set quiet, " only print errors and the final verdict");
      ( "--rules",
        Arg.Unit
          (fun () ->
            List.iter
              (fun r ->
                Printf.printf "%s  %s\n" (Pim_check.Finding.rule_id r)
                  (Pim_check.Finding.rule_doc r))
              Pim_check.Finding.all_rules;
            exit 0),
        " list the rule ids and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let options =
    {
      Pim_check.Lint.baseline_path = !baseline;
      update_baseline = !update;
      warn_rules = !warn;
      quiet = !quiet;
    }
  in
  exit (Pim_check.Lint.run ~options ~paths Format.std_formatter)
