(* pimsim: regenerate every figure/table of the PIM SIGCOMM'94 paper and
   the supplementary experiments indexed in DESIGN.md. *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (runs are fully deterministic per seed)." in
  Arg.(value & opt int 1994 & info [ "seed" ] ~doc)

let json_arg =
  let doc =
    "Also write the rows plus wall-clock/allocation stats as JSON to $(docv) \
     (same schema family as BENCH_fig2.json; see EXPERIMENTS.md)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

(* Run [f], and when [--json PATH] was given wrap its rows (serialized by
   [row_to_json]) in a timing envelope and write them to PATH. *)
let with_json_output ~experiment ~json ~params ~row_to_json f =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let rows = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  Option.iter
    (fun path ->
      Pim_util.Json.(
        to_file path
          (Obj
             [
               ("schema", Str "pim-exp/1");
               ("experiment", Str experiment);
               ("params", Obj params);
               ("wall_s", Float wall_s);
               ("alloc_bytes", Float alloc);
               ("rows", Arr (List.map row_to_json rows));
             ]));
      Format.eprintf "# wrote %s (%.3f s)@." path wall_s)
    json;
  rows

let trials_arg default =
  let doc = "Random networks per node degree." in
  Arg.(value & opt int default & info [ "trials" ] ~doc)

let nodes_arg =
  let doc = "Routers per random network." in
  Arg.(value & opt int 50 & info [ "nodes" ] ~doc)

let fig2a_cmd =
  let run seed trials nodes members json =
    let row_to_json (r : Pim_exp.Fig2a.row) =
      Pim_util.Json.(
        Obj
          [
            ("degree", Float r.degree);
            ("mean_ratio", Float r.mean_ratio);
            ("stddev", Float r.stddev);
            ("min_ratio", Float r.min_ratio);
            ("max_ratio", Float r.max_ratio);
            ("trials", Int r.trials);
          ])
    in
    let params =
      Pim_util.Json.
        [ ("seed", Int seed); ("trials", Int trials); ("nodes", Int nodes); ("members", Int members) ]
    in
    let rows =
      with_json_output ~experiment:"fig2a" ~json ~params ~row_to_json (fun () ->
          Pim_exp.Fig2a.run ~nodes ~members ~trials ~seed ())
    in
    Format.printf "%a" Pim_exp.Fig2a.pp_rows rows
  in
  let members =
    Arg.(value & opt int 10 & info [ "members" ] ~doc:"Group size.")
  in
  Cmd.v
    (Cmd.info "fig2a" ~doc:"Figure 2(a): CBT/SPT maximum-delay ratio vs node degree.")
    Term.(const run $ seed_arg $ trials_arg 500 $ nodes_arg $ members $ json_arg)

let fig2b_cmd =
  let run seed trials nodes groups members senders json =
    let row_to_json (r : Pim_exp.Fig2b.row) =
      Pim_util.Json.(
        Obj
          [
            ("degree", Float r.degree);
            ("spt_max_flows", Float r.spt_max_flows);
            ("cbt_max_flows", Float r.cbt_max_flows);
            ("spt_stddev", Float r.spt_stddev);
            ("cbt_stddev", Float r.cbt_stddev);
            ("trials", Int r.trials);
          ])
    in
    let params =
      Pim_util.Json.
        [
          ("seed", Int seed);
          ("trials", Int trials);
          ("nodes", Int nodes);
          ("groups", Int groups);
          ("members", Int members);
          ("senders", Int senders);
        ]
    in
    let rows =
      with_json_output ~experiment:"fig2b" ~json ~params ~row_to_json (fun () ->
          Pim_exp.Fig2b.run ~nodes ~groups ~members ~senders ~trials ~seed ())
    in
    Format.printf "%a" Pim_exp.Fig2b.pp_rows rows
  in
  let groups = Arg.(value & opt int 300 & info [ "groups" ] ~doc:"Active groups per network.") in
  let members = Arg.(value & opt int 40 & info [ "members" ] ~doc:"Members per group.") in
  let senders = Arg.(value & opt int 32 & info [ "senders" ] ~doc:"Senders per group (subset of members).") in
  Cmd.v
    (Cmd.info "fig2b" ~doc:"Figure 2(b): maximum traffic flows on any link, SPT vs center-based tree.")
    Term.(const run $ seed_arg $ trials_arg 30 $ nodes_arg $ groups $ members $ senders $ json_arg)

let fig1_cmd =
  let run packets =
    let rows = Pim_exp.Fig1.run ~packets () in
    Format.printf "%a" Pim_exp.Fig1.pp_results rows
  in
  let packets = Arg.(value & opt int 40 & info [ "packets" ] ~doc:"Data packets to send.") in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Figure 1: three-domain scenario under DVMRP, PIM-DM, PIM-SM and CBT.")
    Term.(const run $ packets)

let overhead_cmd =
  let run seed nodes packets =
    let rows = Pim_exp.Overhead.run ~nodes ~packets ~seed () in
    Format.printf "%a" Pim_exp.Overhead.pp_rows rows
  in
  let packets = Arg.(value & opt int 30 & info [ "packets" ] ~doc:"Data packets to send.") in
  Cmd.v
    (Cmd.info "overhead" ~doc:"E1: overhead vs membership density across all protocols.")
    Term.(const run $ seed_arg $ nodes_arg $ packets)

let failover_cmd =
  let run seed =
    let rows = Pim_exp.Failover.run ~seed () in
    Format.printf "%a" Pim_exp.Failover.pp_rows rows
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"E2: RP crash and receiver failover latency (section 3.9).")
    Term.(const run $ seed_arg)

let ablation_cmd =
  let run seed =
    let rows = Pim_exp.Ablation.run_spt_policy ~seed () in
    Format.printf "%a" Pim_exp.Ablation.pp_policy_rows rows
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"E3: shared-tree vs SPT vs threshold DR policy (section 3.3).")
    Term.(const run $ seed_arg)

let refresh_cmd =
  let run seed =
    let rows = Pim_exp.Ablation.run_refresh ~seed () in
    Format.printf "%a" Pim_exp.Ablation.pp_refresh_rows rows
  in
  Cmd.v
    (Cmd.info "refresh" ~doc:"E4: soft-state refresh period ablation (footnote 4).")
    Term.(const run $ seed_arg)

let groups_cmd =
  let run seed counts =
    let rows = Pim_exp.Groups_scaling.run ~group_counts:counts ~seed () in
    Format.printf "%a" Pim_exp.Groups_scaling.pp_rows rows
  in
  let counts =
    Arg.(value & opt (list int) [ 10; 40; 120 ]
         & info [ "counts" ] ~doc:"Group counts to sweep.")
  in
  Cmd.v
    (Cmd.info "groups" ~doc:"E5: overhead scaling with the number of sparse groups.")
    Term.(const run $ seed_arg $ counts)

let aggregation_cmd =
  let run seed =
    let rows = Pim_exp.Aggregation.run ~seed () in
    Format.printf "%a" Pim_exp.Aggregation.pp_rows rows
  in
  Cmd.v
    (Cmd.info "aggregation" ~doc:"E6: source aggregation in PIM messages (section 4).")
    Term.(const run $ seed_arg)

let churn_cmd =
  let run seed =
    let rows = Pim_exp.Churn.run ~seed () in
    Format.printf "%a" Pim_exp.Churn.pp_rows rows
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"E7: dynamic groups — join latency and overhead under membership churn.")
    Term.(const run $ seed_arg)

let loss_cmd =
  let run seed =
    let rows = Pim_exp.Loss.run ~seed () in
    Format.printf "%a" Pim_exp.Loss.pp_rows rows
  in
  Cmd.v
    (Cmd.info "loss" ~doc:"E8: robustness to control-message loss (footnote 4).")
    Term.(const run $ seed_arg)

let chaos_cmd =
  let run seed nodes receivers events json =
    let row_to_json (r : Pim_exp.Chaos.row) =
      Pim_util.Json.(
        Obj
          [
            ("protocol", Str r.protocol);
            ("deliveries", Int r.deliveries);
            ("expected", Int r.expected);
            ("dup_deliveries", Int r.dup_deliveries);
            ("max_gap", Float r.max_gap);
            ("mean_convergence", Float r.mean_convergence);
            ("max_convergence", Float r.max_convergence);
            ("churn_control", Int r.churn_control);
            ("total_control", Int r.total_control);
            ("restarts", Int r.restarts);
            ("residual_entries", Int r.residual_entries);
            ( "violations",
              Arr
                (List.map
                   (fun v -> Str (Format.asprintf "%a" Pim_sim.Oracle.pp_violation v))
                   r.violations) );
          ])
    in
    let params =
      Pim_util.Json.
        [ ("seed", Int seed); ("nodes", Int nodes); ("receivers", Int receivers); ("events", Int events) ]
    in
    let report = ref None in
    ignore
      (with_json_output ~experiment:"chaos" ~json ~params ~row_to_json (fun () ->
           let r = Pim_exp.Chaos.run ~nodes ~receivers ~events ~seed () in
           report := Some r;
           r.Pim_exp.Chaos.rows));
    let report = Option.get !report in
    Format.printf "%a" Pim_exp.Chaos.pp_report report;
    let violations = Pim_exp.Chaos.total_violations report in
    if violations > 0 then begin
      Format.eprintf "chaos: %d oracle violation(s) — run failed (seed %d)@." violations seed;
      exit 1
    end
  in
  let nodes =
    Arg.(value & opt int 30 & info [ "nodes" ] ~doc:"Routers in the random network.")
  in
  let receivers =
    Arg.(value & opt int 5 & info [ "receivers" ] ~doc:"Group members (protected from crashes).")
  in
  let events =
    Arg.(value & opt int 8 & info [ "events" ] ~doc:"Fault events in the schedule.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "E9: fault-injection differential — one seeded fault schedule vs all four protocols, \
          with a global invariant oracle (any violation exits nonzero).")
    Term.(const run $ seed_arg $ nodes $ receivers $ events $ json_arg)

let all_cmd =
  let run seed =
    Format.printf "%a@." Pim_exp.Fig2a.pp_rows (Pim_exp.Fig2a.run ~trials:100 ~seed ());
    Format.printf "%a@." Pim_exp.Fig2b.pp_rows (Pim_exp.Fig2b.run ~trials:10 ~seed ());
    Format.printf "%a@." Pim_exp.Fig1.pp_results (Pim_exp.Fig1.run ());
    Format.printf "%a@." Pim_exp.Overhead.pp_rows (Pim_exp.Overhead.run ~seed ());
    Format.printf "%a@." Pim_exp.Failover.pp_rows (Pim_exp.Failover.run ~seed ());
    Format.printf "%a@." Pim_exp.Ablation.pp_policy_rows (Pim_exp.Ablation.run_spt_policy ~seed ());
    Format.printf "%a@." Pim_exp.Ablation.pp_refresh_rows (Pim_exp.Ablation.run_refresh ~seed ());
    Format.printf "%a@." Pim_exp.Groups_scaling.pp_rows
      (Pim_exp.Groups_scaling.run ~group_counts:[ 10; 40 ] ~seed ());
    Format.printf "%a@." Pim_exp.Aggregation.pp_rows (Pim_exp.Aggregation.run ~seed ());
    Format.printf "%a@." Pim_exp.Churn.pp_rows (Pim_exp.Churn.run ~seed ());
    Format.printf "%a@." Pim_exp.Loss.pp_rows (Pim_exp.Loss.run ~seed ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at reduced trial counts (see EXPERIMENTS.md).")
    Term.(const run $ seed_arg)

let lint_cmd =
  let run baseline update paths =
    let paths = if paths = [] then [ "lib" ] else paths in
    let options =
      {
        Pim_check.Lint.baseline_path = baseline;
        update_baseline = update;
        warn_rules = [];
        quiet = false;
      }
    in
    exit (Pim_check.Lint.run ~options ~paths Format.err_formatter)
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline file of tolerated legacy findings (ratchet).")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update-baseline" ] ~doc:"Rewrite the baseline from the current findings.")
  in
  let paths = Arg.(value & pos_all string [] & info [] ~docv:"PATH") in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run pimlint, the determinism and protocol-hygiene static analyzer, over OCaml \
          sources (defaults to lib/).  See lib/check/RULES.md.")
    Term.(const run $ baseline $ update $ paths)

let () =
  let info =
    Cmd.info "pimsim" ~version:"1.0.0"
      ~doc:"Reproduction harness for 'An Architecture for Wide-Area Multicast Routing' (SIGCOMM '94)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig2a_cmd; fig2b_cmd; fig1_cmd; overhead_cmd; failover_cmd; ablation_cmd; refresh_cmd; groups_cmd; aggregation_cmd; churn_cmd; loss_cmd; chaos_cmd; all_cmd; lint_cmd ]))
