(* pimsim: regenerate every figure/table of the PIM SIGCOMM'94 paper and
   the supplementary experiments indexed in DESIGN.md. *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (runs are fully deterministic per seed)." in
  Arg.(value & opt int 1994 & info [ "seed" ] ~doc)

let json_arg =
  let doc =
    "Also write the rows plus wall-clock/allocation stats as JSON to $(docv) \
     (same schema family as BENCH_fig2.json; see EXPERIMENTS.md)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

(* Run [f], and when [--json PATH] was given wrap its rows (serialized by
   [row_to_json]) in a timing envelope and write them to PATH. *)
let with_json_output ~experiment ~json ~params ~row_to_json f =
  let t0 = Unix.gettimeofday () in (* pimlint: allow D2 — wall-clock timing envelope, not randomness *)
  let a0 = Gc.allocated_bytes () in
  let rows = f () in
  let wall_s = Unix.gettimeofday () -. t0 in (* pimlint: allow D2 — wall-clock timing envelope, not randomness *)
  let alloc = Gc.allocated_bytes () -. a0 in
  Option.iter
    (fun path ->
      Pim_util.Json.(
        to_file path
          (Obj
             [
               ("schema", Str "pim-exp/1");
               ("experiment", Str experiment);
               ("params", Obj params);
               ("wall_s", Float wall_s);
               ("alloc_bytes", Float alloc);
               ("rows", Arr (List.map row_to_json rows));
             ]));
      Format.eprintf "# wrote %s (%.3f s)@." path wall_s)
    json;
  rows

let trials_arg default =
  let doc = "Random networks per node degree." in
  Arg.(value & opt int default & info [ "trials" ] ~doc)

let nodes_arg =
  let doc = "Routers per random network." in
  Arg.(value & opt int 50 & info [ "nodes" ] ~doc)

let domains_arg =
  let doc =
    "Fan trials across $(docv) OCaml domains.  Results are identical for any \
     value (each trial has its own PRNG stream); only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let fig2a_cmd =
  let run seed trials nodes members domains json =
    let row_to_json (r : Pim_exp.Fig2a.row) =
      Pim_util.Json.(
        Obj
          [
            ("degree", Float r.degree);
            ("mean_ratio", Float r.mean_ratio);
            ("stddev", Float r.stddev);
            ("min_ratio", Float r.min_ratio);
            ("max_ratio", Float r.max_ratio);
            ("trials", Int r.trials);
          ])
    in
    let params =
      Pim_util.Json.
        [ ("seed", Int seed); ("trials", Int trials); ("nodes", Int nodes); ("members", Int members) ]
    in
    let rows =
      with_json_output ~experiment:"fig2a" ~json ~params ~row_to_json (fun () ->
          Pim_exp.Fig2a.run ~nodes ~members ~trials ~domains ~seed ())
    in
    Format.printf "%a" Pim_exp.Fig2a.pp_rows rows
  in
  let members =
    Arg.(value & opt int 10 & info [ "members" ] ~doc:"Group size.")
  in
  Cmd.v
    (Cmd.info "fig2a" ~doc:"Figure 2(a): CBT/SPT maximum-delay ratio vs node degree.")
    Term.(const run $ seed_arg $ trials_arg 500 $ nodes_arg $ members $ domains_arg $ json_arg)

let fig2b_cmd =
  let run seed trials nodes groups members senders json =
    let row_to_json (r : Pim_exp.Fig2b.row) =
      Pim_util.Json.(
        Obj
          [
            ("degree", Float r.degree);
            ("spt_max_flows", Float r.spt_max_flows);
            ("cbt_max_flows", Float r.cbt_max_flows);
            ("spt_stddev", Float r.spt_stddev);
            ("cbt_stddev", Float r.cbt_stddev);
            ("trials", Int r.trials);
          ])
    in
    let params =
      Pim_util.Json.
        [
          ("seed", Int seed);
          ("trials", Int trials);
          ("nodes", Int nodes);
          ("groups", Int groups);
          ("members", Int members);
          ("senders", Int senders);
        ]
    in
    let rows =
      with_json_output ~experiment:"fig2b" ~json ~params ~row_to_json (fun () ->
          Pim_exp.Fig2b.run ~nodes ~groups ~members ~senders ~trials ~seed ())
    in
    Format.printf "%a" Pim_exp.Fig2b.pp_rows rows
  in
  let groups = Arg.(value & opt int 300 & info [ "groups" ] ~doc:"Active groups per network.") in
  let members = Arg.(value & opt int 40 & info [ "members" ] ~doc:"Members per group.") in
  let senders = Arg.(value & opt int 32 & info [ "senders" ] ~doc:"Senders per group (subset of members).") in
  Cmd.v
    (Cmd.info "fig2b" ~doc:"Figure 2(b): maximum traffic flows on any link, SPT vs center-based tree.")
    Term.(const run $ seed_arg $ trials_arg 30 $ nodes_arg $ groups $ members $ senders $ json_arg)

let fig1_cmd =
  let run packets =
    let rows = Pim_exp.Fig1.run ~packets () in
    Format.printf "%a" Pim_exp.Fig1.pp_results rows
  in
  let packets = Arg.(value & opt int 40 & info [ "packets" ] ~doc:"Data packets to send.") in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Figure 1: three-domain scenario under DVMRP, PIM-DM, PIM-SM and CBT.")
    Term.(const run $ packets)

let overhead_cmd =
  let run seed nodes packets =
    let rows = Pim_exp.Overhead.run ~nodes ~packets ~seed () in
    Format.printf "%a" Pim_exp.Overhead.pp_rows rows
  in
  let packets = Arg.(value & opt int 30 & info [ "packets" ] ~doc:"Data packets to send.") in
  Cmd.v
    (Cmd.info "overhead" ~doc:"E1: overhead vs membership density across all protocols.")
    Term.(const run $ seed_arg $ nodes_arg $ packets)

let failover_cmd =
  let run seed strategies =
    match strategies with
    | false ->
      let rows = Pim_exp.Failover.run ~seed () in
      Format.printf "%a" Pim_exp.Failover.pp_rows rows
    | true ->
      let rows = Pim_exp.Failover.run_strategies ~seed () in
      Format.printf "%a" Pim_exp.Failover.pp_strategy_rows rows
  in
  let strategies =
    Arg.(
      value & flag
      & info [ "strategies" ]
          ~doc:
            "Sweep RP placement strategies (static, random, center, locality, vns, bsr) \
             instead of RP-reachability timeouts; the bsr row runs a live election with no \
             static RP configuration.")
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"E2: RP crash and receiver failover latency (section 3.9).")
    Term.(const run $ seed_arg $ strategies)

let ablation_cmd =
  let run seed =
    let rows = Pim_exp.Ablation.run_spt_policy ~seed () in
    Format.printf "%a" Pim_exp.Ablation.pp_policy_rows rows
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"E3: shared-tree vs SPT vs threshold DR policy (section 3.3).")
    Term.(const run $ seed_arg)

let refresh_cmd =
  let run seed =
    let rows = Pim_exp.Ablation.run_refresh ~seed () in
    Format.printf "%a" Pim_exp.Ablation.pp_refresh_rows rows
  in
  Cmd.v
    (Cmd.info "refresh" ~doc:"E4: soft-state refresh period ablation (footnote 4).")
    Term.(const run $ seed_arg)

let groups_cmd =
  let run seed counts =
    let rows = Pim_exp.Groups_scaling.run ~group_counts:counts ~seed () in
    Format.printf "%a" Pim_exp.Groups_scaling.pp_rows rows
  in
  let counts =
    Arg.(value & opt (list int) [ 10; 40; 120 ]
         & info [ "counts" ] ~doc:"Group counts to sweep.")
  in
  Cmd.v
    (Cmd.info "groups" ~doc:"E5: overhead scaling with the number of sparse groups.")
    Term.(const run $ seed_arg $ counts)

let aggregation_cmd =
  let run seed =
    let rows = Pim_exp.Aggregation.run ~seed () in
    Format.printf "%a" Pim_exp.Aggregation.pp_rows rows
  in
  Cmd.v
    (Cmd.info "aggregation" ~doc:"E6: source aggregation in PIM messages (section 4).")
    Term.(const run $ seed_arg)

let churn_cmd =
  let run seed =
    let rows = Pim_exp.Churn.run ~seed () in
    Format.printf "%a" Pim_exp.Churn.pp_rows rows
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"E7: dynamic groups — join latency and overhead under membership churn.")
    Term.(const run $ seed_arg)

let loss_cmd =
  let run seed =
    let rows = Pim_exp.Loss.run ~seed () in
    Format.printf "%a" Pim_exp.Loss.pp_rows rows
  in
  Cmd.v
    (Cmd.info "loss" ~doc:"E8: robustness to control-message loss (footnote 4).")
    Term.(const run $ seed_arg)

(* A single protocol name, canonicalized through Stack.of_string so typos
   become Cmdliner usage errors instead of silently filtering to nothing. *)
let protocol_conv ~allow_dvmrp =
  let parse s =
    match Pim_exp.Stack.of_string s with
    | Some Pim_exp.Stack.Dvmrp when not allow_dvmrp ->
      Error
        (`Msg
           "chaos compares PIM-DM on the dense side, not DVMRP (expected PIM-SM, PIM-DM, CBT \
            or MOSPF)")
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown protocol %S (expected %s)" s
              (if allow_dvmrp then "PIM-SM, PIM-DM, DVMRP, CBT or MOSPF"
               else "PIM-SM, PIM-DM, CBT or MOSPF")))
  in
  Arg.conv ~docv:"PROTOCOL"
    (parse, fun ppf p -> Format.pp_print_string ppf (Pim_exp.Stack.to_string p))

let chaos_cmd =
  let run seed nodes receivers events topology fault rp_strategy protocols json =
    let topology_name = topology in
    let topology =
      match topology with
      | "random" -> `Random
      | "transit-stub" -> `Transit_stub
      | s -> Format.eprintf "chaos: unknown topology %S (use random or transit-stub)@." s; exit 2
    in
    let fault_name = fault in
    let fault =
      match fault with
      | "random" -> `Random
      | "rp-crash" -> `Rp_crash
      | s -> Format.eprintf "chaos: unknown fault kind %S (use random or rp-crash)@." s; exit 2
    in
    if
      not
        (List.mem rp_strategy [ "static"; "random"; "center"; "locality"; "vns"; "bsr" ])
    then begin
      Format.eprintf
        "chaos: unknown RP strategy %S (use static, random, center, locality, vns or bsr)@."
        rp_strategy;
      exit 2
    end;
    let protocols =
      match protocols with
      | [] -> None
      | ps -> Some (List.map Pim_exp.Stack.to_string ps)
    in
    let row_to_json (r : Pim_exp.Chaos.row) =
      Pim_util.Json.(
        Obj
          [
            ("protocol", Str r.protocol);
            ("deliveries", Int r.deliveries);
            ("expected", Int r.expected);
            ("dup_deliveries", Int r.dup_deliveries);
            ("max_gap", Float r.max_gap);
            ("mean_convergence", Float r.mean_convergence);
            ("max_convergence", Float r.max_convergence);
            ("churn_control", Int r.churn_control);
            ("total_control", Int r.total_control);
            ("restarts", Int r.restarts);
            ("residual_entries", Int r.residual_entries);
            ( "violations",
              Arr
                (List.map
                   (fun v -> Str (Format.asprintf "%a" Pim_sim.Oracle.pp_violation v))
                   r.violations) );
          ])
    in
    let params =
      Pim_util.Json.
        [
          ("seed", Int seed);
          ("nodes", Int nodes);
          ("receivers", Int receivers);
          ("events", Int events);
          ("topology", Str topology_name);
          ("fault", Str fault_name);
          ("rp_strategy", Str rp_strategy);
        ]
    in
    let report = ref None in
    ignore
      (with_json_output ~experiment:"chaos" ~json ~params ~row_to_json (fun () ->
           let r =
             Pim_exp.Chaos.run ~nodes ~receivers ~events ~topology ~fault ~rp_strategy
               ?protocols ~seed ()
           in
           report := Some r;
           r.Pim_exp.Chaos.rows));
    let report = Option.get !report in
    Format.printf "%a" Pim_exp.Chaos.pp_report report;
    let violations = Pim_exp.Chaos.total_violations report in
    if violations > 0 then begin
      Format.eprintf "chaos: %d oracle violation(s) — run failed (seed %d)@." violations seed;
      exit 1
    end
  in
  let nodes =
    Arg.(value & opt int 30 & info [ "nodes" ] ~doc:"Routers in the random network.")
  in
  let receivers =
    Arg.(value & opt int 5 & info [ "receivers" ] ~doc:"Group members (protected from crashes).")
  in
  let events =
    Arg.(value & opt int 8 & info [ "events" ] ~doc:"Fault events in the schedule.")
  in
  let topology =
    Arg.(
      value
      & opt string "random"
      & info [ "topology" ]
          ~doc:
            "Topology kind: $(b,random) (flat random graph) or $(b,transit-stub) (two-level \
             wide-area structure sized to --nodes routers; use --nodes 2000 for the scale run).")
  in
  let fault =
    Arg.(
      value
      & opt string "random"
      & info [ "fault" ]
          ~doc:
            "Fault kind: $(b,random) (mixed flaps/crashes/bursts) or $(b,rp-crash) (crash and \
             partition schedules aimed at the placed RP nodes; defaults --protocols to PIM-SM).")
  in
  let rp_strategy =
    Arg.(
      value
      & opt string "static"
      & info [ "rp-strategy" ]
          ~doc:
            "RP placement for PIM-SM: $(b,static), $(b,random), $(b,center), $(b,locality), \
             $(b,vns) (installed as static configuration) or $(b,bsr) (dynamic election, no \
             static mapping).")
  in
  let protocols =
    Arg.(
      value
      & opt (list (protocol_conv ~allow_dvmrp:false)) []
      & info [ "protocols" ]
          ~doc:
            "Comma-separated protocol subset (PIM-SM, PIM-DM, CBT, MOSPF); default all four.  \
             Unknown names are rejected.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "E9: fault-injection differential — one seeded fault schedule vs all four protocols, \
          with a global invariant oracle (any violation exits nonzero).")
    Term.(
      const run $ seed_arg $ nodes $ receivers $ events $ topology $ fault $ rp_strategy
      $ protocols $ json_arg)

let rp_cmd =
  let run seed nodes degree groups members strategy json =
    let module Prng = Pim_util.Prng in
    let module Addr = Pim_net.Addr in
    if
      not (List.mem strategy [ "static"; "random"; "center"; "locality"; "vns" ])
    then begin
      Format.eprintf
        "rp: unknown strategy %S (use static, random, center, locality or vns)@." strategy;
      exit 2
    end;
    let prng = Prng.create seed in
    let topo = Pim_graph.Random_graph.generate ~prng ~nodes ~degree () in
    let group_list = List.init groups (fun i -> Pim_net.Group.of_index (i + 1)) in
    let gmembers =
      List.map
        (fun g -> (g, Pim_graph.Random_graph.pick_members ~prng ~nodes ~count:members))
        group_list
    in
    let placement =
      match strategy with
      | "static" -> List.map (fun (g, _) -> (g, [ Addr.router 0 ])) gmembers
      | s -> (
        match Pim_core.Placement.named s with
        | Some spec -> Pim_core.Placement.compute ~topo ~groups:gmembers ~seed spec
        | None -> assert false)
    in
    let rp_nodes =
      List.concat_map (fun (_, rps) -> List.filter_map Addr.router_index rps) placement
      |> List.sort_uniq Int.compare
    in
    let cbsrs =
      List.init nodes Fun.id
      |> List.filter (fun u -> not (List.mem u rp_nodes))
      |> List.filteri (fun i _ -> i < 2)
      |> List.mapi (fun i u -> (u, 2 - i))
    in
    let roles = Pim_core.Placement.roles placement ~n_nodes:nodes ~cbsrs in
    let eng = Pim_sim.Engine.create () in
    let net = Pim_sim.Net.create eng topo in
    let static = Pim_routing.Static.create net in
    let bsr =
      Pim_core.Bsr.deploy ~config:Pim_core.Bsr.fast ~forward_unicast:true ~net
        ~ribs:(Pim_routing.Static.rib static) ~roles ()
    in
    Pim_sim.Engine.run ~until:30. eng;
    let elected = Pim_core.Bsr.elected_bsr bsr 0 in
    let mapping = Pim_core.Bsr.mapping bsr 0 group_list in
    let disagreements = ref 0 in
    for u = 1 to nodes - 1 do
      if not (Option.equal Addr.equal (Pim_core.Bsr.elected_bsr bsr u) elected) then
        incr disagreements;
      if
        not
          (List.equal
             (fun (g1, r1) (g2, r2) ->
               Pim_net.Group.equal g1 g2 && List.equal Addr.equal r1 r2)
             (Pim_core.Bsr.mapping bsr u group_list)
             mapping)
      then incr disagreements
    done;
    Format.printf "# rp: BSR election over the %s placement (seed %d, %d nodes)@." strategy
      seed nodes;
    Format.printf "# elected BSR: %s (of %d candidates)@."
      (match elected with Some a -> Addr.to_string a | None -> "-")
      (List.length cbsrs);
    Format.printf "# %-18s %-40s %s@." "group" "elected_rps" "placed_rps";
    List.iter
      (fun (g, rps) ->
        let placed = Option.value ~default:[] (List.assoc_opt g placement) in
        Format.printf "  %-18s %-40s %s@." (Pim_net.Group.to_string g)
          (String.concat "," (List.map Addr.to_string rps))
          (String.concat "," (List.map Addr.to_string placed)))
      mapping;
    let comparison = Pim_exp.Rp_placement.run ~seed () in
    Format.printf "%a" Pim_exp.Rp_placement.pp_rows comparison;
    let row_to_json (r : Pim_exp.Rp_placement.row) =
      Pim_util.Json.(
        Obj
          [
            ("strategy", Str r.strategy);
            ("max_link_streams", Float r.max_link_streams);
            ("mean_max_delay", Float r.mean_max_delay);
            ("mean_delay_variation", Float r.mean_delay_variation);
            ("shard_balance", Float r.shard_balance);
            ("trials", Int r.trials);
          ])
    in
    let params =
      Pim_util.Json.
        [
          ("seed", Int seed);
          ("nodes", Int nodes);
          ("groups", Int groups);
          ("members", Int members);
          ("strategy", Str strategy);
          ( "elected_bsr",
            match elected with Some a -> Str (Addr.to_string a) | None -> Null );
          ( "mapping",
            Arr
              (List.map
                 (fun (g, rps) ->
                   Obj
                     [
                       ("group", Str (Pim_net.Group.to_string g));
                       ("rps", Arr (List.map (fun a -> Str (Addr.to_string a)) rps));
                     ])
                 mapping) );
          ("disagreements", Int !disagreements);
        ]
    in
    ignore
      (with_json_output ~experiment:"rp" ~json ~params ~row_to_json (fun () -> comparison));
    if !disagreements > 0 then begin
      Format.eprintf "rp: %d router(s) disagree with the elected mapping (seed %d)@."
        !disagreements seed;
      exit 1
    end
  in
  let nodes = Arg.(value & opt int 24 & info [ "nodes" ] ~doc:"Routers in the random network.") in
  let degree = Arg.(value & opt float 4. & info [ "degree" ] ~doc:"Mean node degree.") in
  let groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Groups to map.") in
  let members = Arg.(value & opt int 5 & info [ "members" ] ~doc:"Members per group.") in
  let strategy =
    Arg.(
      value
      & opt string "center"
      & info [ "strategy" ]
          ~doc:
            "Placement advertised through the election: $(b,static), $(b,random), \
             $(b,center), $(b,locality) or $(b,vns).")
  in
  Cmd.v
    (Cmd.info "rp"
       ~doc:
         "Run a BSR election over a placed candidate-RP set, print the elected group-to-RP \
          mapping (exit 1 if any router disagrees), and the placement-strategy comparison \
          sweep.")
    Term.(const run $ seed_arg $ nodes $ degree $ groups $ members $ strategy $ json_arg)

let all_cmd =
  let run seed =
    Format.printf "%a@." Pim_exp.Fig2a.pp_rows (Pim_exp.Fig2a.run ~trials:100 ~seed ());
    Format.printf "%a@." Pim_exp.Fig2b.pp_rows (Pim_exp.Fig2b.run ~trials:10 ~seed ());
    Format.printf "%a@." Pim_exp.Fig1.pp_results (Pim_exp.Fig1.run ());
    Format.printf "%a@." Pim_exp.Overhead.pp_rows (Pim_exp.Overhead.run ~seed ());
    Format.printf "%a@." Pim_exp.Failover.pp_rows (Pim_exp.Failover.run ~seed ());
    Format.printf "%a@." Pim_exp.Ablation.pp_policy_rows (Pim_exp.Ablation.run_spt_policy ~seed ());
    Format.printf "%a@." Pim_exp.Ablation.pp_refresh_rows (Pim_exp.Ablation.run_refresh ~seed ());
    Format.printf "%a@." Pim_exp.Groups_scaling.pp_rows
      (Pim_exp.Groups_scaling.run ~group_counts:[ 10; 40 ] ~seed ());
    Format.printf "%a@." Pim_exp.Aggregation.pp_rows (Pim_exp.Aggregation.run ~seed ());
    Format.printf "%a@." Pim_exp.Churn.pp_rows (Pim_exp.Churn.run ~seed ());
    Format.printf "%a@." Pim_exp.Loss.pp_rows (Pim_exp.Loss.run ~seed ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at reduced trial counts (see EXPERIMENTS.md).")
    Term.(const run $ seed_arg)

(* --- pimsim trace: record / inspect / diff packet captures ------------ *)

let trace_record_cmd =
  let run seed members packets no_fallback capture trace_out metrics =
    let spec =
      {
        (Pim_exp.Scenario.default_spec ~seed ~member_count:members) with
        Pim_exp.Scenario.packets;
        switchover_fallback = not no_fallback;
      }
    in
    let o =
      Pim_exp.Scenario.run ~capture_file:capture ?trace_file:trace_out ?metrics_file:metrics spec
    in
    Format.printf "scenario seed=%d members=[%s] rp=%d source=%d nodes=%d@." seed
      (String.concat ";" (List.map string_of_int o.Pim_exp.Scenario.members))
      o.Pim_exp.Scenario.rp o.Pim_exp.Scenario.source o.Pim_exp.Scenario.nodes;
    Format.printf "ok=%b wrong=%d dup_suppressed=%d residual=%d@." o.Pim_exp.Scenario.ok
      (List.length o.Pim_exp.Scenario.wrong)
      o.Pim_exp.Scenario.dup_suppressed o.Pim_exp.Scenario.residual_entries;
    Format.printf "wrote %s@." capture;
    if not o.Pim_exp.Scenario.ok then exit 1
  in
  let seed = Arg.(value & opt int 56517 & info [ "seed" ] ~doc:"Scenario seed.") in
  let members = Arg.(value & opt int 6 & info [ "members" ] ~doc:"Group size.") in
  let packets = Arg.(value & opt int 30 & info [ "packets" ] ~doc:"Data packets to send.") in
  let no_fallback =
    Arg.(
      value & flag
      & info [ "no-switchover-fallback" ]
          ~doc:
            "Disable the switchover shared-tree fallback (reproduces the pre-fix drop \
             behaviour; the run then exits 1 on the historical counterexample).")
  in
  let capture =
    Arg.(required & opt (some string) None & info [ "o"; "capture" ] ~docv:"FILE"
         ~doc:"JSONL packet capture output path.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Also write the typed event trace as JSONL.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Also write the metrics registry as JSON (schema pim-metrics/2).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Replay a seeded random scenario (the qcheck generator's derivation) under full \
          packet capture.  Exits 1 if the scenario violates the \
          complete/duplicate-free/drains property.")
    Term.(const run $ seed $ members $ packets $ no_fallback $ capture $ trace_out $ metrics)

let load_capture_or_die path =
  match Pim_sim.Capture.load path with
  | Ok entries -> entries
  | Error msg ->
    Format.eprintf "pimsim trace: %s: %s@." path msg;
    exit 2

let trace_show_cmd =
  let run path node group kind phase t_min t_max count_only =
    let phase =
      match phase with
      | None -> None
      | Some "send" -> Some `Send
      | Some "deliver" -> Some `Deliver
      | Some "drop" -> Some `Drop
      | Some p ->
        Format.eprintf "pimsim trace: unknown phase %S (send|deliver|drop)@." p;
        exit 2
    in
    let entries =
      Pim_sim.Capture.filter ?node ?group ?kind ?phase ?t_min ?t_max (load_capture_or_die path)
    in
    if count_only then Format.printf "%d@." (List.length entries)
    else List.iter (fun e -> Format.printf "%a@." Pim_sim.Capture.pp_entry e) entries
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"CAPTURE") in
  let node =
    Arg.(value & opt (some int) None & info [ "node" ] ~doc:"Keep entries on links touching this router.")
  in
  let group =
    Arg.(value & opt (some string) None & info [ "group" ] ~doc:"Keep entries addressed to this group/destination.")
  in
  let kind =
    Arg.(value & opt (some string) None & info [ "kind" ] ~doc:"Keep one payload kind (e.g. data, register, join/prune).")
  in
  let phase =
    Arg.(value & opt (some string) None & info [ "phase" ] ~doc:"Keep one phase: send, deliver or drop.")
  in
  let t_min = Arg.(value & opt (some float) None & info [ "from" ] ~docv:"T" ~doc:"Start of time window.") in
  let t_max = Arg.(value & opt (some float) None & info [ "to" ] ~docv:"T" ~doc:"End of time window.") in
  let count_only = Arg.(value & flag & info [ "count" ] ~doc:"Print only the number of matching entries.") in
  Cmd.v
    (Cmd.info "show"
       ~doc:
         "Filter and pretty-print a JSONL packet capture.  Exits 2 if the file is missing or \
          malformed.")
    Term.(const run $ path $ node $ group $ kind $ phase $ t_min $ t_max $ count_only)

let trace_diff_cmd =
  let run a b =
    let ea = load_capture_or_die a and eb = load_capture_or_die b in
    let only_a, only_b = Pim_sim.Capture.diff ea eb in
    List.iter (fun e -> Format.printf "- %a@." Pim_sim.Capture.pp_entry e) only_a;
    List.iter (fun e -> Format.printf "+ %a@." Pim_sim.Capture.pp_entry e) only_b;
    if only_a = [] && only_b = [] then Format.printf "captures identical (%d entries)@." (List.length ea)
    else begin
      Format.eprintf "pimsim trace: %d entries only in %s, %d only in %s@." (List.length only_a)
        a (List.length only_b) b;
      exit 1
    end
  in
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"CAPTURE_A") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"CAPTURE_B") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Multiset-diff two captures.  Exits 0 when identical, 1 when they differ, 2 on a \
          missing or malformed file.")
    Term.(const run $ a $ b)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record, inspect and diff packet-level captures of simulated scenarios (see \
          EXPERIMENTS.md).")
    [ trace_record_cmd; trace_show_cmd; trace_diff_cmd ]

(* --- pimsim scn: run / check declarative operational scenarios -------- *)

let load_program_or_die path =
  match Pim_exp.Dsl.parse_file path with
  | Ok p -> p
  | Error msg ->
    Format.eprintf "pimsim scn: %s: %s@." path msg;
    exit 2

let protocol_override_arg =
  Arg.(
    value
    & opt (some (protocol_conv ~allow_dvmrp:true)) None
    & info [ "protocol" ] ~doc:"Override the scenario's $(b,protocol) directive.")

(* The .scn directive spells it on/off; accept that on the flag too. *)
let on_off_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "on" | "true" -> Ok true
    | "off" | "false" -> Ok false
    | _ -> Error (`Msg (Printf.sprintf "expected on, off, true or false, got %S" s))
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (if b then "on" else "off"))

let fallback_override_arg =
  Arg.(
    value
    & opt (some on_off_conv) None
    & info [ "switchover-fallback" ] ~docv:"on|off"
        ~doc:"Override the scenario's $(b,config switchover-fallback) directive.")

let scn_run_cmd =
  let run path protocol fallback trace_out capture metrics =
    let program = load_program_or_die path in
    match
      Pim_exp.Dsl.run ?protocol ?switchover_fallback:fallback ?trace_file:trace_out
        ?capture_file:capture ?metrics_file:metrics program
    with
    | outcome ->
      Format.printf "%s: %a" program.Pim_exp.Dsl.name Pim_exp.Dsl.pp_outcome outcome;
      if not outcome.Pim_exp.Dsl.ok then exit 1
    | exception Invalid_argument msg ->
      Format.eprintf "pimsim scn: %s: %s@." path msg;
      exit 2
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.scn") in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the typed event trace as JSONL.")
  in
  let capture =
    Arg.(value & opt (some string) None & info [ "capture" ] ~docv:"FILE"
         ~doc:"Write the packet capture as JSONL.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the metrics registry as JSON.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a $(b,.scn) scenario under the invariant oracle.  Exits 0 when every \
          assertion holds, 1 on a violation, 2 on a parse or semantic error.")
    Term.(
      const run $ path $ protocol_override_arg $ fallback_override_arg $ trace_out $ capture
      $ metrics)

let scn_check_cmd =
  let run paths =
    List.iter
      (fun path ->
        let program = load_program_or_die path in
        match Pim_exp.Dsl.context program with
        | ctx ->
          Format.printf "%s: ok (%s, %s, %d nodes, %d steps)@." path program.Pim_exp.Dsl.name
            (match program.Pim_exp.Dsl.protocol with
            | Some p -> Pim_exp.Stack.to_string p
            | None -> "protocol unset")
            ctx.Pim_exp.Dsl.nodes
            (List.length program.Pim_exp.Dsl.steps)
        | exception Invalid_argument msg ->
          Format.eprintf "pimsim scn: %s: %s@." path msg;
          exit 2)
      paths
  in
  let paths = Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE.scn") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse scenarios and resolve their topology/roles without running them.  Exits 2 on \
          the first syntax or semantic error.")
    Term.(const run $ paths)

let scn_cmd =
  Cmd.group
    (Cmd.info "scn"
       ~doc:
         "Run and validate declarative operational scenarios (.scn files; grammar in \
          EXPERIMENTS.md).")
    [ scn_run_cmd; scn_check_cmd ]

let explore_cmd =
  let run base_file depth budget probes protocols fallback out =
    let base = load_program_or_die base_file in
    let protocols =
      match protocols with
      | [] -> (
        match base.Pim_exp.Dsl.protocol with
        | Some p -> [ p ]
        | None -> Pim_exp.Stack.all)
      | ps -> ps
    in
    let found_any = ref false in
    List.iter
      (fun protocol ->
        let report =
          try
            Pim_exp.Explore.run ~base ~protocol ~depth ~budget ~probes
              ?switchover_fallback:fallback
              ~log:(fun m -> Format.eprintf "# %s@." m)
              ()
          with Invalid_argument msg ->
            Format.eprintf "pimsim explore: %s: %s@." base_file msg;
            exit 2
        in
        Format.printf "%a" Pim_exp.Explore.pp_report report;
        Option.iter
          (fun (f : Pim_exp.Explore.found) ->
            found_any := true;
            let shrunk = f.Pim_exp.Explore.shrunk in
            if not (Sys.file_exists out) then Sys.mkdir out 0o755;
            let stem = Filename.concat out shrunk.Pim_exp.Dsl.name in
            let scn = stem ^ ".scn" in
            Out_channel.with_open_text scn (fun oc ->
                Out_channel.output_string oc (Pim_exp.Dsl.to_string shrunk));
            (* Replay the shrunk counterexample under full capture. *)
            ignore
              (Pim_exp.Dsl.run ~trace_file:(stem ^ ".trace.jsonl")
                 ~capture_file:(stem ^ ".capture.jsonl") shrunk);
            Format.printf "wrote %s (replayed: %s.trace.jsonl, %s.capture.jsonl)@." scn stem
              stem)
          report.Pim_exp.Explore.found)
      protocols;
    if !found_any then exit 1
  in
  let base_file =
    Arg.(required & opt (some string) None & info [ "base" ] ~docv:"FILE.scn"
         ~doc:"Base scenario: topology, roles and initial joins to perturb.")
  in
  let depth =
    Arg.(value & opt int 3 & info [ "depth" ] ~doc:"Maximum perturbation-sequence length.")
  in
  let budget =
    Arg.(value & opt int 500 & info [ "budget" ] ~doc:"Maximum candidate scenarios to run.")
  in
  let probes =
    Arg.(value & opt int 6 & info [ "probes" ] ~doc:"Probe packets per candidate's verdict window.")
  in
  let protocols =
    Arg.(
      value
      & opt (list (protocol_conv ~allow_dvmrp:true)) []
      & info [ "protocols" ]
          ~doc:
            "Comma-separated protocols to explore; default the base scenario's directive, \
             else all five.")
  in
  let out =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR"
         ~doc:"Directory for shrunk counterexamples and their replay traces.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematic fault-space search: enumerate DSL perturbation sequences over the base \
          scenario, dedup converged states by digest, and on an invariant violation emit the \
          delta-debugged $(b,.scn) counterexample plus a deterministic replay capture.  Exits \
          1 when a violation is found, 0 when the bounded space is clean.")
    Term.(
      const run $ base_file $ depth $ budget $ probes $ protocols $ fallback_override_arg
      $ out)

let lint_cmd =
  let run baseline update typed build_root json paths =
    let paths = if paths = [] then [ "lib" ] else paths in
    let options =
      {
        Pim_check.Lint.baseline_path = baseline;
        update_baseline = update;
        warn_rules = [];
        quiet = false;
        tier = (if typed then Pim_check.Lint.Typed_tier else Pim_check.Lint.Untyped_tier);
        build_root;
        json;
      }
    in
    exit (Pim_check.Lint.run ~options ~paths Format.err_formatter)
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline file of tolerated legacy findings (ratchet).")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:"Rewrite the active tier's baseline rows from the current findings.")
  in
  let typed =
    Arg.(
      value & flag
      & info [ "typed" ]
          ~doc:
            "Run the typed analysis tier (R1 domain races, L1-L3 soft-state lifecycle, \
             T1 typed determinism) on .cmt files instead of the untyped Parsetree \
             tier.  Build first: $(b,dune build @check).")
  in
  let build_root =
    Arg.(
      value
      & opt (some string) None
      & info [ "build-root" ] ~docv:"DIR"
          ~doc:
            "Built tree holding the .cmt files (default: _build/default when present, \
             else the current directory).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one pimlint/1 JSON object instead of text.")
  in
  let paths = Arg.(value & pos_all string [] & info [] ~docv:"PATH") in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run pimlint, the determinism and protocol-hygiene static analyzer, over OCaml \
          sources (defaults to lib/).  The default tier parses sources; $(b,--typed) \
          analyzes the Typedtree out of dune's .cmt output.  See lib/check/RULES.md.")
    Term.(const run $ baseline $ update $ typed $ build_root $ json $ paths)

let workload_cmd =
  let run seed model protocol rp_strategy nodes groups scale skew duration window domains json
      schedule_only =
    let model =
      match Pim_exp.Workload.model_of_string model with
      | Some m -> m
      | None ->
        Format.eprintf "workload: unknown model %S (use zap, flashcrowd, zipf or diurnal)@."
          model;
        exit 2
    in
    let rp_strategy =
      match Pim_exp.Workload.rp_strategy_of_string rp_strategy with
      | Some s -> s
      | None ->
        Format.eprintf
          "workload: unknown RP strategy %S (use single, sharded[:k] or bsr[:k])@." rp_strategy;
        exit 2
    in
    let d = Pim_exp.Workload.default_spec model in
    let pick opt dflt = Option.value opt ~default:dflt in
    let spec =
      {
        d with
        Pim_exp.Workload.protocol;
        rp_strategy;
        seed;
        nodes = pick nodes d.Pim_exp.Workload.nodes;
        groups = pick groups d.Pim_exp.Workload.groups;
        scale = pick scale d.Pim_exp.Workload.scale;
        skew = pick skew d.Pim_exp.Workload.skew;
        duration = pick duration d.Pim_exp.Workload.duration;
        window = pick window d.Pim_exp.Workload.window;
        domains;
      }
    in
    if schedule_only then
      print_string (Pim_exp.Workload.render_schedule (Pim_exp.Workload.generate spec))
    else begin
      let report = Pim_exp.Workload.run spec in
      Format.printf "%a@?" Pim_exp.Workload.pp_report report;
      (* Deliberately NOT the [with_json_output] envelope: the workload
         JSON carries no wall-clock or allocation fields, so two runs with
         the same seed are byte-identical (the determinism gate CI checks). *)
      Option.iter
        (fun path ->
          Pim_util.Json.to_file path (Pim_exp.Workload.report_to_json report);
          Format.eprintf "# wrote %s@." path)
        json;
      if List.exists (fun (_, n) -> n > 0) report.Pim_exp.Workload.oracle then exit 1
    end
  in
  let model =
    Arg.(
      value & opt string "zap"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Workload model: $(b,zap) (IPTV channel zapping with correlated storms), \
             $(b,flashcrowd) (one group grows 10 to full scale in seconds), $(b,zipf) \
             (stationary Zipf-popularity churn), or $(b,diurnal) (sin^2 day-curve load).")
  in
  let protocol =
    Arg.(
      value
      & opt (protocol_conv ~allow_dvmrp:true) Pim_exp.Stack.Pim_sm
      & info [ "protocol" ] ~docv:"PROTOCOL" ~doc:"Protocol stack to replay the schedule on.")
  in
  let rp_strategy =
    Arg.(
      value & opt string "sharded:4"
      & info [ "rp" ] ~docv:"STRATEGY"
          ~doc:
            "RP placement: $(b,single) (one backbone RP for every group), $(b,sharded:k) \
             (groups round-robined over k static backbone RPs), or $(b,bsr:k) (the same \
             sharding installed through a live BSR election).  PIM-SM and CBT only.")
  in
  let opt_int names doc = Arg.(value & opt (some int) None & info names ~doc) in
  let opt_float names doc = Arg.(value & opt (some float) None & info names ~doc) in
  let nodes = opt_int [ "nodes" ] "Routers (transit-stub topology is sized to this)." in
  let groups = opt_int [ "groups" ] "Multicast groups (channels)." in
  let scale = opt_int [ "scale" ] "Total receivers (many per router; IGMP-style aggregation)." in
  let skew = opt_float [ "skew" ] "Zipf exponent for group popularity." in
  let duration = opt_float [ "duration" ] "Virtual seconds of schedule." in
  let window = opt_float [ "window" ] "Tumbling measurement-window width (virtual seconds)." in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the pim-workload/1 report as JSON to $(docv).  No wall-clock fields: \
             byte-identical across runs with the same seed.")
  in
  let schedule_only =
    Arg.(
      value & flag
      & info [ "schedule-only" ]
          ~doc:"Print the generated schedule in canonical text form and exit (no replay).")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "E11: replay a production-shaped membership/traffic schedule (IPTV zapping, flash \
          crowd, Zipf churn, diurnal load) against one protocol stack and report per-window \
          join latency, SPT-switchover storms, per-RP load concentration and control \
          overhead.  Deterministic per seed; $(b,--domains) parallelizes schedule \
          generation without changing a byte of output.")
    Term.(
      const run $ seed_arg $ model $ protocol $ rp_strategy $ nodes $ groups $ scale $ skew
      $ duration $ window $ domains_arg $ json $ schedule_only)

let () =
  let info =
    Cmd.info "pimsim" ~version:"1.0.0"
      ~doc:"Reproduction harness for 'An Architecture for Wide-Area Multicast Routing' (SIGCOMM '94)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig2a_cmd; fig2b_cmd; fig1_cmd; overhead_cmd; failover_cmd; ablation_cmd; refresh_cmd; groups_cmd; aggregation_cmd; churn_cmd; loss_cmd; chaos_cmd; rp_cmd; workload_cmd; trace_cmd; scn_cmd; explore_cmd; all_cmd; lint_cmd ]))
