(* Section 3.9 of the paper: multiple rendezvous points and RP failure.

   A 3x3 grid; the group is served by two RPs (primary: router 4, the
   center; alternate: router 2).  The source's first-hop router registers
   to *both* RPs, so data reaches both; the receiver joins only the
   primary.  At t=30 the primary RP crashes.  The receiver stops seeing
   RP-reachability messages, its RP timer expires, and it re-joins toward
   the alternate — "sources do not need to take special action".

   Run with: dune exec examples/rp_failover.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Addr = Pim_net.Addr
module Group = Pim_net.Group

let () =
  let topo = Pim_graph.Classic.grid 3 3 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let trace = Trace.create eng in
  let group = Group.of_index 9 in
  let config =
    {
      Pim_core.Config.fast with
      Pim_core.Config.rp_reach_period = 1.5;
      rp_timeout = 6.;
      sweep_interval = 0.5;
      spt_policy = Pim_core.Config.Never;
    }
  in
  let rp_set = Pim_core.Rp_set.of_list [ (group, [ Addr.router 4; Addr.router 2 ]) ] in
  let dep = Pim_core.Deployment.create_static ~config ~trace net ~rp_set in

  let receiver = Pim_core.Deployment.router dep 8 in
  Pim_core.Router.join_local receiver group;
  let arrivals = ref [] in
  Pim_core.Router.on_local_data receiver (fun _ ->
      arrivals := Engine.now eng :: !arrivals);

  let source = Pim_core.Deployment.router dep 0 in
  let rec send t0 =
    if t0 < 60. then
      ignore
        (Engine.schedule_at eng t0 (fun () ->
             Pim_core.Router.send_local_data source ~group ();
             send (t0 +. 1.)))
  in
  send 10.;
  ignore
    (Engine.schedule_at eng 30. (fun () ->
         Format.printf "t=30.00: primary RP (router 4) crashes@.";
         Net.set_node_up net 4 false));
  Engine.run ~until:70. eng;

  Format.printf "@.current RP at the receiver: %s@."
    (match Pim_core.Router.current_rp receiver group with
    | Some a -> Addr.to_string a
    | None -> "none");

  Format.printf "@.=== failover events ===@.";
  List.iter
    (fun r ->
      if List.mem r.Trace.tag [ "rp-failover"; "rp-retarget" ] then
        Format.printf "%a@." Trace.pp_record r)
    (Trace.records trace);

  let times = List.sort compare !arrivals in
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (Float.max acc (b -. a)) rest
    | _ -> acc
  in
  Format.printf "@.delivered %d packets; longest delivery gap %.2f s (RP timer was %.1f s)@."
    (List.length times) (max_gap 0. times) config.Pim_core.Config.rp_timeout;
  (* Failover must have happened and delivery must have resumed. *)
  let after = List.filter (fun t -> t > 40.) times in
  if after = [] then exit 1
