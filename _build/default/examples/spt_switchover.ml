(* Figure 5 of the paper: switching from the shared (RP) tree to the
   source's shortest-path tree.

   Topology (matching the figure):

       receiver -- [A=0] -- [B=1] -- [C=2 = RP]
                              |
                            [D=3] -- source Sn

   The receiver first gets Sn's packets over the shared tree
   A <- B <- C (the RP), where they arrive via D's registers and C's join
   toward Sn.  With the Immediate policy, A notices data from Sn, creates
   (Sn,G) with a cleared SPT bit and joins toward Sn (through B).  Data
   then arrives at B directly from D; B sets the SPT bit and — because its
   shared-tree incoming interface (toward C) differs from its SPT incoming
   interface (toward D) — sends a prune {Sn, RP-bit} toward the RP, which
   installs a negative cache at C (section 3.3).

   Run with: dune exec examples/spt_switchover.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Topology = Pim_graph.Topology
module Addr = Pim_net.Addr
module Group = Pim_net.Group

let () =
  let b = Topology.builder 4 in
  ignore (Topology.add_p2p b 0 1);  (* A - B *)
  ignore (Topology.add_p2p b 1 2);  (* B - C *)
  ignore (Topology.add_p2p b 1 3);  (* B - D *)
  let topo = Topology.freeze b in

  let eng = Engine.create () in
  let net = Net.create eng topo in
  let trace = Trace.create eng in
  let group = Group.of_index 5 in
  let rp_set = Pim_core.Rp_set.single group (Addr.router 2) in
  let dep =
    Pim_core.Deployment.create_static ~config:Pim_core.Config.fast ~trace net ~rp_set
  in

  let a = Pim_core.Deployment.router dep 0 in
  Pim_core.Router.join_local a group;
  let arrivals = ref [] in
  Pim_core.Router.on_local_data a (fun pkt ->
      match Pim_mcast.Mdata.info pkt with
      | Some i -> arrivals := (i.Pim_mcast.Mdata.seq, Engine.now eng) :: !arrivals
      | None -> ());

  Engine.run ~until:5. eng;
  let d = Pim_core.Deployment.router dep 3 in
  for i = 0 to 9 do
    ignore
      (Engine.schedule_at eng (5. +. float_of_int i) (fun () ->
           Pim_core.Router.send_local_data d ~group ()))
  done;
  Engine.run ~until:30. eng;

  Format.printf "=== arrivals at the receiver (seq, time, hops travelled) ===@.";
  List.iter
    (fun (seq, t) ->
      Format.printf "  seq %2d at t=%5.2f  (sent t=%5.2f -> %.0f hops)@." seq t
        (5. +. float_of_int seq)
        (t -. (5. +. float_of_int seq)))
    (List.sort compare !arrivals);
  Format.printf "  (early packets take the 3-hop RP detour D-B-C-B-A plus the register;@.";
  Format.printf "   after the switch they take the 2-hop shortest path D-B-A)@.";
  let received = List.map fst !arrivals in
  let lost = List.filter (fun s -> not (List.mem s received)) (List.init 10 Fun.id) in
  if lost <> [] then begin
    Format.printf
      "  lost in the transition window: seqs %s — the SPT bit 'minimizes the@."
      (String.concat "," (List.map string_of_int lost));
    Format.printf
      "  chance of losing data packets during the transition' (section 3.3), it@.";
    Format.printf "  does not eliminate it: register copies in flight fail the incoming-@.";
    Format.printf "  interface check once an on-path router completes its switch.@."
  end;

  Format.printf "@.=== final forwarding state ===@.";
  List.iter
    (fun (name, u) ->
      Format.printf "router %s:@." name;
      Format.printf "%a" Pim_mcast.Fwd.pp (Pim_core.Router.fib (Pim_core.Deployment.router dep u)))
    [ ("A", 0); ("B", 1); ("C (RP)", 2); ("D", 3) ];

  Format.printf "@.=== switchover events ===@.";
  List.iter
    (fun r ->
      if List.mem r.Trace.tag [ "spt-switch"; "spt-bit"; "prune"; "join" ] then
        Format.printf "%a@." Trace.pp_record r)
    (Trace.records trace);

  (* The first packets (via the RP) and the steady state (via the SPT)
     must both arrive; a couple of packets may fall in the transition
     window. *)
  if List.length !arrivals < 8 then exit 1
