examples/spt_switchover.ml: Format Fun List Pim_core Pim_graph Pim_mcast Pim_net Pim_sim String
