examples/spt_switchover.mli:
