examples/protocol_independence.mli:
