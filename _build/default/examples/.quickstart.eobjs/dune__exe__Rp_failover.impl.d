examples/rp_failover.ml: Float Format List Pim_core Pim_graph Pim_net Pim_sim
