examples/interop.mli:
