examples/protocol_independence.ml: Format List Pim_core Pim_graph Pim_net Pim_routing Pim_sim
