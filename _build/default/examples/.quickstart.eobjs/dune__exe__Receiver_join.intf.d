examples/receiver_join.mli:
