examples/dense_vs_sparse.mli:
