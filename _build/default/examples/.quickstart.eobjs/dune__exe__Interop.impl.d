examples/interop.ml: Format List Pim_core Pim_dense Pim_graph Pim_interop Pim_net Pim_routing Pim_sim String
