examples/rp_failover.mli:
