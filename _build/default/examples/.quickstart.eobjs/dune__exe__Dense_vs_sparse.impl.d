examples/dense_vs_sparse.ml: Format List Pim_core Pim_dense Pim_exp Pim_graph Pim_net Pim_sim
