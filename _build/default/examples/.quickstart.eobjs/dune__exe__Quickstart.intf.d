examples/quickstart.mli:
