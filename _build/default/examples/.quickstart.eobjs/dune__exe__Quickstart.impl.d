examples/quickstart.ml: Array Format List Pim_core Pim_graph Pim_mcast Pim_net Pim_sim
