examples/receiver_join.ml: Format List Pim_core Pim_graph Pim_igmp Pim_mcast Pim_net Pim_sim
