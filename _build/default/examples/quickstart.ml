(* Quickstart: the Figure 3 rendezvous in five routers.

   Topology:   sender host -- [0] -- [1] -- [2](RP) -- [3] -- [4] -- receiver host

   1. The receiver's first-hop router (4) sends a PIM join toward the RP.
   2. The sender's first-hop router (0) registers the first data packet to
      the RP, which joins back toward the source.
   3. Data then flows natively source -> RP -> receiver; with the default
      Immediate policy router 4 also switches to the source's SPT.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Addr = Pim_net.Addr
module Group = Pim_net.Group

let () =
  let topo = Pim_graph.Classic.line 5 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let trace = Trace.create eng in
  let group = Group.of_index 7 in
  let rp = Addr.router 2 in
  let rp_set = Pim_core.Rp_set.single group rp in
  let dep =
    Pim_core.Deployment.create_static ~config:Pim_core.Config.fast ~trace net ~rp_set
  in

  (* Receiver behind router 4. *)
  let receiver = Pim_core.Deployment.router dep 4 in
  Pim_core.Router.join_local receiver group;
  let received = ref 0 in
  Pim_core.Router.on_local_data receiver (fun pkt ->
      incr received;
      Format.printf "t=%6.2f  receiver got %s@." (Engine.now eng)
        (Pim_net.Packet.payload_to_string pkt.Pim_net.Packet.payload));

  (* Let the join propagate, then send five packets from router 0's host. *)
  Engine.run ~until:5. eng;
  let sender = Pim_core.Deployment.router dep 0 in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at eng (5. +. float_of_int i) (fun () ->
           Pim_core.Router.send_local_data sender ~group ()))
  done;
  Engine.run ~until:20. eng;

  Format.printf "@.--- protocol events ---@.";
  List.iter
    (fun r ->
      if List.mem r.Trace.tag [ "join"; "prune"; "register"; "spt-bit"; "spt-switch" ] then
        Format.printf "%a@." Trace.pp_record r)
    (Trace.records trace);

  Format.printf "@.--- forwarding state ---@.";
  Array.iter
    (fun r ->
      let fib = Pim_core.Router.fib r in
      if Pim_mcast.Fwd.count fib > 0 then begin
        Format.printf "router %d:@." (Pim_core.Router.node r);
        Format.printf "%a" Pim_mcast.Fwd.pp fib
      end)
    (Pim_core.Deployment.routers dep);

  Format.printf "@.--- shared tree (ASCII) ---@.";
  Format.printf "%a" (Pim_core.Deployment.pp_shared_tree dep group) ();

  Format.printf "@.received %d of 5 packets@." !received;
  if !received <> 5 then exit 1
