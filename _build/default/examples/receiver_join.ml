(* Figure 4 of the paper: how a receiver joins and sets up the shared
   tree — with the real IGMP machinery (query, report, DR) driving it.

   Topology (matching the figure):

     receiver host -- [A=0] -- [B=1] -- [C=2 = RP] -- source host

   1. The host answers A's IGMP query with a report for G (or reports
      unsolicited on joining).
   2. A, the designated router of the stub LAN, creates the "(*,G)" entry
      with the LAN as oif and its interface toward the RP as iif, and
      sends a PIM join {C, RP-bit, WC-bit} to B.
   3. B instantiates "(*,G)" the same way and propagates the join to C.
   4. C recognises its own address: it is the RP; its "(*,G)" iif is null.

   Run with: dune exec examples/receiver_join.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Trace = Pim_sim.Trace
module Topology = Pim_graph.Topology
module Addr = Pim_net.Addr
module Group = Pim_net.Group

let () =
  let b = Topology.builder 3 in
  ignore (Topology.add_p2p b 0 1);
  ignore (Topology.add_p2p b 1 2);
  let receiver_lan = Topology.add_lan b [ 0 ] in
  let source_lan = Topology.add_lan b [ 2 ] in
  let topo = Topology.freeze b in

  let eng = Engine.create () in
  let net = Net.create eng topo in
  let trace = Trace.create eng in
  let group = Group.of_index 4 in
  let rp = Addr.router 2 in
  let rp_set = Pim_core.Rp_set.single group rp in
  let igmp_config =
    { Pim_igmp.Router.default_config with Pim_igmp.Router.query_interval = 5.; max_resp = 1. }
  in
  let dep =
    Pim_core.Deployment.create_static ~config:Pim_core.Config.fast ~igmp_config ~trace net
      ~rp_set
  in

  (* A real host on A's stub LAN joins the group via IGMP. *)
  let receiver = Pim_igmp.Host.create net ~link:receiver_lan ~addr:(Addr.host ~router:0 9) () in
  let got = ref 0 in
  Pim_igmp.Host.on_data receiver (fun _ -> incr got);
  Pim_igmp.Host.join receiver group;

  Engine.run ~until:10. eng;

  Format.printf "=== state after the join has propagated (t=10) ===@.";
  List.iter
    (fun (name, u) ->
      Format.printf "router %s:@." name;
      Format.printf "%a" Pim_mcast.Fwd.pp (Pim_core.Router.fib (Pim_core.Deployment.router dep u)))
    [ ("A", 0); ("B", 1); ("C (RP)", 2) ];

  (* A host on C's stub LAN sends: the RP is the first-hop router, so no
     register detour is needed. *)
  let source = Pim_igmp.Host.create net ~link:source_lan ~addr:(Addr.host ~router:2 9) () in
  for _ = 1 to 3 do
    Pim_igmp.Host.send_data source ~group ()
  done;
  Engine.run ~until:20. eng;

  Format.printf "@.=== IGMP and PIM events ===@.";
  List.iter
    (fun r ->
      if List.mem r.Trace.tag [ "member"; "join"; "register"; "entry-new" ] then
        Format.printf "%a@." Trace.pp_record r)
    (Trace.records trace);

  Format.printf "@.receiver host got %d of 3 data packets@." !got;
  if !got <> 3 then exit 1
