(* The "Protocol Independent" in PIM, demonstrated (paper section 2,
   "Routing Protocol Independent").

   The identical PIM-SM scenario — same topology, same members, same
   sending schedule — is run three times over three different unicast
   substrates:

   - oracle shortest paths (instant convergence),
   - a RIP-like distance-vector protocol,
   - an OSPF-like link-state protocol,

   and, once the substrate has converged, PIM behaves identically: same
   deliveries, same multicast state.  Mid-run we also fail a link: PIM
   repairs itself from whatever the substrate offers (section 3.8), at the
   substrate's own convergence speed.

   Run with: dune exec examples/protocol_independence.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Rib = Pim_routing.Rib

let g = Group.of_index 1

type outcome = {
  name : string;
  delivered : int;
  delivered_after_failure : int;
  entries : int;
}

let scenario ~name ~(make_ribs : Net.t -> (int -> Rib.t) * (Engine.t -> unit)) =
  let topo = Pim_graph.Classic.ring 6 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let ribs, wait_converged = make_ribs net in
  wait_converged eng;
  let rp_set = Pim_core.Rp_set.single g (Addr.router 2) in
  let dep =
    Pim_core.Deployment.create ~config:Pim_core.Config.fast ~net ~ribs ~rp_set ()
  in
  let receiver = Pim_core.Deployment.router dep 4 in
  Pim_core.Router.join_local receiver g;
  let delivered = ref 0 in
  Pim_core.Router.on_local_data receiver (fun _ -> incr delivered);
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 +. 10.) eng;
  let sender = Pim_core.Deployment.router dep 2 in
  for i = 0 to 39 do
    ignore
      (Engine.schedule_at eng
         (t0 +. 10. +. float_of_int i)
         (fun () -> Pim_core.Router.send_local_data sender ~group:g ()))
  done;
  (* Fail the 3-4 link half way: the substrate reroutes, PIM re-joins. *)
  ignore (Engine.schedule_at eng (t0 +. 30.) (fun () -> Net.set_link_up net 3 false));
  Engine.run ~until:(t0 +. 70.) eng;
  let before = !delivered in
  Engine.run ~until:(t0 +. 80.) eng;
  {
    name;
    delivered = before;
    delivered_after_failure = !delivered;
    entries = Pim_core.Deployment.total_entries dep;
  }

let () =
  let static net =
    let s = Pim_routing.Static.create net in
    (Pim_routing.Static.rib s, fun _ -> ())
  in
  let dv net =
    let config =
      { Pim_routing.Distance_vector.default_config with
        Pim_routing.Distance_vector.period = 3.; timeout = 20.; triggered_delay = 0.2 }
    in
    let d = Pim_routing.Distance_vector.create ~config net in
    (Pim_routing.Distance_vector.rib d, fun eng -> Engine.run ~until:20. eng)
  in
  let ls net =
    let config = { Pim_routing.Link_state.refresh_period = 30.; spf_delay = 0.2 } in
    let l = Pim_routing.Link_state.create ~config net in
    (Pim_routing.Link_state.rib l, fun eng -> Engine.run ~until:10. eng)
  in
  let outcomes =
    [
      scenario ~name:"oracle shortest paths" ~make_ribs:static;
      scenario ~name:"distance-vector (RIP-like)" ~make_ribs:dv;
      scenario ~name:"link-state (OSPF-like)" ~make_ribs:ls;
    ]
  in
  Format.printf "PIM-SM over three unicast substrates (same scenario, 40 packets,@.";
  Format.printf "link failure at packet 20; ring topology so a detour exists):@.@.";
  Format.printf "  %-28s %10s %12s %8s@." "substrate" "delivered" "after-repair" "entries";
  List.iter
    (fun o ->
      Format.printf "  %-28s %10d %12d %8d@." o.name o.delivered o.delivered_after_failure
        o.entries)
    outcomes;
  Format.printf
    "@.PIM never looked at how the routes were computed — only at the RIB@.";
  Format.printf "interface (lib/routing/rib.mli).  That is the protocol independence claim.@.";
  (* All three must deliver the stream and survive the failure (a few
     packets fall into the SPT-transition and repair windows). *)
  List.iter
    (fun o -> if o.delivered_after_failure < 30 then exit 1)
    outcomes
