(* The Figure 1 argument, executed: three domains joined by a wide-area
   backbone, one group member per domain, one source in domain A.

   Dense-mode DVMRP periodically re-broadcasts data over the whole
   internet when its prunes time out; PIM sparse mode touches only the
   links receivers asked for.  This example prints the per-5-second
   data-transmission counts so the DVMRP re-flood spikes are visible, then
   the summary table of DESIGN.md experiment F1.

   Run with: dune exec examples/dense_vs_sparse.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Group = Pim_net.Group
module Addr = Pim_net.Addr

let group = Group.of_index 1

let members = [ 2; 7; 12 ]

let timeline name ~setup =
  let topo, _, _ = Pim_graph.Classic.three_domains () in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Pim_exp.Metrics.attach net in
  let send = setup net in
  Engine.run ~until:30. eng;
  Pim_exp.Metrics.reset metrics;
  (* One packet per second for 60 s: with the fast 18 s prune timeout the
     DVMRP branches grow back and re-flood several times. *)
  for i = 0 to 59 do
    ignore (Engine.schedule_at eng (30. +. float_of_int i) send)
  done;
  let buckets = ref [] in
  let last = ref 0 in
  for k = 1 to 14 do
    Engine.run ~until:(30. +. (5. *. float_of_int k)) eng;
    let total = Pim_exp.Metrics.data_traversals metrics in
    buckets := (total - !last) :: !buckets;
    last := total
  done;
  Format.printf "%-22s |" name;
  List.iter (fun c -> Format.printf "%5d" c) (List.rev !buckets);
  Format.printf "@."

let () =
  Format.printf "data-packet link transmissions per 5-second bucket (t=30..100):@.";
  timeline "DVMRP (dense mode)" ~setup:(fun net ->
      let d =
        Pim_dense.Router.Deployment.create_static ~config:Pim_dense.Router.fast_config net
      in
      List.iter
        (fun m -> Pim_dense.Router.join_local (Pim_dense.Router.Deployment.router d m) group)
        members;
      let src = Pim_dense.Router.Deployment.router d 1 in
      fun () -> Pim_dense.Router.send_local_data src ~group ());
  timeline "PIM-SM" ~setup:(fun net ->
      let rp_set = Pim_core.Rp_set.single group (Addr.router 0) in
      let d = Pim_core.Deployment.create_static ~config:Pim_core.Config.fast net ~rp_set in
      List.iter
        (fun m -> Pim_core.Router.join_local (Pim_core.Deployment.router d m) group)
        members;
      let src = Pim_core.Deployment.router d 1 in
      fun () -> Pim_core.Router.send_local_data src ~group ());
  Format.printf
    "@.(DVMRP's recurring spikes are the pruned branches growing back and being@.";
  Format.printf " re-flooded, the behaviour Figure 1(b) of the paper illustrates.)@.";
  Format.printf "@.summary over the full scenario:@.";
  Format.printf "%a" Pim_exp.Fig1.pp_results (Pim_exp.Fig1.run ())
