(* Section 4 of the paper, "Interoperation with dense mode networks /
   regions", running end to end.

   A PIM sparse-mode WAN is spliced to a DVMRP-style dense-mode campus
   through a border router:

       WAN (PIM-SM)                       campus (dense mode)
     [0] -- [1=RP] -- [2] -- [3] ======== [4] -- [5] -- [6: member host]
                         internal link           |
                                                [7: source]

   The campus floods membership advertisements internally; the border
   (sparse half 3 / dense half 4) learns "group member existence
   information" and sends explicit PIM joins on the campus's behalf, and
   acts as the campus's proxy DR for sources inside it.

   Run with: dune exec examples/interop.exe *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Topology = Pim_graph.Topology
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Pim = Pim_core.Router
module Dense = Pim_dense.Router
module Border = Pim_interop.Border

let g = Group.of_index 1

let () =
  let b = Topology.builder 8 in
  ignore (Topology.add_p2p b 0 1);
  ignore (Topology.add_p2p b 1 2);
  ignore (Topology.add_p2p b 2 3);
  let internal = Topology.add_p2p b 3 4 in
  ignore (Topology.add_p2p b 4 5);
  ignore (Topology.add_p2p b 5 6);
  ignore (Topology.add_p2p b 5 7);
  let topo = Topology.freeze b in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let static = Pim_routing.Static.create net in
  let rp_set = Pim_core.Rp_set.single g (Addr.router 1) in
  let pim =
    List.map
      (fun u ->
        ( u,
          Pim.create ~config:Pim_core.Config.fast ~net
            ~rib:(Pim_routing.Static.rib static u) ~rp_set u ))
      [ 0; 1; 2; 3 ]
  in
  let dense_config = { Dense.fast_config with Dense.advertise_members = true } in
  let dense =
    List.map
      (fun u ->
        ( u,
          Dense.create ~config:dense_config ~net ~rib:(Pim_routing.Static.rib static u)
            ~neighbor_rib:(Pim_routing.Static.rib static) u ))
      [ 4; 5; 6; 7 ]
  in
  let border =
    Border.create ~pim:(List.assoc 3 pim) ~dense:(List.assoc 4 dense)
      ~internal_iface:(Topology.iface_of_link topo 3 internal)
      ()
  in

  (* A member inside the campus; a member on the WAN. *)
  let campus_got = ref 0 and wan_got = ref 0 in
  Dense.join_local (List.assoc 6 dense) g;
  Dense.on_local_data (List.assoc 6 dense) (fun _ -> incr campus_got);
  Pim.join_local (List.assoc 0 pim) g;
  Pim.on_local_data (List.assoc 0 pim) (fun _ -> incr wan_got);
  Engine.run ~until:10. eng;

  Format.printf "t=10: border joined on the campus's behalf for: %s@."
    (String.concat ", " (List.map Group.to_string (Border.joined_groups border)));

  (* WAN source sends, then a campus source sends. *)
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at eng (10. +. float_of_int i) (fun () ->
           Pim.send_local_data (List.assoc 0 pim) ~group:g ()));
    ignore
      (Engine.schedule_at eng (25. +. float_of_int i) (fun () ->
           Dense.send_local_data (List.assoc 7 dense) ~group:g ()))
  done;
  Engine.run ~until:60. eng;

  Format.printf "campus member received %d packets (5 WAN-sourced + 5 campus-sourced)@."
    !campus_got;
  Format.printf "WAN member received    %d packets@." !wan_got;
  Format.printf "border registered %d packets as the campus's proxy DR@."
    (Pim.stats (List.assoc 3 pim)).Pim.registers_sent;

  (* The campus member leaves; the border withdraws. *)
  Dense.leave_local (List.assoc 6 dense) g;
  Engine.run ~until:75. eng;
  Format.printf "after the last campus member left, border joins: [%s]@."
    (String.concat ", " (List.map Group.to_string (Border.joined_groups border)));

  if !campus_got < 9 || !wan_got < 9 || Border.joined_groups border <> [] then exit 1
