module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group

type query = {
  group : Group.t option;
  max_resp : float;
}

type report = {
  group : Group.t;
  rps : Addr.t list;
}

type Packet.payload +=
  | Query of query
  | Report of report

let () =
  Packet.register_printer (function
    | Query { group; _ } ->
      Some
        (Printf.sprintf "igmp-query %s"
           (match group with None -> "general" | Some g -> Group.to_string g))
    | Report { group; _ } -> Some (Printf.sprintf "igmp-report %s" (Group.to_string group))
    | _ -> None)

(* 224.0.0.1: all-systems on this subnet. *)
let all_systems = Group.of_addr_exn (Addr.of_octets 224 0 0 1)

let query_packet ~src ?group ~max_resp () =
  let dst = match group with None -> all_systems | Some g -> g in
  Packet.multicast ~src ~group:dst ~ttl:1 ~size:8 (Query { group; max_resp })

let report_packet ~src ~group ?(rps = []) () =
  Packet.multicast ~src ~group ~ttl:1 ~size:(8 + (4 * List.length rps)) (Report { group; rps })

let is_igmp pkt =
  match pkt.Packet.payload with Query _ | Report _ -> true | _ -> false
