(** Router-side IGMP: querying and the local membership database.

    The multicast routing protocol owns the node's packet handler and
    passes IGMP packets here through {!handle_packet}; this module tracks
    which directly attached interfaces have members of which groups, ages
    them out, and raises join/leave callbacks — the "local members" input
    that drives every multicast routing protocol in the paper. *)

type config = {
  query_interval : float;  (** general-query period *)
  max_resp : float;  (** response-delay bound advertised in queries *)
  robustness : int;  (** missed queries tolerated before ageing out *)
}

val default_config : config
(** 60 s queries, 10 s response bound, robustness 2. *)

type t

val create : ?config:config -> Pim_sim.Net.t -> node:Pim_graph.Topology.node -> t
(** Starts periodic queries on every attached LAN where this router is the
    querier (lowest router id among live routers on the subnet — a
    stand-in for the querier election of IGMPv2). *)

val handle_packet : t -> iface:Pim_graph.Topology.iface -> Pim_net.Packet.t -> bool
(** Returns true when the packet was an IGMP message (and was consumed). *)

val has_member : t -> Pim_net.Group.t -> bool
(** Any directly attached member on any interface? *)

val member_ifaces : t -> Pim_net.Group.t -> Pim_graph.Topology.iface list
(** Interfaces with live local members of the group, sorted. *)

val groups : t -> Pim_net.Group.t list
(** Groups with at least one live local member. *)

val rp_hint : t -> Pim_net.Group.t -> Pim_net.Addr.t list
(** G->RP mapping most recently advertised by a local member's report
    (empty when hosts supplied none). *)

val on_join : t -> (iface:Pim_graph.Topology.iface -> Pim_net.Group.t -> unit) -> unit
(** Fired when a group gains its first live member on an interface. *)

val on_leave : t -> (iface:Pim_graph.Topology.iface -> Pim_net.Group.t -> unit) -> unit
(** Fired when the last member of a group on an interface ages out. *)
