lib/igmp/message.ml: List Pim_net Printf
