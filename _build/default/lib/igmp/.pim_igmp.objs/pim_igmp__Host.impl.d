lib/igmp/host.ml: List Message Option Pim_mcast Pim_net Pim_sim Pim_util Set
