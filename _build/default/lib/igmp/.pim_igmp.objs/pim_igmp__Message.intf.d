lib/igmp/message.mli: Pim_net
