lib/igmp/router.ml: Array Hashtbl Int List Message Option Pim_graph Pim_net Pim_sim
