lib/igmp/router.mli: Pim_graph Pim_net Pim_sim
