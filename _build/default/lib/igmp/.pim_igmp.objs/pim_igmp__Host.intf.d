lib/igmp/host.mli: Pim_graph Pim_net Pim_sim
