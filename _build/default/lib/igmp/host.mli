(** Simulated end hosts.

    A host lives on a (stub) LAN, answers IGMP queries for the groups it
    has joined — with the classic random response delay and report
    suppression, so one report per group per query suffices on a shared
    subnet — and hands received multicast data to a callback.  Hosts can
    also originate data to a group (senders need not be members: the
    traditional IP multicast service model the paper preserves). *)

type t

val create :
  ?seed:int ->
  ?unsolicited:bool ->
  ?rps_for:(Pim_net.Group.t -> Pim_net.Addr.t list) ->
  Pim_sim.Net.t ->
  link:Pim_graph.Topology.link_id ->
  addr:Pim_net.Addr.t ->
  unit ->
  t
(** [unsolicited] (default true): send a report immediately on {!join}
    rather than waiting for the next query.  [rps_for] supplies the G->RP
    list carried on reports (section 3.1's host-supplied mapping). *)

val addr : t -> Pim_net.Addr.t

val join : t -> Pim_net.Group.t -> unit

val leave : t -> Pim_net.Group.t -> unit
(** Silent leave: membership simply stops being refreshed (IGMPv1
    semantics; the router ages it out). *)

val member_of : t -> Pim_net.Group.t -> bool

val on_data : t -> (Pim_net.Packet.t -> unit) -> unit
(** Callback fired for every data packet received for a joined group. *)

val send_data : t -> group:Pim_net.Group.t -> ?size:int -> unit -> unit
(** Originate one data packet to the group (auto-incrementing sequence
    number, stamped with the current simulation time). *)

val sent : t -> int
(** Number of data packets originated. *)
