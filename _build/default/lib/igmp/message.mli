(** IGMP messages (host membership protocol, paper reference [5] /
    RFC 1112).

    Hosts report group membership in response to router queries; routers
    use the reports to learn of members on directly attached subnetworks
    (paper section 3.1).  The optional RP list on a report models the
    "new IGMP message used by hosts to distribute information about RPs to
    their local routers" that section 3 proposes for dynamic groups. *)

type query = {
  group : Pim_net.Group.t option;  (** [None] = general query *)
  max_resp : float;  (** response-delay bound for hosts *)
}

type report = {
  group : Pim_net.Group.t;
  rps : Pim_net.Addr.t list;  (** optional G->RP mapping advertisement *)
}

type Pim_net.Packet.payload +=
  | Query of query
  | Report of report

val query_packet : src:Pim_net.Addr.t -> ?group:Pim_net.Group.t -> max_resp:float -> unit -> Pim_net.Packet.t

val report_packet : src:Pim_net.Addr.t -> group:Pim_net.Group.t -> ?rps:Pim_net.Addr.t list -> unit -> Pim_net.Packet.t

val is_igmp : Pim_net.Packet.t -> bool
