lib/dense/message.mli: Pim_graph Pim_net
