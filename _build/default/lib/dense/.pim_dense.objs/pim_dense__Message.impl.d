lib/dense/message.ml: Pim_graph Pim_net Printf
