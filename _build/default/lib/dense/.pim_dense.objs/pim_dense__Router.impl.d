lib/dense/router.ml: Array Float Format Hashtbl Int List Message Pim_graph Pim_igmp Pim_mcast Pim_net Pim_routing Pim_sim Printf Set
