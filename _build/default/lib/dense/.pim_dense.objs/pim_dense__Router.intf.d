lib/dense/router.mli: Pim_graph Pim_igmp Pim_mcast Pim_net Pim_routing Pim_sim
