(** Control messages of the dense-mode (flood-and-prune) protocols. *)

type body = {
  target : Pim_net.Addr.t;  (** upstream router the message is for *)
  origin : Pim_graph.Topology.node;
  source : Pim_net.Addr.t;
  group : Pim_net.Group.t;
  holdtime : float;
}

type Pim_net.Packet.payload +=
  | Prune of body
      (** remove the receiving interface from the (S,G) broadcast for
          [holdtime] seconds; the branch grows back afterwards *)
  | Join of body
      (** cancel/override a prune (also the graft of later dense-mode
          protocols when sent upstream on a pruned branch) *)

val prune_packet :
  src:Pim_net.Addr.t ->
  target:Pim_net.Addr.t ->
  origin:Pim_graph.Topology.node ->
  source:Pim_net.Addr.t ->
  group:Pim_net.Group.t ->
  holdtime:float ->
  Pim_net.Packet.t

val join_packet :
  src:Pim_net.Addr.t ->
  target:Pim_net.Addr.t ->
  origin:Pim_graph.Topology.node ->
  source:Pim_net.Addr.t ->
  group:Pim_net.Group.t ->
  Pim_net.Packet.t
