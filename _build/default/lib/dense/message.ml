module Packet = Pim_net.Packet
module Addr = Pim_net.Addr
module Group = Pim_net.Group

type body = {
  target : Addr.t;
  origin : Pim_graph.Topology.node;
  source : Addr.t;
  group : Group.t;
  holdtime : float;
}

type Packet.payload +=
  | Prune of body
  | Join of body

let () =
  Packet.register_printer (function
    | Prune b ->
      Some
        (Printf.sprintf "dm-prune (%s,%s) ->%s" (Addr.to_string b.source)
           (Group.to_string b.group) (Addr.to_string b.target))
    | Join b ->
      Some
        (Printf.sprintf "dm-join (%s,%s) ->%s" (Addr.to_string b.source)
           (Group.to_string b.group) (Addr.to_string b.target))
    | _ -> None)

let all_routers = Group.of_addr_exn Addr.all_pim_routers

let prune_packet ~src ~target ~origin ~source ~group ~holdtime =
  Packet.multicast ~src ~group:all_routers ~ttl:1 ~size:24
    (Prune { target; origin; source; group; holdtime })

let join_packet ~src ~target ~origin ~source ~group =
  Packet.multicast ~src ~group:all_routers ~ttl:1 ~size:24
    (Join { target; origin; source; group; holdtime = 0. })
