lib/cbt/router.mli: Pim_graph Pim_net Pim_routing Pim_sim
