lib/cbt/router.ml: Array Format Hashtbl Int List Pim_graph Pim_mcast Pim_net Pim_routing Pim_sim Printf
