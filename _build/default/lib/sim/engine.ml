type handle = { mutable cancelled : bool }

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  hdl : handle;
}

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : event Pim_util.Heap.t;
}

let compare_events a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let create () = { clock = 0.; seq = 0; queue = Pim_util.Heap.create ~cmp:compare_events }

let now t = t.clock

let push t time action =
  let hdl = { cancelled = false } in
  let ev = { time; seq = t.seq; action; hdl } in
  t.seq <- t.seq + 1;
  Pim_util.Heap.push t.queue ev;
  hdl

let schedule t ~after action =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  push t (t.clock +. after) action

let schedule_at t time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  push t time action

let every t ?start ~interval action =
  if interval <= 0. then invalid_arg "Engine.every: non-positive interval";
  let first = Option.value start ~default:interval in
  if first < 0. then invalid_arg "Engine.every: negative start";
  let hdl = { cancelled = false } in
  let rec arm delay =
    let tick () =
      if not hdl.cancelled then begin
        action ();
        if not hdl.cancelled then arm interval
      end
    in
    let ev = { time = t.clock +. delay; seq = t.seq; action = tick; hdl } in
    t.seq <- t.seq + 1;
    Pim_util.Heap.push t.queue ev
  in
  arm first;
  hdl

let cancel hdl = hdl.cancelled <- true

let run ?until t =
  let limit = Option.value until ~default:infinity in
  let rec loop () =
    match Pim_util.Heap.peek t.queue with
    | None -> ()
    | Some ev when ev.time > limit -> ()
    | Some _ -> (
      match Pim_util.Heap.pop t.queue with
      | None -> ()
      | Some ev ->
        if not ev.hdl.cancelled then begin
          t.clock <- max t.clock ev.time;
          ev.action ()
        end;
        loop ())
  in
  loop ();
  if Float.is_finite limit then t.clock <- max t.clock limit

let pending t = Pim_util.Heap.length t.queue
