lib/sim/engine.mli:
