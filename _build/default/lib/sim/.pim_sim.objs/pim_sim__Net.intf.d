lib/sim/net.mli: Engine Pim_graph Pim_net Pim_util
