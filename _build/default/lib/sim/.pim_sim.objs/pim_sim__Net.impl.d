lib/sim/net.ml: Array Engine Int List Pim_graph Pim_net Pim_util
