lib/sim/engine.ml: Float Int Option Pim_util
