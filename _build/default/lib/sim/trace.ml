type record = {
  time : float;
  node : int;
  tag : string;
  detail : string;
}

type t = {
  eng : Engine.t;
  mutable enabled : bool;
  mutable entries : record list;  (* reversed *)
}

let create ?(enabled = true) eng = { eng; enabled; entries = [] }

let enable t b = t.enabled <- b

let log t ~node ~tag detail =
  if t.enabled then
    t.entries <- { time = Engine.now t.eng; node; tag; detail } :: t.entries

let logf t ~node ~tag fmt =
  Format.kasprintf (fun s -> log t ~node ~tag s) fmt

let records t = List.rev t.entries

let count t ~tag =
  List.fold_left (fun acc r -> if String.equal r.tag tag then acc + 1 else acc) 0 t.entries

let find t ~tag = List.filter (fun r -> String.equal r.tag tag) (records t)

let clear t = t.entries <- []

let pp_record ppf r =
  Format.fprintf ppf "%8.3f node=%-3d %-10s %s" r.time r.node r.tag r.detail

let dump ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) (records t)
