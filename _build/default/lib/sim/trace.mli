(** Timestamped event trace.

    Protocols append human-readable records; examples print them, tests
    assert on them.  Disabled traces cost one branch per call. *)

type t

type record = {
  time : float;
  node : int;  (** router node, or -1 for hosts/global events *)
  tag : string;  (** short event class, e.g. "join", "prune", "register" *)
  detail : string;
}

val create : ?enabled:bool -> Engine.t -> t

val enable : t -> bool -> unit

val log : t -> node:int -> tag:string -> string -> unit

val logf : t -> node:int -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** In chronological (append) order. *)

val count : t -> tag:string -> int

val find : t -> tag:string -> record list

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit

val dump : Format.formatter -> t -> unit
