module Packet = Pim_net.Packet

type info = {
  seq : int;
  sent_at : float;
}

type Packet.payload += Data of info

let () =
  Packet.register_printer (function
    | Data i -> Some (Printf.sprintf "data seq=%d" i.seq)
    | _ -> None)

let make ~src ~group ~seq ~sent_at ?(size = 1000) () =
  Packet.multicast ~src ~group ~size (Data { seq; sent_at })

let is_data pkt = match pkt.Packet.payload with Data _ -> true | _ -> false

let info pkt = match pkt.Packet.payload with Data i -> Some i | _ -> None

let group pkt =
  match (pkt.Packet.payload, pkt.Packet.dst) with
  | Data _, Packet.Multicast g -> Some g
  | _ -> None
