lib/mcast/mdata.ml: Pim_net Printf
