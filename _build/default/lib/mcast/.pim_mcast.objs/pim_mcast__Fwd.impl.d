lib/mcast/fwd.ml: Format Hashtbl Int List Pim_graph Pim_net Printf String
