lib/mcast/mdata.mli: Pim_net
