lib/mcast/delivery.ml: Hashtbl Int List Pim_net
