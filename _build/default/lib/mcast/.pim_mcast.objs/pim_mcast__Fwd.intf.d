lib/mcast/fwd.mli: Format Pim_graph Pim_net
