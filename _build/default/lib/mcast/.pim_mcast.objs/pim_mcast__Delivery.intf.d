lib/mcast/delivery.mli: Pim_net
