(** Multicast data packets.

    A single payload constructor shared by every multicast routing protocol
    in the repository, so that link-traversal observers can classify data
    vs. control traffic uniformly. *)

type info = {
  seq : int;  (** per-source sequence number *)
  sent_at : float;  (** origination time, for delay measurements *)
}

type Pim_net.Packet.payload += Data of info

val make :
  src:Pim_net.Addr.t ->
  group:Pim_net.Group.t ->
  seq:int ->
  sent_at:float ->
  ?size:int ->
  unit ->
  Pim_net.Packet.t
(** Build a data packet (default modelled size 1000 bytes). *)

val is_data : Pim_net.Packet.t -> bool

val info : Pim_net.Packet.t -> info option

val group : Pim_net.Packet.t -> Pim_net.Group.t option
(** The destination group of a data packet. *)
