let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. (n -. 1.))

let minimum = function [] -> 0. | x :: xs -> List.fold_left min x xs

let maximum = function [] -> 0. | x :: xs -> List.fold_left max x xs

let percentile p xs =
  match xs with
  | [] -> 0.
  | _ ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    arr.(idx)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    p50 = percentile 50. xs;
    p95 = percentile 95. xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
