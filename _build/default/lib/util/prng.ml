type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift/multiply mixing of the raw counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    (* Reject the biased tail so the result is exactly uniform. *)
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits scaled into [0, 1). *)
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: k distinct values without building [0, n). *)
  let module IS = Set.Make (Int) in
  let rec loop j acc =
    if j > n - 1 then acc
    else
      let v = int t (j + 1) in
      let acc = if IS.mem v acc then IS.add j acc else IS.add v acc in
      loop (j + 1) acc
  in
  if k = 0 then [] else IS.elements (loop (n - k) IS.empty)

let exponential t mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)
