(** Minimal JSON writer (no parser, no dependencies).

    Backs the machine-readable bench baseline ([BENCH_fig2.json]) and the
    [--json] modes of the bench harness and [pimsim].  Non-finite floats are
    emitted as [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default false) pretty-prints with two-space
    indentation. *)

val to_file : string -> t -> unit
(** Write pretty-printed JSON plus a trailing newline to a file. *)
