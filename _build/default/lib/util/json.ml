type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  (* JSON has no NaN/infinity literals. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write_to buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write_to buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        escape_to buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        write_to buf ~indent ~level:(level + 1) item)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  write_to buf ~indent ~level:0 v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~indent:true v);
      output_char oc '\n')
