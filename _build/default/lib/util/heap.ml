(* Slots at or beyond [size] always hold [None]: [pop] and [to_sorted_list]
   overwrite vacated slots and [clear] blanks the array, so a long-lived heap
   (the simulator event queue) never retains popped events for the GC. *)
type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let get t i =
  match t.data.(i) with
  | Some x -> x
  | None -> assert false

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap None in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp (get t l) (get t i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp (get t r) (get t smallest) < 0 then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let peek t = if t.size = 0 then None else Some (get t 0)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
