(** Fixed-capacity set of small integers, packed one bit per element.

    Built for the experiment hot loops: membership marks, on-tree marks and
    visited sets that are allocated once and then cleared and refilled for
    every group of every trial, instead of allocating a [Hashtbl] each time.
    All operations besides {!clear}, {!cardinal}, {!iter} and {!is_empty} are
    O(1). *)

type t

val create : int -> t
(** [create n] is the empty set over the universe [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Size of the universe (the [n] given to {!create}), not the cardinality. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element.  O(n / word size) — cheap enough to call once per
    group in the Figure 2(b) inner loop. *)

val cardinal : t -> int

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val add_list : t -> int list -> unit

val of_list : int -> int list -> t
(** [of_list n elements] — universe size [n]. *)

val to_list : t -> int list
(** Elements in increasing order. *)
