(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the repository flows through this module so that every
    experiment is reproducible from an explicit integer seed.  SplitMix64 is
    a small, fast, well-distributed generator that is trivial to seed and to
    split into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield identical
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Useful to give each sub-experiment its own stream so
    that adding draws to one does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws a uniform integer in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element of [arr].  [arr] must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t k n] draws [k] distinct integers uniformly from [\[0, n)],
    in increasing order.  Requires [0 <= k <= n]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean (inter-arrival times for Poisson traffic). *)
