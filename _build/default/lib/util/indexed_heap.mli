(** Int-keyed indexed binary min-heap with [decrease_key].

    Elements are small integers below a fixed capacity (node ids in
    Dijkstra); each element appears at most once, and a position index maps
    elements back to heap slots so {!decrease_key} and {!mem} are O(1) (plus
    sifting for the former).  Equal keys compare on the element id, so the
    pop order — and anything built on it, like Dijkstra settle order — is
    deterministic.

    Unlike {!Heap} this heap never allocates after {!create}: {!clear} plus
    reuse is the intended pattern for scratch-buffer Dijkstra
    ({!Pim_graph.Spt.single_source_into} via its scratch). *)

type t

val create : capacity:int -> t
(** A heap over element ids [0 .. capacity-1], initially empty.
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int

val length : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool
(** O(1); [false] for ids outside the capacity. *)

val key : t -> int -> int option
(** Current key of an element, if present. *)

val insert : t -> int -> key:int -> unit
(** @raise Invalid_argument if the element is already present or out of
    capacity. *)

val decrease_key : t -> int -> key:int -> unit
(** @raise Invalid_argument if the element is absent or the new key is
    larger than the current one. *)

val push : t -> int -> key:int -> unit
(** [insert] if absent, [decrease_key] if present with a larger key, no-op
    otherwise.  The upsert Dijkstra wants. *)

val peek_min : t -> (int * int) option
(** [(element, key)] with the smallest key, without removing it. *)

val pop_min : t -> (int * int) option
(** Remove and return the [(element, key)] with the smallest key. *)

val clear : t -> unit
(** Empty the heap in O(length); the structure is immediately reusable. *)
