lib/util/heap.mli:
