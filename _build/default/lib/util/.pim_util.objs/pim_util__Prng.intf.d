lib/util/prng.mli:
