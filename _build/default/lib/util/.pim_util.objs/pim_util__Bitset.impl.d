lib/util/bitset.ml: Array List Printf Sys
