lib/util/bitset.mli:
