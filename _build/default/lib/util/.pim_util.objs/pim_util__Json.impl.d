lib/util/json.ml: Buffer Char Float Fun List Printf String
