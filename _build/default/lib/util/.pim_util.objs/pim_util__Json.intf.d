lib/util/json.mli:
