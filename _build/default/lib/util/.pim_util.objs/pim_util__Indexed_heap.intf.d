lib/util/indexed_heap.mli:
