lib/util/indexed_heap.ml: Array Printf
