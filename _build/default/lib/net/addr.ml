type t = int32

let compare = Int32.compare

let equal = Int32.equal

let hash a = Int32.to_int a land max_int

let of_int32 x = x

let to_int32 x = x

let of_octets a b c d =
  assert (a >= 0 && a <= 255 && b >= 0 && b <= 255);
  assert (c >= 0 && c <= 255 && d >= 0 && d <= 255);
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octet a i = Int32.to_int (Int32.logand (Int32.shift_right_logical a (8 * (3 - i))) 0xFFl)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255 ->
      Some (of_octets a b c d)
    | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Addr.of_string_exn: %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d" (octet a 0) (octet a 1) (octet a 2) (octet a 3)

let pp ppf a = Format.pp_print_string ppf (to_string a)

let router i =
  assert (i >= 0 && i < 65536);
  of_octets 10 0 (i lsr 8) (i land 0xFF)

let router_index a =
  if octet a 0 = 10 && octet a 1 = 0 then Some ((octet a 2 lsl 8) lor octet a 3) else None

let host ~router:i k =
  assert (i >= 0 && i < 65536);
  assert (k >= 1 && k <= 255);
  of_octets 10 (128 lor (i lsr 8)) (i land 0xFF) k

let host_router_index a =
  let b = octet a 1 in
  if octet a 0 = 10 && b land 128 <> 0 then Some (((b land 127) lsl 8) lor octet a 2)
  else None

let is_multicast a = octet a 0 >= 224 && octet a 0 <= 239

let all_pim_routers = of_octets 224 0 0 2
