(** IPv4-style 32-bit addresses.

    The simulator does not parse real packets, but it keeps faithful IPv4
    addressing so that unicast routing tables, RPF checks, and G-to-RP
    mappings work on the same kind of identifiers the paper uses.

    Conventions used throughout the repository:
    - router [i] owns the address [10.0.hi.lo] where [hi.lo] encodes [i];
    - host [k] attached to router [i] lives on the stub subnet
      [10.128+hi.lo.k];
    - multicast groups live in [224.0.0.0/4] (see {!Group}). *)

type t
(** A 32-bit address.  Total order and equality are structural. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val of_int32 : int32 -> t

val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d].  Each octet must be in
    [\[0, 255\]]. *)

val of_string : string -> t option
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val router : int -> t
(** [router i] is the canonical address of simulated router [i]
    (0 <= i < 65536). *)

val router_index : t -> int option
(** Inverse of {!router}; [None] for non-router addresses. *)

val host : router:int -> int -> t
(** [host ~router k] is host [k] (1 <= k <= 255) on the stub subnet of
    [router]. *)

val host_router_index : t -> int option
(** For a host address, the index of the router whose stub subnet it lives
    on. *)

val is_multicast : t -> bool
(** True for addresses in 224.0.0.0/4. *)

val all_pim_routers : t
(** 224.0.0.2 — the link-local group used for hop-by-hop PIM messages on
    multi-access subnetworks (paper section 3.7). *)
