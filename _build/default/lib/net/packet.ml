type payload = ..

type payload += Raw of string

type dst =
  | Unicast of Addr.t
  | Multicast of Group.t

type t = {
  src : Addr.t;
  dst : dst;
  ttl : int;
  size : int;
  payload : payload;
}

let default_ttl = 64

let unicast ~src ~dst ?(ttl = default_ttl) ~size payload =
  { src; dst = Unicast dst; ttl; size; payload }

let multicast ~src ~group ?(ttl = default_ttl) ~size payload =
  { src; dst = Multicast group; ttl; size; payload }

let decr_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let printers : (payload -> string option) list ref = ref []

let register_printer f = printers := f :: !printers

let payload_to_string p =
  let rec first = function
    | [] -> ( match p with Raw s -> Printf.sprintf "raw(%d bytes)" (String.length s) | _ -> "<payload>")
    | f :: fs -> ( match f p with Some s -> s | None -> first fs)
  in
  first !printers

let pp ppf t =
  let dst =
    match t.dst with
    | Unicast a -> Addr.to_string a
    | Multicast g -> Group.to_string g
  in
  Format.fprintf ppf "%s -> %s ttl=%d %db [%s]" (Addr.to_string t.src) dst t.ttl t.size
    (payload_to_string t.payload)
