lib/net/group.mli: Addr Format
