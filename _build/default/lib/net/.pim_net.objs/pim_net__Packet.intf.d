lib/net/packet.mli: Addr Format Group
