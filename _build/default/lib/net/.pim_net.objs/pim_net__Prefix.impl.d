lib/net/prefix.ml: Addr Format Int Int32 Option Printf String
