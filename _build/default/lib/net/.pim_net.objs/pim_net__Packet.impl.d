lib/net/packet.ml: Addr Format Group Printf String
