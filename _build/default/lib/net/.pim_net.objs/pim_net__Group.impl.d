lib/net/group.ml: Addr Int32 Option Printf
