lib/net/addr.ml: Format Int32 Printf String
