type t = { network : Addr.t; length : int }

let mask len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  assert (len >= 0 && len <= 32);
  { network = Addr.of_int32 (Int32.logand (Addr.to_int32 addr) (mask len)); length = len }

let network t = t.network

let length t = t.length

let compare a b =
  match Addr.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = compare a b = 0

let contains t a =
  Int32.equal (Int32.logand (Addr.to_int32 a) (mask t.length)) (Addr.to_int32 t.network)

let subsumes p q = p.length <= q.length && contains p q.network

let host a = make a 32

let default = make (Addr.of_octets 0 0 0 0) 0

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map host (Addr.of_string s)
  | Some i -> (
    let addr = String.sub s 0 i in
    let len = String.sub s (i + 1) (String.length s - i - 1) in
    match (Addr.of_string addr, int_of_string_opt len) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
    | _ -> None)

let to_string t = Printf.sprintf "%s/%d" (Addr.to_string t.network) t.length

let pp ppf t = Format.pp_print_string ppf (to_string t)
