lib/core/rp_set.mli: Pim_net
