lib/core/message.ml: Format List Pim_graph Pim_net Printf String
