lib/core/deployment.ml: Array Format Fun List Pim_graph Pim_mcast Pim_net Pim_routing Pim_sim Printf Router String
