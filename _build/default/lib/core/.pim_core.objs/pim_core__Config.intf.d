lib/core/config.mli:
