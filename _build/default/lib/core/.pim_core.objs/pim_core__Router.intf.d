lib/core/router.mli: Config Pim_graph Pim_igmp Pim_mcast Pim_net Pim_routing Pim_sim Rp_set
