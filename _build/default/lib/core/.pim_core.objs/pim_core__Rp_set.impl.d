lib/core/rp_set.ml: List Map Option Pim_net
