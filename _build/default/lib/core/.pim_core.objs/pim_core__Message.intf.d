lib/core/message.mli: Format Pim_graph Pim_net
