lib/core/deployment.mli: Config Format Pim_graph Pim_igmp Pim_net Pim_routing Pim_sim Router Rp_set
