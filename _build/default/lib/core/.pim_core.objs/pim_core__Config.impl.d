lib/core/config.ml:
