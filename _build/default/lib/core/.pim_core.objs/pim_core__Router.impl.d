lib/core/router.ml: Array Config Float Format Hashtbl Int List Message Option Pim_graph Pim_igmp Pim_mcast Pim_net Pim_routing Pim_sim Rp_set
