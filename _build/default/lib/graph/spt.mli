(** Shortest-path trees (Dijkstra) over a frozen topology.

    These are the SPTs of the paper: the tree rooted at a source over which
    PIM delivers data once receivers switch off the shared tree, and the
    yardstick against which center-based trees are compared in Figure 2. *)

type tree = {
  src : Topology.node;
  dist : int array;  (** cost from [src]; [max_int] when unreachable *)
  parent : Topology.node option array;  (** predecessor on the shortest path *)
  via : Topology.link_id option array;  (** link used to reach the node from its parent *)
}

type scratch
(** Reusable working storage for Dijkstra: the distance/parent/via arrays
    and the indexed heap, allocated once and recycled across runs.  The
    Figure 2 experiments run Dijkstra hundreds of thousands of times on
    same-sized graphs; reusing a scratch removes all per-call allocation. *)

val make_scratch : n:int -> scratch
(** Scratch for topologies of exactly [n] nodes. *)

val scratch_size : scratch -> int

val single_source :
  ?usable:(Topology.node -> Topology.node -> Topology.link_id -> bool) ->
  Topology.t ->
  Topology.node ->
  tree
(** Dijkstra from [src].  Ties are broken toward smaller node ids, so the
    result is deterministic.  [usable u v lid] (default: always true) gates
    each directed edge, letting callers exclude failed links or nodes.
    Allocates a fresh result; see {!single_source_into} for the
    allocation-free variant. *)

val single_source_into :
  ?usable:(Topology.node -> Topology.node -> Topology.link_id -> bool) ->
  scratch ->
  Topology.t ->
  Topology.node ->
  tree
(** Same as {!single_source} but computes into [scratch] without allocating.
    The returned tree {e aliases} the scratch arrays: it is valid only until
    the next [single_source_into] (or {!all_pairs_into}) call on the same
    scratch — copy [dist]/[parent]/[via] if you need them longer.
    @raise Invalid_argument when the scratch size differs from
    [Topology.n_nodes]. *)

val distance : tree -> Topology.node -> int option
(** [None] when unreachable. *)

val path : tree -> Topology.node -> Topology.node list option
(** Node sequence from the root to the given node, inclusive. *)

val first_hop : Topology.t -> tree -> (Topology.node option array * Topology.iface option array)
(** For every destination, the neighbor and root-side interface of the first
    link on the shortest path from the root.  Used to derive unicast
    forwarding tables. *)

val tree_edges :
  tree ->
  members:Topology.node list ->
  (Topology.node * Topology.node * Topology.link_id) list
(** The union of the shortest paths from the root to each member: the
    source-rooted distribution tree, as (parent, child, link) triples,
    deduplicated. *)

val all_pairs : Topology.t -> int array array
(** [all_pairs t] gives the full distance matrix ([max_int] when
    unreachable). *)

val all_pairs_into : scratch -> Topology.t -> int array array -> unit
(** Fill a caller-provided [n x n] matrix with all-pairs distances, reusing
    [scratch] for every source.  The matrix rows are owned by the caller
    (they are written, not aliased), so the result survives further scratch
    reuse.
    @raise Invalid_argument on size mismatches. *)
