(** Shortest-path trees (Dijkstra) over a frozen topology.

    These are the SPTs of the paper: the tree rooted at a source over which
    PIM delivers data once receivers switch off the shared tree, and the
    yardstick against which center-based trees are compared in Figure 2. *)

type tree = {
  src : Topology.node;
  dist : int array;  (** cost from [src]; [max_int] when unreachable *)
  parent : Topology.node option array;  (** predecessor on the shortest path *)
  via : Topology.link_id option array;  (** link used to reach the node from its parent *)
}

val single_source :
  ?usable:(Topology.node -> Topology.node -> Topology.link_id -> bool) ->
  Topology.t ->
  Topology.node ->
  tree
(** Dijkstra from [src].  Ties are broken toward smaller node ids, so the
    result is deterministic.  [usable u v lid] (default: always true) gates
    each directed edge, letting callers exclude failed links or nodes. *)

val distance : tree -> Topology.node -> int option
(** [None] when unreachable. *)

val path : tree -> Topology.node -> Topology.node list option
(** Node sequence from the root to the given node, inclusive. *)

val first_hop : Topology.t -> tree -> (Topology.node option array * Topology.iface option array)
(** For every destination, the neighbor and root-side interface of the first
    link on the shortest path from the root.  Used to derive unicast
    forwarding tables. *)

val tree_edges :
  Topology.t ->
  tree ->
  members:Topology.node list ->
  (Topology.node * Topology.node * Topology.link_id) list
(** The union of the shortest paths from the root to each member: the
    source-rooted distribution tree, as (parent, child, link) triples,
    deduplicated. *)

val all_pairs : Topology.t -> int array array
(** [all_pairs t] gives the full distance matrix ([max_int] when
    unreachable). *)
