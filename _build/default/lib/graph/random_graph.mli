(** Random connected topologies with a target average node degree.

    Figure 2 of the paper evaluates tree types on "500 different 50-node
    graphs" for each "network node degree" between 3 and 8.  This module
    generates such graphs: a uniform random spanning tree guarantees
    connectivity, then uniformly chosen extra point-to-point links are
    added until the average degree [2m/n] reaches the target.  All links
    have unit cost and unit delay unless overridden. *)

val generate :
  ?cost:int ->
  ?delay:float ->
  prng:Pim_util.Prng.t ->
  nodes:int ->
  degree:float ->
  unit ->
  Topology.t
(** [generate ~prng ~nodes ~degree ()] returns a connected topology whose
    average degree is as close to [degree] as the edge count allows.
    Requires [degree >= 2 * (nodes-1) / nodes] (a spanning tree already has
    average degree just under 2) and at most [nodes-1] (complete graph).
    Self-loops and duplicate links are never produced. *)

val pick_members :
  prng:Pim_util.Prng.t -> nodes:int -> count:int -> Topology.node list
(** [count] distinct nodes chosen uniformly — the group members of one
    experiment trial. *)
