module Prng = Pim_util.Prng

let generate ?(cost = 1) ?(delay = 1.0) ~prng ~nodes ~degree () =
  if nodes < 2 then invalid_arg "Random_graph.generate: need at least 2 nodes";
  let wanted = int_of_float (Float.round (float_of_int nodes *. degree /. 2.)) in
  let max_edges = nodes * (nodes - 1) / 2 in
  let m = max (nodes - 1) (min wanted max_edges) in
  let b = Topology.builder nodes in
  let present = Hashtbl.create (2 * m) in
  let key u v = (min u v * nodes) + max u v in
  let add u v =
    Hashtbl.add present (key u v) ();
    ignore (Topology.add_p2p ~cost ~delay b u v)
  in
  (* Random spanning tree: attach each node (in random order) to a random
     already-placed node. *)
  let order = Array.init nodes Fun.id in
  Prng.shuffle prng order;
  for i = 1 to nodes - 1 do
    let u = order.(i) in
    let v = order.(Prng.int prng i) in
    add u v
  done;
  let count = ref (nodes - 1) in
  while !count < m do
    let u = Prng.int prng nodes and v = Prng.int prng nodes in
    if u <> v && not (Hashtbl.mem present (key u v)) then begin
      add u v;
      incr count
    end
  done;
  Topology.freeze b

let pick_members ~prng ~nodes ~count = Prng.sample prng count nodes
