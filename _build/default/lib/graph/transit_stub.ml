module Prng = Pim_util.Prng

type t = {
  topo : Topology.t;
  transit : Topology.node list;
  gateways : Topology.node list;
  stubs : Topology.node list list;
}

let generate ?(transit = 4) ?(stubs_per_transit = 2) ?(stub_size = 4) ?(backbone_cost = 3)
    ?(backbone_delay = 5.) ?(access_cost = 2) ?(access_delay = 3.) ~prng () =
  if transit < 1 || stubs_per_transit < 1 || stub_size < 1 then
    invalid_arg "Transit_stub.generate: sizes must be positive";
  let total = transit + (transit * stubs_per_transit * stub_size) in
  let b = Topology.builder total in
  (* Backbone: ring plus a few random chords for path diversity. *)
  let transit_nodes = List.init transit Fun.id in
  if transit > 1 then begin
    for i = 0 to transit - 1 do
      if transit > 2 || i < transit - 1 then
        ignore
          (Topology.add_p2p ~cost:backbone_cost ~delay:backbone_delay b i ((i + 1) mod transit))
    done;
    if transit >= 4 then
      for _ = 1 to transit / 2 do
        let u = Prng.int prng transit and v = Prng.int prng transit in
        if
          u <> v
          && (not (abs (u - v) = 1))
          && not (abs (u - v) = transit - 1)
        then ignore (Topology.add_p2p ~cost:backbone_cost ~delay:backbone_delay b u v)
      done
  end;
  (* Stub domains: a random connected graph behind one gateway. *)
  let next = ref transit in
  let stubs = ref [] in
  let gateways = ref [] in
  List.iter
    (fun tnode ->
      for _ = 1 to stubs_per_transit do
        let base = !next in
        next := !next + stub_size;
        let members = List.init stub_size (fun k -> base + k) in
        (* Spanning tree inside the stub... *)
        for k = 1 to stub_size - 1 do
          let parent = base + Prng.int prng k in
          ignore (Topology.add_p2p b (base + k) parent)
        done;
        (* ...plus a chord when the stub is big enough. *)
        if stub_size >= 4 then begin
          let u = base + Prng.int prng stub_size and v = base + Prng.int prng stub_size in
          if u <> v then ignore (Topology.add_p2p b u v)
        end;
        (* Gateway = first router of the stub, attached to its transit. *)
        ignore (Topology.add_p2p ~cost:access_cost ~delay:access_delay b base tnode);
        gateways := base :: !gateways;
        stubs := members :: !stubs
      done)
    transit_nodes;
  {
    topo = Topology.freeze b;
    transit = transit_nodes;
    gateways = List.rev !gateways;
    stubs = List.rev !stubs;
  }

let random_stub_member t ~prng =
  let candidates =
    List.concat_map (function _gw :: rest when rest <> [] -> rest | stub -> stub) t.stubs
  in
  let arr = Array.of_list candidates in
  Prng.pick prng arr
