(** Optimal center (core) placement for center-based trees.

    Reproduces the tree construction of Figure 2: the center-based tree of a
    group is the shortest-path tree rooted at a core router, shared by all
    senders; the {e optimal} core is the node minimising the worst
    sender-to-receiver delay [d(s,c) + d(c,r)] (Wall's center-based tree,
    paper reference [11]). *)

type node = Topology.node

val spt_max_delay : int array array -> senders:node list -> receivers:node list -> int
(** Worst shortest-path delay [max d(s,r)] over sender/receiver pairs
    with [s <> r].  The matrix is {!Spt.all_pairs}. *)

val cbt_max_delay : int array array -> center:node -> senders:node list -> receivers:node list -> int
(** Worst delay over the center-based tree: [max (d(s,c) + d(c,r))] over
    pairs with [s <> r]. *)

val optimal :
  int array array -> senders:node list -> receivers:node list -> node * int
(** [optimal apsp ~senders ~receivers] searches every node as candidate
    core and returns the core with the smallest {!cbt_max_delay} (ties
    broken toward the smaller node id) together with that delay. *)

val tree :
  Topology.t ->
  center:node ->
  members:node list ->
  Topology.link_id Tree.t
(** The center-based tree itself: union of shortest paths from the core to
    each member, as a {!Tree.t} labelled with link ids.  Used
    bidirectionally by every sender. *)
