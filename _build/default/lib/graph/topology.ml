type node = int

type link_id = int

type iface = int

type link = {
  id : link_id;
  ends : node array;
  cost : int;
  delay : float;
  is_lan : bool;
}

type t = {
  n : int;
  links : link array;
  adj : (iface * link_id) array array;  (* per node, indexed by iface *)
}

type builder = {
  bn : int;
  mutable blinks : link list;  (* reversed *)
  mutable count : int;
}

let builder n =
  assert (n > 0);
  { bn = n; blinks = []; count = 0 }

let check_node b u =
  if u < 0 || u >= b.bn then invalid_arg (Printf.sprintf "Topology: node %d out of range" u)

let add_link b ends ~cost ~delay ~is_lan =
  List.iter (check_node b) (Array.to_list ends);
  let id = b.count in
  b.blinks <- { id; ends; cost; delay; is_lan } :: b.blinks;
  b.count <- b.count + 1;
  id

let add_p2p ?(cost = 1) ?(delay = 1.0) b u v =
  if u = v then invalid_arg "Topology.add_p2p: self loop";
  add_link b [| u; v |] ~cost ~delay ~is_lan:false

let add_lan ?(cost = 1) ?(delay = 1.0) b nodes =
  if nodes = [] then invalid_arg "Topology.add_lan: empty LAN";
  let sorted = List.sort_uniq Int.compare nodes in
  if List.length sorted <> List.length nodes then invalid_arg "Topology.add_lan: duplicate node";
  add_link b (Array.of_list nodes) ~cost ~delay ~is_lan:true

let freeze b =
  let links = Array.of_list (List.rev b.blinks) in
  let counts = Array.make b.bn 0 in
  Array.iter (fun l -> Array.iter (fun u -> counts.(u) <- counts.(u) + 1) l.ends) links;
  let adj = Array.init b.bn (fun u -> Array.make counts.(u) (0, 0)) in
  let next = Array.make b.bn 0 in
  Array.iter
    (fun l ->
      Array.iter
        (fun u ->
          adj.(u).(next.(u)) <- (next.(u), l.id);
          next.(u) <- next.(u) + 1)
        l.ends)
    links;
  { n = b.bn; links; adj }

let n_nodes t = t.n

let n_links t = Array.length t.links

let link t lid = t.links.(lid)

let links t = t.links

let ifaces t u = t.adj.(u)

let link_of_iface t u i =
  if i < 0 || i >= Array.length t.adj.(u) then
    invalid_arg (Printf.sprintf "Topology.link_of_iface: node %d has no iface %d" u i);
  let _, lid = t.adj.(u).(i) in
  t.links.(lid)

let iface_of_link_opt t u lid =
  let arr = t.adj.(u) in
  let rec find i =
    if i >= Array.length arr then None
    else
      let iface, l = arr.(i) in
      if l = lid then Some iface else find (i + 1)
  in
  find 0

let iface_of_link t u lid =
  match iface_of_link_opt t u lid with Some i -> i | None -> raise Not_found

let others_on_link t lid u =
  let l = t.links.(lid) in
  Array.to_list l.ends |> List.filter (fun v -> v <> u)

let neighbors t u =
  Array.to_list t.adj.(u)
  |> List.concat_map (fun (iface, lid) ->
         List.map (fun v -> (iface, v)) (others_on_link t lid u))

let degree t u = Array.length t.adj.(u)

let connected t =
  let seen = Array.make t.n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun (_, v) -> dfs v) (neighbors t u)
    end
  in
  dfs 0;
  Array.for_all Fun.id seen

let pp ppf t =
  Format.fprintf ppf "topology: %d nodes, %d links@." t.n (Array.length t.links);
  Array.iter
    (fun l ->
      let ends = String.concat "," (List.map string_of_int (Array.to_list l.ends)) in
      Format.fprintf ppf "  link %d%s: {%s} cost=%d delay=%.3f@." l.id
        (if l.is_lan then " (lan)" else "")
        ends l.cost l.delay)
    t.links
