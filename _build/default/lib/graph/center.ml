type node = Topology.node

let spt_max_delay apsp ~senders ~receivers =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc r -> if s = r then acc else max acc apsp.(s).(r))
        acc receivers)
    0 senders

let cbt_max_delay apsp ~center ~senders ~receivers =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc r ->
          if s = r then acc
          else
            let d1 = apsp.(s).(center) and d2 = apsp.(center).(r) in
            if d1 = max_int || d2 = max_int then max_int else max acc (d1 + d2))
        acc receivers)
    0 senders

let optimal apsp ~senders ~receivers =
  let n = Array.length apsp in
  let best = ref (-1) and best_delay = ref max_int in
  for c = 0 to n - 1 do
    let d = cbt_max_delay apsp ~center:c ~senders ~receivers in
    if d < !best_delay then begin
      best := c;
      best_delay := d
    end
  done;
  if !best < 0 then invalid_arg "Center.optimal: empty graph";
  (!best, !best_delay)

let tree topo ~center ~members =
  let spt = Spt.single_source topo center in
  let edges = Spt.tree_edges spt ~members in
  Tree.of_edges ~n:(Topology.n_nodes topo) edges
