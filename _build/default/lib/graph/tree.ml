type node = Topology.node

type 'label t = {
  n : int;
  adj : (node * 'label) list array;
  on_tree : bool array;
  edge_list : (node * node * 'label) list;
}

let of_edges ~n edge_list =
  let adj = Array.make n [] in
  let on_tree = Array.make n false in
  List.iter
    (fun (u, v, lbl) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Tree.of_edges: node out of range";
      adj.(u) <- (v, lbl) :: adj.(u);
      adj.(v) <- (u, lbl) :: adj.(v);
      on_tree.(u) <- true;
      on_tree.(v) <- true)
    edge_list;
  (* Acyclicity check: edges = nodes-on-tree - components. *)
  let seen = Array.make n false in
  let components = ref 0 in
  let rec dfs u =
    seen.(u) <- true;
    List.iter (fun (v, _) -> if not seen.(v) then dfs v) adj.(u)
  in
  for u = 0 to n - 1 do
    if on_tree.(u) && not seen.(u) then begin
      incr components;
      dfs u
    end
  done;
  let on_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 on_tree in
  if List.length edge_list <> on_count - !components then invalid_arg "Tree.of_edges: edges contain a cycle";
  { n; adj; on_tree; edge_list }

let mem_node t u = u >= 0 && u < t.n && t.on_tree.(u)

let n_edges t = List.length t.edge_list

let edges t = t.edge_list

let path t a b =
  if not (mem_node t a && mem_node t b) then None
  else if a = b then Some ([ a ], [])
  else begin
    (* BFS from a recording predecessors. *)
    let pred = Array.make t.n None in
    let seen = Array.make t.n false in
    seen.(a) <- true;
    let q = Queue.create () in
    Queue.add a q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (v, lbl) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            pred.(v) <- Some (u, lbl);
            if v = b then found := true else Queue.add v q
          end)
        t.adj.(u)
    done;
    if not !found then None
    else begin
      let rec up v nodes labels =
        match pred.(v) with
        | None -> (v :: nodes, labels)
        | Some (u, lbl) -> up u (v :: nodes) (lbl :: labels)
      in
      Some (up b [] [])
    end
  end

let path_length t a b = Option.map (fun (_, labels) -> List.length labels) (path t a b)

let covered_labels t ~src ~targets =
  if not (mem_node t src) then []
  else begin
    let wanted = Array.make t.n false in
    List.iter (fun v -> if v <> src && mem_node t v then wanted.(v) <- true) targets;
    let acc = ref [] in
    (* DFS from src; an edge is covered iff its far-side subtree contains a
       target. *)
    let rec descend u parent =
      let hits = ref (if wanted.(u) then 1 else 0) in
      List.iter
        (fun (v, lbl) ->
          if v <> parent then begin
            let sub = descend v u in
            if sub > 0 then acc := lbl :: !acc;
            hits := !hits + sub
          end)
        t.adj.(u);
      !hits
    in
    ignore (descend src (-1));
    !acc
  end
