let line ?(cost = 1) ?(delay = 1.0) n =
  let b = Topology.builder n in
  for i = 0 to n - 2 do
    ignore (Topology.add_p2p ~cost ~delay b i (i + 1))
  done;
  Topology.freeze b

let ring ?(cost = 1) ?(delay = 1.0) n =
  let b = Topology.builder n in
  for i = 0 to n - 1 do
    ignore (Topology.add_p2p ~cost ~delay b i ((i + 1) mod n))
  done;
  Topology.freeze b

let star ?(cost = 1) ?(delay = 1.0) n =
  let b = Topology.builder n in
  for i = 1 to n - 1 do
    ignore (Topology.add_p2p ~cost ~delay b 0 i)
  done;
  Topology.freeze b

let grid ?(cost = 1) ?(delay = 1.0) rows cols =
  let b = Topology.builder (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c < cols - 1 then ignore (Topology.add_p2p ~cost ~delay b (id r c) (id r (c + 1)));
      if r < rows - 1 then ignore (Topology.add_p2p ~cost ~delay b (id r c) (id (r + 1) c))
    done
  done;
  Topology.freeze b

let three_domains () =
  (* Domains A (0..4), B (5..9), C (10..14); backbone 15,16,17.  Gateways
     are 0, 5 and 10; each domain is a small mesh behind its gateway. *)
  let b = Topology.builder 18 in
  let domain base =
    (* gateway = base; internal ring plus chords *)
    ignore (Topology.add_p2p b base (base + 1));
    ignore (Topology.add_p2p b base (base + 3));
    ignore (Topology.add_p2p b (base + 1) (base + 2));
    ignore (Topology.add_p2p b (base + 2) (base + 3));
    ignore (Topology.add_p2p b (base + 2) (base + 4));
    ignore (Topology.add_p2p b (base + 3) (base + 4))
  in
  domain 0;
  domain 5;
  domain 10;
  (* Backbone triangle with higher-cost wide-area links. *)
  ignore (Topology.add_p2p ~cost:3 ~delay:5.0 b 15 16);
  ignore (Topology.add_p2p ~cost:3 ~delay:5.0 b 16 17);
  ignore (Topology.add_p2p ~cost:3 ~delay:5.0 b 15 17);
  (* Domain gateways to backbone. *)
  ignore (Topology.add_p2p ~cost:2 ~delay:3.0 b 0 15);
  ignore (Topology.add_p2p ~cost:2 ~delay:3.0 b 5 16);
  ignore (Topology.add_p2p ~cost:2 ~delay:3.0 b 10 17);
  (Topology.freeze b, [ 0; 5; 10 ], [ 15; 16; 17 ])
