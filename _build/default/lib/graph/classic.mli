(** Small deterministic topologies used by scenarios, examples and tests. *)

val line : ?cost:int -> ?delay:float -> int -> Topology.t
(** [line n]: nodes 0-1-2-...-(n-1). *)

val ring : ?cost:int -> ?delay:float -> int -> Topology.t

val star : ?cost:int -> ?delay:float -> int -> Topology.t
(** [star n]: node 0 is the hub, nodes 1..n-1 are spokes. *)

val grid : ?cost:int -> ?delay:float -> int -> int -> Topology.t
(** [grid rows cols]: node [r*cols + c] connects to its right and down
    neighbors. *)

val three_domains : unit -> Topology.t * Topology.node list * Topology.node list
(** The Figure 1 topology: three 5-router domains (A = 0..4, B = 5..9,
    C = 10..14) joined by a 3-router wide-area backbone (15..17).  Returns
    [(topology, domain_gateways, backbone_nodes)].  Domain A's routers are
    meshed internally and attach to the backbone through their gateway;
    likewise B and C.  The member routers used in the Figure 1 narrative
    are 2 (domain A), 7 (domain B) and 12 (domain C). *)
