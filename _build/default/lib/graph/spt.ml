type tree = {
  src : Topology.node;
  dist : int array;
  parent : Topology.node option array;
  via : Topology.link_id option array;
}

let single_source ?(usable = fun _ _ _ -> true) topo src =
  let n = Topology.n_nodes topo in
  let dist = Array.make n max_int in
  let parent = Array.make n None in
  let via = Array.make n None in
  let done_ = Array.make n false in
  let cmp (d1, n1) (d2, n2) =
    match Int.compare d1 d2 with 0 -> Int.compare n1 n2 | c -> c
  in
  let heap = Pim_util.Heap.create ~cmp in
  dist.(src) <- 0;
  Pim_util.Heap.push heap (0, src);
  let rec loop () =
    match Pim_util.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not done_.(u) then begin
        done_.(u) <- true;
        Array.iter
          (fun (_, lid) ->
            let l = Topology.link topo lid in
            List.iter
              (fun v ->
                let nd = d + l.Topology.cost in
                if usable u v lid && nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent.(v) <- Some u;
                  via.(v) <- Some lid;
                  Pim_util.Heap.push heap (nd, v)
                end)
              (Topology.others_on_link topo lid u))
          (Topology.ifaces topo u);
        loop ()
      end
      else loop ()
  in
  loop ();
  { src; dist; parent; via }

let distance t v = if t.dist.(v) = max_int then None else Some t.dist.(v)

let path t v =
  if t.dist.(v) = max_int then None
  else begin
    let rec up v acc =
      if v = t.src then v :: acc
      else
        match t.parent.(v) with
        | None -> v :: acc (* v = src handled above; unreachable has no parent *)
        | Some p -> up p (v :: acc)
    in
    Some (up v [])
  end

let first_hop topo t =
  let n = Topology.n_nodes topo in
  let hop = Array.make n None in
  let hop_iface = Array.make n None in
  (* Walk parent pointers once per node, memoizing the answer. *)
  let rec resolve v =
    if v = t.src then None
    else
      match hop.(v) with
      | Some _ as h -> h
      | None -> (
        match t.parent.(v) with
        | None -> None
        | Some p ->
          let answer =
            if p = t.src then begin
              (match t.via.(v) with
              | Some lid -> hop_iface.(v) <- Some (Topology.iface_of_link topo t.src lid)
              | None -> ());
              Some v
            end
            else begin
              let h = resolve p in
              hop_iface.(v) <- hop_iface.(p);
              h
            end
          in
          hop.(v) <- answer;
          answer)
  in
  for v = 0 to n - 1 do
    ignore (resolve v)
  done;
  (hop, hop_iface)

let tree_edges topo t ~members =
  ignore topo;
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let rec up v =
    if v <> t.src && not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      match (t.parent.(v), t.via.(v)) with
      | Some p, Some lid ->
        edges := (p, v, lid) :: !edges;
        up p
      | _ -> ()
    end
  in
  List.iter (fun m -> if t.dist.(m) <> max_int then up m) members;
  List.rev !edges

let all_pairs topo =
  let n = Topology.n_nodes topo in
  Array.init n (fun u -> (single_source topo u).dist)
