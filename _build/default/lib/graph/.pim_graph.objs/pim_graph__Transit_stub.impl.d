lib/graph/transit_stub.ml: Array Fun List Pim_util Topology
