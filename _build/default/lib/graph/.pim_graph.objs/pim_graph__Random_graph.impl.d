lib/graph/random_graph.ml: Array Float Fun Hashtbl Pim_util Topology
