lib/graph/center.ml: Array List Spt Topology Tree
