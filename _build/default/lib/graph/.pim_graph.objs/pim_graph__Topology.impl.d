lib/graph/topology.ml: Array Format Fun Int List Printf String
