lib/graph/spt.mli: Topology
