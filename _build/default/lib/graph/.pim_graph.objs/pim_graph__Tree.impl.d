lib/graph/tree.ml: Array List Option Queue Topology
