lib/graph/classic.ml: Topology
