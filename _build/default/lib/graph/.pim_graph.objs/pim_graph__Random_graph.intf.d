lib/graph/random_graph.mli: Pim_util Topology
