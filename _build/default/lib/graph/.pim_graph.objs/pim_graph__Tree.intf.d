lib/graph/tree.mli: Topology
