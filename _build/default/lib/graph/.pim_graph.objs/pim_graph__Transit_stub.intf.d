lib/graph/transit_stub.mli: Pim_util Topology
