lib/graph/spt.ml: Array Hashtbl Int List Pim_util Topology
