lib/graph/spt.ml: Array Hashtbl List Pim_util Printf Topology
