lib/graph/center.mli: Topology Tree
