lib/graph/classic.mli: Topology
