(** Network topologies: routers connected by point-to-point links and
    multi-access LANs.

    A topology is built once through a {!builder} and then frozen; the
    frozen value exposes array-backed adjacency suitable for the inner
    loops of Dijkstra and of the simulator.

    Nodes are integers [0 .. n_nodes-1] and model routers.  Every
    (node, link) incidence is an {e interface}, numbered densely per node in
    link-creation order — the same numbering the paper uses when it talks
    about incoming and outgoing interface lists of multicast forwarding
    entries. *)

type node = int

type link_id = int

type iface = int
(** Interface number, local to a node. *)

type link = {
  id : link_id;
  ends : node array;  (** two nodes for point-to-point, two or more for a LAN *)
  cost : int;  (** unicast routing metric *)
  delay : float;  (** propagation delay in simulated seconds *)
  is_lan : bool;
}

type t

type builder

val builder : int -> builder
(** [builder n] starts a topology with [n] router nodes and no links. *)

val add_p2p : ?cost:int -> ?delay:float -> builder -> node -> node -> link_id
(** Add a point-to-point link.  Default cost 1, default delay 1.0. *)

val add_lan : ?cost:int -> ?delay:float -> builder -> node list -> link_id
(** Add a multi-access LAN joining the given routers (at least one; a
    single-router LAN is a stub subnet where hosts live). *)

val freeze : builder -> t

(** {1 Queries on a frozen topology} *)

val n_nodes : t -> int

val n_links : t -> int

val link : t -> link_id -> link

val links : t -> link array

val ifaces : t -> node -> (iface * link_id) array
(** All interfaces of a node, in interface order. *)

val link_of_iface : t -> node -> iface -> link
(** @raise Invalid_argument if the interface does not exist. *)

val iface_of_link : t -> node -> link_id -> iface
(** The interface of [node] on [link].
    @raise Not_found if [node] is not on that link. *)

val iface_of_link_opt : t -> node -> link_id -> iface option

val neighbors : t -> node -> (iface * node) list
(** Every (interface, neighbor) adjacency; a LAN with [k] other routers
    contributes [k] pairs on the same interface. *)

val others_on_link : t -> link_id -> node -> node list
(** The other routers on a link. *)

val degree : t -> node -> int
(** Number of interfaces. *)

val connected : t -> bool
(** Whole-topology connectivity (over links regardless of cost). *)

val pp : Format.formatter -> t -> unit
