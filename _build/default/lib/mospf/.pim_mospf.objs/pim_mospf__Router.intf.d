lib/mospf/router.mli: Pim_graph Pim_net Pim_sim
