lib/mospf/router.ml: Array Format Fun Hashtbl Int List Pim_graph Pim_mcast Pim_net Pim_sim Printf Set
