module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr

type row = {
  mean_on : float;
  mean_off : float;
  joins_observed : int;
  mean_join_latency : float;
  p95_join_latency : float;
  control_traversals : int;
  deliveries : int;
}

let group = Group.of_index 7

let one ~receivers ~duration ~mean_on ~mean_off ~seed =
  let prng = Prng.create seed in
  let ts = Pim_graph.Transit_stub.generate ~transit:4 ~stubs_per_transit:2 ~stub_size:4 ~prng () in
  let eng = Engine.create () in
  let net = Net.create eng ts.Pim_graph.Transit_stub.topo in
  let metrics = Metrics.attach net in
  (* RP on the backbone: reachable from every stub. *)
  let rp = List.hd ts.Pim_graph.Transit_stub.transit in
  let rp_set = Pim_core.Rp_set.single group (Addr.router rp) in
  let dep = Pim_core.Deployment.create_static ~config:Pim_core.Config.fast net ~rp_set in
  let source_node = Pim_graph.Transit_stub.random_stub_member ts ~prng in
  let latencies = ref [] in
  let deliveries = ref 0 in
  let joins = ref 0 in
  (* Each churning receiver alternates joined/left with exponential
     holding times; join latency = first delivery after each join. *)
  let setup_receiver node =
    let r = Pim_core.Deployment.router dep node in
    let waiting_since = ref None in
    Pim_core.Router.on_local_data r (fun _ ->
        incr deliveries;
        match !waiting_since with
        | Some t0 ->
          latencies := (Engine.now eng -. t0) :: !latencies;
          waiting_since := None
        | None -> ());
    let stream = Prng.split prng in
    let rec join_phase () =
      if Engine.now eng < duration then begin
        incr joins;
        waiting_since := Some (Engine.now eng);
        Pim_core.Router.join_local r group;
        ignore
          (Engine.schedule eng
             ~after:(Float.max 1. (Prng.exponential stream mean_on))
             (fun () ->
               Pim_core.Router.leave_local r group;
               waiting_since := None;
               ignore
                 (Engine.schedule eng
                    ~after:(Float.max 1. (Prng.exponential stream mean_off))
                    join_phase)))
      end
    in
    ignore (Engine.schedule eng ~after:(Prng.float stream mean_off) join_phase)
  in
  let chosen = ref [] in
  while List.length !chosen < receivers do
    let n = Pim_graph.Transit_stub.random_stub_member ts ~prng in
    if n <> source_node && not (List.mem n !chosen) then chosen := n :: !chosen
  done;
  List.iter setup_receiver !chosen;
  (* A steady source the whole time. *)
  let sr = Pim_core.Deployment.router dep source_node in
  let rec send t0 =
    if t0 < duration then
      ignore
        (Engine.schedule_at eng t0 (fun () ->
             Pim_core.Router.send_local_data sr ~group ();
             send (t0 +. 0.5)))
  in
  send 2.;
  Engine.run ~until:(duration +. 20.) eng;
  {
    mean_on;
    mean_off;
    joins_observed = !joins;
    mean_join_latency = Pim_util.Stats.mean !latencies;
    p95_join_latency = Pim_util.Stats.percentile 95. !latencies;
    control_traversals = Metrics.control_traversals metrics;
    deliveries = !deliveries;
  }

let run ?(receivers = 6) ?(duration = 300.) ?(on_off_pairs = [ (60., 30.); (20., 10.); (8., 4.) ])
    ~seed () =
  List.map
    (fun (mean_on, mean_off) -> one ~receivers ~duration ~mean_on ~mean_off ~seed)
    on_off_pairs

let pp_rows ppf rows =
  Format.fprintf ppf
    "# E7: dynamic groups — receivers churn on a transit-stub internet (source: 2 pkt/s)@.";
  Format.fprintf ppf "# mean_on  mean_off  joins  mean_join_lat  p95_join_lat  control  delivered@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8.0f  %8.0f  %5d  %13.2f  %12.2f  %7d  %9d@." r.mean_on r.mean_off
        r.joins_observed r.mean_join_latency r.p95_join_latency r.control_traversals
        r.deliveries)
    rows
