lib/exp/aggregation.mli: Format
