lib/exp/metrics.mli: Pim_graph Pim_net Pim_sim
