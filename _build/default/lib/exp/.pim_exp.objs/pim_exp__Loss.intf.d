lib/exp/loss.mli: Format
