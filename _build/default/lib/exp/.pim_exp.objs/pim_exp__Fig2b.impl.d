lib/exp/fig2b.ml: Array Format Hashtbl List Pim_graph Pim_util
