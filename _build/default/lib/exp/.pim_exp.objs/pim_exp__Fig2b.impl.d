lib/exp/fig2b.ml: Array Either Format List Pim_graph Pim_util
