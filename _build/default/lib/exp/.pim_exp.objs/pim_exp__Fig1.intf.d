lib/exp/fig1.mli: Format
