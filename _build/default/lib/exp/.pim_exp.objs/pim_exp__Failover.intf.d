lib/exp/failover.mli: Format
