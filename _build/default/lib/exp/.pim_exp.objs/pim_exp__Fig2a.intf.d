lib/exp/fig2a.mli: Format
