lib/exp/overhead.ml: Float Format Fun List Metrics Pim_cbt Pim_core Pim_dense Pim_graph Pim_mospf Pim_net Pim_sim Pim_util
