lib/exp/aggregation.ml: Format List Metrics Pim_core Pim_graph Pim_net Pim_sim
