lib/exp/churn.ml: Float Format List Metrics Pim_core Pim_graph Pim_net Pim_sim Pim_util
