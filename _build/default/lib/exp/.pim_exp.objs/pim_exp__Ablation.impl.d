lib/exp/ablation.ml: Format List Metrics Pim_core Pim_graph Pim_mcast Pim_net Pim_sim Pim_util
