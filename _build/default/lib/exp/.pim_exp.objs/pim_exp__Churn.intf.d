lib/exp/churn.mli: Format
