lib/exp/groups_scaling.ml: Format List Metrics Pim_cbt Pim_core Pim_dense Pim_graph Pim_mcast Pim_mospf Pim_net Pim_sim Pim_util
