lib/exp/loss.ml: Format List Metrics Pim_cbt Pim_core Pim_graph Pim_net Pim_sim Pim_util
