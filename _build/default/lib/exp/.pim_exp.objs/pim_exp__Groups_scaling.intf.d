lib/exp/groups_scaling.mli: Format
