lib/exp/fig2b.mli: Format
