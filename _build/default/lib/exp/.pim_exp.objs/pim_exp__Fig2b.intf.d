lib/exp/fig2b.mli: Format Pim_graph
