lib/exp/metrics.ml: Array Pim_cbt Pim_core Pim_graph Pim_mcast Pim_net Pim_sim
