lib/exp/fig2a.ml: Format Fun List Pim_graph Pim_util
