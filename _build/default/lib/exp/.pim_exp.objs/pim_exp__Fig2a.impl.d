lib/exp/fig2a.ml: Array Format Fun List Pim_graph Pim_util
