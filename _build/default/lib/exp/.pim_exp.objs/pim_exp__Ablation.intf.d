lib/exp/ablation.mli: Format
