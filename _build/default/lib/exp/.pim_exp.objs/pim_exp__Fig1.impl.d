lib/exp/fig1.ml: Format List Metrics Pim_cbt Pim_core Pim_dense Pim_graph Pim_net Pim_sim
