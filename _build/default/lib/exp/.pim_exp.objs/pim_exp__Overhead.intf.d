lib/exp/overhead.mli: Format
