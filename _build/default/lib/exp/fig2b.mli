(** Figure 2(b): traffic concentration — the maximum number of traffic
    flows carried by any single link, under shortest-path trees versus a
    center-based (shared) tree.

    Paper setup: random 50-node networks, 300 active groups of 40 members
    each of which 32 are senders, node degrees 3 to 8, 500 networks per
    degree.  The center-based tree concentrates noticeably more flows on
    its hottest link at every degree. *)

type row = {
  degree : float;
  spt_max_flows : float;  (** mean over networks of the per-network maximum *)
  cbt_max_flows : float;
  spt_stddev : float;
  cbt_stddev : float;
  trials : int;
}

val optimal_core :
  Pim_graph.Spt.tree array ->
  senders:Pim_graph.Topology.node list ->
  members:Pim_graph.Topology.node list ->
  Pim_graph.Topology.node
(** The node minimising [max_s d(s,c) + max_r d(c,r)] given one
    shortest-path tree per candidate node.  Candidates that cannot reach
    every sender and member are skipped (additions saturate instead of
    wrapping), so a node in a different partition of a disconnected
    topology can never be chosen while a fully-reaching candidate exists;
    with no such candidate, the node missing the fewest endpoints wins.
    Exposed for the experiment harness and its regression tests. *)

val run :
  ?nodes:int ->
  ?groups:int ->
  ?members:int ->
  ?senders:int ->
  ?trials:int ->
  ?degrees:float list ->
  seed:int ->
  unit ->
  row list
(** Defaults: 50 nodes, 300 groups, 40 members, 32 senders, degrees 3..8,
    30 networks per degree (the paper used 500; pass [~trials:500] to
    match — the shape is stable well below that). *)

val pp_rows : Format.formatter -> row list -> unit
