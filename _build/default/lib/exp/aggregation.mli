(** Experiment E6 — source aggregation in PIM messages (section 4).

    "There are several motivations for aggregating source information ...
    the most important issues are PIM message size and the amount of
    memory used for routing forwarding entries."

    A receiver joins the shortest-path trees of [sources] hosts that all
    live behind the same first-hop router (so their addresses share a
    /24).  With aggregation off, every periodic refresh toward that
    router carries one join entry per source; with aggregation on, the
    whole set collapses to a single /24 entry.  Forwarding state is
    per-source either way — the paper's "optimal with respect to PIM
    message size" aggregate, without giving up source-specific trees. *)

type row = {
  sources : int;
  aggregated : bool;
  join_entries : int;  (** join-list entries sent network-wide over the window *)
  control_bytes : int;
  deliveries : int;
  expected : int;
}

val run : ?hops:int -> ?source_counts:int list -> ?packets:int -> seed:int -> unit -> row list
(** Defaults: 6-hop path, source counts [1; 2; 4; 8], 25 packets per
    source. *)

val pp_rows : Format.formatter -> row list -> unit
