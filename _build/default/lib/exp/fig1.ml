module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Group = Pim_net.Group
module Addr = Pim_net.Addr

type result = {
  protocol : string;
  data_traversals : int;
  control_traversals : int;
  max_link_flows : int;
  deliveries : int;
  state_entries : int;
}

let group = Group.of_index 1

let members = [ 2; 7; 12 ]

let source = 1  (* a non-member router in domain A *)

let rp_node = 0  (* the domain-A gateway, as the paper's figure 1(c) suggests *)

let scenario ~packets ~interval ~setup ~entries_at_end =
  let topo, _, _ = Pim_graph.Classic.three_domains () in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let deliveries = ref 0 in
  let send = setup ~eng ~net ~deliveries in
  (* Let membership and control state converge before sending. *)
  Engine.run ~until:30. eng;
  Metrics.reset metrics;
  for i = 0 to packets - 1 do
    ignore (Engine.schedule_at eng (30. +. (interval *. float_of_int i)) send)
  done;
  (* Leave ample drain time: the backbone links are slow (5 s). *)
  Engine.run ~until:(60. +. (interval *. float_of_int packets)) eng;
  ( Metrics.data_traversals metrics,
    Metrics.control_traversals metrics,
    Metrics.max_link_data metrics,
    !deliveries,
    entries_at_end () )

let run_dense ~packets ~interval ~mode ~name =
  let dep = ref None in
  let data, ctrl, maxl, deliv, entries =
    scenario ~packets ~interval
      ~setup:(fun ~eng:_ ~net ~deliveries ->
        let config = { Pim_dense.Router.fast_config with mode } in
        let d = Pim_dense.Router.Deployment.create_static ~config net in
        dep := Some d;
        List.iter
          (fun m ->
            let r = Pim_dense.Router.Deployment.router d m in
            Pim_dense.Router.join_local r group;
            Pim_dense.Router.on_local_data r (fun _ -> incr deliveries))
          members;
        let src = Pim_dense.Router.Deployment.router d source in
        fun () -> Pim_dense.Router.send_local_data src ~group ())
      ~entries_at_end:(fun () ->
        match !dep with Some d -> Pim_dense.Router.Deployment.total_entries d | None -> 0)
  in
  { protocol = name; data_traversals = data; control_traversals = ctrl; max_link_flows = maxl;
    deliveries = deliv; state_entries = entries }

let run_pim ~packets ~interval ~spt_policy ~name =
  let dep = ref None in
  let data, ctrl, maxl, deliv, entries =
    scenario ~packets ~interval
      ~setup:(fun ~eng:_ ~net ~deliveries ->
        let config = Pim_core.Config.(with_spt_policy spt_policy fast) in
        let rp_set = Pim_core.Rp_set.single group (Addr.router rp_node) in
        let d = Pim_core.Deployment.create_static ~config net ~rp_set in
        dep := Some d;
        List.iter
          (fun m ->
            let r = Pim_core.Deployment.router d m in
            Pim_core.Router.join_local r group;
            Pim_core.Router.on_local_data r (fun _ -> incr deliveries))
          members;
        let src = Pim_core.Deployment.router d source in
        fun () -> Pim_core.Router.send_local_data src ~group ())
      ~entries_at_end:(fun () ->
        match !dep with Some d -> Pim_core.Deployment.total_entries d | None -> 0)
  in
  { protocol = name; data_traversals = data; control_traversals = ctrl; max_link_flows = maxl;
    deliveries = deliv; state_entries = entries }

let run_cbt ~packets ~interval =
  let dep = ref None in
  let data, ctrl, maxl, deliv, entries =
    scenario ~packets ~interval
      ~setup:(fun ~eng:_ ~net ~deliveries ->
        let core_of g = if Group.equal g group then Some (Addr.router rp_node) else None in
        let d =
          Pim_cbt.Router.Deployment.create_static ~config:Pim_cbt.Router.fast_config net ~core_of
        in
        dep := Some d;
        List.iter
          (fun m ->
            let r = Pim_cbt.Router.Deployment.router d m in
            Pim_cbt.Router.join_local r group;
            Pim_cbt.Router.on_local_data r (fun _ -> incr deliveries))
          members;
        let src = Pim_cbt.Router.Deployment.router d source in
        fun () -> Pim_cbt.Router.send_local_data src ~group ())
      ~entries_at_end:(fun () ->
        match !dep with Some d -> Pim_cbt.Router.Deployment.total_entries d | None -> 0)
  in
  { protocol = "CBT (core in domain A)"; data_traversals = data; control_traversals = ctrl;
    max_link_flows = maxl; deliveries = deliv; state_entries = entries }

let run ?(packets = 40) ?(interval = 1.0) () =
  [
    run_dense ~packets ~interval ~mode:Pim_dense.Router.Dvmrp ~name:"DVMRP (dense mode)";
    run_dense ~packets ~interval ~mode:Pim_dense.Router.Pim_dm ~name:"PIM dense mode";
    run_pim ~packets ~interval ~spt_policy:Pim_core.Config.Never ~name:"PIM-SM (shared tree)";
    run_pim ~packets ~interval ~spt_policy:Pim_core.Config.Immediate ~name:"PIM-SM (SPT switch)";
    run_cbt ~packets ~interval;
  ]

let pp_results ppf results =
  Format.fprintf ppf
    "# Figure 1 scenario: 3 domains, 1 member each, source in domain A (18 routers)@.";
  Format.fprintf ppf "# %-22s %6s %7s %8s %9s %6s@." "protocol" "data" "control" "max-link"
    "delivered" "state";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s %6d %7d %8d %9d %6d@." r.protocol r.data_traversals
        r.control_traversals r.max_link_flows r.deliveries r.state_entries)
    results
