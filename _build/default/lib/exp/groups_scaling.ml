module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Random_graph = Pim_graph.Random_graph

type row = {
  protocol : string;
  groups : int;
  data_traversals : int;
  control_traversals : int;
  state_entries : int;
  deliveries : int;
  expected_deliveries : int;
}

type workload = {
  group : Group.t;
  members : int list;
  source : int;
  rp : int;
}

let make_workloads ~prng ~nodes ~groups ~members_per_group =
  List.init groups (fun k ->
      let members = Random_graph.pick_members ~prng ~nodes ~count:members_per_group in
      let source = Prng.int prng nodes in
      { group = Group.of_index (k + 1); members; source; rp = List.hd members })

type setup = {
  join : Group.t -> int -> (unit -> unit) -> unit;
  send : Group.t -> int -> unit;
  entries : unit -> int;
}

let run_protocol ~name ~topo ~workloads ~packets ~(build : Net.t -> setup) =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let s = build net in
  let deliveries = ref 0 in
  List.iter
    (fun w -> List.iter (fun m -> s.join w.group m (fun () -> incr deliveries)) w.members)
    workloads;
  Engine.run ~until:30. eng;
  List.iteri
    (fun k w ->
      for i = 0 to packets - 1 do
        ignore
          (Engine.schedule_at eng
             (30. +. float_of_int i +. (0.001 *. float_of_int k))
             (fun () -> s.send w.group w.source))
      done)
    workloads;
  (* Probe state while the flows are live: dense-mode (S,G) entries are
     data-driven and decay once sources stop. *)
  let peak_entries = ref 0 in
  ignore
    (Engine.schedule_at eng
       (32. +. float_of_int packets)
       (fun () -> peak_entries := s.entries ()));
  Engine.run ~until:(60. +. float_of_int packets) eng;
  {
    protocol = name;
    groups = List.length workloads;
    data_traversals = Metrics.data_traversals metrics;
    control_traversals = Metrics.control_traversals metrics;
    state_entries = !peak_entries;
    deliveries = !deliveries;
    expected_deliveries =
      packets * List.fold_left (fun acc w -> acc + List.length w.members) 0 workloads;
  }

let pim_setup ~workloads net =
  let rp_set =
    Pim_core.Rp_set.of_list (List.map (fun w -> (w.group, [ Addr.router w.rp ])) workloads)
  in
  let config = Pim_core.Config.(with_spt_policy Never fast) in
  let d = Pim_core.Deployment.create_static ~config net ~rp_set in
  {
    join =
      (fun g m cb ->
        let r = Pim_core.Deployment.router d m in
        Pim_core.Router.join_local r g;
        Pim_core.Router.on_local_data r (fun pkt ->
            match Pim_mcast.Mdata.group pkt with
            | Some gg when Group.equal gg g -> cb ()
            | _ -> ()));
    send =
      (fun g src -> Pim_core.Router.send_local_data (Pim_core.Deployment.router d src) ~group:g ());
    entries = (fun () -> Pim_core.Deployment.total_entries d);
  }

let dense_setup net =
  let d = Pim_dense.Router.Deployment.create_static ~config:Pim_dense.Router.fast_config net in
  {
    join =
      (fun g m cb ->
        let r = Pim_dense.Router.Deployment.router d m in
        Pim_dense.Router.join_local r g;
        Pim_dense.Router.on_local_data r (fun pkt ->
            match Pim_mcast.Mdata.group pkt with
            | Some gg when Group.equal gg g -> cb ()
            | _ -> ()));
    send =
      (fun g src ->
        Pim_dense.Router.send_local_data (Pim_dense.Router.Deployment.router d src) ~group:g ());
    entries = (fun () -> Pim_dense.Router.Deployment.total_entries d);
  }

let cbt_setup ~workloads net =
  let cores =
    List.map (fun w -> (w.group, Addr.router w.rp)) workloads
  in
  let core_of g = List.assoc_opt g cores in
  let d = Pim_cbt.Router.Deployment.create_static ~config:Pim_cbt.Router.fast_config net ~core_of in
  {
    join =
      (fun g m cb ->
        let r = Pim_cbt.Router.Deployment.router d m in
        Pim_cbt.Router.join_local r g;
        Pim_cbt.Router.on_local_data r (fun pkt ->
            match Pim_mcast.Mdata.group pkt with
            | Some gg when Group.equal gg g -> cb ()
            | _ -> ()));
    send =
      (fun g src ->
        Pim_cbt.Router.send_local_data (Pim_cbt.Router.Deployment.router d src) ~group:g ());
    entries = (fun () -> Pim_cbt.Router.Deployment.total_entries d);
  }

let mospf_setup net =
  let d = Pim_mospf.Router.Deployment.create net in
  {
    join =
      (fun g m cb ->
        let r = Pim_mospf.Router.Deployment.router d m in
        Pim_mospf.Router.join_local r g;
        Pim_mospf.Router.on_local_data r (fun pkt ->
            match Pim_mcast.Mdata.group pkt with
            | Some gg when Group.equal gg g -> cb ()
            | _ -> ()));
    send =
      (fun g src ->
        Pim_mospf.Router.send_local_data (Pim_mospf.Router.Deployment.router d src) ~group:g ());
    entries = (fun () -> Pim_mospf.Router.Deployment.total_membership_entries d);
  }

let run ?(nodes = 50) ?(degree = 4.) ?(members_per_group = 3) ?(packets = 5)
    ?(group_counts = [ 10; 40; 120 ]) ~seed () =
  List.concat_map
    (fun groups ->
      let prng = Prng.create (seed + groups) in
      let topo = Random_graph.generate ~prng ~nodes ~degree () in
      let workloads = make_workloads ~prng ~nodes ~groups ~members_per_group in
      [
        run_protocol ~name:"PIM-SM" ~topo ~workloads ~packets ~build:(pim_setup ~workloads);
        run_protocol ~name:"DVMRP" ~topo ~workloads ~packets ~build:dense_setup;
        run_protocol ~name:"CBT" ~topo ~workloads ~packets ~build:(cbt_setup ~workloads);
        run_protocol ~name:"MOSPF" ~topo ~workloads ~packets ~build:mospf_setup;
      ])
    group_counts

let pp_rows ppf rows =
  Format.fprintf ppf
    "# E5: scaling with the number of sparse groups (3 members, 1 source each)@.";
  Format.fprintf ppf "# %-8s %7s %7s %8s %6s %9s %7s@." "protocol" "groups" "data" "control"
    "state" "delivered" "expect";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8s %7d %7d %8d %6d %9d %7d@." r.protocol r.groups
        r.data_traversals r.control_traversals r.state_entries r.deliveries
        r.expected_deliveries)
    rows
