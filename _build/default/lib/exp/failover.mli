(** Experiment E2 — RP failure and receiver-driven failover (section 3.9).

    Two RPs serve one group; the source registers (and delivers) to both,
    receivers join toward the primary.  Mid-run the primary RP crashes.
    Receivers detect the missing RP-reachability beacons, join toward the
    alternate RP, and delivery resumes.  We measure the delivery gap at
    the receiver as a function of the RP-reachability timeout. *)

type row = {
  rp_timeout : float;  (** configured receiver-side liveness timeout *)
  gap : float;  (** longest inter-arrival gap at the receiver *)
  delivered_before : int;
  delivered_after : int;  (** packets received after the crash *)
  failovers : int;  (** RP failovers performed network-wide *)
}

val run : ?timeouts:float list -> seed:int -> unit -> row list
(** Defaults: timeouts [5.; 10.; 20.] seconds (with 1.5 s reachability
    beacons). *)

val pp_rows : Format.formatter -> row list -> unit
