(** Figure 1: the three-domain motivating scenario.

    Three domains connected over a wide-area backbone; one group member in
    each domain, a source in domain A.  The paper uses this picture to
    argue (a) DVMRP-style dense mode periodically broadcasts data across
    the whole internet (1(b)), and (c) a single CBT tree concentrates all
    senders' traffic on the core path.  This harness runs the scenario
    under each protocol in the event simulator and reports what each one
    actually cost. *)

type result = {
  protocol : string;
  data_traversals : int;  (** data-packet link transmissions network-wide *)
  control_traversals : int;
  max_link_flows : int;  (** data transmissions on the busiest link *)
  deliveries : int;  (** packets handed to the three members *)
  state_entries : int;  (** multicast forwarding entries at end of run *)
}

val run : ?packets:int -> ?interval:float -> unit -> result list
(** Runs DVMRP dense mode, PIM-SM on the shared tree only, PIM-SM with SPT
    switching, and CBT over the identical scenario (default: 40 packets,
    one per second — long enough for pruned DVMRP branches to grow back at
    least once with the fast timer scale). *)

val pp_results : Format.formatter -> result list -> unit
