module Prng = Pim_util.Prng
module Topology = Pim_graph.Topology
module Spt = Pim_graph.Spt
module Tree = Pim_graph.Tree
module Random_graph = Pim_graph.Random_graph

type row = {
  degree : float;
  spt_max_flows : float;
  cbt_max_flows : float;
  spt_stddev : float;
  cbt_stddev : float;
  trials : int;
}

(* Walk the precomputed shortest-path tree of [s] from each target up to
   the root, adding one flow on every link of the covered sub-tree. *)
let add_spt_flows flows (tree : Spt.tree) targets =
  let seen = Hashtbl.create 64 in
  let rec up v =
    if v <> tree.Spt.src && not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      match (tree.Spt.parent.(v), tree.Spt.via.(v)) with
      | Some p, Some lid ->
        flows.(lid) <- flows.(lid) + 1;
        up p
      | _ -> ()
    end
  in
  List.iter up targets

(* Optimal core for the group: minimise the worst sender-to-receiver delay
   max_s d(s,c) + max_r d(c,r) over all candidate nodes.  Distances are
   read from the per-node trees (symmetric link costs). *)
let optimal_core trees ~senders ~members =
  let n = Array.length trees in
  let eccentricity c towards =
    List.fold_left (fun acc v -> max acc trees.(c).Spt.dist.(v)) 0 towards
  in
  let best = ref 0 and best_d = ref max_int in
  for c = 0 to n - 1 do
    let d = eccentricity c senders + eccentricity c members in
    if d < !best_d then begin
      best := c;
      best_d := d
    end
  done;
  !best

let network_trial prng ~nodes ~groups ~members ~senders ~degree =
  let topo = Random_graph.generate ~prng ~nodes ~degree () in
  let trees = Array.init nodes (fun u -> Spt.single_source topo u) in
  let n_links = Topology.n_links topo in
  let spt_flows = Array.make n_links 0 in
  let cbt_flows = Array.make n_links 0 in
  for _ = 1 to groups do
    let group = Array.of_list (Random_graph.pick_members ~prng ~nodes ~count:members) in
    Prng.shuffle prng group;
    let member_list = Array.to_list group in
    let sender_list = Array.to_list (Array.sub group 0 senders) in
    (* Shortest-path trees: each sender's traffic covers its own tree. *)
    List.iter
      (fun s ->
        let targets = List.filter (fun m -> m <> s) member_list in
        add_spt_flows spt_flows trees.(s) targets)
      sender_list;
    (* Center-based tree: one shared tree rooted at the optimal core. *)
    let core = optimal_core trees ~senders:sender_list ~members:member_list in
    let edges = Spt.tree_edges topo trees.(core) ~members:member_list in
    let tree = Tree.of_edges ~n:nodes edges in
    List.iter
      (fun s ->
        let targets = List.filter (fun m -> m <> s) member_list in
        if Tree.mem_node tree s then
          List.iter (fun lid -> cbt_flows.(lid) <- cbt_flows.(lid) + 1)
            (Tree.covered_labels tree ~src:s ~targets)
        else begin
          (* Off-tree sender (possible when the sender is the core's only
             member on a branch): traffic enters at the core and covers
             the whole tree plus the unicast path to the core. *)
          let rec up v =
            if v <> core then
              match (trees.(core).Spt.parent.(v), trees.(core).Spt.via.(v)) with
              | Some p, Some lid ->
                cbt_flows.(lid) <- cbt_flows.(lid) + 1;
                up p
              | _ -> ()
          in
          up s;
          List.iter (fun (_, _, lid) -> cbt_flows.(lid) <- cbt_flows.(lid) + 1) edges
        end)
      sender_list
  done;
  ( float_of_int (Array.fold_left max 0 spt_flows),
    float_of_int (Array.fold_left max 0 cbt_flows) )

let run ?(nodes = 50) ?(groups = 300) ?(members = 40) ?(senders = 32) ?(trials = 30)
    ?(degrees = [ 3.; 4.; 5.; 6.; 7.; 8. ]) ~seed () =
  if senders > members then invalid_arg "Fig2b.run: senders must be members";
  let prng = Prng.create seed in
  List.map
    (fun degree ->
      let stream = Prng.split prng in
      let results =
        List.init trials (fun _ -> network_trial stream ~nodes ~groups ~members ~senders ~degree)
      in
      let spt = List.map fst results and cbt = List.map snd results in
      {
        degree;
        spt_max_flows = Pim_util.Stats.mean spt;
        cbt_max_flows = Pim_util.Stats.mean cbt;
        spt_stddev = Pim_util.Stats.stddev spt;
        cbt_stddev = Pim_util.Stats.stddev cbt;
        trials;
      })
    degrees

let pp_rows ppf rows =
  Format.fprintf ppf "# Figure 2(b): max traffic flows on any link (300 groups, 40 members, 32 senders)@.";
  Format.fprintf ppf "# degree  spt_max_flows  cbt_max_flows  spt_sd  cbt_sd  trials@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%6.1f  %13.1f  %13.1f  %6.1f  %6.1f  %d@." r.degree r.spt_max_flows
        r.cbt_max_flows r.spt_stddev r.cbt_stddev r.trials)
    rows
