module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr

type row = {
  protocol : string;
  loss : float;
  deliveries : int;
  expected : int;
  control_traversals : int;
  control_dropped : int;
}

let group = Group.of_index 8

let control_only pkt = not (Metrics.is_data pkt)

type setup = {
  join : int -> (unit -> unit) -> unit;
  send : int -> unit;
}

let run_one ~name ~seed ~loss ~packets ~(build : Net.t -> setup) =
  let prng = Prng.create seed in
  let topo = Pim_graph.Random_graph.generate ~prng ~nodes:25 ~degree:4. () in
  let members = Pim_graph.Random_graph.pick_members ~prng ~nodes:25 ~count:4 in
  let source =
    let rec pick () =
      let s = Prng.int prng 25 in
      if List.mem s members then pick () else s
    in
    pick ()
  in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  Net.set_loss_rate net ~prng:(Prng.create (seed + 1)) ~filter:control_only loss;
  let s = build net in
  let deliveries = ref 0 in
  List.iter (fun m -> s.join m (fun () -> incr deliveries)) members;
  (* Generous warm-up: under heavy loss the trees take several refresh
     rounds to assemble. *)
  Engine.run ~until:30. eng;
  for i = 0 to packets - 1 do
    ignore (Engine.schedule_at eng (30. +. float_of_int i) (fun () -> s.send source))
  done;
  Engine.run ~until:(60. +. float_of_int packets) eng;
  {
    protocol = name;
    loss;
    deliveries = !deliveries;
    expected = packets * List.length members;
    control_traversals = Metrics.control_traversals metrics;
    control_dropped = Net.dropped net;
  }

let pim_build ~members net =
  let rp_set = Pim_core.Rp_set.single group (Addr.router (List.hd members)) in
  let config = Pim_core.Config.(with_spt_policy Never fast) in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  {
    join =
      (fun m cb ->
        let r = Pim_core.Deployment.router dep m in
        Pim_core.Router.join_local r group;
        Pim_core.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun src ->
        Pim_core.Router.send_local_data (Pim_core.Deployment.router dep src) ~group ());
  }

let cbt_build ~members net =
  let core_of g = if Group.equal g group then Some (Addr.router (List.hd members)) else None in
  let dep = Pim_cbt.Router.Deployment.create_static ~config:Pim_cbt.Router.fast_config net ~core_of in
  {
    join =
      (fun m cb ->
        let r = Pim_cbt.Router.Deployment.router dep m in
        Pim_cbt.Router.join_local r group;
        Pim_cbt.Router.on_local_data r (fun _ -> cb ()));
    send =
      (fun src ->
        Pim_cbt.Router.send_local_data (Pim_cbt.Router.Deployment.router dep src) ~group ());
  }

let run ?(loss_rates = [ 0.; 0.1; 0.25; 0.4 ]) ?(packets = 60) ~seed () =
  (* Reuse the same topology/membership at every loss rate. *)
  let prng = Prng.create seed in
  let members =
    ignore (Pim_graph.Random_graph.generate ~prng ~nodes:25 ~degree:4. ());
    Pim_graph.Random_graph.pick_members ~prng ~nodes:25 ~count:4
  in
  List.concat_map
    (fun loss ->
      [
        run_one ~name:"PIM-SM" ~seed ~loss ~packets ~build:(pim_build ~members);
        run_one ~name:"CBT" ~seed ~loss ~packets ~build:(cbt_build ~members);
      ])
    loss_rates

let pp_rows ppf rows =
  Format.fprintf ppf
    "# E8: robustness to control-message loss (data frames never dropped)@.";
  Format.fprintf ppf "# %-8s %5s %9s %7s %8s %8s@." "protocol" "loss" "delivered" "expect"
    "control" "dropped";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8s %5.2f %9d %7d %8d %8d@." r.protocol r.loss r.deliveries
        r.expected r.control_traversals r.control_dropped)
    rows
