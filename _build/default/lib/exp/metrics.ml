module Packet = Pim_net.Packet

type t = {
  data : int array;
  control : int array;
  mutable data_bytes : int;
  mutable control_bytes : int;
}

let is_data pkt =
  match pkt.Packet.payload with
  | Pim_mcast.Mdata.Data _ -> true
  | Pim_core.Message.Register inner -> Pim_mcast.Mdata.is_data inner
  | _ -> Pim_cbt.Router.is_encapsulated_data pkt

let attach net =
  let n = Pim_graph.Topology.n_links (Pim_sim.Net.topo net) in
  let t = { data = Array.make n 0; control = Array.make n 0; data_bytes = 0; control_bytes = 0 } in
  Pim_sim.Net.on_deliver net (fun lid pkt ->
      if is_data pkt then begin
        t.data.(lid) <- t.data.(lid) + 1;
        t.data_bytes <- t.data_bytes + pkt.Packet.size
      end
      else begin
        t.control.(lid) <- t.control.(lid) + 1;
        t.control_bytes <- t.control_bytes + pkt.Packet.size
      end);
  t

let reset t =
  Array.fill t.data 0 (Array.length t.data) 0;
  Array.fill t.control 0 (Array.length t.control) 0;
  t.data_bytes <- 0;
  t.control_bytes <- 0

let data_traversals t = Array.fold_left ( + ) 0 t.data

let control_traversals t = Array.fold_left ( + ) 0 t.control

let data_bytes t = t.data_bytes

let control_bytes t = t.control_bytes

let link_data t lid = t.data.(lid)

let max_link_data t = Array.fold_left max 0 t.data
