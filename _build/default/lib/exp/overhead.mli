(** Experiment E1 — the scaling claim of section 1.2.

    On one random wide-area topology, a single group whose membership
    density sweeps from very sparse to dense, a single active source.
    For each protocol we count, over an identical sending schedule:

    - data-packet link transmissions (flooding cost shows up here),
    - control-message link transmissions (membership broadcast shows up
      here),
    - multicast state entries across all routers,
    - packets delivered to members (sanity: must equal packets x members).

    The paper's argument is that dense-mode protocols (DVMRP/PIM-DM) pay
    data-flooding costs inversely proportional to density, MOSPF pays
    membership-broadcast and Dijkstra costs everywhere, while PIM's costs
    track the tree that is actually in use. *)

type row = {
  protocol : string;
  fraction : float;  (** members / routers *)
  members : int;
  data_traversals : int;
  control_traversals : int;
  state_entries : int;
  deliveries : int;
      (** PIM may deliver slightly fewer than expected: packets in flight
          on the register/shared path when an on-path router sets its SPT
          bit fail its incoming-interface check — the transition loss
          section 3.3 of the paper says the SPT bit "minimizes" (not
          eliminates).  The window is a few link delays wide and our
          simulated links are slow (1 s), so whole packets fall in it. *)
  expected_deliveries : int;
  spf_runs : int;  (** MOSPF only; 0 elsewhere *)
}

val run :
  ?nodes:int ->
  ?degree:float ->
  ?packets:int ->
  ?interval:float ->
  ?fractions:float list ->
  seed:int ->
  unit ->
  row list
(** Defaults: 50 nodes, degree 4, 30 packets at 1 Hz, fractions
    [0.04; 0.1; 0.2; 0.4; 0.8]. *)

val pp_rows : Format.formatter -> row list -> unit
