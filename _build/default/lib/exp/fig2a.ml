module Prng = Pim_util.Prng
module Spt = Pim_graph.Spt
module Center = Pim_graph.Center
module Random_graph = Pim_graph.Random_graph

type row = {
  degree : float;
  mean_ratio : float;
  stddev : float;
  min_ratio : float;
  max_ratio : float;
  trials : int;
}

(* [scratch] and [apsp] are working storage reused across all trials of a
   degree: one Dijkstra scratch and one n x n distance matrix, instead of
   fresh arrays for every one of the 500 x 6 graphs. *)
let trial prng ~scratch ~apsp ~nodes ~members ~degree =
  let topo = Random_graph.generate ~prng ~nodes ~degree () in
  let group = Random_graph.pick_members ~prng ~nodes ~count:members in
  Spt.all_pairs_into scratch topo apsp;
  (* Members are both senders and receivers, as in the paper's setup. *)
  let spt = Center.spt_max_delay apsp ~senders:group ~receivers:group in
  let _core, cbt = Center.optimal apsp ~senders:group ~receivers:group in
  if spt = 0 then None else Some (float_of_int cbt /. float_of_int spt)

let run ?(nodes = 50) ?(members = 10) ?(trials = 500) ?(degrees = [ 3.; 4.; 5.; 6.; 7.; 8. ])
    ~seed () =
  let prng = Prng.create seed in
  let scratch = Spt.make_scratch ~n:nodes in
  let apsp = Array.init nodes (fun _ -> Array.make nodes max_int) in
  List.map
    (fun degree ->
      let stream = Prng.split prng in
      let ratios =
        List.init trials (fun _ -> trial stream ~scratch ~apsp ~nodes ~members ~degree)
        |> List.filter_map Fun.id
      in
      let s = Pim_util.Stats.summarize ratios in
      {
        degree;
        mean_ratio = s.Pim_util.Stats.mean;
        stddev = s.Pim_util.Stats.stddev;
        min_ratio = s.Pim_util.Stats.min;
        max_ratio = s.Pim_util.Stats.max;
        trials = List.length ratios;
      })
    degrees

let pp_rows ppf rows =
  Format.fprintf ppf "# Figure 2(a): max delay, optimal center-based tree / shortest-path trees@.";
  Format.fprintf ppf "# degree  mean_ratio  stddev  min  max  trials@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%6.1f  %10.4f  %6.4f  %5.3f  %5.3f  %d@." r.degree r.mean_ratio
        r.stddev r.min_ratio r.max_ratio r.trials)
    rows
