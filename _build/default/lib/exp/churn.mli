(** Experiment E7 — dynamic groups (section 2: "we must support dynamic
    groups with large numbers of receivers").

    On a transit-stub wide-area topology, receivers join and leave the
    group continuously (exponential on/off holding times) while one
    source streams at 2 packets/s.  For each (re-)join we measure the
    {e join latency}: the time until the first packet arrives over the
    freshly grafted branch.  Receiver-initiated explicit joins make this
    a pure join-propagation delay — no flood-and-prune round trips, no
    waiting for the next broadcast. *)

type row = {
  mean_on : float;  (** mean membership duration *)
  mean_off : float;
  joins_observed : int;
  mean_join_latency : float;
  p95_join_latency : float;
  control_traversals : int;
  deliveries : int;
}

val run :
  ?receivers:int -> ?duration:float -> ?on_off_pairs:(float * float) list -> seed:int -> unit -> row list
(** Defaults: 6 churning receivers, 300 s runs, (on, off) pairs
    [(60, 30); (20, 10); (8, 4)] — mild to aggressive churn. *)

val pp_rows : Format.formatter -> row list -> unit
