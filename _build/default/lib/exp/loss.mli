(** Experiment E8 — robustness to control-message loss (footnote 4).

    "PIM uses periodic refreshes as its primary means of reliability.
    This approach reduces the complexity of the protocol and covers a
    wide range of protocol and network failures in a single simple
    mechanism" — versus CBT's "explicit hop-by-hop mechanisms to achieve
    reliable delivery of control messages".

    Control frames (joins, prunes, registers' headers, echoes, acks —
    everything except multicast data) are dropped independently with a
    swept probability; data frames are untouched so delivery gaps can
    only come from broken trees.  Both protocols must keep delivering:
    PIM because the next periodic refresh repairs whatever was lost, CBT
    because its join handshake is retransmitted.  The interesting
    difference is the cost column: PIM's control rate is {e constant} in
    the loss rate (refreshes happen anyway), while CBT's grows with the
    retransmissions. *)

type row = {
  protocol : string;
  loss : float;
  deliveries : int;
  expected : int;
  control_traversals : int;
  control_dropped : int;
}

val run : ?loss_rates:float list -> ?packets:int -> seed:int -> unit -> row list
(** Defaults: loss rates [0.; 0.1; 0.25; 0.4], 60 packets at 1 Hz, a
    25-router random topology with 4 members. *)

val pp_rows : Format.formatter -> row list -> unit
