(** Experiments E3 and E4 — ablations of PIM's design choices.

    E3 (tree-type policy, section 3.3): the same workload under the three
    DR policies — stay on the shared tree forever, switch to the SPT on
    the first packet, or switch after a packet-count threshold.  Measures
    the delay/state/concentration trade-off the paper argues motivates
    supporting both tree types in one protocol.

    E4 (soft-state refresh period, footnote 4): sweep the Join/Prune
    refresh period.  Faster refresh cleans up stale state sooner after a
    receiver silently leaves — the soft-state reliability mechanism — but
    costs proportionally more control traffic.  (Repair after unicast
    routing changes is event-driven, section 3.8, and is exercised by the
    integration tests instead.) *)

type policy_row = {
  policy : string;
  mean_delay : float;  (** end-to-end delivery delay over all packets *)
  max_delay : float;
  state_entries : int;
  max_link_flows : int;
  deliveries : int;
}

val run_spt_policy :
  ?nodes:int -> ?degree:float -> ?members:int -> ?senders:int -> seed:int -> unit -> policy_row list
(** Defaults: 30 nodes, degree 4, 8 members, 4 senders; every sender emits
    20 packets at 1 Hz. *)

val pp_policy_rows : Format.formatter -> policy_row list -> unit

type refresh_row = {
  jp_period : float;
  control_traversals : int;  (** steady-state control traffic over a fixed window *)
  cleanup_time : float;
      (** how long stale tree state survives after the only receiver
          silently leaves *)
  deliveries : int;
}

val run_refresh : ?periods:float list -> seed:int -> unit -> refresh_row list
(** Defaults: periods [2.; 4.; 8.; 16.] seconds. *)

val pp_refresh_rows : Format.formatter -> refresh_row list -> unit
