module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Group = Pim_net.Group
module Addr = Pim_net.Addr

type row = {
  sources : int;
  aggregated : bool;
  join_entries : int;
  control_bytes : int;
  deliveries : int;
  expected : int;
}

let group = Group.of_index 6

let one ~hops ~sources ~packets ~aggregated =
  let topo = Pim_graph.Classic.line (hops + 1) in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let config =
    { (Pim_core.Config.fast) with Pim_core.Config.aggregate_sources = aggregated }
  in
  (* RP next to the source router so the shared tree is short and the
     interesting joins are the (S,G) refreshes along the path. *)
  let rp_set = Pim_core.Rp_set.single group (Addr.router 1) in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  let receiver = Pim_core.Deployment.router dep hops in
  Pim_core.Router.join_local receiver group;
  let deliveries = ref 0 in
  Pim_core.Router.on_local_data receiver (fun _ -> incr deliveries);
  Engine.run ~until:5. eng;
  let sender = Pim_core.Deployment.router dep 0 in
  for i = 0 to packets - 1 do
    for h = 1 to sources do
      ignore
        (Engine.schedule_at eng
           (5. +. float_of_int i +. (0.02 *. float_of_int h))
           (fun () -> Pim_core.Router.send_local_data sender ~group ~host:h ()))
    done
  done;
  (* Run several holdtimes past the end of the stream so the periodic
     (prefix-)joins are what keeps the trees alive. *)
  Engine.run ~until:(20. +. float_of_int packets) eng;
  let stats = Pim_core.Deployment.total_stats dep in
  {
    sources;
    aggregated;
    join_entries = stats.Pim_core.Router.joins_sent;
    control_bytes = Metrics.control_bytes metrics;
    deliveries = !deliveries;
    expected = packets * sources;
  }

let run ?(hops = 6) ?(source_counts = [ 1; 2; 4; 8 ]) ?(packets = 25) ~seed:_ () =
  List.concat_map
    (fun sources ->
      [
        one ~hops ~sources ~packets ~aggregated:false;
        one ~hops ~sources ~packets ~aggregated:true;
      ])
    source_counts

let pp_rows ppf rows =
  Format.fprintf ppf
    "# E6: source aggregation in PIM messages (sources share a first-hop /24)@.";
  Format.fprintf ppf "# sources  aggregated  join_entries  control_bytes  delivered  expect@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d  %10s  %12d  %13d  %9d  %6d@." r.sources
        (if r.aggregated then "yes" else "no")
        r.join_entries r.control_bytes r.deliveries r.expected)
    rows
