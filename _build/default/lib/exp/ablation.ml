module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Mdata = Pim_mcast.Mdata
module Random_graph = Pim_graph.Random_graph

type policy_row = {
  policy : string;
  mean_delay : float;
  max_delay : float;
  state_entries : int;
  max_link_flows : int;
  deliveries : int;
}

let group = Group.of_index 3

let run_one_policy ~topo ~members ~senders ~name ~spt_policy =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let rp = List.hd members in
  let rp_set = Pim_core.Rp_set.single group (Addr.router rp) in
  let config = Pim_core.Config.(with_spt_policy spt_policy fast) in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  let delays = ref [] in
  let deliveries = ref 0 in
  List.iter
    (fun m ->
      let r = Pim_core.Deployment.router dep m in
      Pim_core.Router.join_local r group;
      Pim_core.Router.on_local_data r (fun pkt ->
          incr deliveries;
          match Mdata.info pkt with
          | Some i -> delays := (Engine.now eng -. i.Mdata.sent_at) :: !delays
          | None -> ()))
    members;
  Engine.run ~until:20. eng;
  Metrics.reset metrics;
  List.iteri
    (fun k s ->
      let r = Pim_core.Deployment.router dep s in
      for i = 0 to 19 do
        ignore
          (Engine.schedule_at eng
             (20. +. float_of_int i +. (0.13 *. float_of_int k))
             (fun () -> Pim_core.Router.send_local_data r ~group ()))
      done)
    senders;
  Engine.run ~until:60. eng;
  {
    policy = name;
    mean_delay = Pim_util.Stats.mean !delays;
    max_delay = Pim_util.Stats.maximum !delays;
    state_entries = Pim_core.Deployment.total_entries dep;
    max_link_flows = Metrics.max_link_data metrics;
    deliveries = !deliveries;
  }

let run_spt_policy ?(nodes = 30) ?(degree = 4.) ?(members = 8) ?(senders = 4) ~seed () =
  let prng = Prng.create seed in
  let topo = Random_graph.generate ~prng ~nodes ~degree () in
  let member_list = Random_graph.pick_members ~prng ~nodes ~count:members in
  let sender_list =
    (* Senders are members, as in the paper's traffic-concentration
       experiment. *)
    List.filteri (fun i _ -> i < senders) member_list
  in
  [
    run_one_policy ~topo ~members:member_list ~senders:sender_list ~name:"shared-only (Never)"
      ~spt_policy:Pim_core.Config.Never;
    run_one_policy ~topo ~members:member_list ~senders:sender_list ~name:"immediate SPT"
      ~spt_policy:Pim_core.Config.Immediate;
    run_one_policy ~topo ~members:member_list ~senders:sender_list
      ~name:"threshold (5 pkts/10 s)"
      ~spt_policy:(Pim_core.Config.Threshold { packets = 5; window = 10. });
  ]

let pp_policy_rows ppf rows =
  Format.fprintf ppf "# E3: DR tree-type policy (same workload, 8 members, 4 senders)@.";
  Format.fprintf ppf "# %-24s %10s %9s %6s %9s %9s@." "policy" "mean_delay" "max_delay" "state"
    "max-link" "delivered";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-24s %10.2f %9.2f %6d %9d %9d@." r.policy r.mean_delay r.max_delay
        r.state_entries r.max_link_flows r.deliveries)
    rows

type refresh_row = {
  jp_period : float;
  control_traversals : int;
  cleanup_time : float;
  deliveries : int;
}

let run_one_refresh period =
  let topo = Pim_graph.Classic.line 6 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let metrics = Metrics.attach net in
  let rp_set = Pim_core.Rp_set.single group (Addr.router 2) in
  let config = Pim_core.Config.(with_jp_period period fast) in
  let dep = Pim_core.Deployment.create_static ~config net ~rp_set in
  let receiver = Pim_core.Deployment.router dep 5 in
  Pim_core.Router.join_local receiver group;
  let deliveries = ref 0 in
  Pim_core.Router.on_local_data receiver (fun _ -> incr deliveries);
  let sender = Pim_core.Deployment.router dep 0 in
  for i = 0 to 39 do
    ignore
      (Engine.schedule_at eng
         (10. +. (0.5 *. float_of_int i))
         (fun () -> Pim_core.Router.send_local_data sender ~group ()))
  done;
  (* Steady-state control cost over [10, 30). *)
  ignore (Engine.schedule_at eng 10. (fun () -> Metrics.reset metrics));
  Engine.run ~until:30. eng;
  let control = Metrics.control_traversals metrics in
  (* Receiver silently leaves; watch stale state drain. *)
  let leave_at = 30. in
  Pim_core.Router.leave_local receiver group;
  let baseline = ref None in
  let probe = Engine.every eng ~start:0.25 ~interval:0.25 (fun () ->
      if !baseline = None && Pim_core.Deployment.total_entries dep = 0 then
        baseline := Some (Engine.now eng))
  in
  Engine.run ~until:(leave_at +. (10. *. period) +. 60.) eng;
  Engine.cancel probe;
  let cleanup_time = match !baseline with Some t -> t -. leave_at | None -> infinity in
  { jp_period = period; control_traversals = control; cleanup_time; deliveries = !deliveries }

let run_refresh ?(periods = [ 2.; 4.; 8.; 16. ]) ~seed:_ () =
  List.map run_one_refresh periods

let pp_refresh_rows ppf rows =
  Format.fprintf ppf "# E4: soft-state refresh period vs control cost and stale-state lifetime@.";
  Format.fprintf ppf "# jp_period  control(20s)  cleanup_time  delivered@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10.1f  %12d  %12.2f  %9d@." r.jp_period r.control_traversals
        r.cleanup_time r.deliveries)
    rows
