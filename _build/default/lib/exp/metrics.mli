(** Per-link traffic accounting for protocol experiments.

    Attaches to the simulated network and classifies every link traversal
    as data or control — the bandwidth component of the paper's overhead
    definition (state, control-message processing, data-packet
    processing). *)

type t

val is_data : Pim_net.Packet.t -> bool
(** The classifier: multicast data, register-encapsulated data, and CBT
    tunnel-encapsulated data all count as data; everything else is
    control. *)

val attach : Pim_sim.Net.t -> t
(** Counters start at zero from the moment of attachment. *)

val reset : t -> unit

val data_traversals : t -> int
(** Total data-packet link transmissions (registers' encapsulated data
    counts as data). *)

val control_traversals : t -> int

val data_bytes : t -> int

val control_bytes : t -> int

val link_data : t -> Pim_graph.Topology.link_id -> int

val max_link_data : t -> int
(** The busiest link's data count — the traffic-concentration measure of
    Figure 2(b). *)
