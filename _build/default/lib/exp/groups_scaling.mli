(** Experiment E5 — scaling with the number of groups (section 1.2).

    "The scalability of a multicast protocol can be evaluated in terms of
    its overhead growth with ... the number of groups" — and the paper's
    target regime is "much larger numbers of groups, many of which are
    sparse".  Here the number of simultaneously active sparse groups
    (3 members, 1 source each) sweeps upward on a fixed 50-node topology,
    and each protocol's state, control and data costs are measured under
    an identical schedule.

    Expected shapes: DVMRP floods per group, so its data cost grows with
    groups x network size; MOSPF's state grows with groups x routers
    (every router stores every group's membership); PIM and CBT grow with
    groups x tree size only. *)

type row = {
  protocol : string;
  groups : int;
  data_traversals : int;
  control_traversals : int;
  state_entries : int;
  deliveries : int;
  expected_deliveries : int;
}

val run :
  ?nodes:int ->
  ?degree:float ->
  ?members_per_group:int ->
  ?packets:int ->
  ?group_counts:int list ->
  seed:int ->
  unit ->
  row list
(** Defaults: 50 nodes, degree 4, 3 members/group, 5 packets/source,
    group counts [10; 40; 120]. *)

val pp_rows : Format.formatter -> row list -> unit
