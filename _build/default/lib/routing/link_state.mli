(** OSPF-like link-state unicast routing.

    Each router originates a link-state advertisement (LSA) describing its
    usable adjacencies, floods it with sequence-number deduplication, and
    runs Dijkstra over the resulting database.  An adjacency enters the
    shortest-path computation only when both endpoints advertise it (the
    bidirectionality check), so a crashed router disappears from the
    routes even though it can no longer re-originate.  MOSPF extends
    exactly this protocol (paper section 1.1). *)

type config = {
  refresh_period : float;  (** periodic LSA re-origination *)
  spf_delay : float;  (** damping delay between LSDB change and SPF run *)
}

val default_config : config
(** refresh 120 s, SPF delay 0.5 s. *)

type t

val create : ?config:config -> Pim_sim.Net.t -> t

val rib : t -> Pim_graph.Topology.node -> Rib.t

val distance : t -> Pim_graph.Topology.node -> Pim_graph.Topology.node -> int option
(** Metric at router [u] toward router [d] per [u]'s current SPF result. *)

val converged : t -> against:int array array -> bool

val lsa_count : t -> int
(** Total LSA transmissions (flooding overhead). *)

val spf_runs : t -> int
(** Total Dijkstra executions across all routers (the processing cost the
    paper cites as limiting MOSPF scaling). *)
