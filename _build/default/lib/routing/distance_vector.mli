(** RIP-like distance-vector unicast routing.

    Runs inside the simulator: periodic full-table advertisements to
    neighbors, triggered updates on change, split horizon with poison
    reverse, and route timeout.  DVMRP extends exactly this kind of
    protocol (paper section 1.1); PIM merely reads its tables through
    {!Rib}. *)

type config = {
  period : float;  (** advertisement interval (RIP: 30 s) *)
  timeout : float;  (** route expiry when not refreshed (RIP: 180 s) *)
  infinity_metric : int;  (** unreachability sentinel (RIP: 16) *)
  triggered_delay : float;  (** damping delay before a triggered update *)
}

val default_config : config
(** period 30 s, timeout 180 s, infinity 64, triggered delay 1 s. *)

type t

val create : ?config:config -> Pim_sim.Net.t -> t
(** Starts the per-router processes: direct routes are installed
    immediately, the first advertisements are staggered across the first
    period.  Subscribes to link-change notifications. *)

val rib : t -> Pim_graph.Topology.node -> Rib.t

val metric : t -> Pim_graph.Topology.node -> Pim_graph.Topology.node -> int option
(** Current metric at router [u] toward router [d]; [None] when unknown or
    unreachable. *)

val converged : t -> against:int array array -> bool
(** True when every router's table matches the given distance matrix
    (typically {!Static.distance_matrix} of the same network) — used by
    tests to assert convergence. *)

val message_count : t -> int
(** Total advertisements sent since creation (control overhead). *)
