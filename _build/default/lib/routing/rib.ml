type t = {
  node : Pim_graph.Topology.node;
  next_hop : Pim_net.Addr.t -> (Pim_graph.Topology.iface * Pim_graph.Topology.node) option;
  distance : Pim_net.Addr.t -> int option;
  subscribe : (unit -> unit) -> unit;
}

let rpf_iface t addr = Option.map fst (t.next_hop addr)

let resolve addr =
  match Pim_net.Addr.router_index addr with
  | Some i -> Some i
  | None -> Pim_net.Addr.host_router_index addr
