(** The unicast Routing Information Base interface PIM consumes.

    The paper's central "protocol independent" claim (section 2, "Routing
    Protocol Independent") is that the multicast protocol only *reads* the
    unicast routing tables and never cares how they were computed.  This
    module is that boundary: a per-router view offering next-hop lookup,
    distance, and change notification.  Three substrates implement it —
    {!Static} (oracle all-pairs shortest paths), {!Distance_vector}
    (RIP-like) and {!Link_state} (OSPF-like) — and PIM, DVMRP, CBT and
    MOSPF all run unmodified on any of them. *)

type t = {
  node : Pim_graph.Topology.node;  (** the router owning this view *)
  next_hop : Pim_net.Addr.t -> (Pim_graph.Topology.iface * Pim_graph.Topology.node) option;
      (** interface and next-hop router toward a unicast destination;
          [None] when unreachable (or the destination is this router
          itself). *)
  distance : Pim_net.Addr.t -> int option;
      (** metric to the destination; [Some 0] for self. *)
  subscribe : (unit -> unit) -> unit;
      (** register a callback invoked whenever this router's table changes
          — PIM uses it to re-run RPF checks (section 3.8). *)
}

val rpf_iface : t -> Pim_net.Addr.t -> Pim_graph.Topology.iface option
(** The RPF interface toward an address: the interface this router would
    use to send unicast packets to it.  This is the incoming-interface
    check of every multicast scheme in the paper. *)

val resolve : Pim_net.Addr.t -> Pim_graph.Topology.node option
(** Map a simulated unicast address (router or host) to the router node
    that owns/serves it. *)
