(** Oracle unicast routing: all-pairs shortest paths over the live
    topology.

    Routes are recomputed instantly whenever a link or node changes state,
    so this substrate has zero convergence time.  It is the default for
    experiments, where unicast convergence noise would obscure the
    multicast measurements; {!Distance_vector} and {!Link_state} exist to
    demonstrate that the multicast protocols are oblivious to the
    substrate. *)

type t

val create : Pim_sim.Net.t -> t
(** Builds routes immediately and subscribes to link-change notifications
    from the network. *)

val rib : t -> Pim_graph.Topology.node -> Rib.t
(** The per-router RIB view handed to multicast protocols. *)

val distance_matrix : t -> int array array
(** Current router-to-router distances ([max_int] = unreachable). *)

val refresh : t -> unit
(** Force recomputation (normally automatic). *)
