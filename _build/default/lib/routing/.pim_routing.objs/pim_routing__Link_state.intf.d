lib/routing/link_state.mli: Pim_graph Pim_sim Rib
