lib/routing/rib.mli: Pim_graph Pim_net
