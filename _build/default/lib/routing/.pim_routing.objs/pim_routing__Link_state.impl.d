lib/routing/link_state.ml: Array Hashtbl Int List Pim_graph Pim_net Pim_sim Pim_util Printf Rib
