lib/routing/rib.ml: Option Pim_graph Pim_net
