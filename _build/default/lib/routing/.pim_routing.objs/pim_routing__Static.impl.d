lib/routing/static.ml: Array List Pim_graph Pim_sim Rib
