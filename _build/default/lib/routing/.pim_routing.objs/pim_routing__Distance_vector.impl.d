lib/routing/distance_vector.ml: Array Hashtbl List Pim_graph Pim_net Pim_sim Printf Rib
