lib/routing/static.mli: Pim_graph Pim_sim Rib
