lib/routing/distance_vector.mli: Pim_graph Pim_sim Rib
