lib/interop/border.ml: Pim_core Pim_dense Pim_graph Pim_net Set
