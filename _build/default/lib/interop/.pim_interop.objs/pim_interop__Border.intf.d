lib/interop/border.mli: Pim_core Pim_dense Pim_graph Pim_net
