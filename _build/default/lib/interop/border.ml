module Group = Pim_net.Group

module GroupSet = Set.Make (Group)

type t = {
  pim : Pim_core.Router.t;
  dense : Pim_dense.Router.t;
  internal_iface : Pim_graph.Topology.iface;
  mutable joined : GroupSet.t;
}

let create ~pim ~dense ~internal_iface () =
  let t = { pim; dense; internal_iface; joined = GroupSet.empty } in
  (* Region sources look locally originated to the sparse half: register
     them to the RPs (proxying, section 4). *)
  Pim_core.Router.add_proxy_iface pim internal_iface;
  (* Member existence information drives explicit joins. *)
  Pim_dense.Router.on_region_change dense (fun g present ->
      if present then begin
        if not (GroupSet.mem g t.joined) then begin
          t.joined <- GroupSet.add g t.joined;
          Pim_core.Router.join_on_iface pim g ~iface:internal_iface
        end
      end
      else if GroupSet.mem g t.joined then begin
        t.joined <- GroupSet.remove g t.joined;
        Pim_core.Router.leave_on_iface pim g ~iface:internal_iface
      end);
  t

let pim t = t.pim

let dense t = t.dense

let joined_groups t = GroupSet.elements t.joined
