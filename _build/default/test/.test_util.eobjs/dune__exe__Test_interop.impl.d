test/test_interop.ml: Alcotest List Pim_core Pim_dense Pim_graph Pim_interop Pim_mcast Pim_net Pim_routing Pim_sim Printf
