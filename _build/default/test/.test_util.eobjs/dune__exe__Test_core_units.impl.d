test/test_core_units.ml: Alcotest Array List Pim_core Pim_graph Pim_net Pim_sim String
