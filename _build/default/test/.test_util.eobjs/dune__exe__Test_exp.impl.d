test/test_exp.ml: Alcotest Array List Pim_core Pim_exp Pim_graph Pim_mcast Pim_net Pim_sim Printf String
