test/test_routing.ml: Alcotest Array List Option Pim_graph Pim_net Pim_routing Pim_sim Pim_util Printf QCheck QCheck_alcotest
