test/test_util.ml: Alcotest Array Float Fun Gc Hashtbl Int List Pim_util QCheck QCheck_alcotest Sys
