test/test_util.ml: Alcotest Array Fun Int List Pim_util QCheck QCheck_alcotest
