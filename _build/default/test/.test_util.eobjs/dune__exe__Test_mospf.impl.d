test/test_mospf.ml: Alcotest Array List Pim_graph Pim_mospf Pim_net Pim_sim Printf
