test/test_mcast.mli:
