test/test_dense.ml: Alcotest Array List Pim_dense Pim_graph Pim_mcast Pim_net Pim_sim Printf
