test/test_mcast.ml: Alcotest List Option Pim_mcast Pim_net QCheck QCheck_alcotest
