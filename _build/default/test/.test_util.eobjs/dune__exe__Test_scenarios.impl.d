test/test_scenarios.ml: Alcotest List Option Pim_core Pim_graph Pim_igmp Pim_mcast Pim_net Pim_sim String
