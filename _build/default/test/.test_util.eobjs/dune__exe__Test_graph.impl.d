test/test_graph.ml: Alcotest Array Float Fun Gen Int List Pim_graph Pim_util Printf QCheck QCheck_alcotest
