test/test_net.ml: Alcotest List Pim_net QCheck QCheck_alcotest
