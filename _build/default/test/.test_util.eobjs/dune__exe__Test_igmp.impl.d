test/test_igmp.ml: Alcotest Hashtbl List Pim_graph Pim_igmp Pim_net Pim_sim Printf
