test/test_sim.ml: Alcotest Array List Option Pim_graph Pim_net Pim_sim Pim_util Printf
