test/test_cbt.ml: Alcotest Array List Pim_cbt Pim_graph Pim_mcast Pim_net Pim_sim Printf
