test/test_pim.ml: Alcotest Format List Option Pim_core Pim_graph Pim_igmp Pim_mcast Pim_net Pim_routing Pim_sim Pim_util Printf QCheck QCheck_alcotest String
