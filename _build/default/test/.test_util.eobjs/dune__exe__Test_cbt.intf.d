test/test_cbt.mli:
