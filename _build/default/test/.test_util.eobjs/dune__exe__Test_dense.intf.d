test/test_dense.mli:
