test/test_mospf.mli:
