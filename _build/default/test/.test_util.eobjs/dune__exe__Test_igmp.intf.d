test/test_igmp.mli:
