(* Tests for the MOSPF-style link-state multicast baseline (Pim_mospf). *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Classic = Pim_graph.Classic
module Group = Pim_net.Group
module Mospf = Pim_mospf.Router

let g = Group.of_index 1

let g2 = Group.of_index 2

let mk topo =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let dep = Mospf.Deployment.create net in
  (eng, net, dep)

let send_n eng dep ~from ~start n =
  let r = Mospf.Deployment.router dep from in
  for i = 0 to n - 1 do
    ignore
      (Engine.schedule_at eng (start +. float_of_int i) (fun () ->
           Mospf.send_local_data r ~group:g ()))
  done

(* Membership floods to every router — the state cost the paper cites. *)
let test_membership_floods_everywhere () =
  let eng, _, dep = mk (Classic.grid 3 3) in
  Mospf.join_local (Mospf.Deployment.router dep 8) g;
  Engine.run ~until:10. eng;
  for u = 0 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "router %d knows member at 8" u)
      true
      (Mospf.knows_member (Mospf.Deployment.router dep u) 8 g)
  done;
  (* 9 routers x 1 membership pair. *)
  Alcotest.(check int) "total membership entries" 9 (Mospf.Deployment.total_membership_entries dep);
  Alcotest.(check bool) "lsas flooded" true
    ((Mospf.Deployment.total_stats dep).Mospf.lsa_sent > 0)

let test_delivery_on_spt () =
  let eng, _, dep = mk (Classic.grid 3 3) in
  let members = [ 2; 6; 8 ] in
  let counts = Array.make 9 0 in
  List.iter
    (fun m ->
      Mospf.join_local (Mospf.Deployment.router dep m) g;
      Mospf.on_local_data (Mospf.Deployment.router dep m) (fun _ -> counts.(m) <- counts.(m) + 1))
    members;
  Engine.run ~until:10. eng;
  send_n eng dep ~from:0 ~start:10. 5;
  Engine.run ~until:30. eng;
  List.iter
    (fun m -> Alcotest.(check int) (Printf.sprintf "member %d" m) 5 counts.(m))
    members;
  Alcotest.(check bool) "dijkstras ran" true ((Mospf.Deployment.total_stats dep).Mospf.spf_runs > 0)

(* The forwarding cache amortises Dijkstra: per (source, group), not per
   packet. *)
let test_spf_cached () =
  let eng, _, dep = mk (Classic.line 4) in
  Mospf.join_local (Mospf.Deployment.router dep 3) g;
  Engine.run ~until:5. eng;
  send_n eng dep ~from:0 ~start:5. 10;
  Engine.run ~until:30. eng;
  let runs = (Mospf.Deployment.total_stats dep).Mospf.spf_runs in
  (* 4 routers, one (source, group): roughly one run per on-tree router,
     not one per packet per router. *)
  Alcotest.(check bool) (Printf.sprintf "cached (%d runs)" runs) true (runs <= 8)

(* Membership changes invalidate the cache and reroute. *)
let test_membership_change_invalidates () =
  let eng, _, dep = mk (Classic.line 4) in
  Mospf.join_local (Mospf.Deployment.router dep 3) g;
  let got2 = ref 0 in
  Mospf.on_local_data (Mospf.Deployment.router dep 2) (fun _ -> incr got2);
  Engine.run ~until:5. eng;
  send_n eng dep ~from:0 ~start:5. 3;
  Engine.run ~until:15. eng;
  Alcotest.(check int) "not a member yet" 0 !got2;
  (* Router 2 becomes a member mid-stream. *)
  Mospf.join_local (Mospf.Deployment.router dep 2) g;
  Engine.run ~until:17. eng;
  send_n eng dep ~from:0 ~start:17. 3;
  Engine.run ~until:30. eng;
  Alcotest.(check int) "receives after joining" 3 !got2

let test_leave_stops_delivery () =
  let eng, _, dep = mk (Classic.line 4) in
  let r3 = Mospf.Deployment.router dep 3 in
  Mospf.join_local r3 g;
  let got = ref 0 in
  Mospf.on_local_data r3 (fun _ -> incr got);
  Engine.run ~until:5. eng;
  send_n eng dep ~from:0 ~start:5. 3;
  Engine.run ~until:15. eng;
  Alcotest.(check int) "before leave" 3 !got;
  Mospf.leave_local r3 g;
  Engine.run ~until:17. eng;
  send_n eng dep ~from:0 ~start:17. 3;
  Engine.run ~until:30. eng;
  Alcotest.(check int) "no delivery after leave" 3 !got

let test_link_failure_reroutes () =
  let eng, net, dep = mk (Classic.ring 4) in
  let r2 = Mospf.Deployment.router dep 2 in
  Mospf.join_local r2 g;
  let got = ref 0 in
  Mospf.on_local_data r2 (fun _ -> incr got);
  Engine.run ~until:5. eng;
  send_n eng dep ~from:0 ~start:5. 3;
  Engine.run ~until:15. eng;
  let before = !got in
  Alcotest.(check int) "before failure" 3 before;
  (* Cut one side of the ring; the SPT recomputes around it. *)
  Net.set_link_up net 0 false;
  send_n eng dep ~from:0 ~start:16. 3;
  Engine.run ~until:30. eng;
  Alcotest.(check int) "after reroute" 6 !got

let test_groups_independent () =
  let eng, _, dep = mk (Classic.line 3) in
  Mospf.join_local (Mospf.Deployment.router dep 2) g;
  let got = ref 0 in
  Mospf.on_local_data (Mospf.Deployment.router dep 2) (fun _ -> incr got);
  Engine.run ~until:5. eng;
  (* Send to the OTHER group: nothing must arrive. *)
  let r0 = Mospf.Deployment.router dep 0 in
  ignore (Engine.schedule_at eng 5. (fun () -> Mospf.send_local_data r0 ~group:g2 ()));
  Engine.run ~until:15. eng;
  Alcotest.(check int) "no cross-group delivery" 0 !got

let () =
  Alcotest.run "pim_mospf"
    [
      ( "mospf",
        [
          Alcotest.test_case "membership floods everywhere" `Quick
            test_membership_floods_everywhere;
          Alcotest.test_case "delivery on spt" `Quick test_delivery_on_spt;
          Alcotest.test_case "spf cached" `Quick test_spf_cached;
          Alcotest.test_case "membership change invalidates" `Quick
            test_membership_change_invalidates;
          Alcotest.test_case "leave stops delivery" `Quick test_leave_stops_delivery;
          Alcotest.test_case "link failure reroutes" `Quick test_link_failure_reroutes;
          Alcotest.test_case "groups independent" `Quick test_groups_independent;
        ] );
    ]
