(* Dense/sparse interoperation tests (paper section 4, implemented in
   Pim_interop.Border).

   Topology:

       WAN (PIM sparse mode)          dense region (DVMRP-style)
     [0] -- [1=RP] -- [2] -- [3] ==== [4] -- [5] -- [6]
                                             |
                                            [7]

   Router 3 is the border's sparse half, router 4 its dense half; the
   3-4 link is the internal link. *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Topology = Pim_graph.Topology
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Pim = Pim_core.Router
module Dense = Pim_dense.Router
module Border = Pim_interop.Border

let g = Group.of_index 1

type world = {
  eng : Engine.t;
  net : Net.t;
  pim : (int * Pim.t) list;  (* WAN routers *)
  dense : (int * Dense.t) list;  (* region routers *)
  border : Border.t;
  internal_link : Topology.link_id;
}

let mk_world () =
  let b = Topology.builder 8 in
  ignore (Topology.add_p2p b 0 1);
  ignore (Topology.add_p2p b 1 2);
  ignore (Topology.add_p2p b 2 3);
  let internal_link = Topology.add_p2p b 3 4 in
  ignore (Topology.add_p2p b 4 5);
  ignore (Topology.add_p2p b 5 6);
  ignore (Topology.add_p2p b 5 7);
  let topo = Topology.freeze b in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let static = Pim_routing.Static.create net in
  let rp_set = Pim_core.Rp_set.single g (Addr.router 1) in
  let pim =
    List.map
      (fun u ->
        (u, Pim.create ~config:Pim_core.Config.fast ~net ~rib:(Pim_routing.Static.rib static u)
              ~rp_set u))
      [ 0; 1; 2; 3 ]
  in
  let dense_config = { Dense.fast_config with Dense.advertise_members = true } in
  let dense =
    List.map
      (fun u ->
        (u, Dense.create ~config:dense_config ~net ~rib:(Pim_routing.Static.rib static u)
              ~neighbor_rib:(Pim_routing.Static.rib static) u))
      [ 4; 5; 6; 7 ]
  in
  let border =
    Border.create ~pim:(List.assoc 3 pim) ~dense:(List.assoc 4 dense)
      ~internal_iface:(Topology.iface_of_link topo 3 internal_link)
      ()
  in
  { eng; net; pim; dense; border; internal_link }

let test_member_existence_reaches_border () =
  let w = mk_world () in
  Dense.join_local (List.assoc 6 w.dense) g;
  Engine.run ~until:10. w.eng;
  Alcotest.(check bool) "border learned of region member" true
    (Dense.region_has_member (Border.dense w.border) g);
  Alcotest.(check (list string)) "border joined on the region's behalf" [ "225.0.0.1" ]
    (List.map Group.to_string (Border.joined_groups w.border));
  (* The border's sparse half is on the shared tree toward the RP. *)
  Alcotest.(check bool) "sparse half has (*,G)" true
    (Pim_mcast.Fwd.find_star (Pim.fib (List.assoc 3 w.pim)) g <> None);
  (* And so is the intermediate WAN router. *)
  Alcotest.(check bool) "WAN transit has (*,G)" true
    (Pim_mcast.Fwd.find_star (Pim.fib (List.assoc 2 w.pim)) g <> None)

let test_external_source_reaches_region_member () =
  let w = mk_world () in
  Dense.join_local (List.assoc 6 w.dense) g;
  let got = ref 0 in
  Dense.on_local_data (List.assoc 6 w.dense) (fun _ -> incr got);
  Engine.run ~until:10. w.eng;
  (* External source behind WAN router 0. *)
  let src = List.assoc 0 w.pim in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at w.eng (10. +. float_of_int i) (fun () ->
           Pim.send_local_data src ~group:g ()))
  done;
  Engine.run ~until:30. w.eng;
  Alcotest.(check int) "region member received external data" 5 !got

let test_region_source_reaches_external_member () =
  let w = mk_world () in
  (* An external member joins via normal PIM; the region has a source but
     needs at least advert machinery running. *)
  Pim.join_local (List.assoc 0 w.pim) g;
  let got = ref 0 in
  Pim.on_local_data (List.assoc 0 w.pim) (fun _ -> incr got);
  Engine.run ~until:10. w.eng;
  let src = List.assoc 7 w.dense in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at w.eng (10. +. float_of_int i) (fun () ->
           Dense.send_local_data src ~group:g ()))
  done;
  Engine.run ~until:40. w.eng;
  Alcotest.(check bool)
    (Printf.sprintf "external member received region data (%d)" !got)
    true (!got >= 4);
  (* The border's sparse half registered the region source. *)
  Alcotest.(check bool) "border registered as proxy" true
    ((Pim.stats (List.assoc 3 w.pim)).Pim.registers_sent > 0)

let test_border_leaves_when_region_empties () =
  let w = mk_world () in
  let r6 = List.assoc 6 w.dense in
  Dense.join_local r6 g;
  Engine.run ~until:10. w.eng;
  Alcotest.(check int) "joined" 1 (List.length (Border.joined_groups w.border));
  Dense.leave_local r6 g;
  Engine.run ~until:20. w.eng;
  Alcotest.(check int) "left after last member" 0 (List.length (Border.joined_groups w.border));
  (* The shared-tree branch across the WAN ages out. *)
  Engine.run ~until:60. w.eng;
  Alcotest.(check bool) "WAN state gone" true
    (Pim_mcast.Fwd.find_star (Pim.fib (List.assoc 2 w.pim)) g = None)

let test_second_region_member_no_rejoin_churn () =
  let w = mk_world () in
  Dense.join_local (List.assoc 6 w.dense) g;
  Engine.run ~until:10. w.eng;
  let joins_before = (Pim.stats (List.assoc 3 w.pim)).Pim.joins_sent in
  (* A second member appears and the first leaves: region stays populated,
     so the border should not leave/rejoin the wide-area tree. *)
  Dense.join_local (List.assoc 7 w.dense) g;
  Engine.run ~until:15. w.eng;
  Dense.leave_local (List.assoc 6 w.dense) g;
  Engine.run ~until:25. w.eng;
  Alcotest.(check int) "still joined" 1 (List.length (Border.joined_groups w.border));
  let joins_after = (Pim.stats (List.assoc 3 w.pim)).Pim.joins_sent in
  (* Only periodic refreshes in between, no triggered leave/rejoin spike:
     15 s at one refresh per 6 s ~ 3 messages. *)
  Alcotest.(check bool)
    (Printf.sprintf "no join churn (%d new joins)" (joins_after - joins_before))
    true
    (joins_after - joins_before <= 4)

let test_crashed_region_router_advert_expires () =
  let w = mk_world () in
  Dense.join_local (List.assoc 6 w.dense) g;
  Engine.run ~until:10. w.eng;
  Alcotest.(check int) "joined" 1 (List.length (Border.joined_groups w.border));
  (* The member's router crashes without a leave: the advert must age out
     (3 x advert_interval = 9 s fast) and the border must withdraw. *)
  Net.set_node_up w.net 6 false;
  Engine.run ~until:40. w.eng;
  Alcotest.(check int) "withdrawn after advert expiry" 0
    (List.length (Border.joined_groups w.border))

let () =
  Alcotest.run "pim_interop"
    [
      ( "border",
        [
          Alcotest.test_case "member existence reaches border" `Quick
            test_member_existence_reaches_border;
          Alcotest.test_case "external source -> region member" `Quick
            test_external_source_reaches_region_member;
          Alcotest.test_case "region source -> external member" `Quick
            test_region_source_reaches_external_member;
          Alcotest.test_case "border leaves when region empties" `Quick
            test_border_leaves_when_region_empties;
          Alcotest.test_case "no rejoin churn while populated" `Quick
            test_second_region_member_no_rejoin_churn;
          Alcotest.test_case "crashed router advert expires" `Quick
            test_crashed_region_router_advert_expires;
        ] );
    ]
