(* Tests for the dense-mode (flood-and-prune) protocols: DVMRP-style and
   protocol-independent PIM dense mode. *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Topology = Pim_graph.Topology
module Classic = Pim_graph.Classic
module Group = Pim_net.Group
module Dense = Pim_dense.Router

let g = Group.of_index 1

let mk ?(config = Dense.fast_config) topo =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let dep = Dense.Deployment.create_static ~config net in
  (eng, net, dep)

let send_n eng dep ~from ~start ~interval n =
  let r = Dense.Deployment.router dep from in
  for i = 0 to n - 1 do
    ignore
      (Engine.schedule_at eng
         (start +. (interval *. float_of_int i))
         (fun () -> Dense.send_local_data r ~group:g ()))
  done

(* The first packet floods to every router; members hear it without any
   prior signalling (dense mode assumes membership). *)
let test_first_packet_floods () =
  let eng, _, dep = mk (Classic.grid 3 3) in
  let counts = Array.make 9 0 in
  for m = 0 to 8 do
    if m <> 0 then begin
      Dense.join_local (Dense.Deployment.router dep m) g;
      Dense.on_local_data (Dense.Deployment.router dep m) (fun _ -> counts.(m) <- counts.(m) + 1)
    end
  done;
  send_n eng dep ~from:0 ~start:1. ~interval:1. 1;
  Engine.run ~until:10. eng;
  for m = 1 to 8 do
    Alcotest.(check int) (Printf.sprintf "member %d got the flood once" m) 1 counts.(m)
  done

(* Non-members prune and stop receiving; flow keeps reaching members. *)
let test_prunes_trim_tree () =
  let eng, net, dep = mk (Classic.line 5) in
  (* Member only at node 2; nodes 3,4 are a dead branch. *)
  Dense.join_local (Dense.Deployment.router dep 2) g;
  let got = ref 0 in
  Dense.on_local_data (Dense.Deployment.router dep 2) (fun _ -> incr got);
  send_n eng dep ~from:0 ~start:1. ~interval:0.5 20;
  Engine.run ~until:14. eng;
  Alcotest.(check int) "member got everything" 20 !got;
  (* Link 3 connects 3-4: after the first flood and the prune, packets
     stop crossing it. *)
  let dead_branch_before = Net.traversals net 3 in
  send_n eng dep ~from:0 ~start:14. ~interval:0.5 10;
  Engine.run ~until:22. eng;
  let dead_branch_after = Net.traversals net 3 in
  Alcotest.(check int) "pruned branch stays quiet" 0 (dead_branch_after - dead_branch_before);
  Alcotest.(check bool) "prunes were sent" true
    ((Dense.Deployment.total_stats dep).Dense.prunes_sent > 0)

(* Pruned branches grow back after the prune timeout: the periodic
   re-broadcast of Figure 1(b). *)
let test_prune_growback () =
  let eng, net, dep = mk (Classic.line 4) in
  Dense.join_local (Dense.Deployment.router dep 1) g;
  (* Send steadily for longer than prune_timeout (18 s fast). *)
  send_n eng dep ~from:0 ~start:1. ~interval:1. 40;
  Engine.run ~until:13. eng;
  let early = Net.traversals net 2 in
  (* link 2-3 (dead branch): pruned after the first packets *)
  Engine.run ~until:45. eng;
  let late = Net.traversals net 2 in
  Alcotest.(check bool)
    (Printf.sprintf "grow-back refloods (%d -> %d)" early late)
    true (late > early)

(* Truncated broadcast: a leaf subnet with no members never sees data. *)
let test_truncated_broadcast () =
  let b = Topology.builder 2 in
  ignore (Topology.add_p2p b 0 1);
  let empty_leaf = Topology.add_lan b [ 1 ] in
  let topo = Topology.freeze b in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  (* Count data frames only: IGMP queries legitimately use the stub LAN. *)
  let leaf_data = ref 0 in
  Net.on_deliver net (fun lid pkt ->
      if lid = empty_leaf && Pim_mcast.Mdata.is_data pkt then incr leaf_data);
  let dep = Dense.Deployment.create_static ~config:Dense.fast_config net in
  send_n eng dep ~from:0 ~start:1. ~interval:1. 3;
  Engine.run ~until:10. eng;
  Alcotest.(check int) "no data onto empty leaf" 0 !leaf_data

(* DVMRP's child check avoids duplicate deliveries on multipath
   topologies; PIM-DM floods more and prunes the extras. *)
let test_child_check_vs_pim_dm () =
  let run mode =
    let topo = Classic.grid 3 3 in
    let eng = Engine.create () in
    let net = Net.create eng topo in
    let config = { Dense.fast_config with Dense.mode } in
    let dep = Dense.Deployment.create_static ~config net in
    Dense.join_local (Dense.Deployment.router dep 8) g;
    let got = ref 0 in
    Dense.on_local_data (Dense.Deployment.router dep 8) (fun _ -> incr got);
    send_n eng dep ~from:0 ~start:1. ~interval:1. 10;
    Engine.run ~until:20. eng;
    (!got, (Dense.Deployment.total_stats dep).Dense.data_forwarded)
  in
  let got_dvmrp, fwd_dvmrp = run Dense.Dvmrp in
  let got_dm, fwd_dm = run Dense.Pim_dm in
  Alcotest.(check int) "dvmrp delivers all" 10 got_dvmrp;
  Alcotest.(check int) "pim-dm delivers all" 10 got_dm;
  Alcotest.(check bool)
    (Printf.sprintf "pim-dm floods more (%d vs %d)" fwd_dm fwd_dvmrp)
    true (fwd_dm > fwd_dvmrp)

(* Graft: a new member on a pruned branch pulls the flow back quickly. *)
let test_graft () =
  let config = { Dense.fast_config with Dense.graft = true } in
  let eng, _, dep = mk ~config (Classic.line 4) in
  (* Steady flow with no members: everything pruned. *)
  send_n eng dep ~from:0 ~start:1. ~interval:0.5 60;
  Engine.run ~until:10. eng;
  let r3 = Dense.Deployment.router dep 3 in
  let got = ref 0 in
  Dense.on_local_data r3 (fun _ -> incr got);
  let first_arrival = ref None in
  Dense.on_local_data r3 (fun _ ->
      if !first_arrival = None then first_arrival := Some (Engine.now eng));
  ignore (Engine.schedule_at eng 10. (fun () -> Dense.join_local r3 g));
  Engine.run ~until:31. eng;
  (match !first_arrival with
  | Some t ->
    (* Without graft the branch would wait for the 18 s prune timeout. *)
    Alcotest.(check bool) (Printf.sprintf "graft repaired fast (%.2f)" t) true (t < 18.)
  | None -> Alcotest.fail "member never received after graft");
  Alcotest.(check bool) "joins sent" true ((Dense.Deployment.total_stats dep).Dense.joins_sent > 0)

(* Without graft, the same scenario waits for prune grow-back. *)
let test_no_graft_waits_for_growback () =
  let eng, _, dep = mk (Classic.line 4) in
  send_n eng dep ~from:0 ~start:1. ~interval:0.5 80;
  Engine.run ~until:10. eng;
  let r3 = Dense.Deployment.router dep 3 in
  let first_arrival = ref None in
  Dense.on_local_data r3 (fun _ ->
      if !first_arrival = None then first_arrival := Some (Engine.now eng));
  ignore (Engine.schedule_at eng 10. (fun () -> Dense.join_local r3 g));
  Engine.run ~until:45. eng;
  match !first_arrival with
  | Some t ->
    Alcotest.(check bool) (Printf.sprintf "waited for grow-back (%.2f)" t) true (t > 12.)
  | None -> Alcotest.fail "member never received"

(* RPF check: data arriving off the reverse path is dropped.  PIM dense
   mode floods both ways around the ring, so the far side sees off-path
   copies; DVMRP's child check would prevent them from being sent at
   all. *)
let test_rpf_drops () =
  let config = { Dense.fast_config with Dense.mode = Dense.Pim_dm } in
  let eng, _, dep = mk ~config (Classic.ring 4) in
  Dense.join_local (Dense.Deployment.router dep 2) g;
  let got = ref 0 in
  Dense.on_local_data (Dense.Deployment.router dep 2) (fun _ -> incr got);
  send_n eng dep ~from:0 ~start:1. ~interval:1. 5;
  Engine.run ~until:15. eng;
  (* On the ring both directions reach node 2; the RPF check must keep a
     single delivery per packet. *)
  Alcotest.(check int) "no duplicates on the ring" 5 !got;
  Alcotest.(check bool) "off-path copies dropped" true
    ((Dense.Deployment.total_stats dep).Dense.data_dropped_iif > 0)

let test_state_expires () =
  let eng, _, dep = mk (Classic.line 3) in
  Dense.join_local (Dense.Deployment.router dep 2) g;
  send_n eng dep ~from:0 ~start:1. ~interval:1. 3;
  Engine.run ~until:6. eng;
  Alcotest.(check bool) "state exists during flow" true (Dense.Deployment.total_entries dep > 0);
  (* entry_linger (21 s fast) after the last packet. *)
  Engine.run ~until:40. eng;
  Alcotest.(check int) "state gone after linger" 0 (Dense.Deployment.total_entries dep)

(* Region membership advertisements (the section-4 interop mechanism). *)

let advert_config = { Dense.fast_config with Dense.advertise_members = true }

let test_adverts_flood_region () =
  let eng, _, dep = mk ~config:advert_config (Classic.grid 3 3) in
  Dense.join_local (Dense.Deployment.router dep 8) g;
  Engine.run ~until:5. eng;
  for u = 0 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "router %d knows of the member" u)
      true
      (Dense.region_has_member (Dense.Deployment.router dep u) g)
  done

let test_adverts_region_change_callbacks () =
  let eng, _, dep = mk ~config:advert_config (Classic.line 4) in
  let events = ref [] in
  Dense.on_region_change (Dense.Deployment.router dep 0) (fun _ present ->
      events := present :: !events);
  let r3 = Dense.Deployment.router dep 3 in
  Dense.join_local r3 g;
  Engine.run ~until:5. eng;
  Alcotest.(check (list bool)) "appeared" [ true ] (List.rev !events);
  Dense.leave_local r3 g;
  Engine.run ~until:10. eng;
  Alcotest.(check (list bool)) "and left" [ true; false ] (List.rev !events)

let test_adverts_second_member_no_flap () =
  let eng, _, dep = mk ~config:advert_config (Classic.line 4) in
  let events = ref 0 in
  Dense.on_region_change (Dense.Deployment.router dep 0) (fun _ _ -> incr events);
  Dense.join_local (Dense.Deployment.router dep 2) g;
  Engine.run ~until:5. eng;
  Dense.join_local (Dense.Deployment.router dep 3) g;
  Engine.run ~until:10. eng;
  Dense.leave_local (Dense.Deployment.router dep 2) g;
  Engine.run ~until:15. eng;
  (* Presence never flipped after the first join: one event only. *)
  Alcotest.(check int) "no flapping while populated" 1 !events

let test_adverts_expire_on_crash () =
  let eng, net, dep = mk ~config:advert_config (Classic.line 4) in
  Dense.join_local (Dense.Deployment.router dep 3) g;
  Engine.run ~until:5. eng;
  Alcotest.(check bool) "known" true (Dense.region_has_member (Dense.Deployment.router dep 0) g);
  Net.set_node_up net 3 false;
  (* 3 x advert_interval (3 s fast) plus a sweep. *)
  Engine.run ~until:25. eng;
  Alcotest.(check bool) "aged out after crash" false
    (Dense.region_has_member (Dense.Deployment.router dep 0) g)

let test_adverts_off_by_default () =
  let eng, _, dep = mk (Classic.line 3) in
  Dense.join_local (Dense.Deployment.router dep 2) g;
  Engine.run ~until:5. eng;
  Alcotest.(check bool) "no advert machinery when disabled" false
    (Dense.region_has_member (Dense.Deployment.router dep 0) g)

let () =
  Alcotest.run "pim_dense"
    [
      ( "flood-prune",
        [
          Alcotest.test_case "first packet floods" `Quick test_first_packet_floods;
          Alcotest.test_case "prunes trim the tree" `Quick test_prunes_trim_tree;
          Alcotest.test_case "prune grow-back refloods" `Quick test_prune_growback;
          Alcotest.test_case "truncated broadcast" `Quick test_truncated_broadcast;
          Alcotest.test_case "rpf drops duplicates" `Quick test_rpf_drops;
          Alcotest.test_case "state expires" `Quick test_state_expires;
        ] );
      ( "adverts",
        [
          Alcotest.test_case "flood region" `Quick test_adverts_flood_region;
          Alcotest.test_case "region change callbacks" `Quick test_adverts_region_change_callbacks;
          Alcotest.test_case "no flap while populated" `Quick test_adverts_second_member_no_flap;
          Alcotest.test_case "expire on crash" `Quick test_adverts_expire_on_crash;
          Alcotest.test_case "off by default" `Quick test_adverts_off_by_default;
        ] );
      ( "variants",
        [
          Alcotest.test_case "child check vs pim-dm" `Quick test_child_check_vs_pim_dm;
          Alcotest.test_case "graft" `Quick test_graft;
          Alcotest.test_case "no graft waits" `Quick test_no_graft_waits_for_growback;
        ] );
    ]
