(* Tests for the Core Based Trees baseline (Pim_cbt). *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Topology = Pim_graph.Topology
module Classic = Pim_graph.Classic
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Cbt = Pim_cbt.Router

let g = Group.of_index 1

let core_node = 2

let core_of gg = if Group.equal gg g then Some (Addr.router core_node) else None

let mk ?(config = Cbt.fast_config) topo =
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let dep = Cbt.Deployment.create_static ~config net ~core_of in
  (eng, net, dep)

let test_join_ack_builds_tree () =
  let eng, _, dep = mk (Classic.line 5) in
  Cbt.join_local (Cbt.Deployment.router dep 4) g;
  Engine.run ~until:10. eng;
  (* 4, 3 and the core are on the tree; 0 and 1 are not. *)
  Alcotest.(check bool) "receiver on tree" true (Cbt.on_tree (Cbt.Deployment.router dep 4) g);
  Alcotest.(check bool) "transit on tree" true (Cbt.on_tree (Cbt.Deployment.router dep 3) g);
  Alcotest.(check bool) "core on tree" true (Cbt.on_tree (Cbt.Deployment.router dep 2) g);
  Alcotest.(check bool) "off-branch router not on tree" false
    (Cbt.on_tree (Cbt.Deployment.router dep 0) g);
  (* Transit router has both parent and child interfaces. *)
  Alcotest.(check int) "transit degree 2" 2
    (List.length (Cbt.tree_ifaces (Cbt.Deployment.router dep 3) g));
  Alcotest.(check bool) "acks were sent" true ((Cbt.Deployment.total_stats dep).Cbt.acks_sent > 0)

let test_bidirectional_data () =
  (* Members at both ends; an on-tree sender's packets go both ways
     without visiting the core twice. *)
  let eng, _, dep = mk (Classic.line 5) in
  Cbt.join_local (Cbt.Deployment.router dep 0) g;
  Cbt.join_local (Cbt.Deployment.router dep 4) g;
  let got0 = ref 0 and got4 = ref 0 in
  Cbt.on_local_data (Cbt.Deployment.router dep 0) (fun _ -> incr got0);
  Cbt.on_local_data (Cbt.Deployment.router dep 4) (fun _ -> incr got4);
  Engine.run ~until:10. eng;
  let sender = Cbt.Deployment.router dep 4 in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at eng (10. +. float_of_int i) (fun () ->
           Cbt.send_local_data sender ~group:g ()))
  done;
  Engine.run ~until:30. eng;
  Alcotest.(check int) "far member" 5 !got0;
  Alcotest.(check int) "sender's own member hears too" 5 !got4

let test_off_tree_sender_encapsulates () =
  let eng, _, dep = mk (Classic.line 5) in
  Cbt.join_local (Cbt.Deployment.router dep 4) g;
  let got = ref 0 in
  Cbt.on_local_data (Cbt.Deployment.router dep 4) (fun _ -> incr got);
  Engine.run ~until:10. eng;
  (* Node 0 is off-tree: data must be tunnelled to the core. *)
  let sender = Cbt.Deployment.router dep 0 in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at eng (10. +. float_of_int i) (fun () ->
           Cbt.send_local_data sender ~group:g ()))
  done;
  Engine.run ~until:30. eng;
  Alcotest.(check int) "delivered via core" 5 !got;
  Alcotest.(check bool) "encapsulation used" true
    ((Cbt.stats sender).Cbt.data_encapsulated > 0);
  Alcotest.(check bool) "sender stayed off-tree" false (Cbt.on_tree sender g)

let test_quit_on_leave () =
  let eng, _, dep = mk (Classic.line 5) in
  let r4 = Cbt.Deployment.router dep 4 in
  Cbt.join_local r4 g;
  Engine.run ~until:10. eng;
  Alcotest.(check bool) "transit joined" true (Cbt.on_tree (Cbt.Deployment.router dep 3) g);
  Cbt.leave_local r4 g;
  (* Child ageing (25 s fast) plus quits tear the branch down. *)
  Engine.run ~until:80. eng;
  Alcotest.(check bool) "receiver left" false (Cbt.on_tree r4 g);
  Alcotest.(check bool) "transit quit too" false (Cbt.on_tree (Cbt.Deployment.router dep 3) g);
  Alcotest.(check bool) "quits were sent" true ((Cbt.Deployment.total_stats dep).Cbt.quits_sent > 0)

let test_flush_and_rejoin_on_parent_death () =
  (* Ring topology so an alternate path exists after the failure. *)
  let eng, net, dep = mk (Classic.ring 6) in
  let r5 = Cbt.Deployment.router dep 5 in
  (* core = 2; receiver 5 joins via 4-3 or 0-1 *)
  Cbt.join_local r5 g;
  let got = ref 0 in
  Cbt.on_local_data r5 (fun _ -> incr got);
  Engine.run ~until:10. eng;
  Alcotest.(check bool) "joined" true (Cbt.on_tree r5 g);
  (* Kill node 4 (one candidate path) — if 5's parent was 4, it must
     flush and rejoin the other way; if not, nothing happens. *)
  Net.set_node_up net 4 false;
  Engine.run ~until:80. eng;
  Alcotest.(check bool) "recovered on tree" true (Cbt.on_tree r5 g);
  (* Data still deliverable end to end. *)
  let s0 = Cbt.Deployment.router dep 1 in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at eng (80. +. float_of_int i) (fun () ->
           Cbt.send_local_data s0 ~group:g ()))
  done;
  Engine.run ~until:100. eng;
  Alcotest.(check int) "delivery after repair" 5 !got

let test_traffic_concentrates_at_core () =
  (* Star with core at hub: every flow crosses the hub links — the
     concentration effect of Figure 2(b). *)
  let topo = Classic.star 6 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let core_of gg = if Group.equal gg g then Some (Addr.router 0) else None in
  let dep = Cbt.Deployment.create_static ~config:Cbt.fast_config net ~core_of in
  let members = [ 1; 2; 3; 4; 5 ] in
  List.iter (fun m -> Cbt.join_local (Cbt.Deployment.router dep m) g) members;
  Engine.run ~until:10. eng;
  let data_per_link = Array.make (Topology.n_links topo) 0 in
  Net.on_deliver net (fun lid pkt ->
      if Pim_mcast.Mdata.is_data pkt then data_per_link.(lid) <- data_per_link.(lid) + 1);
  List.iter
    (fun m ->
      let r = Cbt.Deployment.router dep m in
      ignore (Engine.schedule_at eng (10. +. (0.1 *. float_of_int m)) (fun () ->
          Cbt.send_local_data r ~group:g ())))
    members;
  Engine.run ~until:30. eng;
  (* Each spoke link carries its member's outbound flow plus the other
     four members' inbound flows = 5 data frames. *)
  Array.iteri
    (fun lid c -> Alcotest.(check int) (Printf.sprintf "link %d flows" lid) 5 c)
    data_per_link

let () =
  Alcotest.run "pim_cbt"
    [
      ( "tree",
        [
          Alcotest.test_case "join/ack builds tree" `Quick test_join_ack_builds_tree;
          Alcotest.test_case "quit on leave" `Quick test_quit_on_leave;
          Alcotest.test_case "flush and rejoin on parent death" `Quick
            test_flush_and_rejoin_on_parent_death;
        ] );
      ( "data",
        [
          Alcotest.test_case "bidirectional forwarding" `Quick test_bidirectional_data;
          Alcotest.test_case "off-tree sender encapsulates" `Quick
            test_off_tree_sender_encapsulates;
          Alcotest.test_case "traffic concentrates at core" `Quick
            test_traffic_concentrates_at_core;
        ] );
    ]
