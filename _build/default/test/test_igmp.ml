(* Tests for Pim_igmp: host reports, suppression, router membership
   database, querier selection. *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Topology = Pim_graph.Topology
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Host = Pim_igmp.Host
module Router = Pim_igmp.Router
module Message = Pim_igmp.Message

let g = Group.of_index 1

let g2 = Group.of_index 2

let fast = { Router.query_interval = 5.; max_resp = 1.; robustness = 2 }

(* One router with a stub LAN; the router's handler feeds IGMP. *)
let mk_world ?(routers = [ 0 ]) () =
  let n = List.fold_left max 0 routers + 1 in
  let b = Topology.builder n in
  (* Realistic LAN propagation is far below the query response spread —
     report suppression depends on overhearing peers in time. *)
  let lan = Topology.add_lan ~delay:0.001 b routers in
  let topo = Topology.freeze b in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let igmps =
    List.map
      (fun u ->
        let r = Router.create ~config:fast net ~node:u in
        Net.set_handler net u (fun ~iface pkt -> ignore (Router.handle_packet r ~iface pkt));
        (u, r))
      routers
  in
  (eng, net, lan, igmps)

let test_unsolicited_report () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  let joins = ref [] in
  Router.on_join r (fun ~iface:_ gg -> joins := gg :: !joins);
  let h = Host.create net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  Host.join h g;
  Engine.run ~until:2. eng;
  Alcotest.(check bool) "membership learned" true (Router.has_member r g);
  Alcotest.(check int) "join callback" 1 (List.length !joins);
  Alcotest.(check bool) "other group absent" false (Router.has_member r g2)

let test_query_response () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  (* Host joins silently; only the periodic query reveals it. *)
  let h = Host.create ~unsolicited:false net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  Host.join h g;
  (* Before the first query (t=0.1) the silent join is invisible. *)
  Engine.run ~until:0.05 eng;
  Alcotest.(check bool) "not yet known" false (Router.has_member r g);
  Engine.run ~until:8. eng;
  Alcotest.(check bool) "learned from query" true (Router.has_member r g)

let test_report_suppression () =
  let eng, net, lan, igmps = mk_world () in
  let _r = List.assoc 0 igmps in
  (* Count reports on the wire. *)
  let reports = ref 0 in
  Net.on_deliver net (fun _ pkt ->
      match pkt.Pim_net.Packet.payload with Message.Report _ -> incr reports | _ -> ());
  let mk i =
    let h = Host.create ~unsolicited:false net ~link:lan ~addr:(Addr.host ~router:0 i) ~seed:i () in
    Host.join h g;
    h
  in
  let _hosts = List.map mk [ 1; 2; 3; 4; 5 ] in
  (* One query cycle: suppression should keep reports well below the
     5-per-query worst case. *)
  Engine.run ~until:8. eng;
  Alcotest.(check bool) "at least one report" true (!reports >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "suppression (%d reports)" !reports)
    true (!reports < 5)

let test_membership_ages_out () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  let leaves = ref [] in
  Router.on_leave r (fun ~iface:_ gg -> leaves := gg :: !leaves);
  let h = Host.create net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  Host.join h g;
  Engine.run ~until:2. eng;
  Alcotest.(check bool) "member" true (Router.has_member r g);
  Host.leave h g;
  (* hold time = robustness * interval + max_resp = 11s; plus sweep *)
  Engine.run ~until:30. eng;
  Alcotest.(check bool) "aged out" false (Router.has_member r g);
  Alcotest.(check int) "leave callback" 1 (List.length !leaves)

let test_membership_refreshed_while_joined () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  let h = Host.create net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  Host.join h g;
  Engine.run ~until:40. eng;
  Alcotest.(check bool) "still member after many query cycles" true (Router.has_member r g);
  ignore h

let test_querier_election () =
  (* Two routers on the LAN: only the lower id queries. *)
  let eng, net, _, _igmps = mk_world ~routers:[ 0; 1 ] () in
  let queries_from = Hashtbl.create 4 in
  Net.on_deliver net (fun _ pkt ->
      match pkt.Pim_net.Packet.payload with
      | Message.Query _ ->
        let src = pkt.Pim_net.Packet.src in
        Hashtbl.replace queries_from src ()
      | _ -> ());
  Engine.run ~until:12. eng;
  Alcotest.(check bool) "router 0 queries" true (Hashtbl.mem queries_from (Addr.router 0));
  Alcotest.(check bool) "router 1 silent" false (Hashtbl.mem queries_from (Addr.router 1))

let test_querier_takeover_on_death () =
  let eng, net, _, _igmps = mk_world ~routers:[ 0; 1 ] () in
  Net.set_node_up net 0 false;
  let queries_from = Hashtbl.create 4 in
  Net.on_deliver net (fun _ pkt ->
      match pkt.Pim_net.Packet.payload with
      | Message.Query _ -> Hashtbl.replace queries_from pkt.Pim_net.Packet.src ()
      | _ -> ());
  Engine.run ~until:12. eng;
  Alcotest.(check bool) "router 1 takes over" true (Hashtbl.mem queries_from (Addr.router 1))

let test_member_ifaces_and_groups () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  let h = Host.create net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  Host.join h g;
  Host.join h g2;
  Engine.run ~until:2. eng;
  let iface = Topology.iface_of_link (Net.topo net) 0 lan in
  Alcotest.(check (list int)) "iface recorded" [ iface ] (Router.member_ifaces r g);
  Alcotest.(check int) "both groups" 2 (List.length (Router.groups r))

let test_rp_hints () =
  let eng, net, lan, igmps = mk_world () in
  let r = List.assoc 0 igmps in
  let rps = [ Addr.router 9; Addr.router 4 ] in
  let h =
    Host.create net ~link:lan ~addr:(Addr.host ~router:0 1)
      ~rps_for:(fun gg -> if Group.equal gg g then rps else [])
      ()
  in
  Host.join h g;
  Engine.run ~until:2. eng;
  Alcotest.(check int) "hints stored" 2 (List.length (Router.rp_hint r g));
  Alcotest.(check (list string)) "hint order preserved" [ "10.0.0.9"; "10.0.0.4" ]
    (List.map Addr.to_string (Router.rp_hint r g));
  Alcotest.(check int) "no hints for other group" 0 (List.length (Router.rp_hint r g2))

let test_host_data_delivery () =
  let eng, net, lan, _igmps = mk_world () in
  let h1 = Host.create net ~link:lan ~addr:(Addr.host ~router:0 1) () in
  let h2 = Host.create net ~link:lan ~addr:(Addr.host ~router:0 2) () in
  let got1 = ref 0 and got2 = ref 0 in
  Host.on_data h1 (fun _ -> incr got1);
  Host.on_data h2 (fun _ -> incr got2);
  Host.join h1 g;
  (* h2 joined nothing: must not receive. *)
  Engine.run ~until:1. eng;
  Host.send_data h2 ~group:g ();
  Engine.run ~until:3. eng;
  Alcotest.(check int) "member hears" 1 !got1;
  Alcotest.(check int) "non-member does not" 0 !got2;
  Alcotest.(check int) "sender counter" 1 (Host.sent h2)

let () =
  Alcotest.run "pim_igmp"
    [
      ( "membership",
        [
          Alcotest.test_case "unsolicited report" `Quick test_unsolicited_report;
          Alcotest.test_case "query response" `Quick test_query_response;
          Alcotest.test_case "report suppression" `Quick test_report_suppression;
          Alcotest.test_case "ages out" `Quick test_membership_ages_out;
          Alcotest.test_case "refreshed while joined" `Quick test_membership_refreshed_while_joined;
          Alcotest.test_case "member ifaces and groups" `Quick test_member_ifaces_and_groups;
          Alcotest.test_case "rp hints" `Quick test_rp_hints;
        ] );
      ( "querier",
        [
          Alcotest.test_case "election" `Quick test_querier_election;
          Alcotest.test_case "takeover on death" `Quick test_querier_takeover_on_death;
        ] );
      ("host", [ Alcotest.test_case "data delivery" `Quick test_host_data_delivery ]);
    ]
