(* Unit and property tests for Pim_util: PRNG, heap, statistics. *)

module Prng = Pim_util.Prng
module Heap = Pim_util.Heap
module Stats = Pim_util.Stats

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 10 (fun _ -> Prng.bits64 a) in
  let ys = List.init 10 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_prng_copy () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.bits64 a) in
  let ys = List.init 20 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int t 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_covers_range () =
  let t = Prng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int t 5) <- true
  done;
  Alcotest.(check bool) "all values drawn" true (Array.for_all Fun.id seen)

let test_int_in () =
  let t = Prng.create 11 in
  for _ = 1 to 200 do
    let v = Prng.int_in t (-3) 4 in
    Alcotest.(check bool) "in [-3,4]" true (v >= -3 && v <= 4)
  done

let test_float_bounds () =
  let t = Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_sample () =
  let t = Prng.create 17 in
  for _ = 1 to 50 do
    let s = Prng.sample t 10 30 in
    Alcotest.(check int) "size" 10 (List.length s);
    Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq Int.compare s));
    List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s
  done

let test_sample_full () =
  let t = Prng.create 19 in
  let s = Prng.sample t 5 5 in
  Alcotest.(check (list int)) "whole range" [ 0; 1; 2; 3; 4 ] s

let test_sample_empty () =
  let t = Prng.create 19 in
  Alcotest.(check (list int)) "empty" [] (Prng.sample t 0 10)

let test_shuffle_is_permutation () =
  let t = Prng.create 23 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_exponential_positive () =
  let t = Prng.create 29 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential t 5. >= 0.)
  done

let test_exponential_mean () =
  let t = Prng.create 31 in
  let n = 20000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Prng.exponential t 4.
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (mean > 3.6 && mean < 4.4)

(* Heap *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 2; 2; 1; 1; 3 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 3 ] (Heap.to_sorted_list h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort Int.compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap min under interleaved push/pop" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort Int.compare (v :: !model);
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
              model := rest;
              x = m
            | _ -> false)
        ops)

(* Stats *)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  Alcotest.check feq "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.check feq "empty" 0. (Stats.mean [])

let test_stats_stddev () =
  Alcotest.check feq "stddev" 1. (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.check feq "singleton" 0. (Stats.stddev [ 5. ])

let test_stats_minmax () =
  Alcotest.check feq "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.check feq "max" 3. (Stats.maximum [ 3.; 1.; 2. ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50. (Stats.percentile 50. xs);
  Alcotest.check feq "p95" 95. (Stats.percentile 95. xs);
  Alcotest.check feq "p100" 100. (Stats.percentile 100. xs)

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  Alcotest.check feq "mean" 2.5 s.Stats.mean;
  Alcotest.check feq "min" 1. s.Stats.min;
  Alcotest.check feq "max" 4. s.Stats.max

let () =
  Alcotest.run "pim_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int_in bounds" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "sample distinct" `Quick test_sample;
          Alcotest.test_case "sample full range" `Quick test_sample_full;
          Alcotest.test_case "sample empty" `Quick test_sample_empty;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_interleaved;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
    ]
