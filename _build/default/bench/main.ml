(* Benchmark harness.

   Two halves:

   1. Regeneration: prints the rows/series of every figure and experiment
      indexed in DESIGN.md (Figure 2a, Figure 2b, Figure 1, E1-E4), at
      reduced trial counts so the whole run finishes in about a minute.
      `dune exec bin/pimsim.exe -- <experiment> --trials N` reproduces any
      of them at paper scale.

   2. Timing: one Bechamel micro/meso-benchmark per experiment id —
      fig2a and fig2b single trials, the Figure 1 simulation, one
      overhead point — plus micro-benchmarks of the underlying machinery
      (Dijkstra, event queue, FIB matching, join processing). *)

open Bechamel
open Toolkit

let seed = 1994

(* {1 Regeneration} *)

let regenerate () =
  Format.printf "================================================================@.";
  Format.printf "Paper series regeneration (reduced trials; see EXPERIMENTS.md)@.";
  Format.printf "================================================================@.@.";
  Format.printf "%a@." Pim_exp.Fig2a.pp_rows (Pim_exp.Fig2a.run ~trials:200 ~seed ());
  Format.printf "%a@." Pim_exp.Fig2b.pp_rows (Pim_exp.Fig2b.run ~trials:10 ~seed ());
  Format.printf "%a@." Pim_exp.Fig1.pp_results (Pim_exp.Fig1.run ());
  Format.printf "%a@." Pim_exp.Overhead.pp_rows (Pim_exp.Overhead.run ~seed ());
  Format.printf "%a@." Pim_exp.Failover.pp_rows (Pim_exp.Failover.run ~seed ());
  Format.printf "%a@." Pim_exp.Ablation.pp_policy_rows (Pim_exp.Ablation.run_spt_policy ~seed ());
  Format.printf "%a@." Pim_exp.Ablation.pp_refresh_rows (Pim_exp.Ablation.run_refresh ~seed ());
  Format.printf "%a@." Pim_exp.Groups_scaling.pp_rows
    (Pim_exp.Groups_scaling.run ~group_counts:[ 10; 40; 120 ] ~seed ());
  Format.printf "%a@." Pim_exp.Aggregation.pp_rows (Pim_exp.Aggregation.run ~seed ());
  Format.printf "%a@." Pim_exp.Churn.pp_rows (Pim_exp.Churn.run ~seed ());
  Format.printf "%a@." Pim_exp.Loss.pp_rows (Pim_exp.Loss.run ~seed ())

(* {1 Benchmark subjects} *)

(* One Figure 2(a) trial: generate a 50-node graph, place a 10-member
   group, find the optimal core and both max delays. *)
let bench_fig2a =
  let prng = Pim_util.Prng.create seed in
  Test.make ~name:"fig2a-trial"
    (Staged.stage (fun () ->
         let topo = Pim_graph.Random_graph.generate ~prng ~nodes:50 ~degree:4. () in
         let members = Pim_graph.Random_graph.pick_members ~prng ~nodes:50 ~count:10 in
         let apsp = Pim_graph.Spt.all_pairs topo in
         let spt = Pim_graph.Center.spt_max_delay apsp ~senders:members ~receivers:members in
         let _, cbt = Pim_graph.Center.optimal apsp ~senders:members ~receivers:members in
         Sys.opaque_identity (spt, cbt)))

(* One Figure 2(b) network: 300 groups of 40 members, flows per link under
   both tree types. *)
let bench_fig2b =
  Test.make ~name:"fig2b-network"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Pim_exp.Fig2b.run ~trials:1 ~degrees:[ 4. ] ~seed ())))

(* The full Figure 1 scenario (all five protocols in the simulator). *)
let bench_fig1 =
  Test.make ~name:"fig1-scenario"
    (Staged.stage (fun () -> Sys.opaque_identity (Pim_exp.Fig1.run ~packets:10 ())))

(* One E1 overhead point (all six protocol rows at one density). *)
let bench_overhead_point =
  Test.make ~name:"e1-overhead-point"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Pim_exp.Overhead.run ~nodes:30 ~packets:10 ~fractions:[ 0.2 ] ~seed ())))

(* E2: one failover run. *)
let bench_failover =
  Test.make ~name:"e2-failover-run"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Pim_exp.Failover.run ~timeouts:[ 5. ] ~seed ())))

(* E3: the three-policy ablation. *)
let bench_ablation =
  Test.make ~name:"e3-policy-ablation"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Pim_exp.Ablation.run_spt_policy ~nodes:20 ~seed ())))

(* E5: one group-count point (four protocols, 20 groups). *)
let bench_groups_point =
  Test.make ~name:"e5-groups-point"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Pim_exp.Groups_scaling.run ~nodes:30 ~group_counts:[ 20 ] ~seed ())))

(* E4: one refresh-period run. *)
let bench_refresh =
  Test.make ~name:"e4-refresh-run"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Pim_exp.Ablation.run_refresh ~periods:[ 4. ] ~seed ())))

(* {2 Micro-benchmarks of the substrate} *)

let fixed_topo =
  let prng = Pim_util.Prng.create 42 in
  Pim_graph.Random_graph.generate ~prng ~nodes:50 ~degree:4. ()

let bench_dijkstra =
  Test.make ~name:"dijkstra-50n"
    (Staged.stage (fun () -> Sys.opaque_identity (Pim_graph.Spt.single_source fixed_topo 0)))

let bench_all_pairs =
  Test.make ~name:"all-pairs-50n"
    (Staged.stage (fun () -> Sys.opaque_identity (Pim_graph.Spt.all_pairs fixed_topo)))

let bench_event_queue =
  Test.make ~name:"engine-1k-events"
    (Staged.stage (fun () ->
         let eng = Pim_sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Pim_sim.Engine.schedule eng ~after:(float_of_int (i mod 97)) (fun () -> ()))
         done;
         Pim_sim.Engine.run eng;
         Sys.opaque_identity eng))

let bench_fib_match =
  let fib = Pim_mcast.Fwd.create () in
  let g = Pim_net.Group.of_index 7 in
  let rp = Pim_net.Addr.router 1 in
  for i = 0 to 63 do
    let gi = Pim_net.Group.of_index i in
    Pim_mcast.Fwd.insert fib (Pim_mcast.Fwd.make_star ~group:gi ~rp ~iif:None ~expires:1.);
    Pim_mcast.Fwd.insert fib
      (Pim_mcast.Fwd.make_sg ~group:gi ~source:(Pim_net.Addr.host ~router:i 1) ~iif:None
         ~expires:1. ())
  done;
  let src = Pim_net.Addr.host ~router:7 1 in
  Test.make ~name:"fib-match-128-entries"
    (Staged.stage (fun () -> Sys.opaque_identity (Pim_mcast.Fwd.match_data fib g ~src)))

let bench_join_processing =
  (* Time a complete shared-tree setup: 1 join propagating over 5 hops. *)
  Test.make ~name:"pim-join-propagation"
    (Staged.stage (fun () ->
         let topo = Pim_graph.Classic.line 6 in
         let eng = Pim_sim.Engine.create () in
         let net = Pim_sim.Net.create eng topo in
         let g = Pim_net.Group.of_index 1 in
         let rp_set = Pim_core.Rp_set.single g (Pim_net.Addr.router 0) in
         let dep = Pim_core.Deployment.create_static ~config:Pim_core.Config.fast net ~rp_set in
         Pim_core.Router.join_local (Pim_core.Deployment.router dep 5) g;
         Pim_sim.Engine.run ~until:8. eng;
         Sys.opaque_identity dep))

(* Simulator throughput at scale: a 100-router / 40-group / 400-packet
   PIM simulation, measured end to end. *)
let bench_scale =
  Test.make ~name:"pim-100n-40g-soak"
    (Staged.stage (fun () ->
         let prng = Pim_util.Prng.create 7 in
         let topo = Pim_graph.Random_graph.generate ~prng ~nodes:100 ~degree:4. () in
         let eng = Pim_sim.Engine.create () in
         let net = Pim_sim.Net.create eng topo in
         let workloads =
           List.init 40 (fun k ->
               ( Pim_net.Group.of_index (k + 1),
                 Pim_graph.Random_graph.pick_members ~prng ~nodes:100 ~count:4,
                 Pim_util.Prng.int prng 100 ))
         in
         let rp_set =
           Pim_core.Rp_set.of_list
             (List.map
                (fun (g, members, _) -> (g, [ Pim_net.Addr.router (List.hd members) ]))
                workloads)
         in
         let dep = Pim_core.Deployment.create_static ~config:Pim_core.Config.fast net ~rp_set in
         List.iter
           (fun (g, members, _) ->
             List.iter
               (fun m -> Pim_core.Router.join_local (Pim_core.Deployment.router dep m) g)
               members)
           workloads;
         Pim_sim.Engine.run ~until:15. eng;
         List.iter
           (fun (g, _, source) ->
             for i = 0 to 9 do
               ignore
                 (Pim_sim.Engine.schedule_at eng
                    (15. +. float_of_int i)
                    (fun () ->
                      Pim_core.Router.send_local_data (Pim_core.Deployment.router dep source)
                        ~group:g ()))
             done)
           workloads;
         Pim_sim.Engine.run ~until:40. eng;
         Sys.opaque_identity dep))

let bench_prng =
  let prng = Pim_util.Prng.create 1 in
  Test.make ~name:"prng-int" (Staged.stage (fun () -> Sys.opaque_identity (Pim_util.Prng.int prng 1000)))

(* {1 Bechamel driver} *)

let run_benchmarks () =
  let tests =
    Test.make_grouped ~name:"pim" ~fmt:"%s/%s"
      [
        bench_fig2a;
        bench_fig2b;
        bench_fig1;
        bench_overhead_point;
        bench_failover;
        bench_ablation;
        bench_refresh;
        bench_groups_point;
        bench_dijkstra;
        bench_all_pairs;
        bench_event_queue;
        bench_fib_match;
        bench_join_processing;
        bench_scale;
        bench_prng;
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "================================================================@.";
  Format.printf "Bechamel timings (one Test.make per experiment id + micro)@.";
  Format.printf "================================================================@.";
  Format.printf "# %-28s %16s@." "benchmark" "time/run";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
          else Printf.sprintf "%8.1f ns" ns
        in
        Format.printf "  %-28s %16s@." name pretty
      | _ -> Format.printf "  %-28s %16s@." name "n/a")
    rows

let () =
  regenerate ();
  run_benchmarks ()
