(* Unit tests for the small Pim_core modules: Config, Rp_set, Message,
   Deployment aggregation. *)

module Config = Pim_core.Config
module Rp_set = Pim_core.Rp_set
module Message = Pim_core.Message
module Addr = Pim_net.Addr
module Group = Pim_net.Group
module Packet = Pim_net.Packet

let feq = Alcotest.float 1e-9

(* Config *)

let test_config_scale () =
  let c = Config.scale 0.5 Config.default in
  Alcotest.check feq "jp period" (Config.default.Config.jp_period /. 2.) c.Config.jp_period;
  Alcotest.check feq "holdtime" (Config.default.Config.oif_holdtime /. 2.) c.Config.oif_holdtime;
  Alcotest.check feq "rp timeout" (Config.default.Config.rp_timeout /. 2.) c.Config.rp_timeout;
  (* Policies are untouched by scaling. *)
  Alcotest.(check bool) "policy preserved" true (c.Config.spt_policy = Config.Immediate)

let test_config_fast_ratios () =
  let d = Config.default and f = Config.fast in
  Alcotest.check feq "holdtime = 3x period (default)" (3. *. d.Config.jp_period)
    d.Config.oif_holdtime;
  Alcotest.check feq "holdtime = 3x period (fast)" (3. *. f.Config.jp_period)
    f.Config.oif_holdtime;
  Alcotest.(check bool) "rp timeout covers 3 beacons" true
    (d.Config.rp_timeout > 3. *. d.Config.rp_reach_period)

let test_config_with_jp_period () =
  let c = Config.with_jp_period 10. Config.default in
  Alcotest.check feq "period" 10. c.Config.jp_period;
  Alcotest.check feq "derived holdtime" 30. c.Config.oif_holdtime;
  Alcotest.check feq "derived linger" 30. c.Config.entry_linger

let test_config_with_policy () =
  let c = Config.with_spt_policy Config.Never Config.default in
  Alcotest.(check bool) "policy set" true (c.Config.spt_policy = Config.Never);
  Alcotest.check feq "timers untouched" Config.default.Config.jp_period c.Config.jp_period

(* Rp_set *)

let g1 = Group.of_index 1

let g2 = Group.of_index 2

let test_rp_set () =
  let s = Rp_set.of_list [ (g1, [ Addr.router 1; Addr.router 2 ]) ] in
  Alcotest.(check int) "two rps" 2 (List.length (Rp_set.rps s g1));
  Alcotest.(check bool) "ordered" true
    (List.hd (Rp_set.rps s g1) = Addr.router 1);
  Alcotest.(check bool) "sparse" true (Rp_set.is_sparse s g1);
  Alcotest.(check bool) "unmapped group not sparse" false (Rp_set.is_sparse s g2);
  Alcotest.(check (list int)) "unmapped rps empty" []
    (List.map (fun _ -> 0) (Rp_set.rps s g2));
  Alcotest.(check int) "groups listed" 1 (List.length (Rp_set.groups s));
  let s2 = Rp_set.add s g2 [ Addr.router 5 ] in
  Alcotest.(check int) "after add" 2 (List.length (Rp_set.groups s2));
  Alcotest.(check int) "original untouched" 1 (List.length (Rp_set.groups s));
  Alcotest.(check bool) "empty set" false (Rp_set.is_sparse Rp_set.empty g1);
  let single = Rp_set.single g1 (Addr.router 9) in
  Alcotest.(check int) "single" 1 (List.length (Rp_set.rps single g1));
  (* groups come back in ascending group order regardless of insertion
     order — seeded runs iterate over it, so the order is load-bearing. *)
  let g3 = Group.of_index 3 in
  let shuffled = Rp_set.of_list [ (g3, [ Addr.router 3 ]); (g1, [ Addr.router 1 ]) ] in
  let shuffled = Rp_set.add shuffled g2 [ Addr.router 2 ] in
  let order = Rp_set.groups shuffled in
  Alcotest.(check bool) "groups ascending" true
    (List.for_all2 Group.equal order (List.sort Group.compare order))

(* Message *)

let test_jp_entry_flags () =
  let e = Message.jp_entry ~wc:true ~rp:true (Addr.router 3) in
  Alcotest.(check bool) "wc" true e.Message.wc;
  Alcotest.(check bool) "rp" true e.Message.rp;
  let plain = Message.jp_entry (Addr.router 3) in
  Alcotest.(check bool) "defaults off" false (plain.Message.wc || plain.Message.rp)

let test_message_sizes () =
  let je = Message.jp_entry (Addr.router 3) in
  let single =
    Message.join_prune_packet ~src:(Addr.router 0) ~target:(Addr.router 1) ~origin:0 ~group:g1
      ~joins:[ je ] ~prunes:[] ~holdtime:60.
  in
  let bigger =
    Message.join_prune_packet ~src:(Addr.router 0) ~target:(Addr.router 1) ~origin:0 ~group:g1
      ~joins:[ je; je; je ] ~prunes:[ je ] ~holdtime:60.
  in
  Alcotest.(check bool) "size grows with entries" true
    (bigger.Packet.size > single.Packet.size);
  (* Bundling several groups costs less than separate messages. *)
  let section target group =
    {
      Message.target;
      origin = 0;
      group;
      joins = [ je ];
      prunes = [];
      holdtime = 60.;
    }
  in
  let bundle =
    Message.bundle_packet ~src:(Addr.router 0)
      [ section (Addr.router 1) g1; section (Addr.router 1) g2 ]
  in
  Alcotest.(check bool) "bundle smaller than two singles" true
    (bundle.Packet.size < 2 * single.Packet.size)

let test_message_printers () =
  let je = Message.jp_entry ~wc:true ~rp:true (Addr.router 3) in
  let pkt =
    Message.join_prune_packet ~src:(Addr.router 0) ~target:(Addr.router 1) ~origin:0 ~group:g1
      ~joins:[ je ] ~prunes:[] ~holdtime:60.
  in
  let s = Packet.payload_to_string pkt.Packet.payload in
  Alcotest.(check bool) "join printed" true
    (String.length s > 0 && String.sub s 0 6 = "pim-jp");
  let reach = Message.rp_reachability_packet ~src:(Addr.router 0) ~group:g1 ~rp:(Addr.router 0) in
  Alcotest.(check bool) "reach printed" true
    (Packet.payload_to_string reach.Packet.payload <> "<payload>")

(* Deployment aggregation *)

let test_deployment_total_stats () =
  let eng = Pim_sim.Engine.create () in
  let net = Pim_sim.Net.create eng (Pim_graph.Classic.line 4) in
  let rp_set = Rp_set.single g1 (Addr.router 1) in
  let dep = Pim_core.Deployment.create_static ~config:Config.fast net ~rp_set in
  Pim_core.Router.join_local (Pim_core.Deployment.router dep 3) g1;
  Pim_sim.Engine.run ~until:20. eng;
  let total = Pim_core.Deployment.total_stats dep in
  let by_hand =
    Array.fold_left
      (fun acc r -> acc + (Pim_core.Router.stats r).Pim_core.Router.jp_msgs_sent)
      0
      (Pim_core.Deployment.routers dep)
  in
  Alcotest.(check int) "aggregation matches" by_hand total.Pim_core.Router.jp_msgs_sent;
  Alcotest.(check bool) "joins flowed" true (total.Pim_core.Router.joins_sent > 0)

let () =
  Alcotest.run "pim_core_units"
    [
      ( "config",
        [
          Alcotest.test_case "scale" `Quick test_config_scale;
          Alcotest.test_case "fast ratios" `Quick test_config_fast_ratios;
          Alcotest.test_case "with_jp_period" `Quick test_config_with_jp_period;
          Alcotest.test_case "with_spt_policy" `Quick test_config_with_policy;
        ] );
      ("rp-set", [ Alcotest.test_case "operations" `Quick test_rp_set ]);
      ( "message",
        [
          Alcotest.test_case "jp entry flags" `Quick test_jp_entry_flags;
          Alcotest.test_case "sizes" `Quick test_message_sizes;
          Alcotest.test_case "printers" `Quick test_message_printers;
        ] );
      ("deployment", [ Alcotest.test_case "total stats" `Quick test_deployment_total_stats ]);
    ]
