(* Chaos harness tests: fault scheduler semantics, reconvergence of PIM
   sparse mode under a scripted flap + crash/restart schedule, oracle
   detection of deliberately corrupted state, and a clean end-to-end
   differential run. *)

module Engine = Pim_sim.Engine
module Net = Pim_sim.Net
module Fault = Pim_sim.Fault
module Oracle = Pim_sim.Oracle
module Topology = Pim_graph.Topology
module Classic = Pim_graph.Classic
module Prng = Pim_util.Prng
module Group = Pim_net.Group
module Addr = Pim_net.Addr
module Mdata = Pim_mcast.Mdata
module Fwd = Pim_mcast.Fwd
module Router = Pim_core.Router
module Deployment = Pim_core.Deployment
module Config = Pim_core.Config
module Chaos = Pim_exp.Chaos

let group = Group.of_index 3

(* {2 Reconvergence under a scripted schedule}

   Line 0-1-2-3-4-5: source behind router 0, member behind router 5, RP
   at 3.  A mid-line link flap and a transit-router crash/restart each
   cut the only path; after each heals, delivery must resume within a
   bound derived from the soft-state refresh timers. *)

let test_reconverges_after_flap_and_crash () =
  let topo = Classic.line 6 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let config = Config.fast in
  let rp_set = Pim_core.Rp_set.single group (Addr.router 3) in
  let d = Deployment.create_static ~config net ~rp_set in
  Router.join_local (Deployment.router d 5) group;
  let received = ref [] in
  Router.on_local_data (Deployment.router d 5) (fun pkt ->
      match Mdata.info pkt with
      | Some { Mdata.sent_at; _ } -> received := sent_at :: !received
      | None -> ());
  for i = 0 to 109 do
    ignore
      (Engine.schedule_at eng
         (5.0 +. (0.5 *. float_of_int i))
         (fun () -> Router.send_local_data (Deployment.router d 0) ~group ()))
  done;
  (* Link 1 (between routers 1 and 2) flaps at t=20 for 6 s; router 2
     crashes at t=35 for 5 s and reboots with wiped state. *)
  let schedule =
    [
      { Fault.at = 20.; action = Fault.Link_flap (1, 6.) };
      { Fault.at = 35.; action = Fault.Node_crash (2, 5.) };
    ]
  in
  let fault =
    Fault.install ~restart:(fun u -> Router.restart (Deployment.router d u)) net schedule
  in
  let fib2_before = ref 0 and fib2_after_restart = ref (-1) in
  ignore
    (Engine.schedule_at eng 34.9 (fun () ->
         fib2_before := Fwd.count (Router.fib (Deployment.router d 2))));
  (* Joins need >= 1 s (one link delay) to reach the rebooted router, so
     at t=40.5 its FIB must still be empty — restart really wiped it. *)
  ignore
    (Engine.schedule_at eng 40.5 (fun () ->
         fib2_after_restart := Fwd.count (Router.fib (Deployment.router d 2))));
  Engine.run ~until:75. eng;
  let received = List.sort Float.compare !received in
  Alcotest.(check bool) "stream delivered at all" true (List.length received > 50);
  Alcotest.(check bool) "transit router had state before the crash" true (!fib2_before > 0);
  Alcotest.(check int) "restart wiped the transit FIB" 0 !fib2_after_restart;
  (* Packets sent while the fault is active and arriving before it heals
     are gone (the line has no alternate path, and downstream RPF checks
     drop in-flight stragglers once routes recompute).  Packets sent
     shortly before each heal time may legitimately arrive after it, so
     the asserted dead windows stop [eccentricity] seconds early. *)
  let delivered_in a b = List.exists (fun t -> t >= a && t <= b) received in
  Alcotest.(check bool) "flap cut the only path" false (delivered_in 20.0 24.4);
  Alcotest.(check bool) "crash cut the only path" false (delivered_in 35.0 38.4);
  (* Reconvergence bounds, derived from the Config timers. *)
  let first_after t0 = List.find_opt (fun t -> t >= t0) received in
  (match first_after 26. with
  | None -> Alcotest.fail "no delivery after the flap healed"
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "post-flap recovery %.1fs within jp_period" (t -. 26.))
      true
      (t -. 26. <= config.Config.jp_period));
  (match first_after 40. with
  | None -> Alcotest.fail "no delivery after the crashed router restarted"
  | Some t ->
    Alcotest.(check bool)
      (Printf.sprintf "post-restart recovery %.1fs within refresh bound" (t -. 40.))
      true
      (t -. 40.
      <= (2. *. config.Config.jp_period) +. (2. *. config.Config.sweep_interval)));
  (* The scheduler logged the whole story, restorations included. *)
  let log = Fault.log fault in
  Alcotest.(check bool) "fault log has restorations" true
    (List.exists (fun (_, m) -> m = "node 2 restarts") log
    && List.exists (fun (_, m) -> m = "link 1 restored") log)

(* {2 Oracle catches corrupted state}

   Converge a small deployment, then corrupt one router's FIB by hand:
   the state checks must flag exactly the broken invariant. *)

let converged_line () =
  let topo = Classic.line 4 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  let static = Pim_routing.Static.create net in
  let rp_set = Pim_core.Rp_set.single group (Addr.router 2) in
  let d =
    Deployment.create ~config:Config.fast ~net ~ribs:(Pim_routing.Static.rib static) ~rp_set ()
  in
  Router.join_local (Deployment.router d 3) group;
  for i = 0 to 39 do
    ignore
      (Engine.schedule_at eng
         (1.0 +. (0.5 *. float_of_int i))
         (fun () -> Router.send_local_data (Deployment.router d 0) ~group ()))
  done;
  Engine.run ~until:30. eng;
  let oracle = Oracle.create net ~probe_id:(fun _ -> None) in
  let checks = Chaos.pim_state_checks ~net ~static ~deployment:d in
  (eng, d, oracle, checks)

let run_checks oracle checks =
  List.iter (fun (inv, f) -> Oracle.run_check oracle ~invariant:inv f) checks

let test_oracle_detects_stale_oif () =
  let _eng, d, oracle, checks = converged_line () in
  run_checks oracle checks;
  Alcotest.(check int) "converged state is clean" 0 (List.length (Oracle.violations oracle));
  (* Force an oif pointing up the line, where no downstream state exists;
     give it a timer far in the future so soft-state expiry can't save
     us — exactly the corruption the sweep is supposed to prevent. *)
  let fib1 = Router.fib (Deployment.router d 1) in
  let entry =
    match Fwd.entries fib1 with
    | e :: _ -> e
    | [] -> Alcotest.fail "transit router has no state"
  in
  Fwd.add_oif entry 0 ~expires:1e9 ~local:false;
  run_checks oracle checks;
  let vs = Oracle.violations oracle in
  Alcotest.(check bool) "stale oif detected" true
    (List.exists (fun (v : Oracle.violation) -> v.Oracle.invariant = "stale-oif") vs)

let test_oracle_detects_bad_iif () =
  let _eng, d, oracle, checks = converged_line () in
  run_checks oracle checks;
  Alcotest.(check int) "converged state is clean" 0 (List.length (Oracle.violations oracle));
  let fib1 = Router.fib (Deployment.router d 1) in
  let entry =
    match Fwd.entries fib1 with
    | e :: _ -> e
    | [] -> Alcotest.fail "transit router has no state"
  in
  (* Point the incoming interface away from the RPF direction. *)
  entry.Fwd.iif <- (match entry.Fwd.iif with Some 0 -> Some 1 | _ -> Some 0);
  run_checks oracle checks;
  let vs = Oracle.violations oracle in
  Alcotest.(check bool) "iif inconsistency detected" true
    (List.exists (fun (v : Oracle.violation) -> v.Oracle.invariant = "iif-consistency") vs)

(* {2 On-wire loop detection} *)

let test_oracle_loop_freedom_on_wire () =
  let topo = Classic.line 2 in
  let eng = Engine.create () in
  let net = Net.create eng topo in
  Net.set_handler net 1 (fun ~iface:_ _ -> ());
  let oracle =
    Oracle.create ~max_copies:1 net ~probe_id:(fun pkt ->
        Option.map (fun (i : Mdata.info) -> i.Mdata.seq) (Mdata.info pkt))
  in
  let pkt = Mdata.make ~src:(Addr.host ~router:0 1) ~group ~seq:0 ~sent_at:0. () in
  Net.send net 0 ~iface:0 pkt;
  Engine.run eng;
  Alcotest.(check int) "single traversal is fine" 0 (List.length (Oracle.violations oracle));
  (* The same sequence number crossing the same link again = loop. *)
  Net.send net 0 ~iface:0 pkt;
  Engine.run eng;
  let vs = Oracle.violations oracle in
  Alcotest.(check int) "duplicate traversal flagged" 1 (List.length vs);
  Alcotest.(check string) "as a loop" "loop-freedom" (List.hd vs).Oracle.invariant;
  (* reset_probes starts a fresh epoch: the old counts are gone. *)
  Oracle.reset_probes oracle;
  Net.send net 0 ~iface:0 pkt;
  Engine.run eng;
  Alcotest.(check int) "fresh epoch, no new violation" 1
    (List.length (Oracle.violations oracle))

(* {2 Clean differential run} *)

let test_clean_differential_run () =
  let report = Chaos.run ~nodes:16 ~receivers:3 ~events:5 ~seed:1994 () in
  Alcotest.(check int) "all four protocols ran" 4 (List.length report.Chaos.rows);
  List.iter
    (fun (r : Chaos.row) ->
      Alcotest.(check bool)
        (r.Chaos.protocol ^ " delivered most of the stream")
        true
        (r.Chaos.deliveries > r.Chaos.expected / 2);
      Alcotest.(check (list pass))
        (r.Chaos.protocol ^ " violations")
        [] r.Chaos.violations)
    report.Chaos.rows;
  Alcotest.(check int) "verdict: no violations" 0 (Chaos.total_violations report);
  (* Same seed, same everything — the schedule is part of the contract. *)
  let report' = Chaos.run ~nodes:16 ~receivers:3 ~events:5 ~seed:1994 () in
  Alcotest.(check int) "deterministic schedule length" (List.length report.Chaos.schedule)
    (List.length report'.Chaos.schedule);
  List.iter2
    (fun (r : Chaos.row) (r' : Chaos.row) ->
      Alcotest.(check int) (r.Chaos.protocol ^ " deterministic deliveries") r.Chaos.deliveries
        r'.Chaos.deliveries)
    report.Chaos.rows report'.Chaos.rows

let () =
  Alcotest.run "pim_chaos"
    [
      ( "fault",
        [
          Alcotest.test_case "reconverges after flap and crash/restart" `Quick
            test_reconverges_after_flap_and_crash;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "detects stale oif" `Quick test_oracle_detects_stale_oif;
          Alcotest.test_case "detects bad iif" `Quick test_oracle_detects_bad_iif;
          Alcotest.test_case "loop freedom on the wire" `Quick test_oracle_loop_freedom_on_wire;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean run, zero violations" `Slow test_clean_differential_run;
        ] );
    ]
