(* Pin the qcheck exploration seed so [dune runtest] draws the same property
   cases on every run; export QCHECK_SEED to explore a different slice of the
   input space. *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string s with _ -> 1994)
    | None -> 1994
  in
  Random.State.make [| seed |]

(* Tests for Pim_graph: topology, generators, Dijkstra, trees, centers. *)

module Topology = Pim_graph.Topology
module Classic = Pim_graph.Classic
module Random_graph = Pim_graph.Random_graph
module Spt = Pim_graph.Spt
module Tree = Pim_graph.Tree
module Center = Pim_graph.Center
module Prng = Pim_util.Prng

(* Topology *)

let test_builder_p2p () =
  let b = Topology.builder 3 in
  let l01 = Topology.add_p2p b 0 1 in
  let l12 = Topology.add_p2p ~cost:5 ~delay:2.5 b 1 2 in
  let t = Topology.freeze b in
  Alcotest.(check int) "nodes" 3 (Topology.n_nodes t);
  Alcotest.(check int) "links" 2 (Topology.n_links t);
  Alcotest.(check int) "cost default" 1 (Topology.link t l01).Topology.cost;
  Alcotest.(check int) "cost set" 5 (Topology.link t l12).Topology.cost;
  Alcotest.(check (float 1e-9)) "delay set" 2.5 (Topology.link t l12).Topology.delay;
  Alcotest.(check int) "deg 0" 1 (Topology.degree t 0);
  Alcotest.(check int) "deg 1" 2 (Topology.degree t 1)

let test_builder_rejects_self_loop () =
  let b = Topology.builder 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.add_p2p: self loop") (fun () ->
      ignore (Topology.add_p2p b 1 1))

let test_builder_rejects_bad_node () =
  let b = Topology.builder 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Topology: node 5 out of range")
    (fun () -> ignore (Topology.add_p2p b 0 5))

let test_lan () =
  let b = Topology.builder 4 in
  let lan = Topology.add_lan b [ 0; 1; 2 ] in
  ignore (Topology.add_p2p b 2 3);
  let t = Topology.freeze b in
  Alcotest.(check bool) "is_lan" true (Topology.link t lan).Topology.is_lan;
  Alcotest.(check (list int)) "others of 0" [ 1; 2 ] (Topology.others_on_link t lan 0);
  Alcotest.(check (list int)) "others of 2" [ 0; 1 ] (Topology.others_on_link t lan 2);
  (* neighbors over a LAN enumerate each other member on one iface *)
  let n0 = Topology.neighbors t 0 in
  Alcotest.(check int) "lan neighbors" 2 (List.length n0);
  Alcotest.(check bool) "same iface" true
    (List.length (List.sort_uniq compare (List.map fst n0)) = 1)

let test_iface_mapping () =
  let b = Topology.builder 3 in
  let l01 = Topology.add_p2p b 0 1 in
  let l02 = Topology.add_p2p b 0 2 in
  let t = Topology.freeze b in
  Alcotest.(check int) "iface of first link" 0 (Topology.iface_of_link t 0 l01);
  Alcotest.(check int) "iface of second link" 1 (Topology.iface_of_link t 0 l02);
  let l = Topology.link_of_iface t 0 1 in
  Alcotest.(check int) "link back" l02 l.Topology.id;
  Alcotest.(check (option int)) "absent" None (Topology.iface_of_link_opt t 1 l02)

let test_link_of_iface_invalid () =
  let t = Classic.line 2 in
  Alcotest.check_raises "bad iface"
    (Invalid_argument "Topology.link_of_iface: node 0 has no iface 7") (fun () ->
      ignore (Topology.link_of_iface t 0 7))

let test_connected () =
  let t = Classic.line 5 in
  Alcotest.(check bool) "line connected" true (Topology.connected t);
  let b = Topology.builder 4 in
  ignore (Topology.add_p2p b 0 1);
  ignore (Topology.add_p2p b 2 3);
  Alcotest.(check bool) "two components" false (Topology.connected (Topology.freeze b))

(* Classic topologies *)

let test_classic_shapes () =
  Alcotest.(check int) "line links" 4 (Topology.n_links (Classic.line 5));
  Alcotest.(check int) "ring links" 5 (Topology.n_links (Classic.ring 5));
  Alcotest.(check int) "star links" 4 (Topology.n_links (Classic.star 5));
  Alcotest.(check int) "star hub degree" 4 (Topology.degree (Classic.star 5) 0);
  let g = Classic.grid 3 4 in
  Alcotest.(check int) "grid nodes" 12 (Topology.n_nodes g);
  (* rows*(cols-1) + (rows-1)*cols *)
  Alcotest.(check int) "grid links" 17 (Topology.n_links g);
  List.iter
    (fun t -> Alcotest.(check bool) "connected" true (Topology.connected t))
    [ Classic.line 7; Classic.ring 6; Classic.star 9; Classic.grid 4 4 ]

let test_three_domains () =
  let t, gateways, backbone = Classic.three_domains () in
  Alcotest.(check int) "nodes" 18 (Topology.n_nodes t);
  Alcotest.(check bool) "connected" true (Topology.connected t);
  Alcotest.(check (list int)) "gateways" [ 0; 5; 10 ] gateways;
  Alcotest.(check (list int)) "backbone" [ 15; 16; 17 ] backbone

(* Random graphs *)

let prop_random_graph_connected =
  QCheck.Test.make ~name:"random graphs are connected with target degree" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 3 8))
    (fun (seed, deg) ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:50 ~degree:(float_of_int deg) () in
      let avg = 2. *. float_of_int (Topology.n_links t) /. 50. in
      Topology.connected t
      && Float.abs (avg -. float_of_int deg) < 0.1
      && Array.for_all (fun l -> not l.Topology.is_lan) (Topology.links t))

let prop_random_graph_no_duplicate_edges =
  QCheck.Test.make ~name:"random graphs have no duplicate or self edges" ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:30 ~degree:4. () in
      let keys =
        Array.to_list (Topology.links t)
        |> List.map (fun l ->
               match l.Topology.ends with
               | [| u; v |] -> (min u v, max u v)
               | _ -> (-1, -1))
      in
      List.for_all (fun (u, v) -> u <> v && u >= 0) keys
      && List.length keys = List.length (List.sort_uniq compare keys))

let test_pick_members () =
  let prng = Prng.create 5 in
  let m = Random_graph.pick_members ~prng ~nodes:20 ~count:7 in
  Alcotest.(check int) "count" 7 (List.length m);
  Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq Int.compare m))

(* Dijkstra *)

let test_spt_line () =
  let t = Classic.line 5 in
  let tr = Spt.single_source t 0 in
  List.iteri
    (fun i d -> Alcotest.(check (option int)) (Printf.sprintf "d(%d)" i) (Some d) (Spt.distance tr i))
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ]) (Spt.path tr 3)

let test_spt_weights () =
  (* 0-1 cost 10, 0-2 cost 1, 2-1 cost 1: shortest 0->1 is via 2. *)
  let b = Topology.builder 3 in
  ignore (Topology.add_p2p ~cost:10 b 0 1);
  ignore (Topology.add_p2p ~cost:1 b 0 2);
  ignore (Topology.add_p2p ~cost:1 b 2 1);
  let t = Topology.freeze b in
  let tr = Spt.single_source t 0 in
  Alcotest.(check (option int)) "via 2" (Some 2) (Spt.distance tr 1);
  Alcotest.(check (option (list int))) "path via 2" (Some [ 0; 2; 1 ]) (Spt.path tr 1)

let test_spt_unreachable () =
  let b = Topology.builder 3 in
  ignore (Topology.add_p2p b 0 1);
  let t = Topology.freeze b in
  let tr = Spt.single_source t 0 in
  Alcotest.(check (option int)) "unreachable" None (Spt.distance tr 2);
  Alcotest.(check bool) "no path" true (Spt.path tr 2 = None)

let test_spt_usable_filter () =
  let b = Topology.builder 3 in
  let l01 = Topology.add_p2p b 0 1 in
  ignore (Topology.add_p2p b 1 2);
  ignore (Topology.add_p2p b 0 2);
  let t = Topology.freeze b in
  let usable _ _ lid = lid <> l01 in
  let tr = Spt.single_source ~usable t 0 in
  Alcotest.(check (option int)) "detour" (Some 2) (Spt.distance tr 1)

let test_first_hop () =
  let t = Classic.line 4 in
  let tr = Spt.single_source t 0 in
  let hop, hop_iface = Spt.first_hop t tr in
  Alcotest.(check (option int)) "hop to 3 is 1" (Some 1) hop.(3);
  Alcotest.(check (option int)) "hop to 1 is 1" (Some 1) hop.(1);
  Alcotest.(check (option int)) "iface toward 3" (Some 0) hop_iface.(3);
  Alcotest.(check (option int)) "self" None hop.(0)

let test_tree_edges_cover_members () =
  let t = Classic.grid 4 4 in
  let tr = Spt.single_source t 0 in
  let members = [ 3; 12; 15 ] in
  let edges = Spt.tree_edges tr ~members in
  let tree = Tree.of_edges ~n:16 edges in
  List.iter
    (fun m -> Alcotest.(check bool) (Printf.sprintf "member %d on tree" m) true (Tree.mem_node tree m))
    members;
  (* Tree path from root to each member has shortest length (unit costs). *)
  List.iter
    (fun m ->
      Alcotest.(check (option int)) "tree path = shortest" (Spt.distance tr m)
        (Tree.path_length tree 0 m))
    members

let test_scratch_matches_fresh () =
  let prng = Prng.create 99 in
  let scratch = Spt.make_scratch ~n:30 in
  (* The same scratch, reused across several distinct topologies and
     sources, must agree with the allocating entry point. *)
  for _ = 1 to 5 do
    let t = Random_graph.generate ~prng ~nodes:30 ~degree:4. () in
    for src = 0 to 9 do
      let fresh = Spt.single_source t src in
      let reused = Spt.single_source_into scratch t src in
      Alcotest.(check (array int)) "dist" fresh.Spt.dist reused.Spt.dist;
      Alcotest.(check bool) "parent" true (fresh.Spt.parent = reused.Spt.parent);
      Alcotest.(check bool) "via" true (fresh.Spt.via = reused.Spt.via)
    done
  done

let test_scratch_size_mismatch_rejected () =
  let t = Classic.line 4 in
  let scratch = Spt.make_scratch ~n:5 in
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Spt.single_source_into: scratch for 5 nodes, topology has 4") (fun () ->
      ignore (Spt.single_source_into scratch t 0))

let test_all_pairs_into_matches () =
  let prng = Prng.create 41 in
  let t = Random_graph.generate ~prng ~nodes:20 ~degree:3. () in
  let scratch = Spt.make_scratch ~n:20 in
  let out = Array.init 20 (fun _ -> Array.make 20 0) in
  Spt.all_pairs_into scratch t out;
  let expected = Spt.all_pairs t in
  Alcotest.(check bool) "same matrix" true (out = expected)

let test_all_pairs_symmetric () =
  let prng = Prng.create 77 in
  let t = Random_graph.generate ~prng ~nodes:20 ~degree:3. () in
  let m = Spt.all_pairs t in
  for u = 0 to 19 do
    for v = 0 to 19 do
      Alcotest.(check int) "symmetric" m.(u).(v) m.(v).(u)
    done
  done

let prop_dijkstra_edge_relaxed =
  QCheck.Test.make ~name:"dijkstra: every edge is relaxed" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:25 ~degree:4. () in
      let tr = Spt.single_source t 0 in
      Array.for_all
        (fun l ->
          match l.Topology.ends with
          | [| u; v |] ->
            tr.Spt.dist.(v) <= tr.Spt.dist.(u) + l.Topology.cost
            && tr.Spt.dist.(u) <= tr.Spt.dist.(v) + l.Topology.cost
          | _ -> true)
        (Topology.links t))

let prop_dijkstra_path_length_matches =
  QCheck.Test.make ~name:"dijkstra: path length equals distance (unit costs)" ~count:40
    QCheck.(pair (int_range 0 5000) (int_range 1 24))
    (fun (seed, dst) ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:25 ~degree:4. () in
      let tr = Spt.single_source t 0 in
      match (Spt.path tr dst, Spt.distance tr dst) with
      | Some p, Some d -> List.length p = d + 1
      | None, None -> true
      | _ -> false)

(* Tree *)

let test_tree_rejects_cycle () =
  Alcotest.check_raises "cycle" (Invalid_argument "Tree.of_edges: edges contain a cycle")
    (fun () -> ignore (Tree.of_edges ~n:3 [ (0, 1, "a"); (1, 2, "b"); (2, 0, "c") ]))

let test_tree_path () =
  let tree = Tree.of_edges ~n:5 [ (0, 1, 10); (1, 2, 11); (1, 3, 12) ] in
  (match Tree.path tree 2 3 with
  | Some (nodes, labels) ->
    Alcotest.(check (list int)) "nodes" [ 2; 1; 3 ] nodes;
    Alcotest.(check (list int)) "labels" [ 11; 12 ] labels
  | None -> Alcotest.fail "path expected");
  Alcotest.(check bool) "off tree" true (Tree.path tree 0 4 = None);
  Alcotest.(check (option int)) "self path" (Some 0) (Tree.path_length tree 1 1)

let test_tree_covered_labels () =
  (* star: 0 center with leaves 1..4 *)
  let tree = Tree.of_edges ~n:5 [ (0, 1, 1); (0, 2, 2); (0, 3, 3); (0, 4, 4) ] in
  let covered = Tree.covered_labels tree ~src:1 ~targets:[ 2; 3 ] in
  Alcotest.(check (list int)) "covers 1-0, 0-2, 0-3" [ 1; 2; 3 ] (List.sort compare covered);
  Alcotest.(check (list int)) "self target ignored" []
    (Tree.covered_labels tree ~src:1 ~targets:[ 1 ])

let prop_tree_covered_equals_union_of_paths =
  QCheck.Test.make ~name:"covered_labels = union of path labels" ~count:60
    QCheck.(triple (int_range 0 5000) (int_range 0 14) (list_of_size (Gen.return 4) (int_range 0 14)))
    (fun (seed, src, targets) ->
      (* random spanning tree over 15 nodes *)
      let prng = Prng.create seed in
      let edges = ref [] in
      for v = 1 to 14 do
        let u = Prng.int prng v in
        edges := (u, v, v) :: !edges
      done;
      let tree = Tree.of_edges ~n:15 !edges in
      let covered = List.sort_uniq compare (Tree.covered_labels tree ~src ~targets) in
      let naive =
        List.concat_map
          (fun tgt ->
            if tgt = src then []
            else match Tree.path tree src tgt with Some (_, labels) -> labels | None -> [])
          targets
        |> List.sort_uniq compare
      in
      covered = naive)

(* Transit-stub *)

let test_transit_stub_shape () =
  let prng = Prng.create 9 in
  let ts = Pim_graph.Transit_stub.generate ~transit:4 ~stubs_per_transit:2 ~stub_size:4 ~prng () in
  let open Pim_graph.Transit_stub in
  Alcotest.(check int) "node count" (4 + (4 * 2 * 4)) (Topology.n_nodes ts.topo);
  Alcotest.(check bool) "connected" true (Topology.connected ts.topo);
  Alcotest.(check int) "transit count" 4 (List.length ts.transit);
  Alcotest.(check int) "stub count" 8 (List.length ts.stubs);
  Alcotest.(check int) "one gateway per stub" 8 (List.length ts.gateways);
  (* Gateways lead their stubs. *)
  List.iter2
    (fun gw stub -> Alcotest.(check int) "gateway first" gw (List.hd stub))
    ts.gateways ts.stubs;
  (* Stub members stay out of the backbone. *)
  let member = random_stub_member ts ~prng in
  Alcotest.(check bool) "member not transit" false (List.mem member ts.transit)

let prop_transit_stub_connected =
  QCheck.Test.make ~name:"transit-stub topologies are connected" ~count:40
    QCheck.(triple (int_range 0 5000) (int_range 1 6) (int_range 1 5))
    (fun (seed, transit, stub_size) ->
      let prng = Prng.create seed in
      let ts =
        Pim_graph.Transit_stub.generate ~transit ~stubs_per_transit:2 ~stub_size ~prng ()
      in
      Topology.connected ts.Pim_graph.Transit_stub.topo)

(* A backbone chord can redraw an existing pair, and a stub chord can
   land on a spanning-tree edge — both must be dropped, not doubled. *)
let prop_transit_stub_simple_graph =
  QCheck.Test.make ~name:"transit-stub topologies are simple graphs" ~count:60
    QCheck.(quad (int_range 0 10000) (int_range 1 8) (int_range 1 4) (int_range 1 8))
    (fun (seed, transit, stubs_per_transit, stub_size) ->
      let prng = Prng.create seed in
      let ts = Pim_graph.Transit_stub.generate ~transit ~stubs_per_transit ~stub_size ~prng () in
      let keys =
        Array.to_list (Topology.links ts.Pim_graph.Transit_stub.topo)
        |> List.map (fun l ->
               match l.Topology.ends with
               | [| u; v |] -> (min u v, max u v)
               | _ -> (-1, -1))
      in
      List.for_all (fun (u, v) -> u <> v && u >= 0) keys
      && List.length keys = List.length (List.sort_uniq compare keys))

(* Center *)

let test_center_on_line () =
  let t = Classic.line 5 in
  let apsp = Spt.all_pairs t in
  let members = [ 0; 4 ] in
  (* Every node on the 0..4 path yields max delay 4 for this member pair;
     ties break toward the smallest node id. *)
  let core, d = Center.optimal apsp ~senders:members ~receivers:members in
  Alcotest.(check int) "tie breaks to node 0" 0 core;
  Alcotest.(check int) "delay via core" 4 d;
  Alcotest.(check int) "spt delay" 4 (Center.spt_max_delay apsp ~senders:members ~receivers:members);
  (* An off-path-balanced member set pins the core to the middle. *)
  let t3 = Classic.star 5 in
  let apsp3 = Spt.all_pairs t3 in
  let spokes = [ 1; 2; 3; 4 ] in
  let core3, d3 = Center.optimal apsp3 ~senders:spokes ~receivers:spokes in
  Alcotest.(check int) "hub optimal" 0 core3;
  Alcotest.(check int) "hub delay" 2 d3

let prop_center_never_beats_spt =
  QCheck.Test.make ~name:"optimal center-based delay >= SPT delay" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:30 ~degree:4. () in
      let members = Random_graph.pick_members ~prng ~nodes:30 ~count:6 in
      let apsp = Spt.all_pairs t in
      let spt = Center.spt_max_delay apsp ~senders:members ~receivers:members in
      let _, cbt = Center.optimal apsp ~senders:members ~receivers:members in
      cbt >= spt)

let prop_center_optimal_is_minimum =
  QCheck.Test.make ~name:"Center.optimal minimises over all candidates" ~count:30
    QCheck.(int_range 0 5000)
    (fun seed ->
      let prng = Prng.create seed in
      let t = Random_graph.generate ~prng ~nodes:20 ~degree:3. () in
      let members = Random_graph.pick_members ~prng ~nodes:20 ~count:5 in
      let apsp = Spt.all_pairs t in
      let _, best = Center.optimal apsp ~senders:members ~receivers:members in
      List.for_all
        (fun c -> Center.cbt_max_delay apsp ~center:c ~senders:members ~receivers:members >= best)
        (List.init 20 Fun.id))

let test_center_tree_spans () =
  let t = Classic.grid 3 3 in
  let tree = Center.tree t ~center:4 ~members:[ 0; 8; 6 ] in
  List.iter
    (fun m -> Alcotest.(check bool) "member on tree" true (Tree.mem_node tree m))
    [ 0; 8; 6; 4 ]

let () =
  Alcotest.run "pim_graph"
    [
      ( "topology",
        [
          Alcotest.test_case "builder p2p" `Quick test_builder_p2p;
          Alcotest.test_case "reject self loop" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "reject bad node" `Quick test_builder_rejects_bad_node;
          Alcotest.test_case "lan" `Quick test_lan;
          Alcotest.test_case "iface mapping" `Quick test_iface_mapping;
          Alcotest.test_case "invalid iface" `Quick test_link_of_iface_invalid;
          Alcotest.test_case "connected" `Quick test_connected;
        ] );
      ( "classic",
        [
          Alcotest.test_case "shapes" `Quick test_classic_shapes;
          Alcotest.test_case "three domains" `Quick test_three_domains;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_random_graph_connected;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_random_graph_no_duplicate_edges;
          Alcotest.test_case "pick members" `Quick test_pick_members;
        ] );
      ( "spt",
        [
          Alcotest.test_case "line distances" `Quick test_spt_line;
          Alcotest.test_case "weighted" `Quick test_spt_weights;
          Alcotest.test_case "unreachable" `Quick test_spt_unreachable;
          Alcotest.test_case "usable filter" `Quick test_spt_usable_filter;
          Alcotest.test_case "first hop" `Quick test_first_hop;
          Alcotest.test_case "tree edges cover members" `Quick test_tree_edges_cover_members;
          Alcotest.test_case "scratch matches fresh" `Quick test_scratch_matches_fresh;
          Alcotest.test_case "scratch size mismatch" `Quick test_scratch_size_mismatch_rejected;
          Alcotest.test_case "all pairs into matches" `Quick test_all_pairs_into_matches;
          Alcotest.test_case "all pairs symmetric" `Quick test_all_pairs_symmetric;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_dijkstra_edge_relaxed;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_dijkstra_path_length_matches;
        ] );
      ( "tree",
        [
          Alcotest.test_case "rejects cycle" `Quick test_tree_rejects_cycle;
          Alcotest.test_case "path" `Quick test_tree_path;
          Alcotest.test_case "covered labels" `Quick test_tree_covered_labels;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_tree_covered_equals_union_of_paths;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "shape" `Quick test_transit_stub_shape;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_transit_stub_connected;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_transit_stub_simple_graph;
        ] );
      ( "center",
        [
          Alcotest.test_case "line center" `Quick test_center_on_line;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_center_never_beats_spt;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_center_optimal_is_minimum;
          Alcotest.test_case "center tree spans" `Quick test_center_tree_spans;
        ] );
    ]
