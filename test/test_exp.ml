(* Tests for the experiment harnesses (Pim_exp): sanity of every series
   the paper reproduction prints. *)

module Fig2a = Pim_exp.Fig2a
module Fig2b = Pim_exp.Fig2b
module Fig1 = Pim_exp.Fig1
module Overhead = Pim_exp.Overhead
module Failover = Pim_exp.Failover
module Ablation = Pim_exp.Ablation

let test_fig2a_bounds () =
  let rows = Fig2a.run ~trials:20 ~seed:7 () in
  Alcotest.(check int) "six degrees" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "degree %.0f: ratio >= 1 (%.3f)" r.Fig2a.degree r.Fig2a.min_ratio)
        true (r.Fig2a.min_ratio >= 1.);
      Alcotest.(check bool)
        (Printf.sprintf "degree %.0f: mean in a sane band (%.3f)" r.Fig2a.degree r.Fig2a.mean_ratio)
        true
        (r.Fig2a.mean_ratio >= 1.0 && r.Fig2a.mean_ratio < 2.0);
      Alcotest.(check int) "all trials counted" 20 r.Fig2a.trials)
    rows

let test_fig2a_deterministic () =
  let a = Fig2a.run ~trials:5 ~seed:3 () in
  let b = Fig2a.run ~trials:5 ~seed:3 () in
  Alcotest.(check bool) "same seed, same rows" true (a = b);
  let c = Fig2a.run ~trials:5 ~seed:4 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* Fanning the trials across domains must not change a single bit of the
   output: every trial's PRNG stream is split in trial order before the
   fan-out, and aggregation reads results in trial order. *)
let test_fig2a_parallel_identical () =
  let seq = Fig2a.run ~trials:24 ~degrees:[ 3.; 5. ] ~seed:11 () in
  List.iter
    (fun domains ->
      let par = Fig2a.run ~trials:24 ~degrees:[ 3.; 5. ] ~domains ~seed:11 () in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d rows identical to sequential" domains)
        true (par = seq))
    [ 2; 3; 7 ]

let test_fig2b_concentration () =
  let rows = Fig2b.run ~trials:2 ~groups:50 ~seed:7 () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "degree %.0f: CBT concentrates more (%.0f vs %.0f)" r.Fig2b.degree
           r.Fig2b.cbt_max_flows r.Fig2b.spt_max_flows)
        true
        (r.Fig2b.cbt_max_flows >= r.Fig2b.spt_max_flows);
      (* Hard cap: no link can carry more than groups x senders flows. *)
      Alcotest.(check bool) "below the groups*senders cap" true
        (r.Fig2b.cbt_max_flows <= 50. *. 32.))
    rows

let test_fig2b_rejects_bad_args () =
  Alcotest.check_raises "senders > members"
    (Invalid_argument "Fig2b.run: senders must be members") (fun () ->
      ignore (Fig2b.run ~members:4 ~senders:5 ~trials:1 ~seed:1 ()))

(* Regression: on a disconnected topology, a node that cannot reach the
   group has eccentricity [max_int] toward both senders and members; the
   seed implementation summed the two, wrapped negative, and crowned the
   disconnected node "optimal" core.  The core must always be able to reach
   every member when such a candidate exists. *)
let test_fig2b_optimal_core_disconnected () =
  let module Topology = Pim_graph.Topology in
  let module Spt = Pim_graph.Spt in
  (* Component A: 0-1-2-3 in a line (the group).  Component B: 4-5, cut off
     from the group entirely. *)
  let b = Topology.builder 6 in
  ignore (Topology.add_p2p b 0 1);
  ignore (Topology.add_p2p b 1 2);
  ignore (Topology.add_p2p b 2 3);
  ignore (Topology.add_p2p b 4 5);
  let topo = Topology.freeze b in
  let trees = Array.init 6 (fun u -> Spt.single_source topo u) in
  let members = [ 0; 1; 2; 3 ] and senders = [ 0; 3 ] in
  let core = Fig2b.optimal_core trees ~senders ~members in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d reaches member %d" core m)
        true
        (trees.(core).Spt.dist.(m) <> max_int))
    members;
  (* With every candidate in reach of the group, the line's middle wins. *)
  Alcotest.(check bool) "core is on the group's component" true (core <= 3)

let test_fig1_shapes () =
  let rows = Fig1.run ~packets:20 () in
  Alcotest.(check int) "five protocols" 5 (List.length rows);
  let find name =
    List.find (fun r -> String.length r.Fig1.protocol >= String.length name
                        && String.sub r.Fig1.protocol 0 (String.length name) = name) rows
  in
  let dvmrp = find "DVMRP" in
  let pim_spt = find "PIM-SM (SPT" in
  let cbt = find "CBT" in
  (* All three members are served (3 x 20, PIM may duplicate one packet in
     the register transition or drop one in the SPT transition). *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s delivers (%d)" r.Fig1.protocol r.Fig1.deliveries)
        true
        (r.Fig1.deliveries >= 55 && r.Fig1.deliveries <= 65))
    rows;
  (* Dense mode keeps some state at every router that saw the flood;
     sparse mode state only along the tree. *)
  Alcotest.(check bool) "dense floods more data than PIM" true
    (dvmrp.Fig1.data_traversals > pim_spt.Fig1.data_traversals);
  Alcotest.(check bool) "dense needs almost no control" true
    (dvmrp.Fig1.control_traversals < pim_spt.Fig1.control_traversals);
  Alcotest.(check bool) "cbt data is the leanest" true
    (cbt.Fig1.data_traversals <= pim_spt.Fig1.data_traversals)

let test_overhead_trends () =
  let rows = Overhead.run ~nodes:30 ~packets:30 ~fractions:[ 0.1; 0.6 ] ~seed:5 () in
  let find frac name =
    List.find
      (fun r -> r.Overhead.fraction = frac && r.Overhead.protocol = name)
      rows
  in
  (* Sparse regime: dense-mode flooding costs far more data transmissions
     than PIM's explicit-join tree. *)
  let dvmrp_sparse = find 0.1 "DVMRP" in
  let pim_sparse = find 0.1 "PIM-SM (shared)" in
  Alcotest.(check bool)
    (Printf.sprintf "flooding dominates when sparse (%d vs %d)" dvmrp_sparse.Overhead.data_traversals
       pim_sparse.Overhead.data_traversals)
    true
    (dvmrp_sparse.Overhead.data_traversals > pim_sparse.Overhead.data_traversals);
  (* MOSPF stores membership at every router: state = members x routers. *)
  let mospf_sparse = find 0.1 "MOSPF" in
  let mospf_dense = find 0.6 "MOSPF" in
  Alcotest.(check int) "mospf state sparse" (3 * 30) mospf_sparse.Overhead.state_entries;
  Alcotest.(check int) "mospf state dense" (18 * 30) mospf_dense.Overhead.state_entries;
  (* Everyone delivers (PIM transition losses bounded). *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s frac %.1f delivers >= 88%% (%d/%d)" r.Overhead.protocol
           r.Overhead.fraction r.Overhead.deliveries r.Overhead.expected_deliveries)
        true
        (* PIM's SPT-transition window loses a few packets per member
           (section 3.3); everything else must be complete. *)
        (float_of_int r.Overhead.deliveries
        >= 0.88 *. float_of_int r.Overhead.expected_deliveries))
    rows

let test_failover_gap_tracks_timeout () =
  let rows = Failover.run ~timeouts:[ 5.; 15. ] ~seed:1 () in
  match rows with
  | [ short; long ] ->
    Alcotest.(check bool) "both fail over" true
      (short.Failover.failovers >= 1 && long.Failover.failovers >= 1);
    Alcotest.(check bool) "both resume" true
      (short.Failover.delivered_after > 0 && long.Failover.delivered_after > 0);
    Alcotest.(check bool)
      (Printf.sprintf "shorter timeout, shorter gap (%.1f < %.1f)" short.Failover.gap
         long.Failover.gap)
      true
      (short.Failover.gap < long.Failover.gap)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_policy_tradeoff () =
  let rows = Ablation.run_spt_policy ~seed:2 () in
  match rows with
  | [ shared; spt; threshold ] ->
    Alcotest.(check bool) "spt state costs more" true
      (spt.Ablation.state_entries > shared.Ablation.state_entries);
    Alcotest.(check bool) "shared tree concentrates at least as much" true
      (shared.Ablation.max_link_flows >= spt.Ablation.max_link_flows);
    Alcotest.(check bool) "spt delay no worse" true
      (spt.Ablation.mean_delay <= shared.Ablation.mean_delay +. 1e-9);
    Alcotest.(check bool) "threshold in between (state)" true
      (threshold.Ablation.state_entries >= shared.Ablation.state_entries)
  | _ -> Alcotest.fail "expected three rows"

let test_refresh_tradeoff () =
  let rows = Ablation.run_refresh ~periods:[ 2.; 8. ] ~seed:1 () in
  match rows with
  | [ fast; slow ] ->
    Alcotest.(check bool) "faster refresh costs more control" true
      (fast.Ablation.control_traversals > slow.Ablation.control_traversals);
    Alcotest.(check bool) "slower refresh keeps stale state longer" true
      (fast.Ablation.cleanup_time < slow.Ablation.cleanup_time);
    Alcotest.(check int) "delivery unaffected" fast.Ablation.deliveries slow.Ablation.deliveries
  | _ -> Alcotest.fail "expected two rows"

let test_groups_scaling () =
  let rows = Pim_exp.Groups_scaling.run ~nodes:30 ~group_counts:[ 5; 20 ] ~seed:3 () in
  let find groups name =
    List.find
      (fun r -> r.Pim_exp.Groups_scaling.groups = groups && r.Pim_exp.Groups_scaling.protocol = name)
      rows
  in
  (* Everyone delivers completely (PIM's occasional transition duplicate
     tolerated). *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %d groups complete" r.Pim_exp.Groups_scaling.protocol
           r.Pim_exp.Groups_scaling.groups)
        true
        (r.Pim_exp.Groups_scaling.deliveries >= r.Pim_exp.Groups_scaling.expected_deliveries))
    rows;
  (* DVMRP's flooding data cost dwarfs PIM's tree cost, at every scale. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) "flooding costs more data" true
        ((find n "DVMRP").Pim_exp.Groups_scaling.data_traversals
        > 2 * (find n "PIM-SM").Pim_exp.Groups_scaling.data_traversals))
    [ 5; 20 ];
  (* Dense-mode state is ~groups x routers; MOSPF's is groups x members x
     routers; PIM's stays proportional to the trees. *)
  Alcotest.(check int) "dvmrp state = groups x routers" (20 * 30)
    (find 20 "DVMRP").Pim_exp.Groups_scaling.state_entries;
  Alcotest.(check int) "mospf state = groups x members x routers" (20 * 3 * 30)
    (find 20 "MOSPF").Pim_exp.Groups_scaling.state_entries;
  Alcotest.(check bool) "pim state smallest of the source-tree protocols" true
    ((find 20 "PIM-SM").Pim_exp.Groups_scaling.state_entries
    < (find 20 "DVMRP").Pim_exp.Groups_scaling.state_entries)

let test_aggregation () =
  let rows = Pim_exp.Aggregation.run ~source_counts:[ 1; 6 ] ~packets:20 ~seed:1 () in
  let find sources aggregated =
    List.find
      (fun r ->
        r.Pim_exp.Aggregation.sources = sources && r.Pim_exp.Aggregation.aggregated = aggregated)
      rows
  in
  (* Identical complete delivery either way: prefix joins really do keep
     the per-source state refreshed. *)
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "sources=%d agg=%b complete" r.Pim_exp.Aggregation.sources
           r.Pim_exp.Aggregation.aggregated)
        r.Pim_exp.Aggregation.expected r.Pim_exp.Aggregation.deliveries)
    rows;
  (* With one source there is nothing to aggregate. *)
  Alcotest.(check int) "single source unchanged"
    (find 1 false).Pim_exp.Aggregation.join_entries
    (find 1 true).Pim_exp.Aggregation.join_entries;
  (* With several, message content shrinks substantially. *)
  Alcotest.(check bool) "fewer join entries" true
    (2 * (find 6 true).Pim_exp.Aggregation.join_entries
    < (find 6 false).Pim_exp.Aggregation.join_entries);
  Alcotest.(check bool) "fewer control bytes" true
    ((find 6 true).Pim_exp.Aggregation.control_bytes
    < (find 6 false).Pim_exp.Aggregation.control_bytes)

let test_churn () =
  let rows = Pim_exp.Churn.run ~receivers:4 ~duration:120. ~on_off_pairs:[ (30., 15.) ] ~seed:2 () in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "churn happened" true (r.Pim_exp.Churn.joins_observed > 4);
    Alcotest.(check bool) "joins eventually deliver" true
      (r.Pim_exp.Churn.mean_join_latency > 0. && r.Pim_exp.Churn.mean_join_latency < 30.);
    Alcotest.(check bool) "stream flowed" true (r.Pim_exp.Churn.deliveries > 50)
  | _ -> Alcotest.fail "expected one row"

let test_loss_robustness () =
  let rows = Pim_exp.Loss.run ~loss_rates:[ 0.; 0.25 ] ~packets:40 ~seed:4 () in
  let find name loss =
    List.find
      (fun r -> r.Pim_exp.Loss.protocol = name && r.Pim_exp.Loss.loss = loss)
      rows
  in
  (* Both keep delivering the bulk of the stream at 25% control loss. *)
  List.iter
    (fun name ->
      let r = find name 0.25 in
      Alcotest.(check bool)
        (Printf.sprintf "%s survives 25%% control loss (%d/%d)" name r.Pim_exp.Loss.deliveries
           r.Pim_exp.Loss.expected)
        true
        (float_of_int r.Pim_exp.Loss.deliveries >= 0.8 *. float_of_int r.Pim_exp.Loss.expected))
    [ "PIM-SM"; "CBT" ];
  (* PIM's periodic-refresh control rate does not grow with loss. *)
  Alcotest.(check bool) "pim control constant-rate" true
    ((find "PIM-SM" 0.25).Pim_exp.Loss.control_traversals
    <= (find "PIM-SM" 0.).Pim_exp.Loss.control_traversals);
  Alcotest.(check bool) "losses actually happened" true
    ((find "PIM-SM" 0.25).Pim_exp.Loss.control_dropped > 0)

let test_metrics_classification () =
  let topo = Pim_graph.Classic.line 2 in
  let eng = Pim_sim.Engine.create () in
  let net = Pim_sim.Net.create eng topo in
  let m = Pim_exp.Metrics.attach net in
  Pim_sim.Net.set_handler net 1 (fun ~iface:_ _ -> ());
  let g = Pim_net.Group.of_index 1 in
  let data = Pim_mcast.Mdata.make ~src:(Pim_net.Addr.host ~router:0 1) ~group:g ~seq:0 ~sent_at:0. () in
  Pim_sim.Net.send net 0 ~iface:0 data;
  let ctrl =
    Pim_net.Packet.unicast ~src:(Pim_net.Addr.router 0) ~dst:(Pim_net.Addr.router 1) ~size:24
      (Pim_net.Packet.Raw "ctl")
  in
  Pim_sim.Net.send net 0 ~iface:0 ctrl;
  (* A register carrying data counts as data. *)
  let reg = Pim_core.Message.register_packet ~src:(Pim_net.Addr.router 0) ~rp:(Pim_net.Addr.router 1) data in
  Pim_sim.Net.send net 0 ~iface:0 reg;
  Pim_sim.Engine.run eng;
  Alcotest.(check int) "data count" 2 (Pim_exp.Metrics.data_traversals m);
  Alcotest.(check int) "control count" 1 (Pim_exp.Metrics.control_traversals m);
  Alcotest.(check bool) "bytes accounted" true (Pim_exp.Metrics.data_bytes m > 2000);
  Alcotest.(check int) "max link" 3 (Pim_exp.Metrics.max_link_data m + Pim_exp.Metrics.control_traversals m);
  Pim_exp.Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Pim_exp.Metrics.data_traversals m)

(* {1 E11 workload models} *)

let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string s with _ -> 1994)
    | None -> 1994
  in
  Random.State.make [| seed |]

module Workload = Pim_exp.Workload

let small_spec model =
  {
    (Workload.default_spec model) with
    Workload.nodes = 80;
    scale = 50;
    groups = 6;
    duration = 25.;
  }

let test_workload_schedule_shape () =
  let sched = Workload.generate (small_spec Workload.Zap) in
  let events = Array.to_list sched.Workload.events in
  Alcotest.(check bool) "non-empty" true (events <> []);
  (* Sorted by (t, receiver, seq). *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a.Workload.t < b.Workload.t
      || (a.Workload.t = b.Workload.t && (a.Workload.receiver, a.Workload.seq) < (b.Workload.receiver, b.Workload.seq)))
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted events);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "t in range" true (ev.Workload.t >= 0. && ev.Workload.t < 25.);
      Alcotest.(check bool) "group in range" true (ev.Workload.group >= 0 && ev.Workload.group < 6))
    events;
  (* Per receiver, joins and leaves alternate starting with a join. *)
  let per_rcv = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let l = Option.value (Hashtbl.find_opt per_rcv ev.Workload.receiver) ~default:[] in
      Hashtbl.replace per_rcv ev.Workload.receiver (ev.Workload.action :: l))
    events;
  Hashtbl.iter
    (fun r actions ->
      let rec alternating expect = function
        | [] -> true
        | a :: rest -> a = expect && alternating (if expect = Workload.Join then Workload.Leave else Workload.Join) rest
      in
      Alcotest.(check bool)
        (Printf.sprintf "receiver %d alternates join/leave" r)
        true
        (alternating Workload.Join (List.rev actions)))
    per_rcv

let test_workload_flashcrowd_ramp () =
  let spec = { (small_spec Workload.Flashcrowd) with Workload.scale = 400 } in
  let sched = Workload.generate spec in
  let crowd_joins =
    Array.to_list sched.Workload.events
    |> List.filter (fun ev -> ev.Workload.group = 0 && ev.Workload.action = Workload.Join)
  in
  Alcotest.(check bool) "crowd is most of scale" true (List.length crowd_joins > 300);
  (* The ramp is fast: the bulk of the crowd arrives within ~15 s. *)
  let late = List.filter (fun ev -> ev.Workload.t > 15.) crowd_joins in
  Alcotest.(check bool) "ramp finishes early" true (List.length late * 10 < List.length crowd_joins)

let test_workload_run_small () =
  let rep = Workload.run (small_spec Workload.Zap) in
  Alcotest.(check int) "five windows" 5 (List.length rep.Workload.rows);
  Alcotest.(check bool) "joins counted" true (rep.Workload.total_joins > 0);
  Alcotest.(check bool) "latency observed" true (rep.Workload.join_latency.Pim_util.Stats.n > 0);
  Alcotest.(check bool) "data flowed" true (rep.Workload.total_data > 0);
  Alcotest.(check bool) "control flowed" true (rep.Workload.total_control > 0);
  (* Windowed rows sum to the totals. *)
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rep.Workload.rows in
  Alcotest.(check int) "row joins sum" rep.Workload.total_joins (sum (fun r -> r.Workload.joins));
  Alcotest.(check int) "row data sum" rep.Workload.total_data (sum (fun r -> r.Workload.data_msgs));
  (* The oracle is clean at end of run. *)
  List.iter
    (fun (name, problems) -> Alcotest.(check int) (name ^ " clean") 0 problems)
    rep.Workload.oracle

let test_workload_json_deterministic () =
  let spec = small_spec Workload.Zipfian in
  let a = Pim_util.Json.to_string (Workload.report_to_json (Workload.run spec)) in
  let b = Pim_util.Json.to_string (Workload.report_to_json (Workload.run spec)) in
  Alcotest.(check string) "same seed, byte-identical JSON" a b;
  let c =
    Pim_util.Json.to_string
      (Workload.report_to_json (Workload.run { spec with Workload.seed = 7 }))
  in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_workload_rp_concentration_contrast () =
  (* The paper's multi-RP argument: sharding groups over several RPs
     spreads rendezvous load.  Topology and schedule are identical in
     both runs, so the single-RP node must bear strictly more
     adjacent-link load when all eight groups rendezvous at it than when
     six of them are sharded away to other backbone routers.  (Peak-vs-
     peak would be confounded by backbone through-traffic, which every
     transit router carries regardless of RP placement.) *)
  let spec =
    { (small_spec Workload.Zap) with Workload.nodes = 200; groups = 8; scale = 50 }
  in
  let single = Workload.run { spec with Workload.rp_strategy = Workload.Single } in
  let sharded = Workload.run { spec with Workload.rp_strategy = Workload.Sharded 4 } in
  let single_rp, single_load =
    match single.Workload.rp_loads with [ x ] -> x | _ -> Alcotest.fail "one RP expected"
  in
  let same_node_sharded =
    match List.assoc_opt single_rp sharded.Workload.rp_loads with
    | Some l -> l
    | None -> Alcotest.fail "single's RP node not in the sharded RP set"
  in
  Alcotest.(check bool)
    (Printf.sprintf "single RP node bears more load (%d > %d)" single_load same_node_sharded)
    true (single_load > same_node_sharded)

let prop_workload_domains_identity =
  QCheck.Test.make ~count:6 ~name:"workload schedule identical across domains"
    QCheck.(
      pair (int_range 0 3) (int_bound 1000))
    (fun (model_idx, seed) ->
      let model = List.nth Workload.models model_idx in
      let spec =
        { (small_spec model) with Workload.scale = 30; duration = 15.; seed }
      in
      let render domains = Workload.render_schedule (Workload.generate { spec with Workload.domains }) in
      let reference = render 1 in
      List.for_all (fun d -> String.equal reference (render d)) [ 2; 3; 8 ])

let () =
  Alcotest.run "pim_exp"
    [
      ( "fig2a",
        [
          Alcotest.test_case "ratio bounds" `Quick test_fig2a_bounds;
          Alcotest.test_case "deterministic" `Quick test_fig2a_deterministic;
          Alcotest.test_case "parallel identical" `Quick test_fig2a_parallel_identical;
        ] );
      ( "fig2b",
        [
          Alcotest.test_case "concentration" `Quick test_fig2b_concentration;
          Alcotest.test_case "rejects bad args" `Quick test_fig2b_rejects_bad_args;
          Alcotest.test_case "optimal core on disconnected topology" `Quick
            test_fig2b_optimal_core_disconnected;
        ] );
      ("fig1", [ Alcotest.test_case "shapes" `Quick test_fig1_shapes ]);
      ("overhead", [ Alcotest.test_case "trends" `Quick test_overhead_trends ]);
      ("failover", [ Alcotest.test_case "gap tracks timeout" `Quick test_failover_gap_tracks_timeout ]);
      ( "ablation",
        [
          Alcotest.test_case "policy tradeoff" `Quick test_ablation_policy_tradeoff;
          Alcotest.test_case "refresh tradeoff" `Quick test_refresh_tradeoff;
        ] );
      ("groups", [ Alcotest.test_case "scaling with group count" `Quick test_groups_scaling ]);
      ("aggregation", [ Alcotest.test_case "source aggregation (E6)" `Quick test_aggregation ]);
      ("churn", [ Alcotest.test_case "dynamic groups (E7)" `Quick test_churn ]);
      ("loss", [ Alcotest.test_case "control-loss robustness (E8)" `Quick test_loss_robustness ]);
      ("metrics", [ Alcotest.test_case "classification" `Quick test_metrics_classification ]);
      ( "workload",
        [
          Alcotest.test_case "schedule shape" `Quick test_workload_schedule_shape;
          Alcotest.test_case "flashcrowd ramp" `Quick test_workload_flashcrowd_ramp;
          Alcotest.test_case "small run (E11)" `Quick test_workload_run_small;
          Alcotest.test_case "json deterministic" `Quick test_workload_json_deterministic;
          Alcotest.test_case "rp concentration contrast" `Quick
            test_workload_rp_concentration_contrast;
          QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()) prop_workload_domains_identity;
        ] );
    ]
